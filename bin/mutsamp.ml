(* mutsamp — command-line front end.

   Subcommands: list, show, mutants, generate, faultsim, atpg, dot,
   table1, table2, e3. Run `mutsamp --help` or `mutsamp CMD --help`. *)

open Cmdliner

module Registry = Mutsamp_circuits.Registry
module Pretty = Mutsamp_hdl.Pretty
module Operator = Mutsamp_mutation.Operator
module Mutant = Mutsamp_mutation.Mutant
module Generate = Mutsamp_mutation.Generate
module Netlist = Mutsamp_netlist.Netlist
module Stats = Mutsamp_netlist.Stats
module Dot = Mutsamp_netlist.Dot
module Fsim = Mutsamp_fault.Fsim
module Pattern = Mutsamp_fault.Pattern
module Collapse = Mutsamp_fault.Collapse
module Prpg = Mutsamp_atpg.Prpg
module Scan = Mutsamp_atpg.Scan
module Topoff = Mutsamp_atpg.Topoff
module Vectorgen = Mutsamp_validation.Vectorgen
module Score = Mutsamp_validation.Score
module Strategy = Mutsamp_sampling.Strategy
module Prng = Mutsamp_util.Prng
module Table = Mutsamp_util.Table
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Report = Mutsamp_core.Report
module Analysis = Mutsamp_analysis
module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Runreport = Mutsamp_obs.Runreport
module Json = Mutsamp_obs.Json
module Profile = Mutsamp_obs.Profile
module Traceout = Mutsamp_obs.Traceout
module Benchdiff = Mutsamp_obs.Benchdiff
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Atomicio = Mutsamp_robust.Atomicio
module Store = Mutsamp_store.Store
module Pool = Mutsamp_exec.Pool
module Ctx = Mutsamp_exec.Ctx
module Retry = Mutsamp_robust.Retry
module Sjobs = Mutsamp_serve.Jobs
module Sserver = Mutsamp_serve.Server
module Sclient = Mutsamp_serve.Client
module Sprotocol = Mutsamp_serve.Protocol

let find_circuit name =
  match Registry.find name with
  | Some e -> Ok e
  | None ->
    Error
      (`Msg
        (Printf.sprintf "unknown circuit %S (try: %s)" name
           (String.concat ", " (Registry.names ()))))

let circuit_arg =
  let parse s = find_circuit s in
  let print fmt (e : Registry.entry) = Format.pp_print_string fmt e.Registry.name in
  Arg.conv (parse, print)

let circuit_pos =
  Arg.(required & pos 0 (some circuit_arg) None & info [] ~docv:"CIRCUIT")

let seed_flag =
  Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"N" ~doc:"Master random seed.")

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use reduced experiment budgets.")

let config_of ~quick ~seed =
  let base = if quick then Config.quick else Config.default in
  { base with Config.seed }

(* ------------------------------------------------------------------ *)
(* observability + robustness flags (shared by every subcommand)      *)
(* ------------------------------------------------------------------ *)

type obs_opts = {
  trace : bool;
  metrics : bool;
  profile : bool;
  report : string option;
  trace_out : string option;
  metrics_out : string option;
  deadline_ms : int option;
  sat_conflicts : int option;
  podem_backtracks : int option;
  fsim_pairs : int option;
  chaos : string list;
  chaos_seed : int;
  jobs : int;
  store : string option;
  no_dominance : bool;
  engine : string;
}

let obs_term =
  let trace =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:"Print the span timing tree to stderr when the command finishes.")
  in
  let metrics =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Print the counter/histogram snapshot to stderr when the command finishes.")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Print a flat self-time profile (per span name: count, total, \
                   self, alloc) to stderr, and add a \"profile\" section to the \
                   report when one is written.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Write a machine-readable JSON run report to FILE.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the span tree as Chrome trace-event JSON to FILE \
                   (loadable in ui.perfetto.dev), one track per worker domain.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write the counter/histogram snapshot in Prometheus text \
                   exposition format to FILE.")
  in
  let deadline_ms =
    Arg.(value & opt (some int) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Wall-clock budget; past it the stages degrade instead of running on.")
  in
  let sat_conflicts =
    Arg.(value & opt (some int) None
         & info [ "sat-conflicts" ] ~docv:"N"
             ~doc:"Total SAT conflict budget across every solve.")
  in
  let podem_backtracks =
    Arg.(value & opt (some int) None
         & info [ "podem-backtracks" ] ~docv:"N"
             ~doc:"Total PODEM backtrack budget across every search.")
  in
  let fsim_pairs =
    Arg.(value & opt (some int) None
         & info [ "fsim-pairs" ] ~docv:"N"
             ~doc:"Total fault-simulation budget in pattern-times-fault pairs.")
  in
  let chaos =
    Arg.(value & opt_all string []
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Arm the fault-injection harness: POINT:ACTION[@AFTER], e.g. \
                   sat:timeout, report:truncate=16, podem:exn@3. Repeatable.")
  in
  let chaos_seed =
    Arg.(value & opt int 2005
         & info [ "chaos-seed" ] ~docv:"N"
             ~doc:"Seed for probabilistic chaos armings.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains for sharded stages. 1 (the default) keeps \
                   every stage on the sequential path; 0 means one domain per \
                   available core. Results are bit-identical at any setting.")
  in
  let store =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Campaign store directory (created if missing): fault-sim \
                   reports, validation vectors, scores and finished campaign \
                   rows are persisted there keyed by content hashes, and an \
                   unchanged re-run replays them bit-identically instead of \
                   recomputing. See docs/STORE.md.")
  in
  let no_dominance =
    Arg.(value & flag
         & info [ "no-dominance" ]
             ~doc:"Disable dominator-based fault-dominance collapsing in the \
                   search stages (redundancy removal, top-off ATPG ordering). \
                   Reported coverage is bit-identical either way; this flag \
                   exists to measure the saving and to bisect suspected \
                   collapsing bugs.")
  in
  let engine =
    Arg.(value & opt string "auto"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Fault-simulation backend: auto (the default — compiled for \
                   combinational netlists, packed for sequential ones), \
                   packed, event or compiled. Reported coverage is \
                   bit-identical across all of them.")
  in
  Term.(const (fun trace metrics profile report trace_out metrics_out deadline_ms
                   sat_conflicts podem_backtracks fsim_pairs chaos chaos_seed jobs
                   store no_dominance engine ->
            { trace; metrics; profile; report; trace_out; metrics_out;
              deadline_ms; sat_conflicts;
              podem_backtracks; fsim_pairs; chaos; chaos_seed; jobs; store;
              no_dominance; engine })
        $ trace $ metrics $ profile $ report $ trace_out $ metrics_out
        $ deadline_ms $ sat_conflicts
        $ podem_backtracks $ fsim_pairs $ chaos $ chaos_seed $ jobs $ store
        $ no_dominance $ engine)

(* The "robust" report section: the degradation record plus the budget
   the run was given. *)
let robust_json budget =
  match Degrade.to_json () with
  | Json.Obj fields -> Json.Obj (fields @ [ ("budget", Budget.to_json budget) ])
  | other -> other

(* Run a subcommand body under a root span with the ambient budget and
   chaos armings installed; afterwards render whatever the flags asked
   for. Typed errors escaping the body (and injected chaos exceptions)
   become a one-line message and a per-class exit code — the report, if
   requested, is still written first, recording the partial run.
   Without flags the instrumentation stays disabled and the wrapper is
   free. The body receives the run context: the --jobs pool (shut down
   after the body, even on typed errors) and the ambient budget. *)
let with_obs obs ~command ?(circuits = []) ?config ?seed
    ?(sections = fun () -> []) f =
  let any =
    obs.trace || obs.metrics || obs.profile || obs.report <> None
    || obs.trace_out <> None || obs.metrics_out <> None
  in
  if any then begin
    Trace.set_enabled true;
    Trace.reset ();
    Metrics.set_enabled true;
    Metrics.reset ()
  end;
  let budget =
    match (obs.deadline_ms, obs.sat_conflicts, obs.podem_backtracks, obs.fsim_pairs) with
    | None, None, None, None -> Budget.unlimited
    | deadline_ms, sat_conflicts, podem_backtracks, fsim_pairs ->
      Budget.create ?deadline_ms ?sat_conflicts ?podem_backtracks ?fsim_pairs ()
  in
  Budget.set_ambient budget;
  let engine =
    match Ctx.engine_of_string obs.engine with
    | Some e -> e
    | None ->
      Printf.eprintf
        "mutsamp: unknown --engine %S (auto, packed, event or compiled)\n"
        obs.engine;
      exit 64
  in
  Degrade.reset ();
  Chaos.init ~seed:obs.chaos_seed ();
  Chaos.disarm_all ();
  List.iter
    (fun spec ->
      match Chaos.parse_spec spec with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "mutsamp: bad --chaos spec: %s\n" msg;
        exit 64)
    obs.chaos;
  let store =
    match obs.store with
    | None -> None
    | Some dir -> (
      match Store.open_dir dir with
      | Ok s ->
        Store.reset_counters ();
        Some s
      | Error e ->
        Printf.eprintf "mutsamp: --store %s: %s\n" dir (Rerror.to_string e);
        exit (Rerror.exit_code e))
  in
  let pool = if obs.jobs = 1 then None else Some (Pool.create ~domains:obs.jobs) in
  let ctx = match pool with None -> Ctx.default | Some p -> Ctx.with_pool p in
  let ctx =
    { ctx with Ctx.store; Ctx.dominance = not obs.no_dominance; Ctx.engine }
  in
  let result =
    try Ok (Trace.with_span command (fun () -> f ctx)) with
    | Rerror.E e -> Error e
    | Chaos.Injected _ -> Error (Rerror.Injected Rerror.Pipeline)
    | Mutsamp_netlist.Benchfmt.Parse_error msg
    | Mutsamp_hdl.Parser.Parse_error msg
    | Mutsamp_hdl.Lexer.Lex_error msg ->
      Error (Rerror.Parse_error { loc = { Rerror.file = None; line = None }; msg })
  in
  (match pool with None -> () | Some p -> Pool.shutdown p);
  let write_aux what path contents =
    match Atomicio.write_file path contents with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "mutsamp: cannot write %s: %s\n" what (Rerror.to_string e);
      exit (Rerror.exit_code e)
  in
  if obs.trace then Trace.print stderr;
  if obs.metrics then Format.eprintf "%a@?" Metrics.pp (Metrics.snapshot ());
  if obs.profile then Profile.print stderr (Profile.current ());
  (match obs.trace_out with
   | None -> ()
   | Some path -> write_aux "trace" path (Traceout.current ()));
  (match obs.metrics_out with
   | None -> ()
   | Some path ->
     write_aux "metrics" path (Metrics.to_prometheus (Metrics.snapshot ())));
  (match obs.report with
   | None -> ()
   | Some path ->
     let json =
       let exec_json =
         let snap = Metrics.snapshot () in
         let exec_hists =
           List.filter_map
             (fun (name, stats) ->
               if String.length name > 5 && String.sub name 0 5 = "exec." then
                 Some (name, Metrics.stats_to_json stats)
               else None)
             snap.Metrics.histograms
         in
         Json.Obj
           ([
              ("jobs_requested", Json.Int obs.jobs);
              ("jobs", Json.Int (match pool with None -> 1 | Some p -> Pool.size p));
            ]
           @ if exec_hists = [] then [] else [ ("histograms", Json.Obj exec_hists) ])
       in
       let profile_section =
         if obs.profile then [ ("profile", Profile.to_json (Profile.current ())) ]
         else []
       in
       (* Which backend the run asked for and which one(s) actually ran
          (fault-sim dispatch bumps one fsim.engine.* counter per run;
          Auto can resolve differently per netlist, hence a list). *)
       let fsim_json =
         let prefix = "fsim.engine." in
         let plen = String.length prefix in
         let resolved =
           List.filter_map
             (fun (name, v) ->
               if
                 v > 0
                 && String.length name > plen
                 && String.sub name 0 plen = prefix
               then Some (Json.String (String.sub name plen (String.length name - plen)))
               else None)
             (Metrics.snapshot ()).Metrics.counters
         in
         Json.Obj
           [
             ("engine", Json.String (Ctx.engine_to_string engine));
             ("resolved", Json.List resolved);
           ]
       in
       Runreport.make ~command ~circuits ?config ?seed
         ~extra:
           (("exec", exec_json) :: ("fsim", fsim_json)
            :: ("robust", robust_json budget)
            :: ("store", Store.report_section store)
            :: (profile_section @ sections ()))
         ~spans:(Trace.roots ()) ~metrics:(Metrics.snapshot ()) ()
     in
     write_aux "report" path (Json.to_string json));
  match result with
  | Ok v -> v
  | Error e ->
    Printf.eprintf "mutsamp: %s\n" (Rerror.to_string e);
    exit (Rerror.exit_code e)

(* Parsing/elaboration is a phase worth seeing in traces. *)
let design_of (e : Registry.entry) =
  Trace.with_span "parse" ~attrs:[ ("circuit", e.Registry.name) ] (fun () ->
      e.Registry.design ())

(* Carriage-return progress line for the long serial phases. *)
let progress_line label ~done_ ~total =
  if total > 0 then begin
    Printf.eprintf "\r%s: %d/%d%!" label done_ total;
    if done_ = total then prerr_newline ()
  end

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run obs =
    with_obs obs ~command:"list" @@ fun _ctx ->
    let t = Table.create [ "Name"; "Kind"; "Paper"; "PIs"; "POs"; "FFs"; "Gates"; "Description" ] in
    List.iter
      (fun (e : Registry.entry) ->
        let d = e.Registry.design () in
        let nl = Mutsamp_synth.Flow.synthesize d in
        let s = Stats.compute nl in
        Table.add_row t
          [
            e.Registry.name;
            (match e.Registry.kind with
             | Registry.Sequential -> "seq"
             | Registry.Combinational -> "comb");
            (if e.Registry.in_paper then "yes" else "no");
            string_of_int s.Stats.primary_inputs;
            string_of_int s.Stats.primary_outputs;
            string_of_int s.Stats.flip_flops;
            string_of_int s.Stats.logic_gates;
            e.Registry.description;
          ])
      Registry.all;
    Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark circuits.")
    Term.(const run $ obs_term)

(* ------------------------------------------------------------------ *)
(* show                                                               *)
(* ------------------------------------------------------------------ *)

let show_cmd =
  let run obs (e : Registry.entry) =
    with_obs obs ~command:"show" ~circuits:[ e.Registry.name ] @@ fun _ctx ->
    let d = design_of e in
    print_string (Pretty.design d);
    let nl = Mutsamp_synth.Flow.synthesize d in
    Printf.printf "\n-- synthesised: %s\n" (Stats.to_string (Stats.compute nl))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a circuit's behavioural source and netlist stats.")
    Term.(const run $ obs_term $ circuit_pos)

(* ------------------------------------------------------------------ *)
(* mutants                                                            *)
(* ------------------------------------------------------------------ *)

let mutants_cmd =
  let operator =
    Arg.(value & opt (some string) None
         & info [ "operator" ] ~docv:"OP" ~doc:"Show only this operator's mutants.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"List every mutant.")
  in
  let run obs (e : Registry.entry) operator verbose =
    with_obs obs ~command:"mutants" ~circuits:[ e.Registry.name ] @@ fun _ctx ->
    let d = design_of e in
    let ms = Trace.with_span "mutants" (fun () -> Generate.all d) in
    match operator with
    | Some opname ->
      (match Operator.of_string opname with
       | None -> prerr_endline ("unknown operator " ^ opname); exit 1
       | Some op ->
         let subset = List.filter (fun (m : Mutant.t) -> Operator.equal m.op op) ms in
         Printf.printf "%s: %d %s mutants\n" e.Registry.name (List.length subset)
           (Operator.name op);
         if verbose then List.iter (fun m -> print_endline ("  " ^ Mutant.to_string m)) subset)
    | None ->
      Printf.printf "%s: %d mutants\n" e.Registry.name (List.length ms);
      List.iter
        (fun (op, n) -> if n > 0 then Printf.printf "  %-4s %d\n" (Operator.name op) n)
        (Generate.count_by_operator ms);
      if verbose then List.iter (fun m -> print_endline ("  " ^ Mutant.to_string m)) ms
  in
  Cmd.v
    (Cmd.info "mutants" ~doc:"Enumerate the mutants of a circuit.")
    Term.(const run $ obs_term $ circuit_pos $ operator $ verbose)

(* ------------------------------------------------------------------ *)
(* generate                                                           *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let rate =
    Arg.(value & opt float 1.0
         & info [ "rate" ] ~docv:"R" ~doc:"Mutant sampling rate in (0,1].")
  in
  let triage =
    Arg.(value & flag
         & info [ "triage" ]
             ~doc:"Statically discard stillborn and duplicate mutants before \
                   sampling; stillborns feed the E term of the score.")
  in
  let run obs (e : Registry.entry) rate triage seed =
    with_obs obs ~command:"generate" ~circuits:[ e.Registry.name ] ~seed @@ fun _ctx ->
    let d = design_of e in
    let p = Pipeline.prepare d in
    (* Optional static triage: sample only from the kept mutants, and
       count the statically-proven-equivalent stillborns into E. The
       score denominator still spans the full population, so triage
       changes the effort, never the reported MS semantics. *)
    let population, equivalent_idx =
      if not triage then (p.Pipeline.mutants, [])
      else begin
        let t =
          Trace.with_span "triage" (fun () ->
              Analysis.Triage.run d p.Pipeline.mutants)
        in
        Printf.printf "triage: %d stillborn, %d duplicates discarded; %d of %d kept\n"
          t.Analysis.Triage.stillborn t.Analysis.Triage.duplicates
          (List.length t.Analysis.Triage.kept)
          (List.length p.Pipeline.mutants);
        List.iter
          (fun (op, n) -> Printf.printf "  %-4s %d discarded\n" (Operator.name op) n)
          t.Analysis.Triage.discards_by_op;
        let equivalent_idx =
          List.concat
            (List.mapi
               (fun i (_, v) ->
                 match v with Analysis.Triage.Stillborn -> [ i ] | _ -> [])
               t.Analysis.Triage.verdicts)
        in
        (t.Analysis.Triage.kept, equivalent_idx)
      end
    in
    let prng = Prng.create seed in
    let sample =
      if rate >= 1.0 then population
      else Strategy.sample prng Strategy.Random_uniform population ~rate
    in
    let config = { Vectorgen.default_config with Vectorgen.seed } in
    let outcome = Vectorgen.generate ~config d sample in
    Printf.printf "%s: %d mutants targeted, %d sequences / %d vectors generated\n"
      e.Registry.name (List.length sample)
      (List.length outcome.Vectorgen.test_set)
      outcome.Vectorgen.total_vectors;
    Printf.printf "killed %d, equivalent %d, unknown %d\n"
      (List.length outcome.Vectorgen.killed)
      (List.length outcome.Vectorgen.equivalent)
      (List.length outcome.Vectorgen.unknown);
    let ms =
      Score.of_test_set d p.Pipeline.mutants ~equivalent:equivalent_idx
        outcome.Vectorgen.test_set
    in
    Printf.printf "%s (over the full population, E %s)\n" (Score.to_string ms)
      (if triage then "from static triage" else "not classified")
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate mutation-adequate validation data for a circuit.")
    Term.(const run $ obs_term $ circuit_pos $ rate $ triage $ seed_flag)

(* ------------------------------------------------------------------ *)
(* faultsim                                                           *)
(* ------------------------------------------------------------------ *)

let faultsim_cmd =
  let length =
    Arg.(value & opt int 256
         & info [ "vectors"; "n" ] ~docv:"N" ~doc:"Number of pseudo-random vectors.")
  in
  let lfsr = Arg.(value & flag & info [ "lfsr" ] ~doc:"Use an LFSR instead of uniform codes.") in
  let run obs (e : Registry.entry) length lfsr seed =
    (* Body shared with the service daemon (Mutsamp_serve.Jobs), so the
       two outputs are bit-identical by construction. *)
    with_obs obs ~command:"faultsim" ~circuits:[ e.Registry.name ] ~seed @@ fun ctx ->
    print_string
      (Sjobs.faultsim ~ctx ~circuit:e.Registry.name ~vectors:length ~lfsr ~seed)
  in
  Cmd.v
    (Cmd.info "faultsim" ~doc:"Stuck-at fault simulation with pseudo-random vectors.")
    Term.(const run $ obs_term $ circuit_pos $ length $ lfsr $ seed_flag)

(* ------------------------------------------------------------------ *)
(* atpg                                                               *)
(* ------------------------------------------------------------------ *)

let atpg_cmd =
  let generator =
    Arg.(value & opt (enum [ ("podem", "podem"); ("sat", "sat") ]) "podem"
         & info [ "generator" ] ~docv:"GEN"
             ~doc:"Deterministic test generator: podem or sat. (Distinct from \
                   the global --engine, which picks the fault-simulation \
                   backend.)")
  in
  let run obs (e : Registry.entry) generator seed =
    (* Shared with the daemon — see faultsim_cmd. *)
    with_obs obs ~command:"atpg" ~circuits:[ e.Registry.name ] ~seed @@ fun ctx ->
    print_string (Sjobs.atpg ~ctx ~circuit:e.Registry.name ~generator ~seed)
  in
  Cmd.v
    (Cmd.info "atpg" ~doc:"Random + deterministic test generation to full coverage.")
    Term.(const run $ obs_term $ circuit_pos $ generator $ seed_flag)

(* ------------------------------------------------------------------ *)
(* dot                                                                *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run obs (e : Registry.entry) output =
    with_obs obs ~command:"dot" ~circuits:[ e.Registry.name ] @@ fun _ctx ->
    let nl = Mutsamp_synth.Flow.synthesize (design_of e) in
    match output with
    | Some path -> Dot.write_file path nl
    | None -> print_string (Dot.of_netlist nl)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export the synthesised netlist as Graphviz.")
    Term.(const run $ obs_term $ circuit_pos $ output)

(* ------------------------------------------------------------------ *)
(* export / import (.bench)                                           *)
(* ------------------------------------------------------------------ *)

let export_cmd =
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run obs (e : Registry.entry) output =
    with_obs obs ~command:"export" ~circuits:[ e.Registry.name ] @@ fun _ctx ->
    let nl = Mutsamp_synth.Flow.synthesize (design_of e) in
    match output with
    | Some path -> Mutsamp_netlist.Benchfmt.write_file path nl
    | None -> print_string (Mutsamp_netlist.Benchfmt.to_string nl)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the synthesised netlist in ISCAS .bench format.")
    Term.(const run $ obs_term $ circuit_pos $ output)

let import_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let vectors =
    Arg.(value & opt int 0
         & info [ "faultsim" ] ~docv:"N"
             ~doc:"Also fault-simulate N pseudo-random vectors.")
  in
  let run obs path vectors seed =
    with_obs obs ~command:"import" ~seed @@ fun ctx ->
    let nl =
      Trace.with_span "parse" ~attrs:[ ("file", path) ] (fun () ->
          match Mutsamp_netlist.Benchfmt.read_file_result ~name:path path with
          | Ok nl -> nl
          | Error e -> raise (Rerror.E e))
    in
    Printf.printf "%s: %s\n" path (Stats.to_string (Stats.compute nl));
    if vectors > 0 then begin
      let faults = (Collapse.run nl).Collapse.representatives in
      let bits = Array.length nl.Netlist.input_nets in
      let patterns = Prpg.uniform_sequence (Prng.create seed) ~bits ~length:vectors in
      let r =
        Trace.with_span "fsim" @@ fun () ->
        if Netlist.num_dffs nl = 0 then
          (* Cone-keyed path: with --store, unchanged output cones of an
             edited netlist replay from cache (see docs/STORE.md). *)
          Pipeline.fault_simulate_patterns ~ctx nl ~faults ~patterns
        else
          let ctx =
            { ctx with
              Ctx.progress =
                Some (fun ~stage ~done_ ~total -> progress_line stage ~done_ ~total);
            }
          in
          Fsim.run ~ctx nl ~faults ~sequence:patterns
      in
      Printf.printf "%d collapsed faults, %d vectors -> %.2f%% coverage\n" r.Fsim.total
        vectors (Fsim.coverage_percent r)
    end
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Read an ISCAS .bench netlist; print stats, optionally fault-simulate.")
    Term.(const run $ obs_term $ file $ vectors $ seed_flag)

(* ------------------------------------------------------------------ *)
(* diagnose                                                           *)
(* ------------------------------------------------------------------ *)

let diagnose_cmd =
  let fault_index =
    Arg.(value & opt (some int) None
         & info [ "inject" ] ~docv:"K"
             ~doc:"Index of the fault to inject as the hidden defect (default: random).")
  in
  let vectors =
    Arg.(value & opt int 16 & info [ "vectors"; "n" ] ~docv:"N" ~doc:"Test patterns applied.")
  in
  let run obs (e : Registry.entry) fault_index vectors seed =
    with_obs obs ~command:"diagnose" ~circuits:[ e.Registry.name ] ~seed @@ fun _ctx ->
    let p = Pipeline.prepare (design_of e) in
    if p.Pipeline.sequential then begin
      prerr_endline "diagnose: combinational circuits only (try c17/c432/c499)";
      exit 1
    end;
    let nl = p.Pipeline.netlist in
    let faults = Array.of_list p.Pipeline.faults in
    let prng = Prng.create seed in
    let injected =
      match fault_index with
      | Some k when k >= 0 && k < Array.length faults -> faults.(k)
      | Some _ -> prerr_endline "diagnose: fault index out of range"; exit 1
      | None -> faults.(Prng.int prng (Array.length faults))
    in
    let bits = Array.length nl.Netlist.input_nets in
    let random_patterns = Prpg.uniform_sequence prng ~bits ~length:(max 0 (vectors - 1)) in
    (* Make sure at least one pattern excites the defect, else every
       quiet fault would "explain" the observations. *)
    let patterns =
      match Mutsamp_atpg.Podem.find_test ~budget:Mutsamp_robust.Budget.unlimited nl injected with
      | Ok (Some p, _) -> Array.append [| p |] random_patterns
      | Ok (None, _) | Error _ -> random_patterns
    in
    let observations =
      Array.to_list
        (Array.map
           (fun pat ->
             {
               Mutsamp_fault.Diagnose.pattern = pat;
               response = Mutsamp_fault.Diagnose.simulate_response nl (Some injected) pat;
             })
           patterns)
    in
    let suspects =
      Mutsamp_fault.Diagnose.perfect_matches nl
        ~candidates:(Array.to_list faults) ~observations
    in
    Printf.printf "injected defect: %s\n" (Mutsamp_fault.Fault.to_string injected);
    Printf.printf "%d patterns observed; %d candidate(s) explain everything:\n"
      vectors (List.length suspects);
    List.iter
      (fun f -> Printf.printf "  %s\n" (Mutsamp_fault.Fault.to_string f))
      suspects;
    if not (List.exists (Mutsamp_fault.Fault.equal injected) suspects) then begin
      prerr_endline "BUG: injected fault not among suspects";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Inject a hidden stuck-at defect and locate it from observed responses.")
    Term.(const run $ obs_term $ circuit_pos $ fault_index $ vectors $ seed_flag)

(* ------------------------------------------------------------------ *)
(* seqatpg / bist / sync                                              *)
(* ------------------------------------------------------------------ *)

let seqatpg_cmd =
  let max_frames =
    Arg.(value & opt int 10 & info [ "frames" ] ~docv:"K" ~doc:"Frame budget.")
  in
  let run obs (e : Registry.entry) max_frames =
    with_obs obs ~command:"seqatpg" ~circuits:[ e.Registry.name ] @@ fun _ctx ->
    let p = Pipeline.prepare (design_of e) in
    let nl = p.Pipeline.netlist in
    let (sequences, undetected), elapsed =
      Trace.with_span_timed "seqatpg" (fun () ->
          Mutsamp_atpg.Seqatpg.generate_set ~max_frames nl ~faults:p.Pipeline.faults)
    in
    Printf.printf
      "%s: %d faults -> %d functional sequences (%d cycles total), %d without a test within %d frames (%.2fs)\n"
      e.Registry.name
      (List.length p.Pipeline.faults)
      (List.length sequences)
      (List.fold_left (fun acc s -> acc + Array.length s) 0 sequences)
      (List.length undetected) max_frames elapsed
  in
  Cmd.v
    (Cmd.info "seqatpg"
       ~doc:"Generate functional test sequences by time-frame expansion.")
    Term.(const run $ obs_term $ circuit_pos $ max_frames)

let bist_cmd =
  let length =
    Arg.(value & opt int 256 & info [ "vectors"; "n" ] ~docv:"N" ~doc:"LFSR patterns.")
  in
  let run obs (e : Registry.entry) length seed =
    with_obs obs ~command:"bist" ~circuits:[ e.Registry.name ] ~seed @@ fun _ctx ->
    let p = Pipeline.prepare (design_of e) in
    let nl =
      if p.Pipeline.sequential then Scan.full_scan p.Pipeline.netlist
      else p.Pipeline.netlist
    in
    let faults = (Collapse.run nl).Collapse.representatives in
    let r = Trace.with_span "bist" (fun () -> Mutsamp_atpg.Bist.run nl ~faults ~seed ~length) in
    Printf.printf
      "%s%s: signature %#x | %d/%d detected by signature, %d by comparison, %d aliased\n"
      e.Registry.name
      (if p.Pipeline.sequential then " (full-scan)" else "")
      r.Mutsamp_atpg.Bist.good_signature r.Mutsamp_atpg.Bist.signature_detected
      r.Mutsamp_atpg.Bist.total_faults r.Mutsamp_atpg.Bist.comparison_detected
      r.Mutsamp_atpg.Bist.aliased
  in
  Cmd.v
    (Cmd.info "bist" ~doc:"Emulate an LFSR+MISR self-test session.")
    Term.(const run $ obs_term $ circuit_pos $ length $ seed_flag)

let wave_cmd =
  let length =
    Arg.(value & opt int 32 & info [ "vectors"; "n" ] ~docv:"N" ~doc:"Cycles recorded.")
  in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"VCD file to write.")
  in
  let run obs (e : Registry.entry) length output seed =
    with_obs obs ~command:"wave" ~circuits:[ e.Registry.name ] ~seed @@ fun _ctx ->
    let nl = Mutsamp_synth.Flow.synthesize (design_of e) in
    let sim = Mutsamp_netlist.Bitsim.create nl in
    Mutsamp_netlist.Bitsim.reset sim;
    let recorder = Mutsamp_netlist.Vcd.create nl ~timescale:"1ns" in
    let bits = Array.length nl.Netlist.input_nets in
    let prng = Prng.create seed in
    for _ = 1 to length do
      let words =
        Array.init bits (fun _ ->
            if Prng.bool prng then Mutsamp_netlist.Bitsim.all_ones else 0)
      in
      ignore (Mutsamp_netlist.Bitsim.step sim words);
      Mutsamp_netlist.Vcd.sample recorder sim
    done;
    Mutsamp_netlist.Vcd.write_file output recorder;
    Printf.printf "%s: %d cycles of random stimulus dumped to %s\n" e.Registry.name
      length output
  in
  Cmd.v
    (Cmd.info "wave" ~doc:"Dump a random-stimulus run as a VCD waveform.")
    Term.(const run $ obs_term $ circuit_pos $ length $ output $ seed_flag)

let sync_cmd =
  let length =
    Arg.(value & opt int 64 & info [ "vectors"; "n" ] ~docv:"N" ~doc:"Sequence length tried.")
  in
  let run obs (e : Registry.entry) length seed =
    with_obs obs ~command:"sync" ~circuits:[ e.Registry.name ] ~seed @@ fun _ctx ->
    let p = Pipeline.prepare (design_of e) in
    let nl = p.Pipeline.netlist in
    let bits = Array.length nl.Netlist.input_nets in
    let sequence =
      Array.map Mutsamp_fault.Pattern.to_code
        (Prpg.uniform_sequence (Prng.create seed) ~bits ~length)
    in
    match Mutsamp_netlist.Xsim.synchronizing_length nl ~sequence with
    | Some n ->
      Printf.printf "%s: all %d flip-flops known after %d cycles from the all-X state\n"
        e.Registry.name (Netlist.num_dffs nl) n
    | None ->
      Printf.printf
        "%s: %d-cycle random sequence does not synchronise the machine (reset still required)\n"
        e.Registry.name length
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Three-valued initialisation analysis: can random inputs synchronise the state?")
    Term.(const run $ obs_term $ circuit_pos $ length $ seed_flag)

(* ------------------------------------------------------------------ *)
(* table1 / table2 / e3                                               *)
(* ------------------------------------------------------------------ *)

let circuits_opt =
  Arg.(value & opt_all string []
       & info [ "circuit"; "c" ] ~docv:"NAME"
           ~doc:"Circuit to include (repeatable; default: the paper's four).")

let circuits_pos =
  Arg.(value & pos_all string [] & info [] ~docv:"CIRCUIT")

(* Circuits can be named positionally or with --circuit; both combine. *)
let circuit_names names_opt names_pos =
  match names_opt @ names_pos with
  | [] -> List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.paper_benchmarks
  | names -> names

(* Validate names up front with the historical CLI error path (exit 1);
   the shared job bodies raise typed Protocol errors instead. *)
let check_known names =
  List.iter
    (fun n ->
      if Registry.find n = None then begin
        prerr_endline ("unknown circuit " ^ n);
        exit 1
      end)
    names

let resolve_circuits names =
  let entries =
    List.map
      (fun n ->
        match Registry.find n with
        | Some e -> e
        | None -> prerr_endline ("unknown circuit " ^ n); exit 1)
      names
  in
  List.map
    (fun (e : Registry.entry) ->
      (e.Registry.name, Pipeline.prepare (design_of e)))
    entries

let table1_cmd =
  let run obs names_opt names_pos quick seed =
    let config = config_of ~quick ~seed in
    let names = circuit_names names_opt names_pos in
    check_known names;
    (* Shared with the daemon — see faultsim_cmd. *)
    with_obs obs ~command:"table1" ~circuits:names ~config:(Config.to_json config)
      ~seed
    @@ fun ctx -> print_string (Sjobs.table1 ~ctx ~circuits:names ~quick ~seed)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce the paper's Table 1 (operator efficiency).")
    Term.(const run $ obs_term $ circuits_opt $ circuits_pos $ quick_flag $ seed_flag)

let table2_cmd =
  let reps =
    Arg.(value & opt int 5 & info [ "repetitions"; "r" ] ~docv:"N"
           ~doc:"Independent repetitions to average.")
  in
  let run obs names_opt names_pos quick seed reps =
    let config = config_of ~quick ~seed in
    let names = circuit_names names_opt names_pos in
    check_known names;
    (* Shared with the daemon — see faultsim_cmd. *)
    with_obs obs ~command:"table2" ~circuits:names ~config:(Config.to_json config)
      ~seed
    @@ fun ctx ->
    print_string
      (Sjobs.table2
         ~equiv_progress:(fun ~name ~done_ ~total ->
           progress_line ("equivalence " ^ name) ~done_ ~total)
         ~ctx ~circuits:names ~quick ~seed ~repetitions:reps ())
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce the paper's Table 2 (sampling strategies).")
    Term.(const run $ obs_term $ circuits_opt $ circuits_pos $ quick_flag $ seed_flag
          $ reps)

let e3_cmd =
  let run obs names_opt names_pos quick seed =
    let config = config_of ~quick ~seed in
    let names = circuit_names names_opt names_pos in
    with_obs obs ~command:"e3" ~circuits:names ~config:(Config.to_json config)
      ~seed
    @@ fun ctx ->
    List.iter
      (fun (name, p) ->
        let sample =
          Strategy.sample (Prng.create (seed + 77)) Strategy.Random_uniform
            p.Pipeline.mutants ~rate:config.Config.sample_rate
        in
        let outcome =
          Vectorgen.generate
            ~config:{ config.Config.vector with Vectorgen.seed = seed + 78 }
            p.Pipeline.design sample
        in
        let rows =
          Experiments.atpg_effort ~config ~ctx p ~name
            ~mutation_sequences:outcome.Vectorgen.test_set
        in
        print_endline (Report.atpg_effort ~circuit:name rows))
      (resolve_circuits names)
  in
  Cmd.v
    (Cmd.info "e3" ~doc:"ATPG-effort experiment (validation-data reuse).")
    Term.(const run $ obs_term $ circuits_opt $ circuits_pos $ quick_flag $ seed_flag)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

let lint_cmd =
  let format =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let waive =
    Arg.(value & opt_all string []
         & info [ "waive" ] ~docv:"RULEID[:LOC]"
             ~doc:"Suppress a finding: RULEID:LOC waives one location, bare \
                   RULEID waives the rule everywhere. Repeatable.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit nonzero on warnings too, not just errors.")
  in
  let no_observability =
    Arg.(value & flag
         & info [ "no-observability" ]
             ~doc:"Skip the quadratic blocked-net (NL004) netlist pass.")
  in
  let triage =
    Arg.(value & flag
         & info [ "triage" ]
             ~doc:"Also triage the mutant population (MUT001/MUT002 findings). \
                   Generates every mutant, so expensive on large circuits.")
  in
  let run obs names_opt names_pos format waive strict no_observability triage =
    (* Default: the whole registry — lint is a tree-wide health check. *)
    let names =
      match names_opt @ names_pos with [] -> Registry.names () | ns -> ns
    in
    let waivers =
      List.map
        (fun s ->
          match Analysis.Engine.waiver_of_string s with
          | Ok w -> w
          | Error msg ->
            Printf.eprintf "mutsamp: bad --waive: %s\n" msg;
            exit 64)
        waive
    in
    let opts =
      {
        Analysis.Engine.waivers;
        strict;
        check_observability = not no_observability;
      }
    in
    let all_diags = ref [] in
    let errors =
      with_obs obs ~command:"lint" ~circuits:names
        ~sections:(fun () ->
          [ ("analysis", Analysis.Engine.report_section !all_diags) ])
      @@ fun _ctx ->
      List.iter
        (fun name ->
          (match
             Budget.check_deadline (Budget.ambient ()) ~stage:Rerror.Pipeline
           with
           | Ok () -> ()
           | Error e -> raise (Rerror.E e));
          let e =
            match Registry.find name with
            | Some e -> e
            | None ->
              Printf.eprintf "mutsamp: unknown circuit %S\n" name;
              exit 64
          in
          Trace.with_span "lint" ~attrs:[ ("circuit", name) ] @@ fun () ->
          let d = design_of e in
          let dd = Analysis.Engine.lint_design opts ~circuit:name d in
          let nl =
            Trace.with_span "synth" (fun () -> Mutsamp_synth.Flow.synthesize d)
          in
          let dn = Analysis.Engine.lint_netlist opts ~circuit:name nl in
          let dm =
            if not triage then []
            else
              let t =
                Trace.with_span "triage" (fun () ->
                    Analysis.Triage.run d (Generate.all d))
              in
              Analysis.Engine.finish opts (Analysis.Triage.diagnostics t ~circuit:name)
          in
          all_diags := !all_diags @ dd @ dn @ dm)
        names;
      let diags = !all_diags in
      (match format with
       | `Text ->
         List.iter (fun d -> print_endline (Analysis.Diag.to_string d)) diags;
         let s = Analysis.Engine.summary diags in
         let get k = Option.value ~default:0 (List.assoc_opt k s) in
         Printf.printf
           "%d circuit(s): %d finding(s) — %d error(s), %d warning(s), %d info(s), %d waived\n"
           (List.length names) (get "findings") (get "errors") (get "warnings")
           (get "infos") (get "waived")
       | `Json ->
         print_endline
           (Json.to_string (Analysis.Engine.report_section diags)));
      Analysis.Engine.error_count ~strict diags
    in
    if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis: lint behavioural designs and synthesised \
             netlists (and optionally the mutant population).")
    Term.(const run $ obs_term $ circuits_opt $ circuits_pos $ format $ waive
          $ strict $ no_observability $ triage)

(* ------------------------------------------------------------------ *)
(* report-validate                                                    *)
(* ------------------------------------------------------------------ *)

let report_validate_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run path =
    match Runreport.validate_file path with
    | Ok () ->
      Printf.printf "%s: valid run report (schema %d)\n" path
        Runreport.schema_version
    | Error msg ->
      Printf.eprintf "%s: invalid run report: %s\n" path msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "report-validate"
       ~doc:"Check that FILE is a well-formed mutsamp run report.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* benchdiff                                                          *)
(* ------------------------------------------------------------------ *)

let benchdiff_cmd =
  (* Plain string positionals, not [Arg.file]: a missing report must
     surface as the typed I/O error (exit code 74), not a cmdliner
     usage error. *)
  let old_file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD")
  in
  let new_file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW")
  in
  let threshold =
    Arg.(value & opt float 20.0
         & info [ "threshold" ] ~docv:"PCT"
             ~doc:"Regression threshold in percent; a key regresses when it \
                   moves past it in the bad direction.")
  in
  let groups =
    let all = String.concat ", " Benchdiff.default_groups in
    Arg.(value & opt (list string) Benchdiff.default_groups
         & info [ "groups" ] ~docv:"G,..."
             ~doc:(Printf.sprintf
                     "Comparison groups to run (default: %s). \"throughput\" \
                      reads fsim_throughput_pairs_per_sec (higher is better), \
                      \"micro\" reads micro_ns_per_run (lower is better), \
                      \"wall\" compares summed root-span durations."
                     all))
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Also fail (exit 1) when a requested group has no keys in \
                   either report, or when keys are present in only one — \
                   without it a report pair that silently lost its bench \
                   section reads as \"no regressions\".")
  in
  let run old_path new_path threshold groups strict =
    let load path =
      (* Read the file ourselves: [Json.parse_file] folds I/O failures
         into parse errors, and a missing or unreadable report is an
         I/O error (exit 74), not a malformed one (exit 65). *)
      let contents =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with Sys_error msg ->
          let e = Rerror.Io_error msg in
          Printf.eprintf "mutsamp: %s\n" (Rerror.to_string e);
          exit (Rerror.exit_code e)
      in
      match Json.parse contents with
      | Error msg ->
        Printf.eprintf "mutsamp: %s: %s\n" path msg;
        exit 65
      | Ok json ->
        (match Runreport.validate json with
         | Ok () -> json
         | Error msg ->
           Printf.eprintf "mutsamp: %s: invalid run report: %s\n" path msg;
           exit 65)
    in
    let old_ = load old_path and new_ = load new_path in
    let result =
      Benchdiff.compare_reports ~threshold_pct:threshold ~groups ~old_ ~new_ ()
    in
    Benchdiff.print stdout result;
    let regressions = Benchdiff.regressions result in
    (match result.Benchdiff.empty_groups with
     | [] -> ()
     | gs ->
       Printf.printf "%d group(s) with no keys in either report: %s\n"
         (List.length gs) (String.concat ", " gs));
    (match result.Benchdiff.missing with
     | [] -> ()
     | ms ->
       Printf.printf "%d key(s) present in only one report: %s\n"
         (List.length ms)
         (String.concat ", "
            (List.map (fun (g, k) -> Printf.sprintf "%s/%s" g k) ms)));
    if regressions <> [] then begin
      Printf.printf "%d regression(s) beyond %.1f%%\n" (List.length regressions)
        threshold;
      exit 1
    end
    else if
      strict
      && (result.Benchdiff.missing <> [] || result.Benchdiff.empty_groups <> [])
    then begin
      Printf.printf "incomplete comparison under --strict\n";
      exit 1
    end
    else Printf.printf "no regressions beyond %.1f%%\n" threshold
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:"Compare two run reports for performance regressions: exits \
             nonzero when NEW regresses past the threshold relative to OLD \
             (or, under --strict, when the comparison is incomplete).")
    Term.(const run $ old_file $ new_file $ threshold $ groups $ strict)

(* ------------------------------------------------------------------ *)
(* store                                                              *)
(* ------------------------------------------------------------------ *)

let store_cmd =
  let dir_pos = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR") in
  let namespace =
    Arg.(value & opt (some string) None
         & info [ "namespace" ] ~docv:"NS"
             ~doc:"Restrict to one namespace (fsim, fsimcone, vectors, score, \
                   equiv, t1row, atpg).")
  in
  let open_store dir =
    match Store.open_dir dir with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "mutsamp: %s: %s\n" dir (Rerror.to_string e);
      exit (Rerror.exit_code e)
  in
  let stats_cmd =
    let format =
      Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
           & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
    in
    let run dir format =
      let s = Store.stats (open_store dir) in
      match format with
      | `Text ->
        Printf.printf "%s: %d entries, %d bytes, %d stale temp file(s)\n" dir
          s.Store.entries s.Store.bytes s.Store.stale_tmp;
        List.iter
          (fun (ns, n) -> Printf.printf "  %-10s %d\n" ns n)
          s.Store.namespaces
      | `Json -> print_endline (Json.to_string (Store.stats_to_json ~dir s))
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Entry and byte counts per namespace.")
      Term.(const run $ dir_pos $ format)
  in
  let gc_cmd =
    let max_age_days =
      Arg.(value & opt (some float) None
           & info [ "max-age-days" ] ~docv:"DAYS"
               ~doc:"Also remove entries not rewritten for DAYS days.")
    in
    let run dir namespace max_age_days =
      let t = open_store dir in
      let max_age_s = Option.map (fun d -> d *. 86400.) max_age_days in
      let n = Store.gc t ?namespace ?max_age_s () in
      Printf.printf "%s: removed %d file(s)\n" dir n
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Remove stale temp files left by interrupted writes, plus any \
               entries matching --namespace / --max-age-days.")
      Term.(const run $ dir_pos $ namespace $ max_age_days)
  in
  let invalidate_cmd =
    let field =
      let parse s =
        match String.index_opt s '=' with
        | Some i when i > 0 ->
          Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
        | _ -> Error (`Msg "expected FIELD=VALUE")
      in
      let print fmt (f, v) = Format.fprintf fmt "%s=%s" f v in
      Arg.(value & opt (some (conv (parse, print))) None
           & info [ "key" ] ~docv:"FIELD=VALUE"
               ~doc:"Only entries whose key carries this exact part, e.g. \
                     --key circuit=c432 or --key seed=2005.")
    in
    let cone =
      Arg.(value & opt (some string) None
           & info [ "cone" ] ~docv:"NET"
               ~doc:"Only cone-keyed entries (namespace fsimcone) whose \
                     recorded input cone contains this net — a primary input \
                     or output name, or an internal n<ID> label from the \
                     exported .bench. Entries for untouched cones survive.")
    in
    let run dir namespace field cone =
      let t = open_store dir in
      let n = Store.invalidate t ?namespace ?field ?cone () in
      Printf.printf "%s: invalidated %d entr%s\n" dir n (if n = 1 then "y" else "ies")
    in
    Cmd.v
      (Cmd.info "invalidate"
         ~doc:"Delete store entries — everything by default, or the subset \
               matching --namespace / --key / --cone. The next run recomputes \
               them.")
      Term.(const run $ dir_pos $ namespace $ field $ cone)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:"Inspect and maintain a campaign store (see docs/STORE.md).")
    [ stats_cmd; gc_cmd; invalidate_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / client                                                     *)
(* ------------------------------------------------------------------ *)

let socket_flag =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_flag =
  Arg.(value & opt (some string) None
       & info [ "tcp" ] ~docv:"ADDR:PORT"
           ~doc:"TCP endpoint with a numeric address, e.g. 127.0.0.1:7433.")

let listen_of ~what socket tcp =
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "mutsamp %s: %s\n" what m;
        exit 64)
      fmt
  in
  match (socket, tcp) with
  | Some _, Some _ -> fail "choose one of --socket and --tcp"
  | Some path, None -> Sserver.Unix_path path
  | None, Some spec -> (
    match String.rindex_opt spec ':' with
    | None -> fail "bad --tcp %S (expected ADDR:PORT)" spec
    | Some i -> (
      let addr = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Sserver.Tcp (addr, p)
      | _ -> fail "bad --tcp port %S" port))
  | None, None -> fail "one of --socket PATH or --tcp ADDR:PORT is required"

let serve_cmd =
  let queue_depth =
    Arg.(value & opt int 16
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Bounded job-queue capacity; requests beyond it get an \
                   immediate typed overloaded reply instead of queueing.")
  in
  let request_deadline_ms =
    Arg.(value & opt int 0
         & info [ "request-deadline-ms" ] ~docv:"MS"
             ~doc:"Server-side wall-clock cap per request (0 = none); a \
                   client deadline_ms below it wins.")
  in
  let idle_timeout_ms =
    Arg.(value & opt int 30_000
         & info [ "idle-timeout-ms" ] ~docv:"MS"
             ~doc:"Close connections idle for this long (0 = never).")
  in
  let drain_grace_ms =
    Arg.(value & opt int 2_000
         & info [ "drain-grace-ms" ] ~docv:"MS"
             ~doc:"On SIGTERM/SIGINT, budget-cancel in-flight work still \
                   running after this grace period.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains for sharded stages (shared across \
                   requests); 0 means one per available core.")
  in
  let store =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Campaign store directory shared by every request (created \
                   if missing). See docs/STORE.md.")
  in
  let chaos =
    Arg.(value & opt_all string []
         & info [ "chaos" ] ~docv:"SPEC"
             ~doc:"Arm fault injection for every request (test hook): \
                   POINT:ACTION[@AFTER]. Repeatable.")
  in
  let chaos_seed =
    Arg.(value & opt int 2005
         & info [ "chaos-seed" ] ~docv:"N"
             ~doc:"Seed for probabilistic chaos armings.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "v" ] ~doc:"Log per-request lines to stderr.")
  in
  let run socket tcp queue_depth request_deadline_ms idle_timeout_ms
      drain_grace_ms jobs store_dir chaos chaos_seed verbose =
    let listen = listen_of ~what:"serve" socket tcp in
    (* Reject bad chaos specs at startup, not on the first request. *)
    List.iter
      (fun spec ->
        match Chaos.parse_spec spec with
        | Ok () -> ()
        | Error msg ->
          Printf.eprintf "mutsamp serve: bad --chaos spec: %s\n" msg;
          exit 64)
      chaos;
    Chaos.disarm_all ();
    let store =
      match store_dir with
      | None -> None
      | Some dir -> (
        match Store.open_dir dir with
        | Ok s ->
          Store.reset_counters ();
          Some s
        | Error e ->
          Printf.eprintf "mutsamp serve: --store %s: %s\n" dir
            (Rerror.to_string e);
          exit (Rerror.exit_code e))
    in
    let log =
      if verbose then Some (fun m -> Printf.eprintf "mutsamp serve: %s\n%!" m)
      else None
    in
    let cfg =
      Sserver.config ~queue_depth ~request_deadline_ms ~idle_timeout_ms
        ~drain_grace_ms ~jobs ?store ~chaos_specs:chaos ~chaos_seed ?log listen
    in
    match Sserver.create cfg with
    | Error e ->
      Printf.eprintf "mutsamp serve: %s\n" (Rerror.to_string e);
      exit (Rerror.exit_code e)
    | Ok t ->
      (* Handlers only flip an atomic; the accept loop notices on its
         next select tick and performs the graceful drain itself. *)
      let drain _ = Sserver.initiate_drain t in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
      Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Printf.eprintf "mutsamp serve: listening on %s\n%!"
        (match listen with
         | Sserver.Unix_path p -> p
         | Sserver.Tcp (a, p) -> Printf.sprintf "%s:%d" a p);
      Sserver.run t
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the fault-isolated campaign service daemon: \
             newline-delimited JSON requests over a Unix or TCP socket, \
             bounded queueing with load shedding, per-request budgets and \
             typed error replies, graceful drain on SIGTERM/SIGINT. See \
             docs/SERVICE.md.")
    Term.(const run $ socket_flag $ tcp_flag $ queue_depth
          $ request_deadline_ms $ idle_timeout_ms $ drain_grace_ms $ jobs
          $ store $ chaos $ chaos_seed $ verbose)

let client_cmd =
  let request_pos =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"REQUEST"
             ~doc:"Request JSON line (sent verbatim). Omitted: read request \
                   lines from stdin until EOF.")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~docv:"MS"
             ~doc:"Give up waiting for a reply after MS (exit 75).")
  in
  let connect_retries =
    Arg.(value & opt int 5
         & info [ "connect-retries" ] ~docv:"N"
             ~doc:"Connection attempts with exponential backoff (daemon \
                   startup and client launch race in scripts).")
  in
  let output_only =
    Arg.(value & flag
         & info [ "output-only"; "o" ]
             ~doc:"Print only the ok-reply output text (the batch CLI's \
                   stdout bytes) instead of the raw reply line.")
  in
  let report_out =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Write the last ok reply's embedded run report to FILE.")
  in
  let run socket tcp request timeout_ms connect_retries output_only report_out =
    let listen = listen_of ~what:"client" socket tcp in
    let policy =
      Retry.policy ~max_attempts:connect_retries ~base_delay_ms:50.
        ~max_delay_ms:1000. ()
    in
    match Sclient.connect ~policy listen with
    | Error e ->
      Printf.eprintf "mutsamp client: %s\n" (Rerror.to_string e);
      exit (Rerror.exit_code e)
    | Ok conn ->
      let lines =
        match request with
        | Some r -> [ r ]
        | None ->
          let rec read acc =
            match input_line stdin with
            | line -> read (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          read []
      in
      let last_report = ref None in
      let code =
        List.fold_left
          (fun acc line ->
            match Sclient.request_line ?timeout_ms conn line with
            | Error e ->
              Printf.eprintf "mutsamp client: %s\n" (Rerror.to_string e);
              max acc (Rerror.exit_code e)
            | Ok reply_line -> (
              match Sprotocol.parse_reply reply_line with
              | Ok (Sprotocol.Ok_reply { output; report; _ }) ->
                if output_only then print_string output
                else print_endline reply_line;
                (match report with
                 | Some r -> last_report := Some r
                 | None -> ());
                acc
              | Ok (Sprotocol.Error_reply { message; exit_code; _ }) ->
                Printf.eprintf "mutsamp client: %s\n" message;
                if not output_only then print_endline reply_line;
                max acc exit_code
              | Error e ->
                Printf.eprintf "mutsamp client: %s\n" (Rerror.to_string e);
                max acc (Rerror.exit_code e)))
          0 lines
      in
      Sclient.close conn;
      (match (report_out, !last_report) with
       | Some path, Some r -> (
         match Atomicio.write_file path (Json.to_string r) with
         | Ok () -> ()
         | Error e ->
           Printf.eprintf "mutsamp client: cannot write report: %s\n"
             (Rerror.to_string e);
           exit (Rerror.exit_code e))
       | Some path, None ->
         Printf.eprintf "mutsamp client: no report received for --report %s\n"
           path
       | None, _ -> ());
      if code > 0 then exit code
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send requests to a running mutsamp serve daemon and print the \
             replies; error replies map to the daemon's typed exit codes.")
    Term.(const run $ socket_flag $ tcp_flag $ request_pos $ timeout_ms
          $ connect_retries $ output_only $ report_out)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "mutation sampling for structural test data generation" in
  let info = Cmd.info "mutsamp" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            list_cmd; show_cmd; mutants_cmd; generate_cmd; faultsim_cmd;
            atpg_cmd; dot_cmd; export_cmd; import_cmd; diagnose_cmd;
            seqatpg_cmd; bist_cmd; sync_cmd; wave_cmd;
            lint_cmd; table1_cmd; table2_cmd; e3_cmd; report_validate_cmd;
            benchdiff_cmd; store_cmd; serve_cmd; client_cmd;
          ]))
