(* Quickstart: the whole flow on one small design, end to end.

     dune exec examples/quickstart.exe

   1. parse + elaborate a behavioural design,
   2. simulate it,
   3. enumerate its mutants,
   4. generate mutation-adequate validation data,
   5. synthesise to gates and fault-simulate the same data,
   6. compare against a pseudo-random baseline with the NLFCE metric. *)

module Bitvec = Mutsamp_util.Bitvec
module Prng = Mutsamp_util.Prng
module Parser = Mutsamp_hdl.Parser
module Check = Mutsamp_hdl.Check
module Sim = Mutsamp_hdl.Sim
module Generate = Mutsamp_mutation.Generate
module Operator = Mutsamp_mutation.Operator
module Vectorgen = Mutsamp_validation.Vectorgen
module Score = Mutsamp_validation.Score
module Fsim = Mutsamp_fault.Fsim
module Nlfce = Mutsamp_sampling.Nlfce
module Prpg = Mutsamp_atpg.Prpg
module Netlist = Mutsamp_netlist.Netlist
module Pipeline = Mutsamp_core.Pipeline

let source =
  {|-- A tiny saturating up/down counter.
design satcounter is
  input up : bit;
  input down : bit;
  output level : unsigned(3);
  output at_max : bit;
  reg count : unsigned(3) := 0;
  const MAX : unsigned(3) := 7;
begin
  level := count;
  at_max := count = MAX;
  if up = '1' and down = '0' then
    if count < MAX then
      count := count + 1;
    end if;
  elsif down = '1' and up = '0' then
    if count > 0 then
      count := count - 1;
    end if;
  end if;
end design;|}

let () =
  (* 1. Parse and elaborate. *)
  let design = Check.elaborate (Mutsamp_robust.Error.ok_exn (Parser.design_result source)) in
  Printf.printf "design %s: %d statements\n" design.Mutsamp_hdl.Ast.name
    (Mutsamp_hdl.Ast.count_statements design);

  (* 2. Simulate three cycles of counting up. *)
  let up = [ ("up", Bitvec.make ~width:1 1); ("down", Bitvec.make ~width:1 0) ] in
  let outs = Sim.run design [ up; up; up ] in
  List.iteri
    (fun cycle obs ->
      Printf.printf "  cycle %d: level=%d\n" cycle
        (Bitvec.to_int (List.assoc "level" obs)))
    outs;

  (* 3. Mutants. *)
  let mutants = Generate.all design in
  Printf.printf "mutants: %d total\n" (List.length mutants);
  List.iter
    (fun (op, n) -> if n > 0 then Printf.printf "  %-4s %d\n" (Operator.name op) n)
    (Generate.count_by_operator mutants);

  (* 4. Validation data. *)
  let outcome = Vectorgen.generate design mutants in
  let ms =
    Score.of_test_set design mutants ~equivalent:outcome.Vectorgen.equivalent
      outcome.Vectorgen.test_set
  in
  Printf.printf "validation data: %d vectors in %d sequences; %s\n"
    outcome.Vectorgen.total_vectors
    (List.length outcome.Vectorgen.test_set)
    (Score.to_string ms);

  (* 5. Synthesise and fault-simulate the same data at gate level. *)
  let pipeline = Pipeline.prepare design in
  Printf.printf "netlist: %d gates, %d collapsed stuck-at faults\n"
    (Netlist.num_logic_gates pipeline.Pipeline.netlist)
    (List.length pipeline.Pipeline.faults);
  let mutation_codes = Pipeline.patterns_of_sequences pipeline outcome.Vectorgen.test_set in
  let mutation_report = Pipeline.fault_simulate pipeline mutation_codes in
  Printf.printf "mutation data -> %.2f%% stuck-at coverage with %d vectors\n"
    (Fsim.coverage_percent mutation_report)
    (Array.length mutation_codes);

  (* 6. Pseudo-random baseline and the NLFCE comparison. *)
  let bits = Array.length pipeline.Pipeline.netlist.Netlist.input_nets in
  let random_codes =
    Prpg.uniform_sequence (Prng.create 42) ~bits
      ~length:(max 256 (20 * Array.length mutation_codes))
  in
  let random_report = Pipeline.fault_simulate pipeline random_codes in
  let metric = Nlfce.of_reports ~mutation:mutation_report ~random:random_report () in
  Printf.printf "NLFCE comparison: %s\n" (Nlfce.to_string metric)
