(* Functional test-sequence generation for sequential circuits:

     dune exec examples/sequential_atpg.exe [circuit] [max_frames]

   Full-scan ATPG (examples/atpg_flow.exe) assumes test hardware. This
   example instead generates true functional sequences by time-frame
   expansion: the circuit and its faulty twin are unrolled k frames
   from reset, mitered, and handed to the SAT solver; a counterexample
   IS a k-cycle test sequence, and growing k finds the shortest one. *)

module Registry = Mutsamp_circuits.Registry
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Seqatpg = Mutsamp_atpg.Seqatpg
module Netlist = Mutsamp_netlist.Netlist
module Pipeline = Mutsamp_core.Pipeline

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "b02" in
  let max_frames =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 10
  in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s\n" name;
      exit 1
  in
  let p = Pipeline.prepare (entry.Registry.design ()) in
  let nl = p.Pipeline.netlist in
  Printf.printf "%s: %d gates, %d flip-flops, %d collapsed faults\n\n"
    entry.Registry.name
    (Netlist.num_logic_gates nl)
    (Netlist.num_dffs nl)
    (List.length p.Pipeline.faults);

  let t0 = Unix.gettimeofday () in
  let sequences, undetected =
    Seqatpg.generate_set ~max_frames nl ~faults:p.Pipeline.faults
  in
  Printf.printf "generated %d sequences in %.2fs; %d faults have no test within %d frames\n"
    (List.length sequences)
    (Unix.gettimeofday () -. t0)
    (List.length undetected) max_frames;

  (* Length histogram: time-frame expansion returns shortest sequences,
     so this shows the circuit's sequential test depth. *)
  let hist = Hashtbl.create 8 in
  List.iter
    (fun seq ->
      let l = Array.length seq in
      Hashtbl.replace hist l (1 + Option.value ~default:0 (Hashtbl.find_opt hist l)))
    sequences;
  print_endline "sequence-length histogram:";
  List.iter
    (fun (l, n) -> Printf.printf "  %2d cycles: %d sequences\n" l n)
    (List.sort Stdlib.compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []));

  (* Verify: the concatenated campaign detects every claimed fault. *)
  let covered =
    List.filter
      (fun f ->
        List.exists
          (fun seq ->
            (Fsim.run nl ~faults:[ f ] ~sequence:seq).Fsim.detected = 1)
          sequences)
      (List.filter
         (fun f -> not (List.exists (Fault.equal f) undetected))
         p.Pipeline.faults)
  in
  Printf.printf "\nverified by fault simulation: %d faults covered\n"
    (List.length covered)
