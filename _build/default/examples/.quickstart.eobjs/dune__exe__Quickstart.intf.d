examples/quickstart.mli:
