examples/operator_efficiency.mli:
