examples/atpg_flow.ml: Array List Mutsamp_circuits Mutsamp_core Mutsamp_sampling Mutsamp_util Mutsamp_validation Printf Sys
