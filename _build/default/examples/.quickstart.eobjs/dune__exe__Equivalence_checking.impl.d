examples/equivalence_checking.ml: Array Fun List Mutsamp_circuits Mutsamp_core Mutsamp_hdl Mutsamp_mutation Mutsamp_util Printf Sys
