examples/operator_efficiency.ml: Array List Mutsamp_circuits Mutsamp_core Mutsamp_mutation Printf String Sys
