examples/atpg_flow.mli:
