examples/sampling_strategies.mli:
