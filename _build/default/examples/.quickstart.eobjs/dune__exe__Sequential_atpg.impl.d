examples/sequential_atpg.ml: Array Hashtbl List Mutsamp_atpg Mutsamp_circuits Mutsamp_core Mutsamp_fault Mutsamp_netlist Option Printf Stdlib Sys Unix
