examples/sequential_atpg.mli:
