(* Equivalent-mutant identification, two ways:

     dune exec examples/equivalence_checking.exe [circuit]

   Mutation scores divide by M - E, so E (the equivalent mutants) must
   be identified. This example classifies a circuit's surviving mutants
   with the exact engines — SAT miter over the synthesised netlists for
   combinational designs, product-machine BFS for sequential ones — and
   prints each equivalent mutant with its description. *)

module Registry = Mutsamp_circuits.Registry
module Mutant = Mutsamp_mutation.Mutant
module Equivalence = Mutsamp_mutation.Equivalence
module Kill = Mutsamp_mutation.Kill
module Stimuli = Mutsamp_hdl.Stimuli
module Prng = Mutsamp_util.Prng
module Pipeline = Mutsamp_core.Pipeline

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "b02" in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s\n" name;
      exit 1
  in
  let pipeline = Pipeline.prepare (entry.Registry.design ()) in
  let mutants = Array.of_list pipeline.Pipeline.mutants in
  Printf.printf "%s: %d mutants\n" entry.Registry.name (Array.length mutants);

  (* Cheap screen first: most mutants die under a short random burst. *)
  let runner = Kill.make pipeline.Pipeline.design pipeline.Pipeline.mutants in
  let prng = Prng.create 11 in
  let screen =
    List.init 32 (fun _ -> Stimuli.random_sequence prng pipeline.Pipeline.design 16)
  in
  let flags = Kill.killed_set runner screen in
  let survivors =
    List.filter (fun i -> not flags.(i)) (List.init (Array.length mutants) Fun.id)
  in
  Printf.printf "random screen killed %d; %d survivors go to the exact checker\n\n"
    (Array.length mutants - List.length survivors)
    (List.length survivors);

  (* Exact classification of the survivors. *)
  let equivalents = Pipeline.classify_equivalents ~screen:512 ~seed:11 pipeline in
  Printf.printf "%d mutants are provably equivalent:\n" (List.length equivalents);
  List.iter
    (fun i -> Printf.printf "  %s\n" (Mutant.to_string mutants.(i)))
    equivalents;

  (* For a sequential design, show one shortest distinguishing sequence
     for a survivor that is NOT equivalent. *)
  if pipeline.Pipeline.sequential then begin
    let killable =
      List.filter (fun i -> not (List.mem i equivalents)) survivors
    in
    match killable with
    | [] -> print_endline "\n(no non-equivalent survivors to attack)"
    | i :: _ ->
      let m = mutants.(i) in
      (match Equivalence.check pipeline.Pipeline.design m.Mutant.design with
       | Equivalence.Distinguished seq ->
         Printf.printf
           "\nshortest distinguishing sequence for %s: %d cycles\n"
           (Mutant.to_string m) (List.length seq)
       | Equivalence.Equivalent | Equivalence.Unknown -> ())
  end
