(* The paper's Table 1 study on one circuit of your choice:

     dune exec examples/operator_efficiency.exe [circuit] [--all-operators]

   For each mutation operator, validation data is generated from that
   operator's mutants alone and compared against pseudo-random data of
   proportional length on the synthesised netlist. The per-operator
   NLFCE is the quantity the test-oriented sampling strategy uses as
   its weight. *)

module Registry = Mutsamp_circuits.Registry
module Operator = Mutsamp_mutation.Operator
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Report = Mutsamp_core.Report

let () =
  let args = Array.to_list Sys.argv in
  let name =
    match List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) (List.tl args) with
    | n :: _ -> n
    | [] -> "c432"
  in
  let all_ops = List.mem "--all-operators" args in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s (available: %s)\n" name
        (String.concat ", " (Registry.names ()));
      exit 1
  in
  Printf.printf "operator efficiency study on %s (%s)\n\n" entry.Registry.name
    entry.Registry.description;
  let pipeline = Pipeline.prepare (entry.Registry.design ()) in
  let operators = if all_ops then Some Operator.all else None in
  let row =
    Experiments.operator_efficiency_avg ~config:Config.quick ?operators pipeline
      ~name:entry.Registry.name
  in
  print_endline (Report.table1 [ row ]);
  print_endline "";
  let weights = Experiments.weights_of_table1 row in
  print_endline "sampling weights the test-oriented strategy would derive:";
  List.iter (fun (op, w) -> Printf.printf "  %-4s %.2f\n" (Operator.name op) w) weights
