(* The paper's Table 2 study on one circuit:

     dune exec examples/sampling_strategies.exe [circuit] [repetitions]

   Both strategies sample 10% of the mutant population; the classical
   strategy samples uniformly, the paper's samples proportionally to
   per-operator stuck-at efficiency. Each repetition reports the
   mutation score over the FULL population and the NLFCE of the
   resulting validation data. *)

module Registry = Mutsamp_circuits.Registry
module Operator = Mutsamp_mutation.Operator
module Score = Mutsamp_validation.Score
module Nlfce = Mutsamp_sampling.Nlfce
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Report = Mutsamp_core.Report

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c432" in
  let repetitions =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 5
  in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s\n" name;
      exit 1
  in
  Printf.printf "sampling-strategy comparison on %s (%d repetitions)\n\n"
    entry.Registry.name repetitions;
  let pipeline = Pipeline.prepare (entry.Registry.design ()) in
  let config = Config.quick in

  (* Weights from the full-operator efficiency study. *)
  let full =
    Experiments.operator_efficiency_avg ~config ~operators:Operator.all pipeline
      ~name:entry.Registry.name
  in
  let weights = Experiments.weights_of_table1 full in

  (* Exact equivalent-mutant classification so MS has a true E. *)
  let equivalents =
    Pipeline.classify_equivalents ~screen:config.Config.equivalence_screen
      ~seed:config.Config.seed pipeline
  in
  Printf.printf "population: %d mutants, %d proven equivalent\n\n"
    (List.length pipeline.Pipeline.mutants)
    (List.length equivalents);

  let avg =
    Experiments.sampling_comparison_avg ~config ~repetitions pipeline
      ~name:entry.Registry.name ~weights ~equivalents
  in
  print_endline (Report.table2_average [ avg ]);
  print_endline "";
  print_endline "paper's published Table 2 for reference:";
  print_endline (Report.paper_table2 ())
