(* The test-generation flow the paper's proposal plugs into:

     dune exec examples/atpg_flow.exe [circuit]

   Runs the three-phase top-off flow (seed -> pseudo-random ->
   deterministic PODEM) on a circuit, once with no seed and once seeded
   with re-used validation data, and shows the saved ATPG effort —
   the claim of the paper's introduction. Sequential circuits are
   full-scanned first. *)

module Registry = Mutsamp_circuits.Registry
module Strategy = Mutsamp_sampling.Strategy
module Vectorgen = Mutsamp_validation.Vectorgen
module Prng = Mutsamp_util.Prng
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Report = Mutsamp_core.Report

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c432" in
  let entry =
    match Registry.find name with
    | Some e -> e
    | None ->
      Printf.eprintf "unknown circuit %s\n" name;
      exit 1
  in
  let config = Config.quick in
  let pipeline = Pipeline.prepare (entry.Registry.design ()) in
  Printf.printf "ATPG-effort experiment on %s%s\n\n" entry.Registry.name
    (if pipeline.Pipeline.sequential then " (will be full-scanned)" else "");

  (* Validation data from a 10% random sample of the mutants — the
     "free" data a validation flow leaves behind. *)
  let sample =
    Strategy.sample (Prng.create 7) Strategy.Random_uniform pipeline.Pipeline.mutants
      ~rate:0.10
  in
  let outcome =
    Vectorgen.generate
      ~config:{ config.Config.vector with Vectorgen.seed = 8 }
      pipeline.Pipeline.design sample
  in
  Printf.printf "validation seed: %d vectors (from %d sampled mutants)\n\n"
    outcome.Vectorgen.total_vectors (List.length sample);

  let rows =
    Experiments.atpg_effort ~config pipeline ~name:entry.Registry.name
      ~mutation_sequences:outcome.Vectorgen.test_set
  in
  print_endline (Report.atpg_effort ~circuit:entry.Registry.name rows);
  print_endline "";
  print_endline
    "Read: SeedDet faults come free; the mutation-seeded run should need no\n\
     more random patterns and ATPG calls than the unseeded one."
