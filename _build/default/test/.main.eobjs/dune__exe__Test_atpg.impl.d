test/test_atpg.ml: Alcotest Array List Mutsamp_atpg Mutsamp_fault Mutsamp_hdl Mutsamp_netlist Mutsamp_synth Mutsamp_util Printf QCheck QCheck_alcotest String
