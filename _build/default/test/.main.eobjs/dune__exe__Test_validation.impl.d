test/test_validation.ml: Alcotest Array List Mutsamp_hdl Mutsamp_mutation Mutsamp_util Mutsamp_validation
