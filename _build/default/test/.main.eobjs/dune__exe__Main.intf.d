test/main.mli:
