test/test_fault.ml: Alcotest Array Hashtbl List Mutsamp_fault Mutsamp_hdl Mutsamp_netlist Mutsamp_synth Mutsamp_util Option Printf QCheck QCheck_alcotest Stdlib
