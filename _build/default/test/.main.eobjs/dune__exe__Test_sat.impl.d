test/test_sat.ml: Alcotest Array List Mutsamp_hdl Mutsamp_netlist Mutsamp_sat Mutsamp_synth Mutsamp_util Printf QCheck QCheck_alcotest String
