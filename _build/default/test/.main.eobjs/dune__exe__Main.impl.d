test/main.ml: Alcotest Test_atpg Test_circuits Test_core Test_extras Test_fault Test_hdl Test_mutation Test_netlist Test_obs Test_sampling Test_sat Test_synth Test_util Test_validation
