test/test_obs.ml: Alcotest Fun List Mutsamp_circuits Mutsamp_core Mutsamp_fault Mutsamp_obs Option Printf
