test/test_util.ml: Alcotest Array Float Hashtbl Mutsamp_util QCheck QCheck_alcotest Stdlib String
