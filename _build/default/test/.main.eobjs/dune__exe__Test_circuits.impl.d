test/test_circuits.ml: Alcotest Array Hashtbl List Mutsamp_circuits Mutsamp_hdl Mutsamp_netlist Mutsamp_synth Mutsamp_util Printf QCheck QCheck_alcotest Stdlib
