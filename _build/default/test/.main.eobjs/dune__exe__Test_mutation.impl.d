test/test_mutation.ml: Alcotest Array List Mutsamp_hdl Mutsamp_mutation Mutsamp_util QCheck QCheck_alcotest
