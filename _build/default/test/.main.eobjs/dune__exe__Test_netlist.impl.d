test/test_netlist.ml: Alcotest Array List Mutsamp_netlist Printf QCheck QCheck_alcotest String
