test/test_hdl.ml: Alcotest Array List Mutsamp_hdl Mutsamp_util Option Printf QCheck QCheck_alcotest String
