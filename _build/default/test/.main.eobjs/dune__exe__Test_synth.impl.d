test/test_synth.ml: Alcotest Array List Mutsamp_hdl Mutsamp_netlist Mutsamp_synth Mutsamp_util Printf QCheck QCheck_alcotest
