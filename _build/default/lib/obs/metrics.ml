type counter = { c_name : string; mutable count : int }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace counters name c;
    c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = { h_name = name; n = 0; sum = 0.; min_v = infinity; max_v = neg_infinity } in
    Hashtbl.replace histograms name h;
    h

let incr c = if !enabled_flag then c.count <- c.count + 1
let add c n = if !enabled_flag then c.count <- c.count + n

let observe h v =
  if !enabled_flag then begin
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end

let add_named name n = if !enabled_flag then (counter name).count <- (counter name).count + n

let observe_named name v = if !enabled_flag then observe (histogram name) v

let reset () =
  Hashtbl.iter (fun _ c -> c.count <- 0) counters;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.sum <- 0.;
      h.min_v <- infinity;
      h.max_v <- neg_infinity)
    histograms

type histogram_stats = { n : int; sum : float; min_v : float; max_v : float }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_stats) list;
}

let snapshot () =
  let cs =
    Hashtbl.fold
      (fun name c acc -> if c.count <> 0 then (name, c.count) :: acc else acc)
      counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold
      (fun name (h : histogram) acc ->
        if h.n > 0 then
          (name, { n = h.n; sum = h.sum; min_v = h.min_v; max_v = h.max_v }) :: acc
        else acc)
      histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = cs; histograms = hs }

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : histogram_stats)) ->
               ( k,
                 Json.Obj
                   [
                     ("n", Json.Int h.n);
                     ("sum", Json.Float h.sum);
                     ("min", Json.Float h.min_v);
                     ("max", Json.Float h.max_v);
                     ("mean", Json.Float (h.sum /. float_of_int h.n));
                   ] ))
             s.histograms) );
    ]

let pp fmt s =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-40s %12d@\n" name v)
    s.counters;
  List.iter
    (fun (name, (h : histogram_stats)) ->
      Format.fprintf fmt "%-40s n=%d sum=%.3f min=%.3f max=%.3f mean=%.3f@\n" name
        h.n h.sum h.min_v h.max_v
        (h.sum /. float_of_int h.n))
    s.histograms
