lib/obs/json.mli:
