lib/obs/runreport.mli: Json Metrics Trace
