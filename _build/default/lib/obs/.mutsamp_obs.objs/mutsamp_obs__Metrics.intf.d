lib/obs/metrics.mli: Format Json
