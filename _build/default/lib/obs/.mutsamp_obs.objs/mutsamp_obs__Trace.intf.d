lib/obs/trace.mli: Format Json
