lib/obs/trace.ml: Float Format Gc Json List Printf String Unix
