lib/obs/metrics.ml: Format Hashtbl Json List String
