lib/obs/runreport.ml: Fun Json List Metrics Printf Result Trace
