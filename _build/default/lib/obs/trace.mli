(** Hierarchical tracing spans.

    A span measures one phase of the pipeline: wall-clock duration plus
    the words allocated while it was open, with arbitrary nesting.
    Collection is off by default; every [with_span] call then reduces to
    a single mutable-field check around the wrapped function, so
    instrumenting hot paths is free in normal runs.

    The collector is a process-global tree (the pipeline is
    single-threaded): spans opened while another span is open become its
    children, spans opened at top level become roots. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_s : float;
      (** seconds since the trace epoch — the first span opened after
          [reset] *)
  duration_s : float;
  alloc_words : float;
      (** words allocated during the span (minor + major − promoted,
          from [Gc.quick_stat]) *)
  children : span list;  (** in open order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and the epoch. Open spans are abandoned. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function inside a new span. The span closes when the
    function returns or raises (an [error=true] attribute marks the
    raising case, and the exception is re-raised). When collection is
    disabled this is just a function call. *)

val with_span_timed :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** Like [with_span] but also return the elapsed seconds, measured even
    when collection is disabled (for callers that print timings). *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span; no-op when disabled
    or outside any span. Lets a phase record counts it only knows at the
    end, e.g. [Trace.add_attr "faults" (string_of_int n)]. *)

val roots : unit -> span list
(** Completed top-level spans, in open order. *)

val to_json : span list -> Json.t
val span_to_json : span -> Json.t

val pp : Format.formatter -> span list -> unit
(** Indented tree: one line per span with duration, allocation and
    attributes. *)

val print : out_channel -> unit
(** [pp] of [roots ()] to a channel (the CLI's [--trace] output). *)
