module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Bitsim = Mutsamp_netlist.Bitsim

type polarity = Stuck_at_0 | Stuck_at_1

type site =
  | Stem of int
  | Branch of { gate : int; pin : int }

type t = { site : site; polarity : polarity }

let full_list (nl : Netlist.t) =
  let fanout_counts = Array.map List.length (Netlist.fanouts nl) in
  let stems =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i (g : Gate.t) ->
              match g.kind with
              | Gate.Const _ -> []
              | _ ->
                [ { site = Stem i; polarity = Stuck_at_0 };
                  { site = Stem i; polarity = Stuck_at_1 } ])
            nl.gates))
  in
  let branches =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun gate (g : Gate.t) ->
              List.concat
                (List.mapi
                   (fun pin driver ->
                     if fanout_counts.(driver) > 1 then
                       [ { site = Branch { gate; pin }; polarity = Stuck_at_0 };
                         { site = Branch { gate; pin }; polarity = Stuck_at_1 } ]
                     else [])
                   (Array.to_list g.fanins)))
            nl.gates))
  in
  stems @ branches

let injection f =
  match f.site with
  | Stem net -> Bitsim.Net net
  | Branch { gate; pin } -> Bitsim.Pin { gate; pin }

let stuck_word f =
  match f.polarity with Stuck_at_0 -> 0 | Stuck_at_1 -> Bitsim.all_ones

let rank_site = function
  | Stem net -> (0, net, 0)
  | Branch { gate; pin } -> (1, gate, pin)

let compare a b =
  Stdlib.compare (rank_site a.site, a.polarity) (rank_site b.site, b.polarity)

let equal a b = compare a b = 0

let to_string f =
  let pol = match f.polarity with Stuck_at_0 -> "SA0" | Stuck_at_1 -> "SA1" in
  match f.site with
  | Stem net -> Printf.sprintf "net%d/%s" net pol
  | Branch { gate; pin } -> Printf.sprintf "g%d.pin%d/%s" gate pin pol

let pp fmt f = Format.pp_print_string fmt (to_string f)
