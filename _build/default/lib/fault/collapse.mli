(** Fault-equivalence collapsing.

    Two faults are structurally equivalent when every test for one is a
    test for the other. The classical gate-local rules are applied:

    - AND: any input stuck-at-0 ≡ output stuck-at-0 (dually NAND → output
      stuck-at-1);
    - OR: any input stuck-at-1 ≡ output stuck-at-1 (dually NOR → output
      stuck-at-0);
    - NOT/BUF: each input fault ≡ the (inverted/same) output fault;
    - a fault on a single-fanout stem ≡ the same fault seen at the one
      pin it feeds, so the pin-side rules apply through it.

    Classes are built with union–find; the collapsed list keeps one
    representative per class. *)

type t = {
  representatives : Fault.t list;  (** one fault per equivalence class *)
  class_of : Fault.t -> Fault.t;  (** representative of any full-list fault *)
  full_size : int;
  collapsed_size : int;
}

val run : Mutsamp_netlist.Netlist.t -> t
(** Collapse the {!Fault.full_list} of the netlist. *)

val ratio : t -> float
(** [collapsed_size / full_size]. *)

val dominance_reduced : Mutsamp_netlist.Netlist.t -> t -> Fault.t list
(** Further reduce the equivalence representatives by gate-local fault
    dominance: any test for an AND input stuck-at-1 also detects the
    output stuck-at-1 (dually OR/NAND/NOR), so the dominated output
    fault needs no dedicated test. Detecting every fault of the
    returned list therefore detects every testable fault of the full
    universe — the list is meant for ATPG targeting, not for coverage
    *reporting* (dropping dominated faults changes the denominator). *)
