(** Single stuck-at faults on gate-level netlists.

    The full fault list contains, for both polarities:
    - a {e stem} fault on every net (primary inputs, gate outputs,
      flip-flop outputs) except constant tie-offs, and
    - a {e branch} fault on every gate input pin whose driving net
      fans out to more than one sink (pins on single-fanout nets are
      indistinguishable from the stem and are left to the stem fault).

    This is the classical structural fault universe on which
    equivalence collapsing (see {!Collapse}) operates. *)

type polarity = Stuck_at_0 | Stuck_at_1

type site =
  | Stem of int  (** net id *)
  | Branch of { gate : int; pin : int }

type t = { site : site; polarity : polarity }

val full_list : Mutsamp_netlist.Netlist.t -> t list
(** Deterministic order: stems by net id then branches by (gate, pin),
    stuck-at-0 before stuck-at-1 at each site. *)

val injection : t -> Mutsamp_netlist.Bitsim.injection
(** The {!Mutsamp_netlist.Bitsim} injection realising this fault. *)

val stuck_word : t -> int
(** The forcing word: 0 or [Bitsim.all_ones]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
