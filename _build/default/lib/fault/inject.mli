(** Construct the faulty version of a netlist.

    Used by SAT-based ATPG (the miter of good vs faulty decides
    testability) and by tests as an independent oracle for the
    simulator's built-in injection. *)

val apply : Mutsamp_netlist.Netlist.t -> Fault.t -> Mutsamp_netlist.Netlist.t
(** [apply nl f] returns a netlist computing the faulty function:
    - a stem fault replaces the driving gate with a constant;
    - a branch fault rewires one gate input pin to a fresh constant
      gate appended at the end.

    The interface (input and output names and order) is unchanged. *)
