module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Metrics = Mutsamp_obs.Metrics

(* Observability series (no-ops unless metrics collection is on). *)
let c_runs = Metrics.counter "fsim.runs"
let c_patterns = Metrics.counter "fsim.patterns_simulated"
let c_detected = Metrics.counter "fsim.faults_detected"
let c_batches = Metrics.counter "fsim.pattern_batches"
let c_machine_steps = Metrics.counter "fsim.machine_steps"
let c_serial_cycles = Metrics.counter "fsim.serial_cycles"
let c_pf_groups = Metrics.counter "fsim.parallel_fault_groups"

type detection = { fault : Fault.t; detected_at : int option }

type report = {
  total : int;
  detected : int;
  detections : detection array;
  patterns_applied : int;
}

let coverage_percent r =
  if r.total = 0 then 0. else 100. *. float_of_int r.detected /. float_of_int r.total

let coverage_at r n =
  if r.total = 0 then 0.
  else begin
    let hit = ref 0 in
    Array.iter
      (fun d -> match d.detected_at with Some k when k < n -> incr hit | _ -> ())
      r.detections;
    100. *. float_of_int !hit /. float_of_int r.total
  end

let coverage_curve r =
  (* Counting sort over first-detection indices gives the whole curve in
     one pass. *)
  let hits = Array.make (r.patterns_applied + 1) 0 in
  Array.iter
    (fun d ->
      match d.detected_at with
      | Some k when k < r.patterns_applied -> hits.(k + 1) <- hits.(k + 1) + 1
      | Some _ | None -> ())
    r.detections;
  let acc = ref 0 in
  List.init (r.patterns_applied + 1) (fun n ->
      acc := !acc + hits.(n);
      let cov =
        if r.total = 0 then 0. else 100. *. float_of_int !acc /. float_of_int r.total
      in
      (n, cov))

let length_to_reach r target =
  let rec scan = function
    | [] -> None
    | (n, cov) :: rest -> if cov >= target -. 1e-9 then Some n else scan rest
  in
  scan (coverage_curve r)

(* Spread a pattern code over the per-input words: lane [lane] of input
   [k] receives bit [k] of the code. *)
let pack_patterns nl (patterns : int array) lo len =
  let n_in = Array.length nl.Netlist.input_nets in
  let words = Array.make n_in 0 in
  for lane = 0 to len - 1 do
    let code = patterns.(lo + lane) in
    for k = 0 to n_in - 1 do
      if (code lsr k) land 1 = 1 then words.(k) <- words.(k) lor (1 lsl lane)
    done
  done;
  words

let replicate_code nl code =
  Array.init (Array.length nl.Netlist.input_nets) (fun k ->
      if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0)

let run_combinational nl ~faults ~patterns =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Fsim.run_combinational: netlist has flip-flops";
  if Array.length nl.Netlist.input_nets > Bitsim.lanes then
    invalid_arg "Fsim.run_combinational: too many input bits for pattern codes";
  let faults = Array.of_list faults in
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let alive = Array.init (Array.length faults) (fun i -> i) in
  let alive_count = ref (Array.length faults) in
  let sim = Bitsim.create nl in
  let n_pat = Array.length patterns in
  let batches = (n_pat + Bitsim.lanes - 1) / Bitsim.lanes in
  let batch = ref 0 in
  Metrics.incr c_runs;
  while !batch < batches && !alive_count > 0 do
    let lo = !batch * Bitsim.lanes in
    let len = min Bitsim.lanes (n_pat - lo) in
    let words = pack_patterns nl patterns lo len in
    let lane_mask = if len = Bitsim.lanes then Bitsim.all_ones else (1 lsl len) - 1 in
    let good = Bitsim.step sim words in
    Metrics.incr c_batches;
    Metrics.add c_patterns len;
    Metrics.incr c_machine_steps;
    let k = ref 0 in
    while !k < !alive_count do
      let fi = alive.(!k) in
      let f = faults.(fi) in
      let faulty =
        Bitsim.step_injected sim words ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
      in
      Metrics.incr c_machine_steps;
      let diff = ref 0 in
      Array.iteri (fun o w -> diff := !diff lor (w lxor good.(o))) faulty;
      let diff = !diff land lane_mask in
      if diff <> 0 then begin
        (* First detecting lane = lowest set bit. *)
        let rec lowest bit = if (diff lsr bit) land 1 = 1 then bit else lowest (bit + 1) in
        let lane = lowest 0 in
        detections.(fi) <- { detections.(fi) with detected_at = Some (lo + lane) };
        (* Drop: swap with the last alive fault. *)
        alive_count := !alive_count - 1;
        alive.(!k) <- alive.(!alive_count);
        alive.(!alive_count) <- fi
      end
      else incr k
    done;
    incr batch
  done;
  Metrics.add c_detected (Array.length faults - !alive_count);
  {
    total = Array.length faults;
    detected = Array.length faults - !alive_count;
    detections;
    patterns_applied = n_pat;
  }

let run_sequential ?on_progress nl ~faults ~sequence =
  if Array.length nl.Netlist.input_nets > Bitsim.lanes then
    invalid_arg "Fsim.run_sequential: too many input bits for pattern codes";
  let faults = Array.of_list faults in
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  Metrics.incr c_runs;
  Metrics.add c_patterns (Array.length sequence);
  let sim_good = Bitsim.create nl in
  Bitsim.reset sim_good;
  let good_outputs =
    Array.map
      (fun code -> Bitsim.step sim_good (replicate_code nl code))
      sequence
  in
  Metrics.add c_serial_cycles (Array.length sequence);
  let total_faults = Array.length faults in
  let progress done_ =
    match on_progress with Some f -> f ~done_ ~total:total_faults | None -> ()
  in
  let sim_faulty = Bitsim.create nl in
  Array.iteri
    (fun fi f ->
      Bitsim.reset sim_faulty;
      let inj = Fault.injection f and stuck = Fault.stuck_word f in
      (* A stem fault on a flip-flop output also corrupts the reset
         state, which [step_injected] applies from the first cycle. *)
      let rec cycle c =
        if c < Array.length sequence then begin
          let faulty =
            Bitsim.step_injected sim_faulty (replicate_code nl sequence.(c)) ~inj ~stuck
          in
          Metrics.incr c_serial_cycles;
          Metrics.incr c_machine_steps;
          if faulty <> good_outputs.(c) then
            detections.(fi) <- { fault = f; detected_at = Some c }
          else cycle (c + 1)
        end
      in
      cycle 0;
      progress (fi + 1))
    faults;
  let detected =
    Array.fold_left
      (fun acc d -> match d.detected_at with Some _ -> acc + 1 | None -> acc)
      0 detections
  in
  Metrics.add c_detected detected;
  {
    total = Array.length faults;
    detected;
    detections;
    patterns_applied = Array.length sequence;
  }

let run_parallel_fault nl ~faults ~sequence =
  if Array.length nl.Netlist.input_nets > Bitsim.lanes then
    invalid_arg "Fsim.run_parallel_fault: too many input bits for pattern codes";
  let faults = Array.of_list faults in
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let group_size = Bitsim.lanes - 1 in
  let n_groups = (Array.length faults + group_size - 1) / group_size in
  let sim = Bitsim.create nl in
  Metrics.incr c_runs;
  Metrics.add c_patterns (Array.length sequence);
  for g = 0 to n_groups - 1 do
    Metrics.incr c_pf_groups;
    let lo = g * group_size in
    let len = min group_size (Array.length faults - lo) in
    let injections =
      List.init len (fun j ->
          let f = faults.(lo + j) in
          {
            Bitsim.inj = Fault.injection f;
            lanes = 1 lsl (j + 1);
            stuck = Fault.stuck_word f;
          })
    in
    Bitsim.reset sim;
    let cycle = ref 0 in
    let n_cycles = Array.length sequence in
    while !cycle < n_cycles do
      let outs =
        Bitsim.step_multi sim (replicate_code nl sequence.(!cycle)) ~injections
      in
      Metrics.incr c_machine_steps;
      (* Lanes whose outputs differ from lane 0's value. *)
      let diff = ref 0 in
      Array.iter
        (fun w ->
          let good = -(w land 1) land Bitsim.all_ones in
          diff := !diff lor (w lxor good))
        outs;
      for j = 0 to len - 1 do
        if (!diff lsr (j + 1)) land 1 = 1 then begin
          let fi = lo + j in
          match detections.(fi).detected_at with
          | None -> detections.(fi) <- { detections.(fi) with detected_at = Some !cycle }
          | Some _ -> ()
        end
      done;
      incr cycle
    done
  done;
  let detected =
    Array.fold_left
      (fun acc d -> match d.detected_at with Some _ -> acc + 1 | None -> acc)
      0 detections
  in
  Metrics.add c_detected detected;
  {
    total = Array.length faults;
    detected;
    detections;
    patterns_applied = Array.length sequence;
  }

let run_auto nl ~faults ~sequence =
  if Netlist.num_dffs nl = 0 then run_combinational nl ~faults ~patterns:sequence
  else run_parallel_fault nl ~faults ~sequence

let input_code nl bits =
  let names = Netlist.input_names nl in
  let code = ref 0 in
  Array.iteri
    (fun k name ->
      match List.assoc_opt name bits with
      | Some true -> code := !code lor (1 lsl k)
      | Some false | None -> ())
    names;
  !code
