lib/fault/inject.ml: Array Fault List Mutsamp_netlist
