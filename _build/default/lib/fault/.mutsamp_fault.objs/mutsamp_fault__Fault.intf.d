lib/fault/fault.mli: Format Mutsamp_netlist
