lib/fault/inject.mli: Fault Mutsamp_netlist
