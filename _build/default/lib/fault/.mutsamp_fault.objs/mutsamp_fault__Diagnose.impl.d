lib/fault/diagnose.ml: Array Fault List Mutsamp_netlist
