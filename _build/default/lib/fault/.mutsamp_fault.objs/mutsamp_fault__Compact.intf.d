lib/fault/compact.mli: Fault Mutsamp_netlist
