lib/fault/fsim.mli: Fault Mutsamp_netlist
