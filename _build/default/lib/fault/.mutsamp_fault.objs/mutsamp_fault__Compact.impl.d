lib/fault/compact.ml: Array Fsim Hashtbl List Mutsamp_netlist
