lib/fault/fault.ml: Array Format List Mutsamp_netlist Printf Stdlib
