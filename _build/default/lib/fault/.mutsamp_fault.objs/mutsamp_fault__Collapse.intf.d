lib/fault/collapse.mli: Fault Mutsamp_netlist
