lib/fault/diagnose.mli: Fault Mutsamp_netlist
