lib/fault/fsim.ml: Array Fault List Mutsamp_netlist Mutsamp_obs
