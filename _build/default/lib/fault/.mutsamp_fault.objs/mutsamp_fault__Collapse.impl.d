lib/fault/collapse.ml: Array Fault Hashtbl List Mutsamp_netlist Stdlib
