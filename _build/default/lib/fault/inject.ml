module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate

let apply (nl : Netlist.t) (f : Fault.t) =
  let stuck = (match f.polarity with Fault.Stuck_at_0 -> false | Fault.Stuck_at_1 -> true) in
  match f.site with
  | Fault.Stem net ->
    let gates = Array.copy nl.gates in
    (* A stuck primary input must stay a PI for interface stability: it
       keeps its Pi gate but every sink is rewired to a constant. *)
    (match gates.(net).Gate.kind with
     | Gate.Pi _ ->
       let const_gate = { Gate.kind = Gate.Const stuck; fanins = [||] } in
       let gates = Array.append gates [| const_gate |] in
       let const_net = Array.length gates - 1 in
       let gates =
         Array.map
           (fun (g : Gate.t) ->
             {
               g with
               Gate.fanins =
                 Array.map (fun fi -> if fi = net then const_net else fi) g.fanins;
             })
           gates
       in
       let output_list =
         Array.map
           (fun (name, onet) -> if onet = net then (name, const_net) else (name, onet))
           nl.output_list
       in
       { nl with Netlist.gates; output_list }
     | _ ->
       gates.(net) <- { Gate.kind = Gate.Const stuck; fanins = [||] };
       let dff_nets = Array.of_list (List.filter (fun q -> q <> net) (Array.to_list nl.dff_nets)) in
       { nl with Netlist.gates; dff_nets })
  | Fault.Branch { gate; pin } ->
    let const_gate = { Gate.kind = Gate.Const stuck; fanins = [||] } in
    let gates = Array.append (Array.copy nl.gates) [| const_gate |] in
    let const_net = Array.length gates - 1 in
    let g = gates.(gate) in
    let fanins = Array.copy g.Gate.fanins in
    fanins.(pin) <- const_net;
    gates.(gate) <- { g with Gate.fanins };
    { nl with Netlist.gates }
