(** Stuck-at fault simulation with fault dropping.

    Patterns are flat integer codes over the netlist's primary inputs
    in [input_nets] order (bit [k] of the code feeds input [k]); the
    synthesis {!Mutsamp_synth.Mapping} layer produces them from
    word-level stimuli via netlist input names.

    Two engines:
    - {!run_combinational}: parallel-pattern single-fault propagation,
      62 patterns per pass, good circuit simulated once per pass;
    - {!run_sequential}: the sequence is applied from reset to the good
      machine once, then to each faulty machine serially, dropping the
      fault at the first differing cycle.

    Both record, per fault, the index of the first detecting pattern
    (combinational) or cycle (sequential), which is what the coverage
    curves of the NLFCE metric need. *)

type detection = { fault : Fault.t; detected_at : int option }

type report = {
  total : int;
  detected : int;
  detections : detection array;  (** in fault-list order *)
  patterns_applied : int;
}

val coverage_percent : report -> float
(** [100 * detected / total]; 0 when the fault list is empty. *)

val coverage_at : report -> int -> float
(** Coverage achieved by the first [n] patterns/cycles alone. *)

val coverage_curve : report -> (int * float) list
(** [(n, coverage_at n)] for every prefix length [0..patterns_applied].
    Monotone non-decreasing. *)

val length_to_reach : report -> float -> int option
(** Shortest prefix achieving at least the given coverage, if any. *)

val run_combinational :
  Mutsamp_netlist.Netlist.t -> faults:Fault.t list -> patterns:int array -> report
(** Raises [Invalid_argument] if the netlist has flip-flops or more
    than 62 input bits. *)

val run_sequential :
  ?on_progress:(done_:int -> total:int -> unit) ->
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  sequence:int array ->
  report
(** Works for combinational netlists too (each "cycle" is then an
    independent pattern), but is serial and slower. [on_progress] is
    called after each fault's serial replay (long [b03]/[c499] runs are
    otherwise silent for minutes). *)

val run_parallel_fault :
  Mutsamp_netlist.Netlist.t -> faults:Fault.t list -> sequence:int array -> report
(** Classical parallel-fault simulation: lane 0 carries the good
    machine and each other lane one fault, so up to 61 faulty machines
    advance per pass. Works for sequential circuits (per-lane state)
    and combinational ones alike, and produces exactly the
    {!run_sequential} result — the property suite checks it. *)

val run_auto :
  Mutsamp_netlist.Netlist.t -> faults:Fault.t list -> sequence:int array -> report
(** {!run_combinational} when the netlist has no flip-flops, otherwise
    {!run_parallel_fault}. *)

val input_code : Mutsamp_netlist.Netlist.t -> (string * bool) list -> int
(** Build a pattern code from named input bits (missing names default
    to 0). *)
