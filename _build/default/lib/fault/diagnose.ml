module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim

type observation = { pattern : int; response : int }

type verdict = { fault : Fault.t; matches : int; explains : bool }

let words_of_code nl code =
  Array.init (Array.length nl.Netlist.input_nets) (fun k ->
      if (code lsr k) land 1 = 1 then Bitsim.all_ones else 0)

let response_of_outputs outs =
  let code = ref 0 in
  Array.iteri (fun k w -> if w land 1 = 1 then code := !code lor (1 lsl k)) outs;
  !code

let simulate_response nl fault code =
  let sim = Bitsim.create nl in
  let words = words_of_code nl code in
  let outs =
    match fault with
    | None -> Bitsim.step sim words
    | Some f ->
      Bitsim.step_injected sim words ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
  in
  response_of_outputs outs

let rank nl ~candidates ~observations =
  if observations = [] then invalid_arg "Diagnose.rank: no observations";
  if Netlist.num_dffs nl > 0 then invalid_arg "Diagnose.rank: sequential netlist";
  let sim = Bitsim.create nl in
  let n_obs = List.length observations in
  let verdicts =
    List.map
      (fun f ->
        let matches =
          List.fold_left
            (fun acc { pattern; response } ->
              let outs =
                Bitsim.step_injected sim (words_of_code nl pattern)
                  ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
              in
              if response_of_outputs outs = response then acc + 1 else acc)
            0 observations
        in
        { fault = f; matches; explains = matches = n_obs })
      candidates
  in
  List.stable_sort (fun a b -> compare b.matches a.matches) verdicts

let perfect_matches nl ~candidates ~observations =
  rank nl ~candidates ~observations
  |> List.filter (fun v -> v.explains)
  |> List.map (fun v -> v.fault)

type dictionary = {
  dict_patterns : int array;
  entries : (Fault.t * int array) array;  (* fault, response per pattern *)
}

let build nl ~candidates ~patterns =
  if Netlist.num_dffs nl > 0 then invalid_arg "Diagnose.build: sequential netlist";
  let sim = Bitsim.create nl in
  let entries =
    Array.of_list
      (List.map
         (fun f ->
           let responses =
             Array.map
               (fun code ->
                 let outs =
                   Bitsim.step_injected sim (words_of_code nl code)
                     ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
                 in
                 response_of_outputs outs)
               patterns
           in
           (f, responses))
         candidates)
  in
  { dict_patterns = Array.copy patterns; entries }

let dictionary_patterns d = Array.copy d.dict_patterns

let lookup d ~responses =
  if Array.length responses <> Array.length d.dict_patterns then
    invalid_arg "Diagnose.lookup: response count does not match dictionary";
  Array.to_list d.entries
  |> List.filter_map (fun (f, stored) -> if stored = responses then Some f else None)
