lib/core/report.ml: Experiments List Mutsamp_atpg Mutsamp_mutation Mutsamp_sampling Mutsamp_util Mutsamp_validation Paper_data Printf
