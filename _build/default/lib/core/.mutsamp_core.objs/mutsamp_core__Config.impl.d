lib/core/config.ml: Mutsamp_validation
