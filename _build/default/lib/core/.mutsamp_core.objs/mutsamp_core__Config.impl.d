lib/core/config.ml: Mutsamp_obs Mutsamp_validation
