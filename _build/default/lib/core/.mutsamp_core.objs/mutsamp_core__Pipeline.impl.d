lib/core/pipeline.ml: Array Fun List Mutsamp_fault Mutsamp_hdl Mutsamp_mutation Mutsamp_netlist Mutsamp_obs Mutsamp_sat Mutsamp_synth Mutsamp_util Printf
