lib/core/paper_data.mli: Mutsamp_mutation
