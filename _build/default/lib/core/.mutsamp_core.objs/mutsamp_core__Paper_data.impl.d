lib/core/paper_data.ml: Float List Mutsamp_mutation
