lib/core/config.mli: Mutsamp_obs Mutsamp_validation
