lib/core/config.mli: Mutsamp_validation
