lib/core/pipeline.mli: Mutsamp_fault Mutsamp_hdl Mutsamp_mutation Mutsamp_netlist Mutsamp_synth
