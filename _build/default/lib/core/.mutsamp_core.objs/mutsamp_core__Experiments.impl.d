lib/core/experiments.ml: Array Config Float Hashtbl List Mutsamp_atpg Mutsamp_fault Mutsamp_mutation Mutsamp_netlist Mutsamp_sampling Mutsamp_util Mutsamp_validation Pipeline Printf
