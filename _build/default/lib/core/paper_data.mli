(** The numbers published in the paper, embedded for side-by-side
    comparison in the bench harness and EXPERIMENTS.md. *)

type table1_entry = {
  circuit : string;
  operator : Mutsamp_mutation.Operator.t;
  delta_fc : float;
  delta_l : float;
  nlfce : float;
}

val table1 : table1_entry list
(** Paper Table 1: operator fault-coverage efficiency. *)

type table2_entry = {
  circuit : string;
  oriented_ms : float;
  oriented_nlfce : float;
  random_ms : float;
  random_nlfce : float;
}

val table2 : table2_entry list
(** Paper Table 2: test-oriented vs random 10 % sampling. *)

val c432_sampled_mutants : int
(** The paper states 77 mutants were sampled for c432 at 10 %. *)

val published_weights :
  string -> (Mutsamp_mutation.Operator.t * float) list
(** Sampling weights derived from the PAPER's Table 1 NLFCE for the
    given circuit (same bounded-skew formula the measured weights use;
    operators the paper did not measure get weight 1). Lets Table 2 be
    rerun with the authors' efficiency profile instead of ours,
    isolating "does the strategy transfer" from "do the efficiency
    estimates transfer". *)

val table1_ordering_holds :
  (Mutsamp_mutation.Operator.t * float) list -> string -> bool
(** Check the paper's qualitative claim on measured data: for the given
    circuit, LOR (when present) has the lowest NLFCE among the paper's
    four operators. *)
