(** Paper-style table rendering of experiment results. *)

val table1 : Experiments.table1_row list -> string
(** The reproduction of the paper's Table 1: circuit, operator, ΔFC%,
    ΔL%, NLFCE (plus mutant counts and lengths, which the paper
    discusses but does not tabulate). *)

val table2 : Experiments.table2_row list -> string
(** The reproduction of Table 2: test-oriented vs random sampling,
    MS% and NLFCE per circuit. *)

val table2_average : Experiments.table2_average list -> string
(** Averaged Table 2 with win counts (see
    {!Experiments.sampling_comparison_avg}). *)

val paper_table1 : unit -> string
(** The paper's published Table 1, for side-by-side comparison. *)

val paper_table2 : unit -> string
(** The paper's published Table 2. *)

val atpg_effort : circuit:string -> Experiments.atpg_row list -> string
(** Experiment E3: ATPG effort per seeding policy. *)

val ms_vs_rate : circuit:string -> (float * float * float) list -> string
(** Ablation A1: MS per sample rate for the two strategies. *)
