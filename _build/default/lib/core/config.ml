type t = {
  seed : int;
  sample_rate : float;
  random_multiplier : int;
  min_random_length : int;
  vector : Mutsamp_validation.Vectorgen.config;
  equivalence_screen : int;
}

let default =
  {
    seed = 2005;
    sample_rate = 0.10;
    random_multiplier = 20;
    min_random_length = 256;
    vector = Mutsamp_validation.Vectorgen.default_config;
    equivalence_screen = 512;
  }

let quick =
  {
    default with
    random_multiplier = 8;
    min_random_length = 128;
    vector =
      {
        Mutsamp_validation.Vectorgen.default_config with
        Mutsamp_validation.Vectorgen.max_stall = 60;
        max_vectors = 1024;
      };
    equivalence_screen = 192;
  }
