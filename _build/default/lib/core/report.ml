module Table = Mutsamp_util.Table
module Operator = Mutsamp_mutation.Operator
module Nlfce = Mutsamp_sampling.Nlfce
module Score = Mutsamp_validation.Score
module Topoff = Mutsamp_atpg.Topoff

let f2 = Printf.sprintf "%.2f"
let f1s = Printf.sprintf "%+.1f"

let table1 rows =
  let t =
    Table.create
      [ "Circuit"; "Operator"; "Mutants"; "L_m"; "MFC%"; "dFC%"; "dL%"; "NLFCE" ]
  in
  List.iter
    (fun (row : Experiments.table1_row) ->
      List.iter
        (fun (r : Experiments.operator_row) ->
          Table.add_row t
            [
              row.Experiments.circuit;
              Operator.name r.Experiments.op;
              string_of_int r.Experiments.mutant_count;
              string_of_int r.Experiments.metric.Nlfce.mutation_length;
              f2 r.Experiments.metric.Nlfce.mfc;
              f2 r.Experiments.metric.Nlfce.delta_fc_percent;
              f2 r.Experiments.metric.Nlfce.delta_l_percent;
              f1s r.Experiments.metric.Nlfce.nlfce;
            ])
        row.Experiments.per_operator;
      Table.add_separator t)
    rows;
  Table.render t

let table2 rows =
  let t =
    Table.create
      [ "Circuit"; "Strategy"; "Sampled"; "Vectors"; "MS%"; "NLFCE" ]
  in
  List.iter
    (fun (row : Experiments.table2_row) ->
      let strategy (s : Experiments.strategy_result) =
        Table.add_row t
          [
            row.Experiments.circuit;
            s.Experiments.strategy;
            string_of_int s.Experiments.sampled_count;
            string_of_int s.Experiments.validation_vectors;
            f2 s.Experiments.ms.Score.score_percent;
            f1s s.Experiments.metric.Nlfce.nlfce;
          ]
      in
      strategy row.Experiments.oriented;
      strategy row.Experiments.random;
      Table.add_separator t)
    rows;
  Table.render t

let table2_average rows =
  let t =
    Table.create
      [
        "Circuit"; "Reps"; "Sampled"; "MS% oriented"; "MS% random"; "MS wins";
        "NLFCE orient (med)"; "NLFCE random (med)"; "NLFCE wins";
      ]
  in
  List.iter
    (fun (r : Experiments.table2_average) ->
      Table.add_row t
        [
          r.Experiments.circuit;
          string_of_int r.Experiments.repetitions;
          string_of_int r.Experiments.sampled_count;
          f2 r.Experiments.oriented_ms_mean;
          f2 r.Experiments.random_ms_mean;
          Printf.sprintf "%d/%d" r.Experiments.oriented_ms_wins r.Experiments.repetitions;
          Printf.sprintf "%s (%s)"
            (f1s r.Experiments.oriented_nlfce_mean)
            (f1s r.Experiments.oriented_nlfce_median);
          Printf.sprintf "%s (%s)"
            (f1s r.Experiments.random_nlfce_mean)
            (f1s r.Experiments.random_nlfce_median);
          Printf.sprintf "%d/%d" r.Experiments.oriented_nlfce_wins r.Experiments.repetitions;
        ])
    rows;
  Table.render t

let paper_table1 () =
  let t = Table.create [ "Circuit"; "Operator"; "dFC%"; "dL%"; "NLFCE" ] in
  List.iter
    (fun (e : Paper_data.table1_entry) ->
      Table.add_row t
        [
          e.Paper_data.circuit;
          Operator.name e.Paper_data.operator;
          f2 e.Paper_data.delta_fc;
          f2 e.Paper_data.delta_l;
          f1s e.Paper_data.nlfce;
        ])
    Paper_data.table1;
  Table.render t

let paper_table2 () =
  let t =
    Table.create
      [ "Circuit"; "MS% oriented"; "NLFCE oriented"; "MS% random"; "NLFCE random" ]
  in
  List.iter
    (fun (e : Paper_data.table2_entry) ->
      Table.add_row t
        [
          e.Paper_data.circuit;
          f2 e.Paper_data.oriented_ms;
          f1s e.Paper_data.oriented_nlfce;
          f2 e.Paper_data.random_ms;
          f1s e.Paper_data.random_nlfce;
        ])
    Paper_data.table2;
  Table.render t

let atpg_effort ~circuit rows =
  let t =
    Table.create
      [
        "Circuit"; "Seed"; "SeedVec"; "SeedDet"; "RandVec"; "ATPG calls";
        "ATPG vec"; "Untestable"; "Aborted"; "FC%";
      ]
  in
  List.iter
    (fun (r : Experiments.atpg_row) ->
      let rep = r.Experiments.report in
      Table.add_row t
        [
          circuit;
          r.Experiments.seed_kind;
          string_of_int rep.Topoff.seed_patterns;
          string_of_int rep.Topoff.seed_detected;
          string_of_int rep.Topoff.random_patterns;
          string_of_int rep.Topoff.atpg_calls;
          string_of_int rep.Topoff.atpg_patterns;
          string_of_int rep.Topoff.untestable;
          string_of_int rep.Topoff.aborted;
          f2 rep.Topoff.final_coverage_percent;
        ])
    rows;
  Table.render t

let ms_vs_rate ~circuit rows =
  let t = Table.create [ "Circuit"; "Rate"; "MS% random"; "MS% oriented" ] in
  List.iter
    (fun (rate, ms_random, ms_oriented) ->
      Table.add_row t
        [ circuit; Printf.sprintf "%.0f%%" (100. *. rate); f2 ms_random; f2 ms_oriented ])
    rows;
  Table.render t
