module Operator = Mutsamp_mutation.Operator

type table1_entry = {
  circuit : string;
  operator : Operator.t;
  delta_fc : float;
  delta_l : float;
  nlfce : float;
}

let table1 =
  [
    { circuit = "b01"; operator = Operator.LOR; delta_fc = 0.66; delta_l = 10.84; nlfce = 7.16 };
    { circuit = "b01"; operator = Operator.VR; delta_fc = 1.36; delta_l = 17.43; nlfce = 23.7 };
    { circuit = "b01"; operator = Operator.CVR; delta_fc = 1.72; delta_l = 18.81; nlfce = 32.3 };
    { circuit = "b01"; operator = Operator.CR; delta_fc = 2.32; delta_l = 37.60; nlfce = 87.3 };
    { circuit = "b03"; operator = Operator.VR; delta_fc = 4.10; delta_l = 28.39; nlfce = 116. };
    { circuit = "b03"; operator = Operator.CVR; delta_fc = 8.08; delta_l = 55.29; nlfce = 447. };
    { circuit = "b03"; operator = Operator.CR; delta_fc = 9.57; delta_l = 49.89; nlfce = 477. };
    { circuit = "c432"; operator = Operator.LOR; delta_fc = 4.14; delta_l = 32.35; nlfce = 134. };
    { circuit = "c432"; operator = Operator.VR; delta_fc = 9.40; delta_l = 56.62; nlfce = 532. };
    { circuit = "c432"; operator = Operator.CVR; delta_fc = 11.67; delta_l = 81.86; nlfce = 955. };
    { circuit = "c499"; operator = Operator.LOR; delta_fc = 4.72; delta_l = 64.26; nlfce = 303. };
    { circuit = "c499"; operator = Operator.VR; delta_fc = 6.18; delta_l = 73.10; nlfce = 452. };
    { circuit = "c499"; operator = Operator.CVR; delta_fc = 4.53; delta_l = 84.96; nlfce = 385. };
  ]

type table2_entry = {
  circuit : string;
  oriented_ms : float;
  oriented_nlfce : float;
  random_ms : float;
  random_nlfce : float;
}

let table2 =
  [
    { circuit = "b01"; oriented_ms = 85.98; oriented_nlfce = 340.; random_ms = 83.71; random_nlfce = 278. };
    { circuit = "b03"; oriented_ms = 64.16; oriented_nlfce = 1089.; random_ms = 62.22; random_nlfce = 712. };
    { circuit = "c432"; oriented_ms = 88.18; oriented_nlfce = 708.; random_ms = 85.62; random_nlfce = 419. };
    { circuit = "c499"; oriented_ms = 94.75; oriented_nlfce = 518.; random_ms = 90.32; random_nlfce = 500. };
  ]

let c432_sampled_mutants = 77

let published_weights circuit =
  let measured =
    List.filter_map
      (fun (e : table1_entry) ->
        if e.circuit = circuit then Some (e.operator, e.nlfce) else None)
      table1
  in
  let best = List.fold_left (fun acc (_, v) -> Float.max acc v) 0. measured in
  List.map
    (fun op ->
      match List.assoc_opt op measured with
      | Some v when best > 0. -> (op, 1. +. (7. *. Float.max v 0. /. best))
      | Some _ | None -> (op, 1.))
    Operator.all

let table1_ordering_holds measured circuit =
  ignore circuit;
  match List.assoc_opt Operator.LOR measured with
  | None -> true  (* no LOR mutants on this circuit: nothing to check *)
  | Some lor_value ->
    List.for_all
      (fun (op, v) -> Operator.equal op Operator.LOR || v >= lor_value)
      (List.filter
         (fun (op, _) ->
           List.exists (Operator.equal op) [ Operator.LOR; Operator.VR; Operator.CVR; Operator.CR ])
         measured)
