lib/synth/lower.mli: Mutsamp_hdl Mutsamp_netlist
