lib/synth/flow.mli: Mapping Mutsamp_hdl Mutsamp_netlist
