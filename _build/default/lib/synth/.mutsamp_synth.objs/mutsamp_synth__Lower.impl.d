lib/synth/lower.ml: Array Hashtbl List Mutsamp_hdl Mutsamp_netlist Option Printf Wordlib
