lib/synth/mapping.mli: Mutsamp_hdl Mutsamp_netlist
