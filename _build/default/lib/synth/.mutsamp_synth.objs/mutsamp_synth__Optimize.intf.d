lib/synth/optimize.mli: Mutsamp_netlist
