lib/synth/mapping.ml: Array Hashtbl List Lower Mutsamp_hdl Mutsamp_netlist Mutsamp_util Printf
