lib/synth/flow.ml: Lower Mapping Optimize
