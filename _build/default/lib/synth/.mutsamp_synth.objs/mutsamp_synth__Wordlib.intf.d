lib/synth/wordlib.mli: Mutsamp_netlist
