lib/synth/optimize.ml: Array List Mutsamp_netlist
