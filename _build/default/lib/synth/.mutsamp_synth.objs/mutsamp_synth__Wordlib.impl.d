lib/synth/wordlib.ml: Array List Mutsamp_netlist Printf
