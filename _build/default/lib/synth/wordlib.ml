module B = Mutsamp_netlist.Netlist.Builder

type word = int array
type builder = B.t

let const_word b ~width v =
  Array.init width (fun i -> B.const b ((v lsr i) land 1 = 1))

let width (w : word) = Array.length w

let check_same a b op =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Wordlib.%s: width mismatch" op)

let map2 f b x y op =
  check_same x y op;
  Array.init (Array.length x) (fun i -> f b x.(i) y.(i))

let lognot b w = Array.map (B.not_ b) w
let logand b x y = map2 B.and_ b x y "logand"
let logor b x y = map2 B.or_ b x y "logor"
let logxor b x y = map2 B.xor_ b x y "logxor"
let lognand b x y = map2 B.nand_ b x y "lognand"
let lognor b x y = map2 B.nor_ b x y "lognor"
let logxnor b x y = map2 B.xnor_ b x y "logxnor"

(* Ripple-carry addition with an explicit carry-in net. *)
let add_with_carry b x y cin =
  check_same x y "add";
  let n = Array.length x in
  let sum = Array.make n 0 in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let a = x.(i) and c = y.(i) in
    let axc = B.xor_ b a c in
    sum.(i) <- B.xor_ b axc !carry;
    carry := B.or_ b (B.and_ b a c) (B.and_ b axc !carry)
  done;
  (sum, !carry)

let add b x y = fst (add_with_carry b x y (B.const b false))

let sub b x y = fst (add_with_carry b x (lognot b y) (B.const b true))

let eq b x y =
  check_same x y "eq";
  Array.fold_left (fun acc bit -> B.and_ b acc bit) (B.const b true) (logxnor b x y)

let neq b x y = B.not_ b (eq b x y)

(* Unsigned less-than: the borrow out of x - y. From the LSB upward,
   borrow' = (~x & y) | ((x xnor y) & borrow). *)
let lt b x y =
  check_same x y "lt";
  let borrow = ref (B.const b false) in
  for i = 0 to Array.length x - 1 do
    let nx_and_y = B.and_ b (B.not_ b x.(i)) y.(i) in
    let same = B.xnor_ b x.(i) y.(i) in
    borrow := B.or_ b nx_and_y (B.and_ b same !borrow)
  done;
  !borrow

let le b x y = B.not_ b (lt b y x)
let gt b x y = lt b y x
let ge b x y = B.not_ b (lt b x y)

let gate_word b sel (w : word) = Array.map (fun bit -> B.and_ b sel bit) w

let or_words b = function
  | [] -> invalid_arg "Wordlib.or_words: empty"
  | first :: rest ->
    List.fold_left (fun acc w -> check_same acc w "or_words"; map2 B.or_ b acc w "or_words") first rest

let one_hot_select b arms ~default =
  let d_sel, d_word = default in
  or_words b
    (gate_word b d_sel d_word
    :: List.map (fun (sel, w) -> gate_word b sel w) arms)

let mux b ~sel ~t1 ~t0 =
  check_same t1 t0 "mux";
  Array.init (Array.length t1) (fun i -> B.mux b ~sel ~t1:t1.(i) ~t0:t0.(i))

let bit (w : word) i = [| w.(i) |]

let slice (w : word) ~hi ~lo =
  if lo < 0 || hi < lo || hi >= Array.length w then invalid_arg "Wordlib.slice";
  Array.sub w lo (hi - lo + 1)

let concat_words ~high ~low = Array.append low high

let resize b w n =
  let cur = Array.length w in
  if n <= cur then Array.sub w 0 n
  else Array.append w (Array.make (n - cur) (B.const b false))
