let synthesize design = Optimize.sweep (Lower.run design)

let synthesize_mapped design =
  let nl = synthesize design in
  (nl, Mapping.make design nl)
