open Mutsamp_hdl.Ast
module Check = Mutsamp_hdl.Check
module B = Mutsamp_netlist.Netlist.Builder
module W = Wordlib

exception Synth_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Synth_error msg)) fmt

let bit_name port width i =
  if width = 1 then port else Printf.sprintf "%s[%d]" port i

(* The symbolic environment maps every writable name (vars, outputs and
   register next-values) to a word. Reads of registers bypass it and
   use the flip-flop outputs. *)
type env = (string, W.word) Hashtbl.t

type ctx = {
  b : B.t;
  design : design;
  q_words : (string, W.word) Hashtbl.t;  (* register name -> DFF output word *)
  input_words : (string, W.word) Hashtbl.t;
  const_words : (string, W.word) Hashtbl.t;
}

let env_copy (e : env) : env = Hashtbl.copy e

let lit_value (l : literal) =
  match l.width with
  | Some _ -> l.value
  | None -> fail "unsized literal: design not elaborated"

let rec lower_expr ctx (env : env) (e : expr) : W.word =
  match e with
  | Const l -> W.const_word ctx.b ~width:(Option.get l.width) l.value
  | Ref name ->
    (match Hashtbl.find_opt ctx.q_words name with
     | Some w -> w
     | None ->
       (match Hashtbl.find_opt ctx.input_words name with
        | Some w -> w
        | None ->
          (match Hashtbl.find_opt ctx.const_words name with
           | Some w -> w
           | None ->
             (match Hashtbl.find_opt env name with
              | Some w -> w
              | None -> fail "%s: unknown name %s" ctx.design.name name))))
  | Unop (Not, a) -> W.lognot ctx.b (lower_expr ctx env a)
  | Binop (op, a, bb) ->
    let x = lower_expr ctx env a and y = lower_expr ctx env bb in
    (match op with
     | Add -> W.add ctx.b x y
     | Sub -> W.sub ctx.b x y
     | And -> W.logand ctx.b x y
     | Or -> W.logor ctx.b x y
     | Xor -> W.logxor ctx.b x y
     | Nand -> W.lognand ctx.b x y
     | Nor -> W.lognor ctx.b x y
     | Xnor -> W.logxnor ctx.b x y
     | Eq -> [| W.eq ctx.b x y |]
     | Neq -> [| W.neq ctx.b x y |]
     | Lt -> [| W.lt ctx.b x y |]
     | Le -> [| W.le ctx.b x y |]
     | Gt -> [| W.gt ctx.b x y |]
     | Ge -> [| W.ge ctx.b x y |])
  | Bit (a, i) -> W.bit (lower_expr ctx env a) i
  | Slice (a, hi, lo) -> W.slice (lower_expr ctx env a) ~hi ~lo
  | Concat (a, bb) ->
    W.concat_words ~high:(lower_expr ctx env a) ~low:(lower_expr ctx env bb)
  | Resize (a, w) -> W.resize ctx.b (lower_expr ctx env a) w

(* Merge two branch environments under a select bit: for each name whose
   words differ, insert a mux. Both environments are total over the same
   key set by construction. *)
let merge_env ctx ~sel (env_t : env) (env_f : env) : env =
  let merged = Hashtbl.create (Hashtbl.length env_t) in
  Hashtbl.iter
    (fun name wt ->
      let wf = Hashtbl.find env_f name in
      let w = if wt = wf then wt else W.mux ctx.b ~sel ~t1:wt ~t0:wf in
      Hashtbl.replace merged name w)
    env_t;
  merged

let rec lower_stmt ctx (env : env) (s : stmt) : env =
  match s with
  | Null -> env
  | Assign (name, e) ->
    let w = lower_expr ctx env e in
    let env = env_copy env in
    Hashtbl.replace env name w;
    env
  | If (c, then_branch, else_branch) ->
    let sel = (lower_expr ctx env c).(0) in
    let env_t = lower_stmts ctx (env_copy env) then_branch in
    let env_f = lower_stmts ctx (env_copy env) else_branch in
    merge_env ctx ~sel env_t env_f
  | Case (scrut, arms, others) ->
    let sw = lower_expr ctx env scrut in
    (* Case choices are pairwise disjoint by construction (the checker
       rejects duplicates), so the merged value of every written name is
       a one-hot select over the arm environments — not a mux chain,
       whose pass-through terms over disjoint selects would synthesise
       redundant (untestable) logic. *)
    let hit_of_arm (choices, _) =
      List.fold_left
        (fun acc_bit l ->
          let cw = W.const_word ctx.b ~width:(Array.length sw) (lit_value l) in
          B.or_ ctx.b acc_bit (W.eq ctx.b sw cw))
        (B.const ctx.b false) choices
    in
    let arm_envs =
      List.map (fun (_, body) -> lower_stmts ctx (env_copy env) body) arms
    in
    (* The default environment and the arms whose hit bits must be
       computed explicitly. Without an [others] arm the checker has
       proven full coverage, so the last arm's hit is implied by the
       other hits all being low — using it as the default avoids a
       structurally constant-false select term. *)
    let explicit_arms, explicit_envs, default_env =
      match others with
      | Some body -> (arms, arm_envs, lower_stmts ctx (env_copy env) body)
      | None ->
        (match List.rev arms, List.rev arm_envs with
         | _ :: rev_arms, last_env :: rev_envs ->
           (List.rev rev_arms, List.rev rev_envs, last_env)
         | [], _ | _, [] -> (arms, arm_envs, env))
    in
    let hits = List.map hit_of_arm explicit_arms in
    let no_hit =
      B.not_ ctx.b (List.fold_left (B.or_ ctx.b) (B.const ctx.b false) hits)
    in
    let merged = Hashtbl.create (Hashtbl.length env) in
    Hashtbl.iter
      (fun name base_word ->
        let arm_words = List.map (fun e -> Hashtbl.find e name) explicit_envs in
        let all_same = List.for_all (fun w -> w = base_word) arm_words in
        let value =
          if all_same then base_word
          else
            W.one_hot_select ctx.b
              (List.combine hits arm_words)
              ~default:(no_hit, base_word)
        in
        Hashtbl.replace merged name value)
      default_env;
    merged

and lower_stmts ctx env ss = List.fold_left (lower_stmt ctx) env ss

let run (d : design) =
  if not (Check.is_elaborated d) then fail "%s: design not elaborated" d.name;
  let b = B.create d.name in
  let ctx =
    {
      b;
      design = d;
      q_words = Hashtbl.create 8;
      input_words = Hashtbl.create 8;
      const_words = Hashtbl.create 8;
    }
  in
  (* Interface and state elements. *)
  List.iter
    (fun (dc : decl) ->
      match dc.kind with
      | Input ->
        let w = Array.init dc.width (fun i -> B.input b (bit_name dc.name dc.width i)) in
        Hashtbl.replace ctx.input_words dc.name w
      | Reg reset ->
        let rv = lit_value reset in
        let w = Array.init dc.width (fun i -> B.dff b ~init:((rv lsr i) land 1 = 1)) in
        Hashtbl.replace ctx.q_words dc.name w
      | Const_decl v ->
        Hashtbl.replace ctx.const_words dc.name
          (W.const_word b ~width:dc.width (lit_value v))
      | Output | Var -> ())
    d.decls;
  (* Initial environment: outputs and vars at zero, register next-values
     holding the current state. *)
  let env : env = Hashtbl.create 16 in
  List.iter
    (fun (dc : decl) ->
      match dc.kind with
      | Output | Var -> Hashtbl.replace env dc.name (W.const_word b ~width:dc.width 0)
      | Reg _ -> Hashtbl.replace env dc.name (Hashtbl.find ctx.q_words dc.name)
      | Input | Const_decl _ -> ())
    d.decls;
  let env = lower_stmts ctx env d.body in
  (* Connect register D pins and primary outputs. *)
  List.iter
    (fun (dc : decl) ->
      match dc.kind with
      | Reg _ ->
        let q = Hashtbl.find ctx.q_words dc.name in
        let next = Hashtbl.find env dc.name in
        Array.iteri (fun i qn -> B.connect_dff b qn ~d:next.(i)) q
      | Output ->
        let w = Hashtbl.find env dc.name in
        Array.iteri (fun i net -> B.output b (bit_name dc.name dc.width i) net) w
      | Input | Var | Const_decl _ -> ())
    d.decls;
  B.finalize b
