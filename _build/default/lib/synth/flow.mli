(** One-call synthesis entry point. *)

val synthesize : Mutsamp_hdl.Ast.design -> Mutsamp_netlist.Netlist.t
(** {!Lower.run} followed by {!Optimize.sweep}. *)

val synthesize_mapped :
  Mutsamp_hdl.Ast.design -> Mutsamp_netlist.Netlist.t * Mapping.t
(** {!synthesize} plus the port mapping for driving the netlist with
    word-level stimuli. *)
