(** Synthesis: elaborated HDL designs to gate-level netlists.

    The lowering symbolically executes the design's one-cycle statement
    list. Word-level ports expand into bit-level nets named
    [name\[i\]] (plain [name] for 1-bit ports); registers become D
    flip-flops initialised with their reset value; [if]/[case] control
    flow becomes multiplexer trees merging the environments of the
    branches. Register reads always refer to the flip-flop outputs
    (pre-cycle values), register writes feed the D pins — exactly the
    semantics of {!Mutsamp_hdl.Sim}.

    The result is unoptimised apart from the builder's structural
    hashing and constant folding; run {!Optimize.sweep} afterwards to
    drop unobservable logic. *)

exception Synth_error of string

val bit_name : string -> int -> int -> string
(** [bit_name port width i] is the bit-level PI/PO name of bit [i]:
    [name] when [width = 1], otherwise [name\[i\]]. *)

val run : Mutsamp_hdl.Ast.design -> Mutsamp_netlist.Netlist.t
(** Synthesise. Raises {!Synth_error} if the design is not elaborated. *)
