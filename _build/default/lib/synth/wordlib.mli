(** Word-level combinational gadgets.

    A word is an array of net ids, LSB first. These helpers expand the
    HDL's word-level operators into two-input gates through a
    {!Mutsamp_netlist.Netlist.Builder}; the builder's structural
    hashing and constant folding keep the expansion lean. *)

type word = int array
(** Net ids, index 0 = least significant bit. *)

type builder = Mutsamp_netlist.Netlist.Builder.t

val const_word : builder -> width:int -> int -> word
val width : word -> int

val lognot : builder -> word -> word
val logand : builder -> word -> word -> word
val logor : builder -> word -> word -> word
val logxor : builder -> word -> word -> word
val lognand : builder -> word -> word -> word
val lognor : builder -> word -> word -> word
val logxnor : builder -> word -> word -> word

val add : builder -> word -> word -> word
(** Ripple-carry sum, carry-out dropped (wrapping, like the HDL). *)

val sub : builder -> word -> word -> word
(** [a - b] as [a + not b + 1], wrapping. *)

val eq : builder -> word -> word -> int
(** Single-bit equality. *)

val neq : builder -> word -> word -> int

val lt : builder -> word -> word -> int
(** Unsigned less-than (ripple borrow). *)

val le : builder -> word -> word -> int
val gt : builder -> word -> word -> int
val ge : builder -> word -> word -> int

val mux : builder -> sel:int -> t1:word -> t0:word -> word
(** Per-bit 2:1 multiplexer. *)

val gate_word : builder -> int -> word -> word
(** [gate_word b sel w]: each bit ANDed with [sel]. *)

val or_words : builder -> word list -> word
(** Bitwise OR of one or more equal-width words. Raises
    [Invalid_argument] on the empty list. *)

val one_hot_select : builder -> (int * word) list -> default:(int * word) -> word
(** [one_hot_select b arms ~default] assumes the arm selects (and the
    default select) are pairwise disjoint and exactly one is active;
    the result is the OR of the gated words. Unlike a mux chain over
    disjoint selects, the expansion contains no redundant
    pass-through terms, so the synthesised logic stays fully
    testable. *)

val bit : word -> int -> word
(** One-bit word selecting bit [i]. *)

val slice : word -> hi:int -> lo:int -> word
val concat_words : high:word -> low:word -> word
val resize : builder -> word -> int -> word
(** Zero-extend or truncate. *)
