(** Netlist clean-up passes.

    The builder already performs constant folding and structural
    hashing while gates are created; what remains after lowering is
    logic that no primary output or register can observe. {!sweep}
    removes it. *)

val sweep : Mutsamp_netlist.Netlist.t -> Mutsamp_netlist.Netlist.t
(** Dead-gate elimination: keep the nets reachable backwards from the
    primary outputs (crossing flip-flops into their D cones) plus every
    primary input, renumber, and rebuild. Output and input names and
    order are preserved. *)

val sweep_stats :
  Mutsamp_netlist.Netlist.t -> Mutsamp_netlist.Netlist.t * int
(** {!sweep} plus the number of gates removed. *)

val to_nand_only : Mutsamp_netlist.Netlist.t -> Mutsamp_netlist.Netlist.t
(** Technology mapping to a NAND2+NOT library: every AND/OR/NOR/XOR/
    XNOR/BUF is rewritten into NAND gates and inverters (the builder's
    hash-consing shares the common subterms). Function-preserving —
    the test suite checks the miter. SAT-based redundancy removal
    lives in {!Mutsamp_atpg.Redundancy} (it needs the ATPG engines). *)
