open Mutsamp_hdl.Ast

let popcount v =
  let rec loop v acc = if v = 0 then acc else loop (v lsr 1) (acc + (v land 1)) in
  loop v 0

(* All 28 weight-2 bytes (so every check bit participates) plus the
   first 4 weight-3 bytes, in increasing order. Weight-1 values are
   reserved: they are the syndromes of check-bit errors, which the
   decoder leaves uncorrected. *)
let patterns =
  let of_weight w =
    List.filter (fun v -> popcount v = w) (List.init 256 (fun v -> v))
  in
  let weight2 = of_weight 2 in
  let weight3 = List.filteri (fun i _ -> i < 4) (of_weight 3) in
  Array.of_list (weight2 @ weight3)

let encode_checks ~data =
  let check = ref 0 in
  for j = 0 to 7 do
    let parity = ref 0 in
    for i = 0 to 31 do
      if (patterns.(i) lsr j) land 1 = 1 then parity := !parity lxor ((data lsr i) land 1)
    done;
    check := !check lor (!parity lsl j)
  done;
  !check

let reference_decode ~data ~check ~bypass =
  let syndrome = encode_checks ~data lxor check in
  if bypass || syndrome = 0 then data
  else begin
    let flip = ref 0 in
    Array.iteri (fun i p -> if p = syndrome then flip := 1 lsl i) patterns;
    data lxor !flip
  end

(* --- programmatic construction of the behavioural model -------------- *)

let bit_of e i = Bit (e, i)

let xor_chain = function
  | [] -> invalid_arg "c499: empty parity group"
  | first :: rest -> List.fold_left (fun acc e -> Binop (Xor, acc, e)) first rest

let design () =
  let decls =
    [
      { name = "data"; width = 32; kind = Input };
      { name = "check"; width = 8; kind = Input };
      { name = "r"; width = 1; kind = Input };
      { name = "od"; width = 32; kind = Output };
      { name = "syn"; width = 8; kind = Var };
      { name = "corr"; width = 32; kind = Var };
    ]
  in
  (* syn := (computed check bits) xor check, built bit by bit and
     concatenated MSB-first. *)
  let syndrome_bit j =
    let members =
      List.concat
        (List.mapi
           (fun i p -> if (p lsr j) land 1 = 1 then [ bit_of (Ref "data") i ] else [])
           (Array.to_list patterns))
    in
    Binop (Xor, xor_chain members, bit_of (Ref "check") j)
  in
  let syn_expr =
    let rec build j acc = if j > 7 then acc else build (j + 1) (Concat (syndrome_bit j, acc)) in
    build 1 (syndrome_bit 0)
  in
  (* Each correction bit is its own decode: bit i flips iff the
     syndrome names data bit i and correction is not bypassed. The H
     columns are pairwise distinct, so the flip conditions are disjoint
     by construction — computing them independently (rather than as a
     chain of conditional writes) keeps the synthesised decode
     irredundant. *)
  let flip_bit i =
    Binop
      ( And,
        Binop (Eq, Ref "syn", Const (lit ~width:8 patterns.(i))),
        Binop (Eq, Ref "r", Const (lit ~width:1 0)) )
  in
  let corr_expr =
    let rec build i acc =
      if i > 31 then acc else build (i + 1) (Concat (flip_bit i, acc))
    in
    build 1 (flip_bit 0)
  in
  let body =
    [
      Assign ("syn", syn_expr);
      Assign ("corr", corr_expr);
      Assign ("od", Binop (Xor, Ref "data", Ref "corr"));
    ]
  in
  Mutsamp_hdl.Check.elaborate { name = "c499"; decls; body }
