(** ISCAS'85 c499 — 32-bit single-error-correcting circuit, behavioural
    model.

    Re-implemented from the documented function: a (40,32) shortened
    Hamming decoder. 32 data bits and 8 received check bits enter; the
    circuit recomputes the check bits, forms the syndrome, and flips
    the data bit whose column pattern matches the syndrome. The [r]
    input bypasses correction (the original's mode control). 41 inputs
    and 32 outputs, like the original.

    The model is generated programmatically: the H-matrix columns are
    the 28 weight-2 bytes plus the first four weight-3 bytes, so every
    data bit has a distinct syndrome of weight ≥ 2 (weight-1 syndromes
    are check-bit errors and flip nothing) and every check bit covers
    some data. *)

val patterns : int array
(** The 32 H-matrix column patterns (8-bit, weight ≥ 2, distinct). *)

val design : unit -> Mutsamp_hdl.Ast.design
(** Elaborated behavioural model. *)

val reference_decode : data:int -> check:int -> bypass:bool -> int
(** Executable specification: the corrected 32-bit word, used by tests
    as an oracle independent of the HDL model. *)

val encode_checks : data:int -> int
(** The 8 check bits a matching encoder would transmit for [data]. *)
