(* The sequential benchmarks, in the HDL's concrete syntax. Keeping them
   as source text (rather than pre-built ASTs) exercises the parser and
   keeps the designs readable next to the ITC'99 documentation. *)

let b01 =
  {|-- b01: FSM comparing two serial flows (ITC'99-style re-implementation).
-- Two input streams are compared bit by bit; outp reports the running
-- comparison, overflw pulses when the comparison window overruns.
design b01 is
  input line1 : bit;
  input line2 : bit;
  output outp : bit;
  output overflw : bit;
  reg state : unsigned(3) := 0;
  const ST_A : unsigned(3) := 0;
  const ST_B : unsigned(3) := 1;
  const ST_C : unsigned(3) := 2;
  const ST_D : unsigned(3) := 3;
  const ST_E : unsigned(3) := 4;
  const ST_F : unsigned(3) := 5;
  const ST_WF0 : unsigned(3) := 6;
  const ST_WF1 : unsigned(3) := 7;
begin
  outp := '0';
  overflw := '0';
  case state is
    when 0 =>
      if line1 = line2 then
        state := ST_B;
      else
        state := ST_C;
      end if;
    when 1 =>
      outp := line1 and line2;
      if line1 = line2 then
        state := ST_D;
      else
        state := ST_E;
      end if;
    when 2 =>
      outp := line1 or line2;
      if line1 = line2 then
        state := ST_E;
      else
        state := ST_D;
      end if;
    when 3 =>
      outp := line1 xor line2;
      if line1 = '1' then
        state := ST_F;
      else
        state := ST_WF0;
      end if;
    when 4 =>
      outp := not (line1 xor line2);
      if line2 = '1' then
        state := ST_WF1;
      else
        state := ST_F;
      end if;
    when 5 =>
      overflw := line1 and line2;
      state := ST_A;
    when 6 =>
      outp := line1;
      if line1 = '0' and line2 = '0' then
        state := ST_A;
      end if;
    when 7 =>
      outp := line2;
      if line1 = '1' and line2 = '1' then
        state := ST_A;
        overflw := '1';
      end if;
  end case;
end design;
|}

let b02 =
  {|-- b02: serial BCD recogniser (ITC'99-style re-implementation).
-- Consumes 4-bit groups MSB first; u pulses after each group that
-- encodes a valid BCD digit (value 0..9).
design b02 is
  input linea : bit;
  output u : bit;
  reg state : unsigned(3) := 0;
begin
  u := '0';
  case state is
    when 0 =>
      if linea = '1' then
        state := 1;
      else
        state := 2;
      end if;
    when 1 =>
      if linea = '0' then
        state := 3;
      else
        state := 4;
      end if;
    when 2 =>
      state := 5;
    when 3 =>
      if linea = '0' then
        state := 6;
      else
        state := 7;
      end if;
    when 4 =>
      state := 7;
    when 5 =>
      state := 6;
    when 6 =>
      u := '1';
      state := 0;
    when 7 =>
      state := 0;
  end case;
end design;
|}

let b03 =
  {|-- b03: resource arbiter (ITC'99-style re-implementation).
-- Four requesters compete for one resource; grants are one-hot, held
-- for HOLD cycles, and rotated round-robin from the last winner.
design b03 is
  input req1 : bit;
  input req2 : bit;
  input req3 : bit;
  input req4 : bit;
  output grant : unsigned(4);
  output busy : bit;
  reg last : unsigned(2) := 0;
  reg count : unsigned(3) := 0;
  reg held : unsigned(4) := 0;
  const HOLD : unsigned(3) := 3;
begin
  grant := 0;
  busy := '0';
  if count /= 0 then
    busy := '1';
    grant := held;
    count := count - 1;
  else
    held := 0;
    case last is
      when 0 =>
        if req2 = '1' then
          held := 4'b0010;
          last := 1;
          count := HOLD;
        elsif req3 = '1' then
          held := 4'b0100;
          last := 2;
          count := HOLD;
        elsif req4 = '1' then
          held := 4'b1000;
          last := 3;
          count := HOLD;
        elsif req1 = '1' then
          held := 4'b0001;
          last := 0;
          count := HOLD;
        end if;
      when 1 =>
        if req3 = '1' then
          held := 4'b0100;
          last := 2;
          count := HOLD;
        elsif req4 = '1' then
          held := 4'b1000;
          last := 3;
          count := HOLD;
        elsif req1 = '1' then
          held := 4'b0001;
          last := 0;
          count := HOLD;
        elsif req2 = '1' then
          held := 4'b0010;
          last := 1;
          count := HOLD;
        end if;
      when 2 =>
        if req4 = '1' then
          held := 4'b1000;
          last := 3;
          count := HOLD;
        elsif req1 = '1' then
          held := 4'b0001;
          last := 0;
          count := HOLD;
        elsif req2 = '1' then
          held := 4'b0010;
          last := 1;
          count := HOLD;
        elsif req3 = '1' then
          held := 4'b0100;
          last := 2;
          count := HOLD;
        end if;
      when 3 =>
        if req1 = '1' then
          held := 4'b0001;
          last := 0;
          count := HOLD;
        elsif req2 = '1' then
          held := 4'b0010;
          last := 1;
          count := HOLD;
        elsif req3 = '1' then
          held := 4'b0100;
          last := 2;
          count := HOLD;
        elsif req4 = '1' then
          held := 4'b1000;
          last := 3;
          count := HOLD;
        end if;
    end case;
  end if;
end design;
|}

let b04 =
  {|-- b04: min/max tracker (ITC'99-style re-implementation).
-- Streams 8-bit samples; dout reports the running spread (max - min).
-- restart reloads both extrema from the current sample.
design b04 is
  input restart : bit;
  input data : unsigned(8);
  output dout : unsigned(8);
  output fresh : bit;
  reg rmax : unsigned(8) := 0;
  reg rmin : unsigned(8) := 255;
  const FLOOR : unsigned(8) := 0;
begin
  fresh := '0';
  if restart = '1' then
    rmax := data;
    rmin := data;
    dout := FLOOR;
    fresh := '1';
  else
    if data > rmax then
      rmax := data;
    end if;
    if data < rmin then
      rmin := data;
    end if;
    dout := rmax - rmin;
  end if;
end design;
|}

let b08 =
  {|-- b08: serial pattern matcher (ITC'99-style re-implementation).
-- While load is high the serial input shifts into the reference
-- pattern; afterwards it shifts into a window compared against it.
design b08 is
  input load : bit;
  input din : bit;
  output match_o : bit;
  reg pattern : unsigned(4) := 0;
  reg window : unsigned(4) := 0;
  var w : unsigned(4);
begin
  match_o := '0';
  if load = '1' then
    pattern := pattern[2:0] & din;
  else
    w := window[2:0] & din;
    window := w;
    match_o := w = pattern;
  end if;
end design;
|}

let b09 =
  {|-- b09: serial-to-parallel converter (ITC'99-style re-implementation).
-- Collects four serial bits MSB first; valid pulses as each completed
-- word appears on dout.
design b09 is
  input din : bit;
  output dout : unsigned(4);
  output valid : bit;
  reg shift : unsigned(4) := 0;
  reg count : unsigned(2) := 0;
  reg word : unsigned(4) := 0;
  reg full : bit := 0;
begin
  dout := word;
  valid := full;
  full := '0';
  shift := shift[2:0] & din;
  if count = 3 then
    word := shift[2:0] & din;
    full := '1';
    count := 0;
  else
    count := count + 1;
  end if;
end design;
|}

let b06 =
  {|-- b06: interrupt handler (ITC'99-style re-implementation).
-- Acknowledges one of two interrupt classes; cont_eql throttles the
-- handler and rtr requests a return to the polling loop.
design b06 is
  input eql : bit;
  input rtr : bit;
  output ackout : unsigned(2);
  output enable : bit;
  reg state : unsigned(2) := 0;
  const POLL : unsigned(2) := 0;
  const SERVE1 : unsigned(2) := 1;
  const SERVE2 : unsigned(2) := 2;
  const RETIRE : unsigned(2) := 3;
begin
  ackout := 0;
  enable := '0';
  case state is
    when 0 =>
      enable := '1';
      if eql = '1' and rtr = '0' then
        state := SERVE1;
      elsif rtr = '1' then
        state := SERVE2;
      end if;
    when 1 =>
      ackout := 1;
      if rtr = '1' then
        state := RETIRE;
      end if;
    when 2 =>
      ackout := 2;
      if eql = '0' then
        state := RETIRE;
      end if;
    when 3 =>
      ackout := 3;
      state := POLL;
  end case;
end design;
|}
