lib/circuits/c17.mli: Mutsamp_hdl Mutsamp_netlist
