lib/circuits/sources.mli:
