lib/circuits/c432.mli: Mutsamp_hdl
