lib/circuits/sources.ml:
