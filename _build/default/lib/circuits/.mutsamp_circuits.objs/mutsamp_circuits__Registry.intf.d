lib/circuits/registry.mli: Mutsamp_hdl
