lib/circuits/c432.ml: Mutsamp_hdl
