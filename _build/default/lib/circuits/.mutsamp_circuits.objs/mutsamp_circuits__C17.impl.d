lib/circuits/c17.ml: Mutsamp_hdl Mutsamp_netlist
