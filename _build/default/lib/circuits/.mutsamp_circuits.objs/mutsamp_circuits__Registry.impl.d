lib/circuits/registry.ml: C17 C432 C499 List Mutsamp_hdl Sources String
