lib/circuits/c499.ml: Array List Mutsamp_hdl
