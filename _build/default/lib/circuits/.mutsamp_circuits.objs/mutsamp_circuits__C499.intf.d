lib/circuits/c499.mli: Mutsamp_hdl
