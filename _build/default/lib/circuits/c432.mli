(** ISCAS'85 c432 — 27-channel interrupt controller, behavioural model.

    Re-implemented from the documented function (Hansen, Yalcin &
    Hayes, "Unveiling the ISCAS-85 benchmarks"): three 9-line request
    buses A > B > C in decreasing priority, gated by a 9-line enable
    bus E; the outputs flag which bus wins (PA/PB/PC) and encode the
    highest-priority active channel of the winning bus. 36 inputs and
    7 output bits, like the original; the gate-level structure comes
    from our own synthesis rather than the 1985 netlist. *)

val source : string
val design : unit -> Mutsamp_hdl.Ast.design
(** Elaborated behavioural model. *)
