(** ISCAS'85 c17 — the only benchmark small enough to reproduce
    gate-for-gate. Six NAND2 gates, five inputs, two outputs. Provided
    both as the exact netlist (ground truth for the structural tools)
    and as a behavioural design (ground truth for synthesis). *)

val netlist : unit -> Mutsamp_netlist.Netlist.t
(** The published gate-level structure (nets named G1..G23 in the
    standard numbering; inputs G1, G2, G3, G6, G7; outputs G22, G23). *)

val design : unit -> Mutsamp_hdl.Ast.design
(** Behavioural description of the same function, elaborated. *)
