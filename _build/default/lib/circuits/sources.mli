(** Concrete-syntax sources of the ITC'99-style sequential benchmarks.

    These are functional re-implementations written from the public
    descriptions of the Torino ITC'99 suite (b01: serial-flows
    comparator FSM; b02: serial BCD recogniser; b03: resource arbiter;
    b06: interrupt handler); gate counts differ from the originals but
    the designs exercise the same behavioural constructs — FSM [case]
    dispatch, logical/relational operators, named constants — which is
    what the mutation operators act on (see DESIGN.md, substitutions). *)

val b01 : string
val b02 : string
val b03 : string
val b04 : string
val b08 : string
val b09 : string
val b06 : string
