(** The paper's Non-Linear Fault Coverage Efficiency metric (section 3).

    Given stuck-at fault simulation results for mutation-generated data
    of length [L_m] and for a (longer) pseudo-random reference set:

    - MFC: coverage of the mutation data;
    - RFC(L): coverage of the first [L] random patterns;
    - ΔFC% = (MFC − RFC(L_m)) / RFC(L_m) × 100 — the relative coverage
      gain at equal length;
    - ΔL% = (L_r − L_m) / L_r × 100, with [L_r] the shortest random
      prefix reaching MFC — the relative length gain at equal coverage;
    - NLFCE = ΔFC% × ΔL% — except that when both gains are negative the
      (positive) product is negated, so a strict loss on both axes reads
      as a negative efficiency rather than masquerading as a gain. *)

(**

    When the random set never reaches MFC, [L_r] falls back to the full
    random length and {!t.random_saturated} is set: the reported ΔL%
    (and hence NLFCE) is then a lower bound. When RFC(L_m) is zero the
    gain is computed against a floor of 0.01 % so the metric stays
    finite; both conventions are recorded in DESIGN.md. *)

type t = {
  mutation_length : int;  (** L_m *)
  mfc : float;
  rfc_at_equal_length : float;
  random_length_for_mfc : int;  (** L_r (see [random_saturated]) *)
  random_saturated : bool;
  delta_fc_percent : float;
  delta_l_percent : float;
  nlfce : float;
}

val of_reports :
  ?min_compare_length:int ->
  mutation:Mutsamp_fault.Fsim.report ->
  random:Mutsamp_fault.Fsim.report ->
  unit ->
  t
(** Compute the metric from two fault-simulation reports over the same
    fault list. Raises [Invalid_argument] when the fault totals
    differ.

    [min_compare_length] (default 16) guards the equal-length
    comparison: a mutation set shorter than this is compared against
    that many random vectors, so microscopic test sets cannot claim
    astronomic relative gains against a near-zero random baseline. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
