module Fsim = Mutsamp_fault.Fsim

type t = {
  mutation_length : int;
  mfc : float;
  rfc_at_equal_length : float;
  random_length_for_mfc : int;
  random_saturated : bool;
  delta_fc_percent : float;
  delta_l_percent : float;
  nlfce : float;
}

let rfc_floor = 0.01

let of_reports ?(min_compare_length = 16) ~mutation ~random () =
  if mutation.Fsim.total <> random.Fsim.total then
    invalid_arg "Nlfce.of_reports: reports cover different fault lists";
  let mutation_length = mutation.Fsim.patterns_applied in
  let mfc = Fsim.coverage_percent mutation in
  (* Very short mutation sets are compared against a minimum random
     budget: a 2-vector set must beat 2 *and* [min_compare_length]
     random vectors to claim a coverage gain, otherwise the relative
     gain at microscopic lengths explodes meaninglessly. *)
  let compare_length = max mutation_length min_compare_length in
  let rfc_at_equal_length = Fsim.coverage_at random compare_length in
  let random_length_for_mfc, random_saturated =
    match Fsim.length_to_reach random mfc with
    | Some l -> (l, false)
    | None -> (random.Fsim.patterns_applied, true)
  in
  let delta_fc_percent =
    100. *. (mfc -. rfc_at_equal_length) /. Float.max rfc_at_equal_length rfc_floor
  in
  let delta_l_percent =
    if random_length_for_mfc = 0 then 0.
    else
      100.
      *. float_of_int (random_length_for_mfc - mutation_length)
      /. float_of_int random_length_for_mfc
  in
  (* The product of two losses must read as a loss: when both gains are
     negative, negate the (positive) product. *)
  let nlfce =
    if delta_fc_percent < 0. && delta_l_percent < 0. then
      -.(delta_fc_percent *. delta_l_percent)
    else delta_fc_percent *. delta_l_percent
  in
  {
    mutation_length;
    mfc;
    rfc_at_equal_length;
    random_length_for_mfc;
    random_saturated;
    delta_fc_percent;
    delta_l_percent;
    nlfce;
  }

let to_string t =
  Printf.sprintf
    "L_m=%d MFC=%.2f%% RFC(L_m)=%.2f%% L_r=%d%s dFC=%.2f%% dL=%.2f%% NLFCE=%+.1f"
    t.mutation_length t.mfc t.rfc_at_equal_length t.random_length_for_mfc
    (if t.random_saturated then "(sat)" else "")
    t.delta_fc_percent t.delta_l_percent t.nlfce

let pp fmt t = Format.pp_print_string fmt (to_string t)
