lib/sampling/nlfce.ml: Float Format Mutsamp_fault Printf
