lib/sampling/strategy.mli: Mutsamp_mutation Mutsamp_util
