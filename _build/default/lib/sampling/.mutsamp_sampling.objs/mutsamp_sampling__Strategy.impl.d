lib/sampling/strategy.ml: Array Float Hashtbl List Mutsamp_mutation Mutsamp_util Option
