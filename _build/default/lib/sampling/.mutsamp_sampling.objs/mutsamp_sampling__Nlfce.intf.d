lib/sampling/nlfce.mli: Format Mutsamp_fault
