let run (nl : Netlist.t) =
  let n = Array.length nl.gates in
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter mark nl.gates.(i).Gate.fanins
    end
  in
  (* [mark] recurses through every fanin, and a flip-flop's fanin is its
     D pin, so marking an output cone transitively pulls in the state
     logic it depends on — across any number of register stages. *)
  Array.iter (fun (_, net) -> mark net) nl.output_list;
  Array.iter (fun net -> live.(net) <- true) nl.input_nets;
  (* Renumber. *)
  let remap = Array.make n (-1) in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if live.(i) then begin
      remap.(i) <- !count;
      incr count
    end
  done;
  let gates =
    Array.of_list (List.filteri (fun i _ -> live.(i)) (Array.to_list nl.gates))
  in
  let gates =
    Array.map
      (fun (g : Gate.t) -> { g with Gate.fanins = Array.map (fun f -> remap.(f)) g.fanins })
      gates
  in
  let swept =
    {
      nl with
      Netlist.gates;
      input_nets = Array.map (fun net -> remap.(net)) nl.input_nets;
      output_list = Array.map (fun (name, net) -> (name, remap.(net))) nl.output_list;
      dff_nets =
        Array.of_list
          (List.filter_map
             (fun q -> if live.(q) then Some remap.(q) else None)
             (Array.to_list nl.dff_nets));
    }
  in
  Netlist.lint swept;
  (swept, n - !count)
