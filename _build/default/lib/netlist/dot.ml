let of_netlist (nl : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=LR;\n" nl.name);
  Array.iteri
    (fun i (g : Gate.t) ->
      let shape, label =
        match g.kind with
        | Gate.Pi name -> ("box", name)
        | Gate.Dff _ -> ("doublecircle", Printf.sprintf "DFF%d" i)
        | k -> ("ellipse", Printf.sprintf "%s%d" (Gate.kind_name k) i)
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=%s,label=%S];\n" i shape label);
      Array.iter
        (fun f -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f i))
        g.fanins)
    nl.gates;
  Array.iter
    (fun (name, net) ->
      Buffer.add_string buf
        (Printf.sprintf "  out_%s [shape=box,style=dashed,label=%S];\n" name name);
      Buffer.add_string buf (Printf.sprintf "  n%d -> out_%s;\n" net name))
    nl.output_list;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  (try output_string oc (of_netlist nl)
   with e -> close_out oc; raise e);
  close_out oc
