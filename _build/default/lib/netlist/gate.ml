type kind =
  | Pi of string
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Dff of bool

type t = { kind : kind; fanins : int array }

let arity = function
  | Pi _ | Const _ -> 0
  | Buf | Not | Dff _ -> 1
  | And | Or | Nand | Nor | Xor | Xnor -> 2

let kind_name = function
  | Pi _ -> "PI"
  | Const false -> "CONST0"
  | Const true -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Dff _ -> "DFF"

let is_commutative = function
  | And | Or | Nand | Nor | Xor | Xnor -> true
  | Pi _ | Const _ | Buf | Not | Dff _ -> false

let eval2 kind a b =
  match kind with
  | Buf -> a
  | Not -> lnot a
  | And -> a land b
  | Or -> a lor b
  | Nand -> lnot (a land b)
  | Nor -> lnot (a lor b)
  | Xor -> a lxor b
  | Xnor -> lnot (a lxor b)
  | Pi _ | Const _ | Dff _ -> invalid_arg "Gate.eval2: not a combinational gate"
