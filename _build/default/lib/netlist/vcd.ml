type recorder = {
  nl : Netlist.t;
  timescale : string;
  ids : string array;  (* VCD identifier per net *)
  mutable cycles : int array list;  (* reverse order; lane-0 bit per net *)
}

(* VCD identifiers: printable ASCII 33..126, base-94 little-endian. *)
let vcd_id k =
  let rec build k acc =
    let c = Char.chr (33 + (k mod 94)) in
    let acc = acc ^ String.make 1 c in
    if k < 94 then acc else build ((k / 94) - 1) acc
  in
  build k ""

let net_label (nl : Netlist.t) i =
  match nl.gates.(i).Gate.kind with
  | Gate.Pi name -> name
  | Gate.Dff _ -> Printf.sprintf "dff%d" i
  | _ -> Printf.sprintf "n%d" i

let create nl ~timescale =
  {
    nl;
    timescale;
    ids = Array.init (Array.length nl.Netlist.gates) vcd_id;
    cycles = [];
  }

let sample r sim =
  let values = Bitsim.net_values sim in
  r.cycles <- Array.map (fun w -> w land 1) values :: r.cycles

let contents r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" r.timescale);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" r.nl.Netlist.name);
  Array.iteri
    (fun i id ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s $end\n" id (net_label r.nl i)))
    r.ids;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let cycles = Array.of_list (List.rev r.cycles) in
  let previous = Array.make (Array.length r.ids) (-1) in
  Array.iteri
    (fun t cycle ->
      Buffer.add_string buf (Printf.sprintf "#%d\n" t);
      Array.iteri
        (fun i v ->
          if v <> previous.(i) then begin
            previous.(i) <- v;
            Buffer.add_string buf (Printf.sprintf "%d%s\n" v r.ids.(i))
          end)
        cycle)
    cycles;
  Buffer.contents buf

let write_file path r =
  let oc = open_out path in
  (try output_string oc (contents r) with e -> close_out oc; raise e);
  close_out oc
