(** Gate-level netlists and the builder that constructs them.

    The builder hash-conses combinational gates (structural hashing with
    operand normalisation for the symmetric gates) and performs local
    constant folding and idempotence rewrites, so synthesised netlists
    carry no trivially redundant logic. Flip-flops break the feedback
    loops: they are created with a dangling D pin that is connected
    after the next-state logic exists. *)

type t = {
  name : string;
  gates : Gate.t array;  (** net id = array index *)
  input_nets : int array;  (** in creation order *)
  output_list : (string * int) array;  (** PO name, driving net *)
  dff_nets : int array;  (** nets driven by flip-flops *)
}

exception Lint_error of string

val input_names : t -> string array
val find_input : t -> string -> int
(** Net of a named primary input. Raises [Not_found]. *)

val find_output : t -> string -> int
(** Driving net of a named primary output. Raises [Not_found]. *)

val num_gates : t -> int
(** Total nets, inputs and constants included. *)

val num_logic_gates : t -> int
(** Combinational gates only (no PI, constants or DFFs). *)

val num_dffs : t -> int

val fanouts : t -> int list array
(** [fanouts nl] maps every net to the gates it feeds (DFF D pins
    included). *)

val lint : t -> unit
(** Validate: fanin arities match gate kinds, fanin ids are in range,
    no combinational cycles, every output name unique. Raises
    {!Lint_error}. *)

(** {1 Building} *)

module Builder : sig
  type netlist := t
  type t

  val create : string -> t
  val input : t -> string -> int
  (** Declare a primary input. Raises [Invalid_argument] on a duplicate
      name. *)

  val const : t -> bool -> int
  val buf : t -> int -> int
  val not_ : t -> int -> int
  val and_ : t -> int -> int -> int
  val or_ : t -> int -> int -> int
  val nand_ : t -> int -> int -> int
  val nor_ : t -> int -> int -> int
  val xor_ : t -> int -> int -> int
  val xnor_ : t -> int -> int -> int

  val mux : t -> sel:int -> t1:int -> t0:int -> int
  (** [mux ~sel ~t1 ~t0] is [sel ? t1 : t0], built from basic gates. *)

  val dff : t -> init:bool -> int
  (** New flip-flop with a dangling D pin; connect it with
      {!connect_dff} before {!finalize}. *)

  val connect_dff : t -> int -> d:int -> unit
  (** Connect the D pin of flip-flop net [q]. Raises [Invalid_argument]
      if [q] is not a flip-flop or is already connected. *)

  val output : t -> string -> int -> unit
  (** Name a primary output. Raises [Invalid_argument] on duplicates. *)

  val finalize : t -> netlist
  (** Freeze and lint. Raises {!Lint_error} (e.g. an unconnected DFF). *)
end
