(** Topological levelisation.

    Orders the combinational gates so every gate appears after its
    fanins, treating primary inputs, constants and flip-flop outputs as
    level-0 sources. Simulators and the ATPG iterate this order. *)

type t = {
  order : int array;  (** combinational gates in evaluation order *)
  level : int array;  (** per net: 0 for sources, else 1 + max fanin level *)
  max_level : int;
}

val compute : Netlist.t -> t
(** Raises {!Netlist.Lint_error} on a combinational cycle. *)
