(** Bit-parallel netlist simulation.

    Every net carries a native-int word of {!lanes} independent
    simulation lanes (bit [k] of every word belongs to lane [k]). For a
    combinational circuit one [step] evaluates {!lanes} patterns at
    once; for a sequential circuit the lanes are {!lanes} independent
    sequences advancing in lockstep, each with its own flip-flop state.

    The fault simulator also uses this engine with all lanes carrying
    the same pattern: good value vs faulty value then differ per lane
    only where a fault is injected. *)

val lanes : int
(** Number of parallel lanes (62). *)

val all_ones : int
(** Word with every lane set. *)

type t

type injection =
  | Net of int  (** the whole net (stem fault) *)
  | Pin of { gate : int; pin : int }
      (** one gate's input pin (branch fault); for a flip-flop, pin 0 is
          the D input *)

val create : Netlist.t -> t
val netlist : t -> Netlist.t

val reset : t -> unit
(** Load every flip-flop's reset value into all lanes. *)

val step : t -> int array -> int array
(** [step t inputs] evaluates one cycle. [inputs] holds one word per
    primary input, in [input_nets] order; the result holds one word per
    primary output, in [output_list] order. Flip-flops advance.
    Raises [Invalid_argument] on an input arity mismatch. *)

val step_with_fault : t -> int array -> fault_net:int -> stuck_value:int -> int array
(** Like {!step}, but after evaluating [fault_net] its value is forced
    to [stuck_value] (a full word: 0 or {!all_ones}) before propagating
    further, and the faulty flip-flop state evolves accordingly.
    [fault_net] may be any net, including a PI or DFF output. *)

val step_injected : t -> int array -> inj:injection -> stuck:int -> int array
(** Generalisation of {!step_with_fault} covering pin (branch)
    faults. *)

type lane_injection = {
  inj : injection;
  lanes : int;  (** which lanes this fault lives in (bit mask) *)
  stuck : int;  (** 0 or {!all_ones}; applied only within [lanes] *)
}

val step_multi : t -> int array -> injections:lane_injection list -> int array
(** One cycle with several faults, each confined to its own lanes —
    the classical parallel-fault simulation step (lane 0 carries the
    good machine, lanes 1.. one fault each). Flip-flop state diverges
    per lane, so sequential circuits work naturally. *)

val net_values : t -> int array
(** A copy of all net words after the last step (diagnostic use). *)

val dff_states : t -> int array
(** Current flip-flop state words in [dff_nets] order — after a [step],
    the state the next cycle will start from. *)
