lib/netlist/bitsim.ml: Array Gate Hashtbl List Netlist Option Topo
