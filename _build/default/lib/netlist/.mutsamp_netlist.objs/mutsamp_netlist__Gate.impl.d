lib/netlist/gate.ml:
