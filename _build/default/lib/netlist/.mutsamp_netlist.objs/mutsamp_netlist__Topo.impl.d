lib/netlist/topo.ml: Array Gate List Netlist
