lib/netlist/sweep.ml: Array Gate List Netlist
