lib/netlist/benchfmt.ml: Array Buffer Gate Hashtbl List Netlist Printf String
