lib/netlist/benchfmt.mli: Netlist
