lib/netlist/stats.ml: Array Format Gate Hashtbl List Netlist Option Printf Stdlib String Topo
