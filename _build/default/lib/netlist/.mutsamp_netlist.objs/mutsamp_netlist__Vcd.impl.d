lib/netlist/vcd.ml: Array Bitsim Buffer Char Gate List Netlist Printf String
