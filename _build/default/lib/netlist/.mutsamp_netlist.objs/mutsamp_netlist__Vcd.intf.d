lib/netlist/vcd.mli: Bitsim Netlist
