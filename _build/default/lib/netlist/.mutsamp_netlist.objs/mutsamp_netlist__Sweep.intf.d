lib/netlist/sweep.mli: Netlist
