lib/netlist/netlist.mli: Gate
