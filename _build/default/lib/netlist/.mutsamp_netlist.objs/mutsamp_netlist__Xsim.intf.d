lib/netlist/xsim.mli: Netlist
