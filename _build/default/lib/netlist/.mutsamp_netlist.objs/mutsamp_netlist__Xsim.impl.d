lib/netlist/xsim.ml: Array Bitsim Gate Netlist Topo
