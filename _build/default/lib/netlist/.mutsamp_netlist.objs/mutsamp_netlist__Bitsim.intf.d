lib/netlist/bitsim.mli: Netlist
