lib/netlist/gate.mli:
