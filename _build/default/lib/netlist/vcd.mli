(** Value Change Dump (IEEE 1364) waveform writer.

    Records a {!Bitsim} run so traces open in GTKWave & friends. Lane 0
    of every word is dumped; nets are named like the DOT export
    (primary inputs keep their names, other nets are [n<id>]). *)

type recorder

val create : Netlist.t -> timescale:string -> recorder
(** [timescale] e.g. ["1ns"]. *)

val sample : recorder -> Bitsim.t -> unit
(** Record the current net values as the next cycle. Call after each
    [Bitsim.step] on the same netlist instance. *)

val contents : recorder -> string
(** Render header plus all recorded cycles. *)

val write_file : string -> recorder -> unit
