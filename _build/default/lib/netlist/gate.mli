(** Gate-level primitives.

    A netlist is an array of gates; the array index of a gate is also
    the id of the net it drives. Combinational gates have one or two
    fanins; a D flip-flop's single fanin is its D pin, its output is Q.
    Primary inputs and constants have no fanins. *)

type kind =
  | Pi of string  (** primary input, bit-level name (e.g. ["a\[3\]"]) *)
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Dff of bool  (** reset value; fanin is the D pin *)

type t = { kind : kind; fanins : int array }

val arity : kind -> int
(** Expected fanin count: 0 for [Pi]/[Const], 1 for [Buf]/[Not]/[Dff],
    2 for the binary gates. *)

val kind_name : kind -> string
(** Short name: ["PI"], ["AND"], ["DFF"], ... *)

val is_commutative : kind -> bool
(** True for the symmetric binary gates. *)

val eval2 : kind -> int -> int -> int
(** Bit-parallel evaluation over native-int words (one bit per
    simulation lane). Unary gates ignore the second word; [Pi], [Const]
    and [Dff] are not evaluable here and raise [Invalid_argument]. The
    result is NOT masked to the lane count — callers mask. *)
