(** Three-valued (0/1/X) netlist simulation.

    Used for initialisation analysis: start every flip-flop at X, apply
    a candidate synchronising sequence, and observe which state bits
    become known. Values are encoded as a pair of lane masks
    [(zeros, ones)] — a lane with neither bit set is X; like
    {!Bitsim}, {!Bitsim.lanes} patterns run in parallel.

    Pessimism note: the evaluation is gate-local ternary logic, so
    reconvergent X (e.g. [xor x x]) stays X even when the function is
    constant — standard for this kind of simulator. *)

type value = int * int
(** [(zeros, ones)] lane masks; a lane must not be set in both. *)

type t

val create : Netlist.t -> t
val x : value
val known : int -> value
(** [known word] is 0/1 per lane according to [word], nothing X. *)

val reset : t -> unit
(** Flip-flops to their declared reset values (all lanes known). *)

val reset_to_x : t -> unit
(** Flip-flops to X in every lane. *)

val step : t -> value array -> value array
(** One cycle; inputs and outputs in [input_nets]/[output_list] order.
    Raises [Invalid_argument] on arity mismatch or a malformed value. *)

val step_known : t -> int array -> value array
(** Convenience: fully-known input words (as for {!Bitsim.step}). *)

val dff_values : t -> value array
(** Current flip-flop state in [dff_nets] order. *)

val unknown_dff_lanes : t -> int
(** Number of (flip-flop, lane) pairs still X. *)

val synchronizing_length :
  Netlist.t -> sequence:int array -> int option
(** Apply the sequence (one known pattern per cycle, lane 0 semantics)
    from the all-X state; [Some n] is the first cycle count after which
    every flip-flop is known, [None] if the sequence never fully
    synchronises the machine. *)
