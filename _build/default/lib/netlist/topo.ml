type t = { order : int array; level : int array; max_level : int }

let compute (nl : Netlist.t) =
  let n = Array.length nl.gates in
  let level = Array.make n (-1) in
  let order = ref [] in
  let rec visit i =
    if level.(i) >= 0 then level.(i)
    else begin
      (* A -2 mark would flag a cycle, but Netlist.lint already rejects
         cyclic netlists; rely on that invariant. *)
      let l =
        match nl.gates.(i).Gate.kind with
        | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> 0
        | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
        | Gate.Xor | Gate.Xnor ->
          let m = Array.fold_left (fun acc f -> max acc (visit f)) 0 nl.gates.(i).Gate.fanins in
          order := i :: !order;
          m + 1
      in
      level.(i) <- l;
      l
    end
  in
  let max_level = ref 0 in
  for i = 0 to n - 1 do
    max_level := max !max_level (visit i)
  done;
  { order = Array.of_list (List.rev !order); level; max_level = !max_level }
