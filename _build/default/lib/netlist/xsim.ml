type value = int * int

let all = Bitsim.all_ones

type t = {
  nl : Netlist.t;
  topo : Topo.t;
  zeros : int array;  (* per net: lanes known 0 *)
  ones : int array;  (* per net: lanes known 1 *)
  state_zeros : int array;  (* per net, flip-flops only *)
  state_ones : int array;
}

let x : value = (0, 0)
let known word = (lnot word land all, word land all)

let create nl =
  let n = Array.length nl.Netlist.gates in
  {
    nl;
    topo = Topo.compute nl;
    zeros = Array.make n 0;
    ones = Array.make n 0;
    state_zeros = Array.make n 0;
    state_ones = Array.make n 0;
  }

let reset t =
  Array.iter
    (fun q ->
      match t.nl.Netlist.gates.(q).Gate.kind with
      | Gate.Dff init ->
        t.state_zeros.(q) <- (if init then 0 else all);
        t.state_ones.(q) <- (if init then all else 0)
      | _ -> assert false)
    t.nl.Netlist.dff_nets

let reset_to_x t =
  Array.iter
    (fun q ->
      t.state_zeros.(q) <- 0;
      t.state_ones.(q) <- 0)
    t.nl.Netlist.dff_nets

(* Ternary gate evaluation on (zeros, ones) masks. *)
let eval kind (a0, a1) (b0, b1) =
  match kind with
  | Gate.Buf -> (a0, a1)
  | Gate.Not -> (a1, a0)
  | Gate.And -> (a0 lor b0, a1 land b1)
  | Gate.Nand -> (a1 land b1, a0 lor b0)
  | Gate.Or -> (a0 land b0, a1 lor b1)
  | Gate.Nor -> (a1 lor b1, a0 land b0)
  | Gate.Xor -> ((a0 land b0) lor (a1 land b1), (a0 land b1) lor (a1 land b0))
  | Gate.Xnor -> ((a0 land b1) lor (a1 land b0), (a0 land b0) lor (a1 land b1))
  | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> invalid_arg "Xsim.eval: not combinational"

let check_value (z, o) =
  if z land o <> 0 then invalid_arg "Xsim: lane marked both 0 and 1";
  if z lor o <> (z lor o) land all then invalid_arg "Xsim: value exceeds lanes"

let step t inputs =
  if Array.length inputs <> Array.length t.nl.Netlist.input_nets then
    invalid_arg "Xsim.step: input arity mismatch";
  Array.iter check_value inputs;
  Array.iteri
    (fun k net ->
      let z, o = inputs.(k) in
      t.zeros.(net) <- z;
      t.ones.(net) <- o)
    t.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v ->
        t.zeros.(i) <- (if v then 0 else all);
        t.ones.(i) <- (if v then all else 0)
      | Gate.Dff _ ->
        t.zeros.(i) <- t.state_zeros.(i);
        t.ones.(i) <- t.state_ones.(i)
      | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
      | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    t.nl.Netlist.gates;
  Array.iter
    (fun i ->
      let g = t.nl.Netlist.gates.(i) in
      let a = (t.zeros.(g.Gate.fanins.(0)), t.ones.(g.Gate.fanins.(0))) in
      let b =
        if Array.length g.Gate.fanins > 1 then
          (t.zeros.(g.Gate.fanins.(1)), t.ones.(g.Gate.fanins.(1)))
        else (0, 0)
      in
      let z, o = eval g.Gate.kind a b in
      t.zeros.(i) <- z;
      t.ones.(i) <- o)
    t.topo.Topo.order;
  Array.iter
    (fun q ->
      let d = t.nl.Netlist.gates.(q).Gate.fanins.(0) in
      t.state_zeros.(q) <- t.zeros.(d);
      t.state_ones.(q) <- t.ones.(d))
    t.nl.Netlist.dff_nets;
  Array.map (fun (_, net) -> (t.zeros.(net), t.ones.(net))) t.nl.Netlist.output_list

let step_known t words = step t (Array.map known words)

let dff_values t =
  Array.map (fun q -> (t.state_zeros.(q), t.state_ones.(q))) t.nl.Netlist.dff_nets

let unknown_dff_lanes t =
  Array.fold_left
    (fun acc q ->
      let unknown = lnot (t.state_zeros.(q) lor t.state_ones.(q)) land all in
      let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
      acc + popcount unknown)
    0 t.nl.Netlist.dff_nets

let synchronizing_length nl ~sequence =
  let t = create nl in
  reset_to_x t;
  let n_in = Array.length nl.Netlist.input_nets in
  let fully_known () =
    Array.for_all
      (fun q -> (t.state_zeros.(q) lor t.state_ones.(q)) land 1 = 1)
      nl.Netlist.dff_nets
  in
  if Array.length nl.Netlist.dff_nets = 0 then Some 0
  else begin
    let rec apply c =
      if fully_known () then Some c
      else if c >= Array.length sequence then None
      else begin
        let code = sequence.(c) in
        let words = Array.init n_in (fun k -> if (code lsr k) land 1 = 1 then all else 0) in
        ignore (step_known t words);
        apply (c + 1)
      end
    in
    apply 0
  end
