let lanes = 62
let all_ones = (1 lsl lanes) - 1

type t = {
  nl : Netlist.t;
  topo : Topo.t;
  values : int array;  (* per net, one word of lanes *)
  state : int array;  (* per net, flip-flop state (unused for others) *)
}

type injection =
  | Net of int
  | Pin of { gate : int; pin : int }

let create nl =
  let n = Array.length nl.Netlist.gates in
  { nl; topo = Topo.compute nl; values = Array.make n 0; state = Array.make n 0 }

let netlist t = t.nl

let reset t =
  Array.iter
    (fun q ->
      match t.nl.Netlist.gates.(q).Gate.kind with
      | Gate.Dff init -> t.state.(q) <- (if init then all_ones else 0)
      | _ -> assert false)
    t.nl.Netlist.dff_nets

(* One evaluation cycle with an optional fault injection. *)
let step_internal t inputs fault stuck =
  let gates = t.nl.Netlist.gates in
  if Array.length inputs <> Array.length t.nl.Netlist.input_nets then
    invalid_arg "Bitsim.step: input arity mismatch";
  let forced_net =
    match fault with Some (Net n) -> n | Some (Pin _) | None -> -1
  in
  let pin_gate, pin_idx =
    match fault with Some (Pin { gate; pin }) -> (gate, pin) | Some (Net _) | None -> (-1, -1)
  in
  let force i v = if i = forced_net then stuck else v in
  (* Sources: PIs, constants, flip-flop outputs. *)
  Array.iteri
    (fun k net -> t.values.(net) <- force net (inputs.(k) land all_ones))
    t.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v -> t.values.(i) <- force i (if v then all_ones else 0)
      | Gate.Dff _ -> t.values.(i) <- force i t.state.(i)
      | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
      | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    gates;
  (* Combinational gates in topological order. *)
  Array.iter
    (fun i ->
      let g = gates.(i) in
      let operand k =
        let v = t.values.(g.Gate.fanins.(k)) in
        if i = pin_gate && k = pin_idx then stuck else v
      in
      let a = operand 0 in
      let b = if Array.length g.Gate.fanins > 1 then operand 1 else 0 in
      t.values.(i) <- force i (Gate.eval2 g.Gate.kind a b land all_ones))
    t.topo.Topo.order;
  (* Advance flip-flops: D pins may themselves carry a pin fault. *)
  Array.iter
    (fun q ->
      let d = gates.(q).Gate.fanins.(0) in
      let v = if q = pin_gate && pin_idx = 0 then stuck else t.values.(d) in
      t.state.(q) <- v)
    t.nl.Netlist.dff_nets;
  Array.map (fun (_, net) -> t.values.(net)) t.nl.Netlist.output_list

let step t inputs = step_internal t inputs None 0

let step_with_fault t inputs ~fault_net ~stuck_value =
  step_internal t inputs (Some (Net fault_net)) (stuck_value land all_ones)

let step_injected t inputs ~inj ~stuck =
  step_internal t inputs (Some inj) (stuck land all_ones)

type lane_injection = {
  inj : injection;
  lanes : int;
  stuck : int;
}

(* Multi-fault evaluation: per-net and per-pin forcing masks are merged
   up front, then one pass applies [value = (v land ~mask) lor forced]
   wherever a mask is set. *)
let step_multi t inputs ~injections =
  let gates = t.nl.Netlist.gates in
  if Array.length inputs <> Array.length t.nl.Netlist.input_nets then
    invalid_arg "Bitsim.step_multi: input arity mismatch";
  let n = Array.length gates in
  let net_mask = Array.make n 0 in
  let net_forced = Array.make n 0 in
  let pin_overrides = Hashtbl.create 8 in
  List.iter
    (fun { inj; lanes; stuck } ->
      let lanes = lanes land all_ones in
      match inj with
      | Net net ->
        net_mask.(net) <- net_mask.(net) lor lanes;
        net_forced.(net) <-
          (net_forced.(net) land lnot lanes) lor (stuck land lanes)
      | Pin { gate; pin } ->
        let m0, f0 =
          Option.value ~default:(0, 0) (Hashtbl.find_opt pin_overrides (gate, pin))
        in
        Hashtbl.replace pin_overrides (gate, pin)
          (m0 lor lanes, (f0 land lnot lanes) lor (stuck land lanes)))
    injections;
  let force i v =
    let m = net_mask.(i) in
    if m = 0 then v else (v land lnot m) lor (net_forced.(i) land m)
  in
  Array.iteri
    (fun k net -> t.values.(net) <- force net (inputs.(k) land all_ones))
    t.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v -> t.values.(i) <- force i (if v then all_ones else 0)
      | Gate.Dff _ -> t.values.(i) <- force i t.state.(i)
      | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
      | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    gates;
  Array.iter
    (fun i ->
      let g = gates.(i) in
      let operand k =
        let v = t.values.(g.Gate.fanins.(k)) in
        match Hashtbl.find_opt pin_overrides (i, k) with
        | None -> v
        | Some (m, f) -> (v land lnot m) lor (f land m)
      in
      let a = operand 0 in
      let b = if Array.length g.Gate.fanins > 1 then operand 1 else 0 in
      t.values.(i) <- force i (Gate.eval2 g.Gate.kind a b land all_ones))
    t.topo.Topo.order;
  Array.iter
    (fun q ->
      let d = gates.(q).Gate.fanins.(0) in
      let v =
        match Hashtbl.find_opt pin_overrides (q, 0) with
        | None -> t.values.(d)
        | Some (m, f) -> (t.values.(d) land lnot m) lor (f land m)
      in
      t.state.(q) <- v)
    t.nl.Netlist.dff_nets;
  Array.map (fun (_, net) -> t.values.(net)) t.nl.Netlist.output_list

let net_values t = Array.copy t.values

let dff_states t = Array.map (fun q -> t.state.(q)) t.nl.Netlist.dff_nets
