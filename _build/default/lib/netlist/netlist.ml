type t = {
  name : string;
  gates : Gate.t array;
  input_nets : int array;
  output_list : (string * int) array;
  dff_nets : int array;
}

exception Lint_error of string

let lint_fail fmt = Printf.ksprintf (fun msg -> raise (Lint_error msg)) fmt

let input_names t =
  Array.map
    (fun net ->
      match t.gates.(net).Gate.kind with
      | Gate.Pi name -> name
      | _ -> assert false)
    t.input_nets

let find_input t name =
  let names = input_names t in
  let rec scan i =
    if i >= Array.length names then raise Not_found
    else if names.(i) = name then t.input_nets.(i)
    else scan (i + 1)
  in
  scan 0

let find_output t name =
  let rec scan i =
    if i >= Array.length t.output_list then raise Not_found
    else
      let n, net = t.output_list.(i) in
      if n = name then net else scan (i + 1)
  in
  scan 0

let num_gates t = Array.length t.gates

let num_logic_gates t =
  Array.fold_left
    (fun acc (g : Gate.t) ->
      match g.kind with
      | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> acc
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor -> acc + 1)
    0 t.gates

let num_dffs t = Array.length t.dff_nets

let fanouts t =
  let fo = Array.make (Array.length t.gates) [] in
  Array.iteri
    (fun i (g : Gate.t) -> Array.iter (fun f -> fo.(f) <- i :: fo.(f)) g.fanins)
    t.gates;
  Array.map List.rev fo

let lint t =
  let n = Array.length t.gates in
  Array.iteri
    (fun i (g : Gate.t) ->
      if Array.length g.fanins <> Gate.arity g.kind then
        lint_fail "%s: gate %d (%s) has %d fanins, expected %d" t.name i
          (Gate.kind_name g.kind) (Array.length g.fanins) (Gate.arity g.kind);
      Array.iter
        (fun f ->
          if f < 0 || f >= n then lint_fail "%s: gate %d fanin %d out of range" t.name i f)
        g.fanins)
    t.gates;
  Array.iter
    (fun (name, net) ->
      if net < 0 || net >= n then lint_fail "%s: output %s drives bad net %d" t.name name net)
    t.output_list;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then lint_fail "%s: duplicate output %s" t.name name;
      Hashtbl.add seen name ())
    t.output_list;
  (* Combinational cycle detection: DFS over comb gates, DFF fanins are
     cut points. 0 = unvisited, 1 = on stack, 2 = done. *)
  let mark = Array.make n 0 in
  let rec dfs i =
    if mark.(i) = 1 then lint_fail "%s: combinational cycle through net %d" t.name i;
    if mark.(i) = 0 then begin
      mark.(i) <- 1;
      (match t.gates.(i).Gate.kind with
       | Gate.Dff _ | Gate.Pi _ | Gate.Const _ -> ()
       | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
       | Gate.Xor | Gate.Xnor -> Array.iter dfs t.gates.(i).Gate.fanins);
      mark.(i) <- 2
    end
  in
  for i = 0 to n - 1 do dfs i done

module Builder = struct
  type entry = { mutable kind : Gate.kind; mutable fanins : int array }

  type t = {
    bname : string;
    mutable entries : entry list;  (* reverse order *)
    mutable count : int;
    strash : (Gate.kind * int * int, int) Hashtbl.t;
    input_order : int list ref;
    input_names_seen : (string, unit) Hashtbl.t;
    outputs : (string * int) list ref;
    output_names_seen : (string, unit) Hashtbl.t;
    mutable dffs : int list;  (* reverse order *)
    mutable arr : entry array;  (* index -> entry, grown lazily *)
  }

  let create bname =
    {
      bname;
      entries = [];
      count = 0;
      strash = Hashtbl.create 256;
      input_order = ref [];
      input_names_seen = Hashtbl.create 16;
      outputs = ref [];
      output_names_seen = Hashtbl.create 16;
      dffs = [];
      arr = [||];
    }

  let entry_at b i =
    if i < 0 || i >= b.count then invalid_arg "Builder: net id out of range";
    b.arr.(i)

  let push b kind fanins =
    let e = { kind; fanins } in
    b.entries <- e :: b.entries;
    let id = b.count in
    b.count <- id + 1;
    if id >= Array.length b.arr then begin
      let bigger = Array.make (max 64 (2 * Array.length b.arr)) e in
      Array.blit b.arr 0 bigger 0 (Array.length b.arr);
      b.arr <- bigger
    end;
    b.arr.(id) <- e;
    id

  let input b name =
    if Hashtbl.mem b.input_names_seen name then
      invalid_arg ("Builder.input: duplicate input " ^ name);
    Hashtbl.add b.input_names_seen name ();
    let id = push b (Gate.Pi name) [||] in
    b.input_order := id :: !(b.input_order);
    id

  let const b v =
    let key = (Gate.Const v, -1, -1) in
    match Hashtbl.find_opt b.strash key with
    | Some id -> id
    | None ->
      let id = push b (Gate.Const v) [||] in
      Hashtbl.add b.strash key id;
      id

  let is_const b i =
    match (entry_at b i).kind with Gate.Const v -> Some v | _ -> None

  (* Hash-consed unary gate with local folding. *)
  let unary b kind a =
    match kind, is_const b a, (entry_at b a).kind with
    | Gate.Buf, _, _ -> a
    | Gate.Not, Some v, _ -> const b (not v)
    | Gate.Not, None, Gate.Not ->
      (* not (not x) = x *)
      (entry_at b a).fanins.(0)
    | _ ->
      let key = (kind, a, -1) in
      (match Hashtbl.find_opt b.strash key with
       | Some id -> id
       | None ->
         let id = push b kind [| a |] in
         Hashtbl.add b.strash key id;
         id)

  let not_ b a = unary b Gate.Not a
  let buf b a = unary b Gate.Buf a

  (* Constant folding and idempotence for the binary gates; anything
     left is hash-consed with sorted operands. *)
  let binary b kind a0 a1 =
    let a, c = if a0 <= a1 then (a0, a1) else (a1, a0) in
    let fold =
      match kind, is_const b a, is_const b c with
      | Gate.And, Some false, _ | Gate.And, _, Some false -> Some (const b false)
      | Gate.And, Some true, _ -> Some c
      | Gate.And, _, Some true -> Some a
      | Gate.Or, Some true, _ | Gate.Or, _, Some true -> Some (const b true)
      | Gate.Or, Some false, _ -> Some c
      | Gate.Or, _, Some false -> Some a
      | Gate.Xor, Some false, _ -> Some c
      | Gate.Xor, _, Some false -> Some a
      | Gate.Xor, Some true, _ -> Some (not_ b c)
      | Gate.Xor, _, Some true -> Some (not_ b a)
      | Gate.Nand, Some false, _ | Gate.Nand, _, Some false -> Some (const b true)
      | Gate.Nand, Some true, _ -> Some (not_ b c)
      | Gate.Nand, _, Some true -> Some (not_ b a)
      | Gate.Nor, Some true, _ | Gate.Nor, _, Some true -> Some (const b false)
      | Gate.Nor, Some false, _ -> Some (not_ b c)
      | Gate.Nor, _, Some false -> Some (not_ b a)
      | Gate.Xnor, Some true, _ -> Some c
      | Gate.Xnor, _, Some true -> Some a
      | Gate.Xnor, Some false, _ -> Some (not_ b c)
      | Gate.Xnor, _, Some false -> Some (not_ b a)
      | _, None, None when a = c ->
        (match kind with
         | Gate.And | Gate.Or -> Some a
         | Gate.Xor -> Some (const b false)
         | Gate.Xnor -> Some (const b true)
         | Gate.Nand | Gate.Nor -> Some (not_ b a)
         | _ -> None)
      | _ -> None
    in
    match fold with
    | Some id -> id
    | None ->
      let key = (kind, a, c) in
      (match Hashtbl.find_opt b.strash key with
       | Some id -> id
       | None ->
         let id = push b kind [| a; c |] in
         Hashtbl.add b.strash key id;
         id)

  let and_ b x y = binary b Gate.And x y
  let or_ b x y = binary b Gate.Or x y
  let nand_ b x y = binary b Gate.Nand x y
  let nor_ b x y = binary b Gate.Nor x y
  let xor_ b x y = binary b Gate.Xor x y
  let xnor_ b x y = binary b Gate.Xnor x y

  let mux b ~sel ~t1 ~t0 =
    if t1 = t0 then t1
    else or_ b (and_ b sel t1) (and_ b (not_ b sel) t0)

  let dff b ~init =
    let id = push b (Gate.Dff init) [| -1 |] in
    b.dffs <- id :: b.dffs;
    id

  let connect_dff b q ~d =
    let e = entry_at b q in
    (match e.kind with
     | Gate.Dff _ -> ()
     | _ -> invalid_arg "Builder.connect_dff: not a flip-flop");
    if e.fanins.(0) <> -1 then invalid_arg "Builder.connect_dff: already connected";
    if d < 0 || d >= b.count then invalid_arg "Builder.connect_dff: bad D net";
    e.fanins.(0) <- d

  let output b name net =
    if Hashtbl.mem b.output_names_seen name then
      invalid_arg ("Builder.output: duplicate output " ^ name);
    if net < 0 || net >= b.count then invalid_arg "Builder.output: bad net";
    Hashtbl.add b.output_names_seen name ();
    b.outputs := (name, net) :: !(b.outputs)

  let finalize b =
    let entries = Array.of_list (List.rev b.entries) in
    let gates =
      Array.map (fun e -> { Gate.kind = e.kind; fanins = Array.copy e.fanins }) entries
    in
    Array.iteri
      (fun i (g : Gate.t) ->
        match g.kind with
        | Gate.Dff _ when g.fanins.(0) = -1 ->
          lint_fail "%s: flip-flop net %d has no D connection" b.bname i
        | _ -> ())
      gates;
    let nl =
      {
        name = b.bname;
        gates;
        input_nets = Array.of_list (List.rev !(b.input_order));
        output_list = Array.of_list (List.rev !(b.outputs));
        dff_nets = Array.of_list (List.rev b.dffs);
      }
    in
    lint nl;
    nl
end
