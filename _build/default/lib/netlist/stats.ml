type t = {
  nets : int;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  logic_gates : int;
  gate_histogram : (string * int) list;
  levels : int;
  max_fanout : int;
}

let compute (nl : Netlist.t) =
  let histogram = Hashtbl.create 16 in
  Array.iter
    (fun (g : Gate.t) ->
      let key = Gate.kind_name g.kind in
      Hashtbl.replace histogram key (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    nl.gates;
  let gate_histogram =
    List.sort Stdlib.compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram [])
  in
  let topo = Topo.compute nl in
  let max_fanout =
    Array.fold_left (fun acc fo -> max acc (List.length fo)) 0 (Netlist.fanouts nl)
  in
  {
    nets = Netlist.num_gates nl;
    primary_inputs = Array.length nl.input_nets;
    primary_outputs = Array.length nl.output_list;
    flip_flops = Netlist.num_dffs nl;
    logic_gates = Netlist.num_logic_gates nl;
    gate_histogram;
    levels = topo.Topo.max_level;
    max_fanout;
  }

let to_string s =
  let hist =
    String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) s.gate_histogram)
  in
  Printf.sprintf
    "nets=%d PI=%d PO=%d DFF=%d gates=%d levels=%d max_fanout=%d [%s]"
    s.nets s.primary_inputs s.primary_outputs s.flip_flops s.logic_gates s.levels
    s.max_fanout hist

let pp fmt s = Format.pp_print_string fmt (to_string s)
