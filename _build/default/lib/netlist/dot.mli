(** Graphviz export for debugging and documentation. *)

val of_netlist : Netlist.t -> string
(** A [digraph] with one node per gate (inputs as boxes, flip-flops as
    double circles) and one edge per fanin connection; primary outputs
    appear as labelled sink nodes. *)

val write_file : string -> Netlist.t -> unit
(** [write_file path nl] writes {!of_netlist} to [path]. *)
