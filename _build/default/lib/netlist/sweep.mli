(** Dead-gate elimination.

    Keeps the nets reachable backwards from the primary outputs
    (crossing flip-flops into their D cones) plus every primary input,
    renumbers, and rebuilds. Interface names and order are
    preserved. *)

val run : Netlist.t -> Netlist.t * int
(** The swept netlist and the number of gates removed. *)
