module Ast = Mutsamp_hdl.Ast
module Sim = Mutsamp_hdl.Sim
module Stimuli = Mutsamp_hdl.Stimuli
module Check = Mutsamp_hdl.Check
module Bitvec = Mutsamp_util.Bitvec

type verdict =
  | Equivalent
  | Distinguished of Sim.stimulus list
  | Unknown

let verdict_name = function
  | Equivalent -> "equivalent"
  | Distinguished _ -> "distinguished"
  | Unknown -> "unknown"

let same_interface a b =
  let sig_of d =
    ( List.map (fun (dc : Ast.decl) -> (dc.name, dc.width)) (Ast.inputs d),
      List.map (fun (dc : Ast.decl) -> (dc.name, dc.width)) (Ast.outputs d) )
  in
  sig_of a = sig_of b

let require_same_interface a b who =
  if not (same_interface a b) then
    invalid_arg (Printf.sprintf "Equivalence.%s: designs have different interfaces" who)

let exhaustive_combinational ?(max_bits = 16) a b =
  require_same_interface a b "exhaustive_combinational";
  if not (Check.is_combinational a && Check.is_combinational b) then
    invalid_arg "Equivalence.exhaustive_combinational: sequential design";
  let bits = Stimuli.input_bits a in
  if bits > max_bits then Unknown
  else begin
    let sim_a = Sim.create a and sim_b = Sim.create b in
    let rec scan code =
      if code >= 1 lsl bits then Equivalent
      else
        let stim = Stimuli.of_code a code in
        let oa = Sim.step sim_a stim and ob = Sim.step sim_b stim in
        if Sim.outputs_equal oa ob then scan (code + 1) else Distinguished [ stim ]
    in
    scan 0
  end

(* Joint state of the product machine: the register values of both
   machines, encoded as integer lists (registers in declaration
   order). *)
let reg_key sim =
  List.map (fun (_, v) -> Bitvec.to_int v) (Sim.observe_regs sim)

let product_bfs ?(max_pairs = 65536) ?(max_bits = 12) a b =
  require_same_interface a b "product_bfs";
  let bits = Stimuli.input_bits a in
  if bits > max_bits then Unknown
  else begin
    let sim_a = Sim.create a and sim_b = Sim.create b in
    Sim.reset sim_a;
    Sim.reset sim_b;
    let initial = (reg_key sim_a, reg_key sim_b) in
    let restore (ka, kb) =
      let assign sim key =
        let names = List.map fst (Sim.observe_regs sim) in
        let widths =
          List.map (fun (_, v) -> Bitvec.width v) (Sim.observe_regs sim)
        in
        Sim.set_regs sim
          (List.map2
             (fun (name, width) v -> (name, Bitvec.make ~width v))
             (List.combine names widths)
             key)
      in
      assign sim_a ka;
      assign sim_b kb
    in
    let visited = Hashtbl.create 1024 in
    Hashtbl.replace visited initial ([] : Sim.stimulus list);
    let queue = Queue.create () in
    Queue.push initial queue;
    let stimuli = List.init (1 lsl bits) (Stimuli.of_code a) in
    let exception Found of Sim.stimulus list in
    let exception Budget in
    try
      while not (Queue.is_empty queue) do
        let state = Queue.pop queue in
        let path_rev = Hashtbl.find visited state in
        List.iter
          (fun stim ->
            restore state;
            let oa = Sim.step sim_a stim and ob = Sim.step sim_b stim in
            if not (Sim.outputs_equal oa ob) then
              raise (Found (List.rev (stim :: path_rev)));
            let next = (reg_key sim_a, reg_key sim_b) in
            if not (Hashtbl.mem visited next) then begin
              if Hashtbl.length visited >= max_pairs then raise Budget;
              Hashtbl.replace visited next (stim :: path_rev);
              Queue.push next queue
            end)
          stimuli
      done;
      Equivalent
    with
    | Found seq -> Distinguished seq
    | Budget -> Unknown
  end

let check ?max_pairs ?max_bits a b =
  if Check.is_combinational a && Check.is_combinational b then
    exhaustive_combinational ?max_bits a b
  else product_bfs ?max_pairs ?max_bits a b
