(** Simulation-based equivalence checking between a design and a mutant.

    Two complete procedures are provided for small designs:

    - {!exhaustive_combinational}: truth-table comparison, exact for
      register-free designs whose input space fits the bit budget;
    - {!product_bfs}: breadth-first exploration of the product machine
      from the joint reset state, exact for sequential designs whose
      reachable product state space and per-cycle input space fit the
      budgets. The counterexample it returns is a shortest
      distinguishing sequence, which doubles as a directed
      mutant-killing test.

    Combinational designs with wide inputs need the SAT-based miter
    check (see the [sat] library); {!check} returns {!Unknown} for
    those. *)

type verdict =
  | Equivalent
  | Distinguished of Mutsamp_hdl.Sim.stimulus list
      (** a sequence that drives the two designs to different outputs *)
  | Unknown  (** budgets exhausted: not proven either way *)

val verdict_name : verdict -> string

val exhaustive_combinational :
  ?max_bits:int -> Mutsamp_hdl.Ast.design -> Mutsamp_hdl.Ast.design -> verdict
(** Compare truth tables. [max_bits] (default 16) bounds the input
    space at [2^max_bits] vectors; wider designs yield {!Unknown}.
    Raises [Invalid_argument] if either design has registers or the
    interfaces differ. *)

val product_bfs :
  ?max_pairs:int ->
  ?max_bits:int ->
  Mutsamp_hdl.Ast.design ->
  Mutsamp_hdl.Ast.design ->
  verdict
(** Explore the product machine. [max_pairs] (default 65536) bounds the
    visited joint-state count, [max_bits] (default 12) the per-cycle
    input space. Raises [Invalid_argument] if the interfaces differ. *)

val check :
  ?max_pairs:int ->
  ?max_bits:int ->
  Mutsamp_hdl.Ast.design ->
  Mutsamp_hdl.Ast.design ->
  verdict
(** Dispatch: {!exhaustive_combinational} for register-free designs,
    {!product_bfs} otherwise. *)

val same_interface : Mutsamp_hdl.Ast.design -> Mutsamp_hdl.Ast.design -> bool
(** Same input and output names and widths, in order. *)
