open Mutsamp_hdl.Ast
module Check = Mutsamp_hdl.Check
module Pretty = Mutsamp_hdl.Pretty

(* Traversal with an explicit rebuild continuation: at every node we hold
   a function from a replacement node to the whole mutated design, so
   emitting a mutant is one continuation call. Site ids are assigned in
   pre-order, statements and expressions numbered from the same
   counter. *)

type ctx = {
  design : design;
  widths : (string, int) Hashtbl.t;
  readables : (int, string list) Hashtbl.t;  (* width -> readable names *)
  assignables : (int, string list) Hashtbl.t;  (* width -> writable names *)
  const_values : (int, int list) Hashtbl.t;  (* width -> declared constant values *)
  mutable next_site : int;
  mutable next_id : int;
  mutable acc : Mutant.t list;  (* reverse order *)
}

let multi_add table key v =
  let cur = Option.value ~default:[] (Hashtbl.find_opt table key) in
  Hashtbl.replace table key (cur @ [ v ])

let build_ctx d =
  let widths = Hashtbl.create 16 in
  let readables = Hashtbl.create 8 in
  let assignables = Hashtbl.create 8 in
  let const_values = Hashtbl.create 8 in
  List.iter
    (fun (dc : decl) ->
      Hashtbl.replace widths dc.name dc.width;
      (match dc.kind with
       | Input | Reg _ | Var | Const_decl _ -> multi_add readables dc.width dc.name
       | Output -> ());
      (match dc.kind with
       | Output | Reg _ | Var -> multi_add assignables dc.width dc.name
       | Input | Const_decl _ -> ());
      (match dc.kind with
       | Const_decl l -> multi_add const_values dc.width l.value
       | Input | Output | Reg _ | Var -> ()))
    d.decls;
  {
    design = d;
    widths;
    readables;
    assignables;
    const_values;
    next_site = 0;
    next_id = 0;
    acc = [];
  }

let fresh_site ctx =
  let s = ctx.next_site in
  ctx.next_site <- s + 1;
  s

let emit ctx op site info design =
  let m = { Mutant.id = ctx.next_id; op; site; info; design } in
  ctx.next_id <- ctx.next_id + 1;
  ctx.acc <- m :: ctx.acc

let lookup_list table key = Option.value ~default:[] (Hashtbl.find_opt table key)

let logical_ops = [ And; Or; Xor; Nand; Nor; Xnor ]
let arith_ops = [ Add; Sub ]
let relational_ops = [ Eq; Neq; Lt; Le; Gt; Ge ]

let mask w = (1 lsl w) - 1

(* Candidate replacement values for a literal of value [v] in width [w]:
   off-by-one in both directions plus the extremes. *)
let cr_values ~width v =
  let m = mask width in
  let candidates = [ (v + 1) land m; (v - 1) land m; 0; m ] in
  List.sort_uniq Stdlib.compare (List.filter (fun x -> x <> v) candidates)

(* Candidate constants replacing a variable reference: extremes, one,
   and every declared constant of that width. *)
let cvr_values ctx ~width =
  let m = mask width in
  List.sort_uniq Stdlib.compare ([ 0; 1 land m; m ] @ lookup_list ctx.const_values width)

let describe_expr_change before after =
  Printf.sprintf "%s -> %s" (Pretty.expr before) (Pretty.expr after)

(* --- expression traversal --------------------------------------------- *)

let rec visit_expr ctx (e : expr) (k : expr -> design) =
  let site = fresh_site ctx in
  let emit_repl op e' = emit ctx op site (describe_expr_change e e') (k e') in
  (match e with
   | Const l ->
     let w = Option.get l.width in
     List.iter
       (fun v -> emit_repl Operator.CR (Const { value = v; width = Some w }))
       (cr_values ~width:w l.value);
     List.iter
       (fun name -> emit_repl Operator.VCR (Ref name))
       (lookup_list ctx.readables w)
   | Ref name ->
     let w = Hashtbl.find ctx.widths name in
     List.iter
       (fun other -> if other <> name then emit_repl Operator.VR (Ref other))
       (lookup_list ctx.readables w);
     List.iter
       (fun v -> emit_repl Operator.CVR (Const { value = v; width = Some w }))
       (cvr_values ctx ~width:w);
     emit_repl Operator.UOI (Unop (Not, Ref name))
   | Unop (Not, inner) -> emit_repl Operator.UOD inner
   | Binop (op, a, b) ->
     let alternatives, mutation_op =
       if is_logical op then (logical_ops, Operator.LOR)
       else if is_arith op then (arith_ops, Operator.AOR)
       else (relational_ops, Operator.ROR)
     in
     List.iter
       (fun op' -> if op' <> op then emit_repl mutation_op (Binop (op', a, b)))
       alternatives
   | Bit _ | Slice _ | Concat _ | Resize _ -> ());
  (* Recurse into children. *)
  match e with
  | Const _ | Ref _ -> ()
  | Unop (u, a) -> visit_expr ctx a (fun a' -> k (Unop (u, a')))
  | Binop (op, a, b) ->
    visit_expr ctx a (fun a' -> k (Binop (op, a', b)));
    visit_expr ctx b (fun b' -> k (Binop (op, a, b')))
  | Bit (a, i) -> visit_expr ctx a (fun a' -> k (Bit (a', i)))
  | Slice (a, hi, lo) -> visit_expr ctx a (fun a' -> k (Slice (a', hi, lo)))
  | Concat (a, b) ->
    visit_expr ctx a (fun a' -> k (Concat (a', b)));
    visit_expr ctx b (fun b' -> k (Concat (a, b')))
  | Resize (a, w) -> visit_expr ctx a (fun a' -> k (Resize (a', w)))

(* --- statement traversal ---------------------------------------------- *)

let rec visit_stmt ctx (s : stmt) (k : stmt -> design) =
  let site = fresh_site ctx in
  (match s with
   | Assign (name, e) ->
     emit ctx Operator.SDL site
       (Printf.sprintf "delete '%s := %s'" name (Pretty.expr e))
       (k Null);
     let w = Hashtbl.find ctx.widths name in
     List.iter
       (fun other ->
         if other <> name then
           emit ctx Operator.VR site
             (Printf.sprintf "target %s -> %s" name other)
             (k (Assign (other, e))))
       (lookup_list ctx.assignables w);
     visit_expr ctx e (fun e' -> k (Assign (name, e')))
   | Null -> ()
   | If (c, t, e) ->
     visit_expr ctx c (fun c' -> k (If (c', t, e)));
     visit_stmts ctx t (fun t' -> k (If (c, t', e)));
     visit_stmts ctx e (fun e' -> k (If (c, t, e')))
   | Case (scrut, arms, others) ->
     visit_expr ctx scrut (fun scrut' -> k (Case (scrut', arms, others)));
     List.iteri
       (fun i (choices, body) ->
         visit_stmts ctx body (fun body' ->
             let arms' =
               List.mapi (fun j arm -> if j = i then (choices, body') else arm) arms
             in
             k (Case (scrut, arms', others))))
       arms;
     (match others with
      | None -> ()
      | Some body ->
        visit_stmts ctx body (fun body' -> k (Case (scrut, arms, Some body')))))

and visit_stmts ctx ss (k : stmt list -> design) =
  List.iteri
    (fun i s ->
      visit_stmt ctx s (fun s' ->
          k (List.mapi (fun j s0 -> if j = i then s' else s0) ss)))
    ss

let all d =
  if not (Check.is_elaborated d) then
    invalid_arg "Generate.all: design not elaborated";
  let ctx = build_ctx d in
  visit_stmts ctx d.body (fun body' -> { d with body = body' });
  List.rev ctx.acc

let for_operator d op = List.filter (fun (m : Mutant.t) -> Operator.equal m.op op) (all d)

let count_by_operator ms =
  List.map
    (fun op ->
      (op, List.length (List.filter (fun (m : Mutant.t) -> Operator.equal m.op op) ms)))
    Operator.all
