type t = LOR | AOR | ROR | UOI | UOD | VR | CVR | VCR | CR | SDL

let all = [ LOR; AOR; ROR; UOI; UOD; VR; CVR; VCR; CR; SDL ]

let name = function
  | LOR -> "LOR" | AOR -> "AOR" | ROR -> "ROR" | UOI -> "UOI" | UOD -> "UOD"
  | VR -> "VR" | CVR -> "CVR" | VCR -> "VCR" | CR -> "CR" | SDL -> "SDL"

let describe = function
  | LOR -> "logical operator replacement"
  | AOR -> "arithmetic operator replacement"
  | ROR -> "relational operator replacement"
  | UOI -> "unary operator insertion"
  | UOD -> "unary operator deletion"
  | VR -> "variable replacement"
  | CVR -> "constant for variable replacement"
  | VCR -> "variable for constant replacement"
  | CR -> "constant replacement"
  | SDL -> "statement deletion"

let of_string s =
  match String.uppercase_ascii s with
  | "LOR" -> Some LOR | "AOR" -> Some AOR | "ROR" -> Some ROR
  | "UOI" -> Some UOI | "UOD" -> Some UOD | "VR" -> Some VR
  | "CVR" -> Some CVR | "VCR" -> Some VCR | "CR" -> Some CR | "SDL" -> Some SDL
  | _ -> None

let rank = function
  | LOR -> 0 | AOR -> 1 | ROR -> 2 | UOI -> 3 | UOD -> 4
  | VR -> 5 | CVR -> 6 | VCR -> 7 | CR -> 8 | SDL -> 9

let compare a b = Stdlib.compare (rank a) (rank b)
let equal a b = rank a = rank b
let pp fmt t = Format.pp_print_string fmt (name t)
