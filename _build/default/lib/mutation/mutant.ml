type t = {
  id : int;
  op : Operator.t;
  site : int;
  info : string;
  design : Mutsamp_hdl.Ast.design;
}

let to_string m = Printf.sprintf "#%d %s @%d: %s" m.id (Operator.name m.op) m.site m.info

let pp fmt m = Format.pp_print_string fmt (to_string m)
