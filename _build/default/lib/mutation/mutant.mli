(** A single mutant: one syntactic fault injected into a design. *)

type t = {
  id : int;  (** index within the design's full mutant list *)
  op : Operator.t;
  site : int;  (** pre-order node index of the mutated AST node *)
  info : string;  (** human-readable description of the change *)
  design : Mutsamp_hdl.Ast.design;  (** the mutated design, still elaborated *)
}

val pp : Format.formatter -> t -> unit
(** One line: id, operator, description. *)

val to_string : t -> string
