lib/mutation/equivalence.ml: Hashtbl List Mutsamp_hdl Mutsamp_util Printf Queue
