lib/mutation/kill.ml: Array List Mutant Mutsamp_hdl Mutsamp_obs Operator
