lib/mutation/operator.ml: Format Stdlib String
