lib/mutation/kill.mli: Mutant Mutsamp_hdl
