lib/mutation/operator.mli: Format
