lib/mutation/mutant.mli: Format Mutsamp_hdl Operator
