lib/mutation/generate.ml: Hashtbl List Mutant Mutsamp_hdl Operator Option Printf Stdlib
