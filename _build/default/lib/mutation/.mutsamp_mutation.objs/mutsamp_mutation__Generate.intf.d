lib/mutation/generate.mli: Mutant Mutsamp_hdl Operator
