lib/mutation/mutant.ml: Format Mutsamp_hdl Operator Printf
