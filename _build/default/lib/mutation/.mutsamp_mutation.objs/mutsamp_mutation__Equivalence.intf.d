lib/mutation/equivalence.mli: Mutsamp_hdl
