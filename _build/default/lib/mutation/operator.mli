(** The mutation operator set.

    Ten operators for behavioural hardware descriptions, following the
    VHDL operator set of Al-Hayek & Robach (JETTA 1999) referenced by
    the paper as [3]. The four the paper studies directly are {!LOR},
    {!VR}, {!CVR} and {!CR}; the rest complete the classical set. *)

type t =
  | LOR  (** logical operator replacement (and/or/xor/nand/nor/xnor) *)
  | AOR  (** arithmetic operator replacement (+/-) *)
  | ROR  (** relational operator replacement (=, /=, <, <=, >, >=) *)
  | UOI  (** unary operator insertion: wrap a reference in [not] *)
  | UOD  (** unary operator deletion: drop a [not] *)
  | VR  (** variable replacement: another same-width readable name *)
  | CVR  (** constant-for-variable replacement *)
  | VCR  (** variable-for-constant replacement *)
  | CR  (** constant replacement: perturb a literal *)
  | SDL  (** statement deletion: assignment becomes [null] *)

val all : t list
(** Every operator, in the order above. *)

val name : t -> string
(** Short upper-case mnemonic, e.g. ["LOR"]. *)

val describe : t -> string
(** One-line description. *)

val of_string : string -> t option
(** Inverse of {!name}, case-insensitive. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
