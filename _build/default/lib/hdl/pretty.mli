(** Pretty-printer for the HDL concrete syntax.

    [Parser.design_of_string (Pretty.design d)] re-reads as a design
    equal to [d] up to constant sizing, which the parser/elaborator
    round-trip property test relies on. *)

val literal : Ast.literal -> string
val expr : Ast.expr -> string
val stmt : ?indent:int -> Ast.stmt -> string
val design : Ast.design -> string

val pp_design : Format.formatter -> Ast.design -> unit
