open Ast

let literal (l : literal) =
  match l.width with
  | None -> string_of_int l.value
  | Some w -> Mutsamp_util.Bitvec.to_string (Mutsamp_util.Bitvec.make ~width:w l.value)

(* Precedence levels mirror the parser grammar, loosest to tightest:
   logical (1) < relational (2) < additive (3) < concat (4) < not (5)
   < postfix (6) < atoms (10). Binary levels are left-associative except
   the relational one, which is non-associative. *)
let prec_of_binop op =
  if is_logical op then 1 else if is_relational op then 2 else 3

let rec expr_prec p e =
  let s, my_prec =
    match e with
    | Const l -> (literal l, 10)
    | Ref name -> (name, 10)
    | Unop (Not, a) -> ("not " ^ expr_prec 5 a, 5)
    | Binop (op, a, b) ->
      let prec = prec_of_binop op in
      let left_prec = if is_relational op then prec + 1 else prec in
      let left = expr_prec left_prec a and right = expr_prec (prec + 1) b in
      (Printf.sprintf "%s %s %s" left (binop_name op) right, prec)
    | Bit (a, i) -> (Printf.sprintf "%s[%d]" (expr_prec 6 a) i, 6)
    | Slice (a, hi, lo) -> (Printf.sprintf "%s[%d:%d]" (expr_prec 6 a) hi lo, 6)
    | Concat (a, b) -> (Printf.sprintf "%s & %s" (expr_prec 4 a) (expr_prec 5 b), 4)
    | Resize (a, w) -> (Printf.sprintf "resize(%s, %d)" (expr_prec 0 a) w, 10)
  in
  if my_prec < p then "(" ^ s ^ ")" else s

let expr e = expr_prec 0 e

let spaces n = String.make n ' '

let rec stmt ?(indent = 0) s =
  let ind = spaces indent in
  match s with
  | Null -> ind ^ "null;"
  | Assign (name, e) -> Printf.sprintf "%s%s := %s;" ind name (expr e)
  | If (c, t, e) ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "%sif %s then\n" ind (expr c));
    Buffer.add_string buf (stmts ~indent:(indent + 2) t);
    (match e with
     | [] -> ()
     | _ ->
       Buffer.add_string buf (Printf.sprintf "%selse\n" ind);
       Buffer.add_string buf (stmts ~indent:(indent + 2) e));
    Buffer.add_string buf (Printf.sprintf "%send if;" ind);
    Buffer.contents buf
  | Case (scrut, arms, others) ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf (Printf.sprintf "%scase %s is\n" ind (expr scrut));
    let arm (choices, body) =
      let cs = String.concat " | " (List.map literal choices) in
      Buffer.add_string buf (Printf.sprintf "%swhen %s =>\n" (spaces (indent + 2)) cs);
      Buffer.add_string buf (stmts ~indent:(indent + 4) body)
    in
    List.iter arm arms;
    (match others with
     | None -> ()
     | Some body ->
       Buffer.add_string buf (Printf.sprintf "%swhen others =>\n" (spaces (indent + 2)));
       Buffer.add_string buf (stmts ~indent:(indent + 4) body));
    Buffer.add_string buf (Printf.sprintf "%send case;" ind);
    Buffer.contents buf

and stmts ~indent ss =
  String.concat "" (List.map (fun s -> stmt ~indent s ^ "\n") ss)

let decl (d : decl) =
  let ty = if d.width = 1 then "bit" else Printf.sprintf "unsigned(%d)" d.width in
  match d.kind with
  | Input -> Printf.sprintf "  input %s : %s;" d.name ty
  | Output -> Printf.sprintf "  output %s : %s;" d.name ty
  | Reg reset -> Printf.sprintf "  reg %s : %s := %s;" d.name ty (literal reset)
  | Var -> Printf.sprintf "  var %s : %s;" d.name ty
  | Const_decl v -> Printf.sprintf "  const %s : %s := %s;" d.name ty (literal v)

let design (d : design) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "design %s is\n" d.name);
  List.iter (fun dc -> Buffer.add_string buf (decl dc ^ "\n")) d.decls;
  Buffer.add_string buf "begin\n";
  Buffer.add_string buf (stmts ~indent:2 d.body);
  Buffer.add_string buf "end design;\n";
  Buffer.contents buf

let pp_design fmt d = Format.pp_print_string fmt (design d)
