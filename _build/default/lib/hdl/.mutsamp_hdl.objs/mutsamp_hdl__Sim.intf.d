lib/hdl/sim.mli: Ast Mutsamp_util
