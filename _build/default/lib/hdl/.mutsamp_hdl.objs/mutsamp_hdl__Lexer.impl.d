lib/hdl/lexer.ml: Array Char List Mutsamp_util Printf String
