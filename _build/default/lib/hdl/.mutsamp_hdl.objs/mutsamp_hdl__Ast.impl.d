lib/hdl/ast.ml: List
