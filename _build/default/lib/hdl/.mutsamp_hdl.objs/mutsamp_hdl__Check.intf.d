lib/hdl/check.mli: Ast
