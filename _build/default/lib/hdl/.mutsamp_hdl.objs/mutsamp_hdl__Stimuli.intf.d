lib/hdl/stimuli.mli: Ast Mutsamp_util Sim
