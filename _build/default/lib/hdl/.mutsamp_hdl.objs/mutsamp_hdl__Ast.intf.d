lib/hdl/ast.mli:
