lib/hdl/parser.ml: Array Ast Lexer List Mutsamp_util Printf
