lib/hdl/sim.ml: Array Ast Check Hashtbl List Mutsamp_util Option Printf String
