lib/hdl/stimuli.ml: Ast List Mutsamp_util Printf
