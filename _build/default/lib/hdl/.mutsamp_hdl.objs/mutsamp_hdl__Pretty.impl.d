lib/hdl/pretty.ml: Ast Buffer Format List Mutsamp_util Printf String
