lib/hdl/lexer.mli:
