lib/hdl/parser.mli: Ast
