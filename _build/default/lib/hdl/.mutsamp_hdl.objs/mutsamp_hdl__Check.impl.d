lib/hdl/check.ml: Ast Hashtbl List Mutsamp_util Option Printf
