lib/hdl/pretty.mli: Ast Format
