(** Semantic checker and elaborator.

    {!elaborate} validates a parsed design and returns an equivalent
    design in which every literal carries a definite width. The
    simulator, the mutation engine and synthesis all require an
    elaborated design; they assert sized literals.

    Checked properties: unique declarations; references resolve and are
    readable (outputs are write-only); assignment targets are outputs,
    registers or variables; operand widths agree, with unsized literals
    adopting the width of their context; bit/slice indices in range;
    case choices fit the scrutinee, are pairwise distinct and — absent a
    [when others] arm — cover the full value range; register resets and
    named constants fit their declared widths. *)

exception Check_error of string

val elaborate : Ast.design -> Ast.design
(** Validate and size. Raises {!Check_error} on any violation. *)

val is_elaborated : Ast.design -> bool
(** True when every literal in the design is sized. *)

val is_combinational : Ast.design -> bool
(** True when the design declares no registers. *)

val expr_width : Ast.design -> Ast.expr -> int
(** Width of an elaborated expression in the context of [design].
    Raises {!Check_error} on unsized literals or unknown names. *)
