type binop =
  | Add | Sub
  | And | Or | Xor | Nand | Nor | Xnor
  | Eq | Neq | Lt | Le | Gt | Ge

type unop = Not

type literal = { value : int; width : int option }

type expr =
  | Const of literal
  | Ref of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Bit of expr * int
  | Slice of expr * int * int
  | Concat of expr * expr
  | Resize of expr * int

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Case of expr * (literal list * stmt list) list * stmt list option
  | Null

type kind =
  | Input
  | Output
  | Reg of literal
  | Var
  | Const_decl of literal

type decl = { name : string; width : int; kind : kind }

type design = { name : string; decls : decl list; body : stmt list }

let lit ?width value = { value; width }
let const ?width value = Const (lit ?width value)

let is_commutative = function
  | Add | And | Or | Xor | Nand | Nor | Xnor | Eq | Neq -> true
  | Sub | Lt | Le | Gt | Ge -> false

let is_logical = function
  | And | Or | Xor | Nand | Nor | Xnor -> true
  | Add | Sub | Eq | Neq | Lt | Le | Gt | Ge -> false

let is_arith = function
  | Add | Sub -> true
  | And | Or | Xor | Nand | Nor | Xnor | Eq | Neq | Lt | Le | Gt | Ge -> false

let is_relational = function
  | Eq | Neq | Lt | Le | Gt | Ge -> true
  | Add | Sub | And | Or | Xor | Nand | Nor | Xnor -> false

let binop_name = function
  | Add -> "+" | Sub -> "-"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Nand -> "nand" | Nor -> "nor" | Xnor -> "xnor"
  | Eq -> "=" | Neq -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let unop_name = function Not -> "not"

let find_decl d name = List.find_opt (fun (dc : decl) -> dc.name = name) d.decls

let filter_kind pred d = List.filter (fun dc -> pred dc.kind) d.decls

let inputs d = filter_kind (function Input -> true | Output | Reg _ | Var | Const_decl _ -> false) d
let outputs d = filter_kind (function Output -> true | Input | Reg _ | Var | Const_decl _ -> false) d
let regs d = filter_kind (function Reg _ -> true | Input | Output | Var | Const_decl _ -> false) d
let vars d = filter_kind (function Var -> true | Input | Output | Reg _ | Const_decl _ -> false) d
let const_decls d =
  filter_kind (function Const_decl _ -> true | Input | Output | Reg _ | Var -> false) d

let equal_expr (a : expr) (b : expr) = a = b
let equal_stmt (a : stmt) (b : stmt) = a = b
let equal_design (a : design) (b : design) = a = b

let rec stmt_count = function
  | Assign _ | Null -> 1
  | If (_, t, e) -> 1 + stmts_count t + stmts_count e
  | Case (_, arms, others) ->
    let arms_n = List.fold_left (fun acc (_, ss) -> acc + stmts_count ss) 0 arms in
    let others_n = match others with None -> 0 | Some ss -> stmts_count ss in
    1 + arms_n + others_n

and stmts_count ss = List.fold_left (fun acc s -> acc + stmt_count s) 0 ss

let count_statements d = stmts_count d.body

let rec expr_nodes = function
  | Const _ | Ref _ -> 1
  | Unop (_, e) | Bit (e, _) | Slice (e, _, _) | Resize (e, _) -> 1 + expr_nodes e
  | Binop (_, a, b) | Concat (a, b) -> 1 + expr_nodes a + expr_nodes b

let rec stmt_expr_nodes = function
  | Assign (_, e) -> expr_nodes e
  | Null -> 0
  | If (c, t, e) -> expr_nodes c + stmts_expr_nodes t + stmts_expr_nodes e
  | Case (scrut, arms, others) ->
    let arms_n = List.fold_left (fun acc (_, ss) -> acc + stmts_expr_nodes ss) 0 arms in
    let others_n = match others with None -> 0 | Some ss -> stmts_expr_nodes ss in
    expr_nodes scrut + arms_n + others_n

and stmts_expr_nodes ss = List.fold_left (fun acc s -> acc + stmt_expr_nodes s) 0 ss

let count_expr_nodes d = stmts_expr_nodes d.body
