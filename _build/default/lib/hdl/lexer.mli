(** Hand-written lexer for the HDL concrete syntax.

    Lexical forms: identifiers (letter or underscore, then letters,
    digits, underscores), unsized decimal literals ([13]), sized binary
    literals ([5'b01101]), bit character literals (['0'], ['1'], sugar
    for [1'b0] and [1'b1]), the operators and punctuation of the
    grammar, and [--] end-of-line comments. *)

type token =
  | IDENT of string
  | NUM of int  (** unsized decimal literal *)
  | SIZED of int * int  (** width, value *)
  | KW of string  (** reserved word, lowercase *)
  | ASSIGN  (** [:=] *)
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | AMP
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COLON | SEMI | COMMA
  | ARROW  (** [=>] *)
  | PIPE  (** [|], separating case choices *)
  | EOF

exception Lex_error of string
(** Message includes a 1-based line number. *)

val keywords : string list
(** All reserved words. *)

val tokenize : string -> (token * int) array
(** [tokenize src] is the token stream with 1-based line numbers,
    terminated by [EOF]. Raises {!Lex_error} on an illegal character or
    malformed literal. *)

val token_to_string : token -> string
