(** Stimulus construction helpers.

    A stimulus assigns a value to every input of a design for one clock
    cycle (see {!Sim.stimulus}). These helpers build random vectors,
    exhaustive enumerations and encode/decode stimuli to flat integers
    for state-space exploration. *)

val input_bits : Ast.design -> int
(** Total number of input bits. *)

val random : Mutsamp_util.Prng.t -> Ast.design -> Sim.stimulus
(** One uniformly random input vector. *)

val random_sequence : Mutsamp_util.Prng.t -> Ast.design -> int -> Sim.stimulus list
(** [random_sequence prng d n] is [n] independent random vectors. *)

val of_code : Ast.design -> int -> Sim.stimulus
(** Decode a flat integer (LSBs feed the first declared input) into a
    stimulus. Raises [Invalid_argument] if the design has more than 62
    input bits or the code is out of range. *)

val to_code : Ast.design -> Sim.stimulus -> int
(** Inverse of {!of_code}. *)

val enumerate : Ast.design -> Sim.stimulus list
(** All [2^input_bits] stimuli in code order. Raises [Invalid_argument]
    when [input_bits d > 20] — exhaustive enumeration beyond that is a
    bug, not a plan. *)

val all_zero : Ast.design -> Sim.stimulus
(** Every input at zero. *)
