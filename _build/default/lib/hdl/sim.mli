(** Cycle-accurate simulator for elaborated designs.

    Semantics per clock cycle: inputs are sampled, variables reset to
    zero, outputs default to zero; the body executes in sequential
    order. Assignments to variables and outputs take effect
    immediately; assignments to registers are deferred to the end of
    the cycle, so every read of a register during the cycle observes
    its pre-cycle value. Registers start at their declared reset value
    and hold when not assigned.

    The simulator compiles the statement list to closures over integer
    arrays once per design, so stepping a design (and its thousands of
    mutants) costs no AST traversal. *)

type stimulus = (string * Mutsamp_util.Bitvec.t) list
(** Input values for one cycle. Every declared input must be present. *)

type observation = (string * Mutsamp_util.Bitvec.t) list
(** Output values after one cycle, in declaration order. *)

exception Sim_error of string

type t
(** A running instance with register state. *)

val create : Ast.design -> t
(** Compile a design. Raises {!Sim_error} if the design is not
    elaborated (see {!Check.elaborate}). *)

val design : t -> Ast.design

val reset : t -> unit
(** Return all registers to their reset values. *)

val step : t -> stimulus -> observation
(** Advance one clock cycle. Raises {!Sim_error} on a missing or
    unknown input name, or a width mismatch. *)

val observe_regs : t -> (string * Mutsamp_util.Bitvec.t) list
(** Current register values (after the last [step]). *)

val set_regs : t -> (string * Mutsamp_util.Bitvec.t) list -> unit
(** Force register values (used by state-space exploration). Raises
    {!Sim_error} on an unknown register name or width mismatch. *)

val run : Ast.design -> stimulus list -> observation list
(** [create], [reset], then [step] through the whole stimulus. *)

val outputs_equal : observation -> observation -> bool
(** Structural comparison of two observations. *)
