(** Abstract syntax of the behavioural HDL.

    The language models one synchronous design: ports, registers with
    reset values, process-local variables and named constants, plus a
    statement list executed once per clock cycle in sequential (VHDL
    variable) order. Register assignments take effect at the end of the
    cycle; reads during the cycle observe the pre-cycle value. This is
    the classic synthesisable two-process idiom, and it is the level at
    which the mutation operators of Al-Hayek & Robach apply.

    Constants parsed from source may be unsized (a bare decimal literal);
    {!Check.elaborate} resolves every constant to a definite width before
    the design reaches the simulator, the mutation engine or synthesis. *)

type binop =
  | Add | Sub
  | And | Or | Xor | Nand | Nor | Xnor
  | Eq | Neq | Lt | Le | Gt | Ge

type unop = Not

type literal = {
  value : int;  (** unsigned payload *)
  width : int option;  (** [None] until elaboration *)
}

type expr =
  | Const of literal
  | Ref of string  (** input, register, variable or named constant *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Bit of expr * int  (** single-bit select, LSB = 0 *)
  | Slice of expr * int * int  (** [Slice (e, hi, lo)] inclusive *)
  | Concat of expr * expr  (** first operand in the upper bits *)
  | Resize of expr * int  (** zero-extend or truncate *)

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | Case of expr * (literal list * stmt list) list * stmt list option
      (** scrutinee, [when] arms, optional [when others] arm *)
  | Null

type kind =
  | Input
  | Output
  | Reg of literal  (** reset value *)
  | Var
  | Const_decl of literal

type decl = { name : string; width : int; kind : kind }

type design = { name : string; decls : decl list; body : stmt list }

(** {1 Helpers} *)

val lit : ?width:int -> int -> literal
val const : ?width:int -> int -> expr
val is_commutative : binop -> bool
val is_logical : binop -> bool
(** [And .. Xnor]. *)

val is_arith : binop -> bool
(** [Add | Sub]. *)

val is_relational : binop -> bool
(** [Eq .. Ge]. *)

val binop_name : binop -> string
val unop_name : unop -> string

val find_decl : design -> string -> decl option
val inputs : design -> decl list
val outputs : design -> decl list
val regs : design -> decl list
val vars : design -> decl list
val const_decls : design -> decl list

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_design : design -> design -> bool

val count_statements : design -> int
(** Number of statement nodes, [Null] included (size metric for reports). *)

val count_expr_nodes : design -> int
(** Number of expression nodes in the whole design. *)
