(** Plain-text table rendering for experiment reports.

    The bench harness and the CLI print paper-style tables; this module
    renders aligned ASCII tables without any external dependency. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to [Left] for the first column and [Right] for the
    rest, which suits "name, number, number, ..." rows. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity differs from the
    header. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render the table, including a header rule, as a multi-line string. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
