type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finaliser: mix the incremented state to a well-distributed
   64-bit output. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits keeps the distribution exactly
     uniform for any bound. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let r = v mod bound in
    if v - r > mask - bound + 1 then draw () else r
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. 0x1.0p-53

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t = function
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | items ->
    let arr = Array.of_list items in
    arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  let copy = Array.copy arr in
  (* Partial Fisher–Yates: after k swaps the prefix is a uniform sample. *)
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
