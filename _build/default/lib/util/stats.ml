let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> nan
  | xs ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let median = function
  | [] -> nan
  | xs ->
    let arr = Array.of_list xs in
    Array.sort Stdlib.compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let percent ~num ~den =
  if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

let round2 x = Float.round (x *. 100.) /. 100.

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let largest_remainder ~total weights =
  let n = Array.length weights in
  if n = 0 then [||]
  else begin
    Array.iter (fun w -> if w < 0. then invalid_arg "Stats.largest_remainder: negative weight") weights;
    let sum = Array.fold_left ( +. ) 0. weights in
    let weights = if sum <= 0. then Array.make n 1. else weights in
    let sum = if sum <= 0. then float_of_int n else sum in
    let quota = Array.map (fun w -> float_of_int total *. w /. sum) weights in
    let base = Array.map (fun q -> int_of_float (floor q)) quota in
    let assigned = Array.fold_left ( + ) 0 base in
    let remainder = Array.mapi (fun i q -> (q -. floor q, i)) quota in
    Array.sort (fun (a, _) (b, _) -> Stdlib.compare b a) remainder;
    let extra = total - assigned in
    for k = 0 to extra - 1 do
      let _, i = remainder.(k mod n) in
      base.(i) <- base.(i) + 1
    done;
    base
  end
