(** Small numeric helpers shared by the metrics and report code. *)

val mean : float list -> float
(** Arithmetic mean. Returns [nan] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation. Returns [nan] on the empty list. *)

val median : float list -> float
(** Median (mean of the middle pair for even lengths). Returns [nan] on
    the empty list. *)

val percent : num:int -> den:int -> float
(** [percent ~num ~den] is [100 * num / den] as a float; [0.] when
    [den = 0]. *)

val round2 : float -> float
(** Round to two decimal places (used when printing paper-style tables). *)

val clamp : lo:float -> hi:float -> float -> float

val largest_remainder : total:int -> float array -> int array
(** [largest_remainder ~total weights] apportions [total] integer units
    proportionally to the non-negative [weights] using the
    largest-remainder (Hamilton) method, so the result sums exactly to
    [total]. All-zero weights degrade to an even split. *)
