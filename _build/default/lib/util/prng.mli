(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic step of the library draws from an explicit [Prng.t]
    so that experiments are reproducible from a single integer seed. The
    implementation is the splitmix64 generator of Steele, Lea and
    Flood, which has a 64-bit state, passes BigCrush and is trivially
    splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Generators created from the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from the current state
    of [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it,
    statistically independent of the subsequent output of [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. Raises [Invalid_argument] on an
    empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] is [k] distinct elements of
    [arr] chosen uniformly, in random order. Raises [Invalid_argument]
    if [k < 0] or [k > Array.length arr]. *)
