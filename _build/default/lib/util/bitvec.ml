type t = { w : int; v : int }

let max_width = 62

let mask w = (1 lsl w) - 1

let make ~width v =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bitvec.make: width %d not in 1..%d" width max_width);
  if v < 0 then invalid_arg "Bitvec.make: negative value";
  { w = width; v = v land mask width }

let zero width = make ~width 0
let ones width = make ~width (mask width)

let width t = t.w
let to_int t = t.v

let equal a b = a.w = b.w && a.v = b.v
let compare a b = Stdlib.compare (a.w, a.v) (b.w, b.v)

let check_same a b op =
  if a.w <> b.w then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" op a.w b.w)

let bit t i =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.bit: index out of range";
  (t.v lsr i) land 1 = 1

let set_bit t i b =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.set_bit: index out of range";
  let v = if b then t.v lor (1 lsl i) else t.v land lnot (1 lsl i) in
  { t with v }

let add a b = check_same a b "add"; { a with v = (a.v + b.v) land mask a.w }
let sub a b = check_same a b "sub"; { a with v = (a.v - b.v) land mask a.w }

let logand a b = check_same a b "logand"; { a with v = a.v land b.v }
let logor a b = check_same a b "logor"; { a with v = a.v lor b.v }
let logxor a b = check_same a b "logxor"; { a with v = a.v lxor b.v }
let lognot a = { a with v = lnot a.v land mask a.w }

let lt a b = check_same a b "lt"; a.v < b.v
let le a b = check_same a b "le"; a.v <= b.v

let slice t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.w then invalid_arg "Bitvec.slice: bad range";
  make ~width:(hi - lo + 1) ((t.v lsr lo) land mask (hi - lo + 1))

let concat hi lo =
  let w = hi.w + lo.w in
  if w > max_width then invalid_arg "Bitvec.concat: result too wide";
  make ~width:w ((hi.v lsl lo.w) lor lo.v)

let resize t w =
  if w < 1 || w > max_width then invalid_arg "Bitvec.resize: bad width";
  { w; v = t.v land mask w }

let to_string t =
  let buf = Buffer.create (t.w + 4) in
  Buffer.add_string buf (string_of_int t.w);
  Buffer.add_string buf "'b";
  for i = t.w - 1 downto 0 do
    Buffer.add_char buf (if bit t i then '1' else '0')
  done;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
