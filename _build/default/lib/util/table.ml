type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns arity mismatch";
      a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) headers
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Separator -> ()
    | Cells cells ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure rows;
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let line cells =
    let padded =
      List.mapi (fun i c -> pad (List.nth t.aligns i) widths.(i) c) cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    "|-" ^ String.concat "-+-" dashes ^ "-|"
  in
  let body =
    List.map (function Separator -> rule | Cells cells -> line cells) rows
  in
  String.concat "\n" (line t.headers :: rule :: body)

let print t =
  print_string (render t);
  print_newline ()
