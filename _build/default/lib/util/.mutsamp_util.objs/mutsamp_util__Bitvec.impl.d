lib/util/bitvec.ml: Buffer Format Printf Stdlib
