lib/util/prng.mli:
