lib/util/table.mli:
