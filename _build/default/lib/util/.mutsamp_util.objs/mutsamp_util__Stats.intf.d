lib/util/stats.mli:
