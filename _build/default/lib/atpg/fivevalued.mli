(** Roth's five-valued D-calculus.

    A value combines the good-machine and faulty-machine bits:
    [D] is good 1 / faulty 0, [Dbar] good 0 / faulty 1, [X] unknown in
    both. The PODEM implementation evaluates the whole circuit in this
    algebra with the fault inserted at its site. *)

type t = Zero | One | X | D | Dbar

val good : t -> t
(** Good-machine projection: [Zero], [One] or [X]. *)

val faulty : t -> t
(** Faulty-machine projection. *)

val combine : t -> t -> t
(** [combine good faulty] from two projections (each [Zero]/[One]/[X]).
    Unknown in either projection yields [X]. *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t
val eval : Mutsamp_netlist.Gate.kind -> t -> t -> t
(** Evaluate a combinational gate kind (raises [Invalid_argument] on
    [Pi]/[Const]/[Dff]). *)

val is_error : t -> bool
(** [D] or [Dbar]: the fault effect is present. *)

val of_bool : bool -> t
val to_string : t -> string
val controlling_value : Mutsamp_netlist.Gate.kind -> bool option
(** The input value that forces the gate output regardless of the other
    input: 0 for AND/NAND, 1 for OR/NOR, none for XOR/XNOR/NOT/BUF. *)

val inverts : Mutsamp_netlist.Gate.kind -> bool
(** Whether the gate output is the complement of its (controlled)
    function: true for NOT, NAND, NOR, XNOR. *)
