module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Sweep = Mutsamp_netlist.Sweep
module Fault = Mutsamp_fault.Fault

let tie_net (nl : Netlist.t) net value =
  let gates = Array.copy nl.gates in
  (match gates.(net).Gate.kind with
   | Gate.Pi _ ->
     (* Tying a primary input would change the interface; skip (the
        caller filters these out). *)
     assert false
   | _ -> gates.(net) <- { Gate.kind = Gate.Const value; fanins = [||] });
  { nl with Netlist.gates }

let round nl =
  let tied = ref 0 in
  let current = ref nl in
  let gate_count = Array.length nl.Netlist.gates in
  let net = ref 0 in
  while !net < gate_count do
    let i = !net in
    (* Net ids are stable within a round because tying only replaces a
       gate in place; sweeping happens between rounds. *)
    (match (!current).Netlist.gates.(i).Gate.kind with
     | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ()
     | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
     | Gate.Xor | Gate.Xnor ->
       let try_tie polarity value =
         match
           Satgen.generate !current { Fault.site = Fault.Stem i; polarity }
         with
         | Satgen.Untestable ->
           current := tie_net !current i value;
           incr tied;
           true
         | Satgen.Test _ -> false
       in
       (* stuck-at-0 untestable -> the net never influences an output
          when forced to 0 ... precisely: outputs are identical with the
          net forced to 0, so tie it to 0; dually for stuck-at-1. *)
       if not (try_tie Fault.Stuck_at_0 false) then
         ignore (try_tie Fault.Stuck_at_1 true));
    incr net
  done;
  (!current, !tied)

let remove ?(max_rounds = 4) nl =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Redundancy.remove: sequential netlist (apply Scan.full_scan first)";
  let rec loop nl total rounds =
    if rounds = 0 then (fst (Sweep.run nl), total)
    else begin
      let cleaned, tied = round nl in
      let swept = fst (Sweep.run cleaned) in
      if tied = 0 then (swept, total) else loop swept (total + tied) (rounds - 1)
    end
  in
  loop nl 0 max_rounds
