lib/atpg/bist.ml: Array Int List Mutsamp_fault Mutsamp_netlist Mutsamp_util Prpg
