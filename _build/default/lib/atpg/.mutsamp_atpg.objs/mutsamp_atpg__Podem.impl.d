lib/atpg/podem.ml: Array Fivevalued Hashtbl List Mutsamp_fault Mutsamp_netlist Mutsamp_obs Scoap
