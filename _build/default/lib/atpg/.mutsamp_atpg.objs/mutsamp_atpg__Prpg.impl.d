lib/atpg/prpg.ml: Array Float List Mutsamp_util Printf
