lib/atpg/satgen.ml: Mutsamp_fault Mutsamp_netlist Mutsamp_sat
