lib/atpg/bist.mli: Mutsamp_fault Mutsamp_netlist
