lib/atpg/fivevalued.mli: Mutsamp_netlist
