lib/atpg/testpoints.ml: Array Hashtbl List Mutsamp_netlist Printf Scoap
