lib/atpg/prpg.mli: Mutsamp_util
