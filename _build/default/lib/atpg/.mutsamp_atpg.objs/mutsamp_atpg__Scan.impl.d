lib/atpg/scan.ml: Array List Mutsamp_netlist Printf
