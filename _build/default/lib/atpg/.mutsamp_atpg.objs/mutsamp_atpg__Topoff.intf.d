lib/atpg/topoff.mli: Mutsamp_fault Mutsamp_netlist
