lib/atpg/satgen.mli: Mutsamp_fault Mutsamp_netlist
