lib/atpg/fivevalued.ml: Mutsamp_netlist
