lib/atpg/seqatpg.mli: Mutsamp_fault Mutsamp_netlist
