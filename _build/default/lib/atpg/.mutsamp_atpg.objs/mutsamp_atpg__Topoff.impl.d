lib/atpg/topoff.ml: Array List Mutsamp_fault Mutsamp_netlist Mutsamp_obs Mutsamp_util Podem Prpg Satgen
