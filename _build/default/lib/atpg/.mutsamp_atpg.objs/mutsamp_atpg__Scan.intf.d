lib/atpg/scan.mli: Mutsamp_netlist
