lib/atpg/seqatpg.ml: Array List Mutsamp_fault Mutsamp_netlist Mutsamp_sat Unroll
