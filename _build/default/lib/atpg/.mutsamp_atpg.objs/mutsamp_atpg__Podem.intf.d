lib/atpg/podem.mli: Mutsamp_fault Mutsamp_netlist
