lib/atpg/scoap.ml: Array Mutsamp_netlist
