lib/atpg/redundancy.ml: Array Mutsamp_fault Mutsamp_netlist Satgen
