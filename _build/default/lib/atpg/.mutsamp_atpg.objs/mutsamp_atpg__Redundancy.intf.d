lib/atpg/redundancy.mli: Mutsamp_netlist
