lib/atpg/unroll.mli: Mutsamp_fault Mutsamp_netlist
