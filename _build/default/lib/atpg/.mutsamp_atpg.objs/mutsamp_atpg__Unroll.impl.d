lib/atpg/unroll.ml: Array List Mutsamp_fault Mutsamp_netlist Printf
