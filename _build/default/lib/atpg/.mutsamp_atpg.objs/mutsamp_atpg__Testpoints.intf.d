lib/atpg/testpoints.mli: Mutsamp_netlist
