lib/atpg/scoap.mli: Mutsamp_netlist
