module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Topo = Mutsamp_netlist.Topo

type t = { cc0 : int array; cc1 : int array; co : int array }

let infinity_cost = 1 lsl 40

let cap v = min v infinity_cost

let compute (nl : Netlist.t) =
  let n = Array.length nl.gates in
  let cc0 = Array.make n infinity_cost in
  let cc1 = Array.make n infinity_cost in
  let topo = Topo.compute nl in
  (* Controllability: sources first, then topological order. *)
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Pi _ | Gate.Dff _ ->
        cc0.(i) <- 1;
        cc1.(i) <- 1
      | Gate.Const false ->
        cc0.(i) <- 0;
        cc1.(i) <- infinity_cost
      | Gate.Const true ->
        cc0.(i) <- infinity_cost;
        cc1.(i) <- 0
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor -> ())
    nl.gates;
  Array.iter
    (fun i ->
      let g = nl.gates.(i) in
      let a = g.Gate.fanins.(0) in
      let b = if Array.length g.Gate.fanins > 1 then g.Gate.fanins.(1) else a in
      let z0, z1 =
        match g.Gate.kind with
        | Gate.Buf -> (cc0.(a) + 1, cc1.(a) + 1)
        | Gate.Not -> (cc1.(a) + 1, cc0.(a) + 1)
        | Gate.And -> (min cc0.(a) cc0.(b) + 1, cc1.(a) + cc1.(b) + 1)
        | Gate.Nand -> (cc1.(a) + cc1.(b) + 1, min cc0.(a) cc0.(b) + 1)
        | Gate.Or -> (cc0.(a) + cc0.(b) + 1, min cc1.(a) cc1.(b) + 1)
        | Gate.Nor -> (min cc1.(a) cc1.(b) + 1, cc0.(a) + cc0.(b) + 1)
        | Gate.Xor ->
          ( min (cc0.(a) + cc0.(b)) (cc1.(a) + cc1.(b)) + 1,
            min (cc0.(a) + cc1.(b)) (cc1.(a) + cc0.(b)) + 1 )
        | Gate.Xnor ->
          ( min (cc0.(a) + cc1.(b)) (cc1.(a) + cc0.(b)) + 1,
            min (cc0.(a) + cc0.(b)) (cc1.(a) + cc1.(b)) + 1 )
        | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> assert false
      in
      cc0.(i) <- cap z0;
      cc1.(i) <- cap z1)
    topo.Topo.order;
  (* Observability: primary outputs and D pins are directly observable;
     walk the combinational order backwards. *)
  let co = Array.make n infinity_cost in
  Array.iter (fun (_, net) -> co.(net) <- 0) nl.output_list;
  Array.iter
    (fun q -> let d = nl.gates.(q).Gate.fanins.(0) in co.(d) <- 0)
    nl.dff_nets;
  let update_inputs i =
    let g = nl.gates.(i) in
    if co.(i) < infinity_cost then begin
      let a = g.Gate.fanins.(0) in
      let b = if Array.length g.Gate.fanins > 1 then g.Gate.fanins.(1) else a in
      let through cost_for_side net = co.(net) <- min co.(net) (cap cost_for_side) in
      match g.Gate.kind with
      | Gate.Buf | Gate.Not -> through (co.(i) + 1) a
      | Gate.And | Gate.Nand ->
        through (co.(i) + cc1.(b) + 1) a;
        through (co.(i) + cc1.(a) + 1) b
      | Gate.Or | Gate.Nor ->
        through (co.(i) + cc0.(b) + 1) a;
        through (co.(i) + cc0.(a) + 1) b
      | Gate.Xor | Gate.Xnor ->
        through (co.(i) + min cc0.(b) cc1.(b) + 1) a;
        through (co.(i) + min cc0.(a) cc1.(a) + 1) b
      | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ()
    end
  in
  (* Reverse topological order: each gate's CO is final before its
     fanins are updated. *)
  for k = Array.length topo.Topo.order - 1 downto 0 do
    update_inputs topo.Topo.order.(k)
  done;
  { cc0; cc1; co }

let harder_value t net = if t.cc0.(net) > t.cc1.(net) then 0 else 1
