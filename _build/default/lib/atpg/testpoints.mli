(** Observation test-point insertion.

    Random-pattern-resistant faults usually hide behind long
    propagation paths; routing the worst-observability internal nets to
    extra observe-only outputs is the cheapest classical DFT fix. The
    selection is SCOAP-driven: nets are ranked by combinational
    observability cost. *)

val worst_observability : Mutsamp_netlist.Netlist.t -> n:int -> int list
(** Up to [n] internal combinational nets with the highest (finite or
    infinite) CO, worst first. Primary inputs, constants, flip-flops
    and nets that already drive an output are excluded. *)

val observe_point_name : int -> string
(** [observe_point_name k] is ["tp<k>"]. *)

val insert_observe_points :
  Mutsamp_netlist.Netlist.t -> nets:int list -> Mutsamp_netlist.Netlist.t
(** Add one primary output per listed net. Raises [Invalid_argument]
    on an out-of-range net. *)

val auto_insert : Mutsamp_netlist.Netlist.t -> n:int -> Mutsamp_netlist.Netlist.t
(** [insert_observe_points] at the [worst_observability] nets. *)
