module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate

let scan_input_name i = Printf.sprintf "scan_q%d" i
let scan_output_name i = Printf.sprintf "scan_d%d" i

let full_scan (nl : Netlist.t) =
  let gates = Array.copy nl.gates in
  let extra_outputs = ref [] in
  Array.iteri
    (fun k q ->
      let d = gates.(q).Gate.fanins.(0) in
      gates.(q) <- { Gate.kind = Gate.Pi (scan_input_name k); fanins = [||] };
      extra_outputs := (scan_output_name k, d) :: !extra_outputs)
    nl.dff_nets;
  let scanned =
    {
      nl with
      Netlist.gates;
      input_nets = Array.append nl.input_nets nl.dff_nets;
      output_list =
        Array.append nl.output_list (Array.of_list (List.rev !extra_outputs));
      dff_nets = [||];
    }
  in
  Netlist.lint scanned;
  scanned
