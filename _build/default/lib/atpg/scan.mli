(** Full-scan transformation.

    Replaces every flip-flop with a pseudo primary input (its Q pin,
    named [scan_q<i>]) and a pseudo primary output (its D cone, named
    [scan_d<i>]). The result is purely combinational, which is the view
    the deterministic ATPG engines and the miter equivalence check
    require for sequential circuits — exactly the design-for-test
    assumption the paper's ATPG baseline makes. *)

val full_scan : Mutsamp_netlist.Netlist.t -> Mutsamp_netlist.Netlist.t
(** Identity on already-combinational netlists (a fresh copy). *)

val scan_input_name : int -> string
val scan_output_name : int -> string
