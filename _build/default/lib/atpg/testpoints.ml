module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate

let observe_point_name k = Printf.sprintf "tp%d" k

let worst_observability (nl : Netlist.t) ~n =
  let scoap = Scoap.compute nl in
  let already_observed = Hashtbl.create 16 in
  Array.iter (fun (_, net) -> Hashtbl.replace already_observed net ()) nl.output_list;
  let candidates = ref [] in
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ()
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        if not (Hashtbl.mem already_observed i) then
          candidates := (scoap.Scoap.co.(i), i) :: !candidates)
    nl.gates;
  List.sort (fun (a, _) (b, _) -> compare b a) !candidates
  |> List.filteri (fun k _ -> k < n)
  |> List.map snd

let insert_observe_points (nl : Netlist.t) ~nets =
  List.iter
    (fun net ->
      if net < 0 || net >= Array.length nl.gates then
        invalid_arg "Testpoints.insert_observe_points: net out of range")
    nets;
  let extra =
    Array.of_list (List.mapi (fun k net -> (observe_point_name k, net)) nets)
  in
  let widened = { nl with Netlist.output_list = Array.append nl.output_list extra } in
  Netlist.lint widened;
  widened

let auto_insert nl ~n = insert_observe_points nl ~nets:(worst_observability nl ~n)
