(** SCOAP testability measures (Goldstein 1979).

    Combinational controllability CC0/CC1 (cost of driving a net to
    0/1 from the primary inputs) and observability CO (cost of
    propagating a net's value to a primary output). Flip-flop outputs
    count as directly controllable and their D pins as directly
    observable — the full-scan view, consistent with how the ATPG
    engines treat sequential circuits.

    PODEM uses these as branching heuristics: backtrace follows the
    cheapest-to-control input, and the D-frontier advances through the
    most observable gate. *)

type t = {
  cc0 : int array;  (** per net *)
  cc1 : int array;
  co : int array;
}

val infinity_cost : int
(** Stands for "uncontrollable/unobservable" (constants' opposite
    value); safely addable without overflow. *)

val compute : Mutsamp_netlist.Netlist.t -> t

val harder_value : t -> int -> int
(** [harder_value t net] is 0 or 1 — the value with the larger
    controllability cost (ties: 1). Random-resistant faults tend to
    need it. *)
