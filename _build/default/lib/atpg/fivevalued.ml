module Gate = Mutsamp_netlist.Gate

type t = Zero | One | X | D | Dbar

let good = function
  | Zero -> Zero | One -> One | X -> X | D -> One | Dbar -> Zero

let faulty = function
  | Zero -> Zero | One -> One | X -> X | D -> Zero | Dbar -> One

let combine g f =
  match g, f with
  | X, _ | _, X -> X
  | One, One -> One
  | Zero, Zero -> Zero
  | One, Zero -> D
  | Zero, One -> Dbar
  | (D | Dbar), _ | _, (D | Dbar) -> invalid_arg "Fivevalued.combine: projections only"

let not2 = function Zero -> One | One -> Zero | X -> X | D | Dbar -> assert false

let and2 a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, o | o, One -> o
  | X, X -> X
  | _ -> assert false

let or2 a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, o | o, Zero -> o
  | X, X -> X
  | _ -> assert false

let xor2 a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, o | o, Zero -> o
  | One, One -> Zero
  | _ -> assert false

(* Lift a two-valued-with-X function to the five-valued domain by
   applying it to both projections. *)
let lift2 f a b = combine (f (good a) (good b)) (f (faulty a) (faulty b))
let lift1 f a = combine (f (good a)) (f (faulty a))

let lnot a = lift1 not2 a
let land_ a b = lift2 and2 a b
let lor_ a b = lift2 or2 a b
let lxor_ a b = lift2 xor2 a b

let eval kind a b =
  match kind with
  | Gate.Buf -> a
  | Gate.Not -> lnot a
  | Gate.And -> land_ a b
  | Gate.Or -> lor_ a b
  | Gate.Nand -> lnot (land_ a b)
  | Gate.Nor -> lnot (lor_ a b)
  | Gate.Xor -> lxor_ a b
  | Gate.Xnor -> lnot (lxor_ a b)
  | Gate.Pi _ | Gate.Const _ | Gate.Dff _ ->
    invalid_arg "Fivevalued.eval: not a combinational gate"

let is_error = function D | Dbar -> true | Zero | One | X -> false

let of_bool b = if b then One else Zero

let to_string = function
  | Zero -> "0" | One -> "1" | X -> "X" | D -> "D" | Dbar -> "D'"

let controlling_value = function
  | Gate.And | Gate.Nand -> Some false
  | Gate.Or | Gate.Nor -> Some true
  | Gate.Xor | Gate.Xnor | Gate.Buf | Gate.Not -> None
  | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> None

let inverts = function
  | Gate.Not | Gate.Nand | Gate.Nor | Gate.Xnor -> true
  | Gate.Buf | Gate.And | Gate.Or | Gate.Xor -> false
  | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> false
