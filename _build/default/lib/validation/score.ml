module Kill = Mutsamp_mutation.Kill

type t = {
  total : int;
  killed : int;
  equivalent : int;
  score_percent : float;
}

let make ~total ~killed ~equivalent =
  if total < 0 || killed < 0 || equivalent < 0 then
    invalid_arg "Score.make: negative count";
  if killed + equivalent > total then
    invalid_arg "Score.make: killed + equivalent exceeds total";
  let denominator = total - equivalent in
  let score_percent =
    if denominator = 0 then 100.
    else 100. *. float_of_int killed /. float_of_int denominator
  in
  { total; killed; equivalent; score_percent }

let of_test_set design mutants ~equivalent test_set =
  let runner = Kill.make design mutants in
  let flags = Kill.killed_set runner test_set in
  let killed = Array.fold_left (fun acc k -> if k then acc + 1 else acc) 0 flags in
  (* A mutant listed as equivalent must never be killed; trust the kill
     engine over the label. *)
  let equivalent_count =
    List.length (List.filter (fun i -> not flags.(i)) equivalent)
  in
  make ~total:(List.length mutants) ~killed ~equivalent:equivalent_count

let to_string s =
  Printf.sprintf "MS = %.2f%% (K=%d, M=%d, E=%d)" s.score_percent s.killed s.total
    s.equivalent

let pp fmt s = Format.pp_print_string fmt (to_string s)
