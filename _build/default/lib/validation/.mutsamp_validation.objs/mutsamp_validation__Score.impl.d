lib/validation/score.ml: Array Format List Mutsamp_mutation Printf
