lib/validation/vectorgen.mli: Mutsamp_hdl Mutsamp_mutation
