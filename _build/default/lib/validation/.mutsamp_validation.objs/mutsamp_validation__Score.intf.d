lib/validation/score.mli: Format Mutsamp_hdl Mutsamp_mutation
