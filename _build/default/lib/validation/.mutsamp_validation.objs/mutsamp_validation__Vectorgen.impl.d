lib/validation/vectorgen.ml: Array Fun Hashtbl List Mutsamp_hdl Mutsamp_mutation Mutsamp_util Stdlib
