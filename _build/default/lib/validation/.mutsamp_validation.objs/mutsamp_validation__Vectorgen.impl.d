lib/validation/vectorgen.ml: Array Fun Hashtbl List Mutsamp_hdl Mutsamp_mutation Mutsamp_obs Mutsamp_sat Mutsamp_synth Mutsamp_util Stdlib
