(** Mutation score.

    MS(TS, P) = K / (M − E), where M is the number of generated
    mutants, K the number killed by the test set TS and E the number of
    equivalent mutants — the paper's section 2 definition. Mutants that
    are neither killed nor proven equivalent count in the denominator,
    so reported scores are conservative. *)

type t = {
  total : int;  (** M *)
  killed : int;  (** K *)
  equivalent : int;  (** E *)
  score_percent : float;  (** 100 · K / (M − E) *)
}

val make : total:int -> killed:int -> equivalent:int -> t
(** Raises [Invalid_argument] if the counts are inconsistent
    (negative, [killed + equivalent > total], or [equivalent = total]
    with [killed > 0]). *)

val of_test_set :
  Mutsamp_hdl.Ast.design ->
  Mutsamp_mutation.Mutant.t list ->
  equivalent:int list ->
  Mutsamp_hdl.Sim.stimulus list list ->
  t
(** Simulate the test set against the whole mutant population and
    score it. [equivalent] lists mutant indices known equivalent. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
