(** Miter-based combinational equivalence checking.

    Two netlists with identical interfaces are joined on their primary
    inputs; each output pair feeds an XOR and the disjunction of the
    XORs is asserted. UNSAT proves equivalence; a model is a
    counterexample input assignment. Sequential netlists are rejected —
    the behavioural level handles those (product-machine BFS). *)

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
      (** input name to value, for every primary input *)

exception Equiv_error of string

val check : Mutsamp_netlist.Netlist.t -> Mutsamp_netlist.Netlist.t -> verdict
(** Raises {!Equiv_error} if interfaces differ or a netlist holds
    flip-flops. *)

val counterexample_is_real :
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_netlist.Netlist.t ->
  (string * bool) list ->
  bool
(** Replay a counterexample on both netlists and confirm the outputs
    differ (test oracle). *)
