(** CNF formula construction.

    Variables are positive integers (1-based); a literal is a non-zero
    integer, negative for a negated variable. *)

type lit = int
type clause = lit array

type t

val create : unit -> t
val new_var : t -> lit
(** A fresh variable, returned as its positive literal. *)

val num_vars : t -> int
val num_clauses : t -> int

val add_clause : t -> lit list -> unit
(** Add a clause. Raises [Invalid_argument] on the empty clause, a zero
    literal or a literal naming an unallocated variable. Tautological
    clauses (containing both [l] and [-l]) are dropped; duplicate
    literals are removed. *)

val clauses : t -> clause array
(** Snapshot of all clauses. *)

val neg : lit -> lit
val var_of : lit -> int
(** Variable index of a literal. *)
