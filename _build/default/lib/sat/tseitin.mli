(** Tseitin encoding of netlists into CNF.

    Each net receives one CNF variable; each gate contributes the
    standard consistency clauses. Flip-flop outputs are treated as free
    variables (pseudo primary inputs), which is the full-scan
    combinational view used by the SAT ATPG and the miter check. *)

type t = {
  cnf : Cnf.t;
  var_of_net : int array;  (** CNF variable of every net *)
}

val encode : ?into:Cnf.t -> Mutsamp_netlist.Netlist.t -> t
(** Encode the combinational logic of a netlist. When [into] is given,
    clauses and variables are added to an existing formula (used to put
    two circuits in one miter). *)

val encode_shared :
  into:Cnf.t -> share_inputs:(string * int) list -> Mutsamp_netlist.Netlist.t -> t
(** Like {!encode}, but primary inputs whose names appear in
    [share_inputs] reuse the given CNF variables instead of fresh ones
    (miter construction). *)

val xor_out : Cnf.t -> Cnf.lit -> Cnf.lit -> Cnf.lit
(** Fresh literal constrained to the XOR of two literals. *)

val or_list : Cnf.t -> Cnf.lit list -> Cnf.lit
(** Fresh literal constrained to the OR of the given literals.
    Raises [Invalid_argument] on the empty list. *)
