lib/sat/tseitin.mli: Cnf Mutsamp_netlist
