lib/sat/solver.ml: Array Cnf List Mutsamp_obs
