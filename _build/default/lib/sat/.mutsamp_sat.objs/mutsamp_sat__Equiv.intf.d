lib/sat/equiv.mli: Mutsamp_netlist
