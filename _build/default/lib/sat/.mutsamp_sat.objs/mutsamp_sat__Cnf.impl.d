lib/sat/cnf.ml: Array List Stdlib
