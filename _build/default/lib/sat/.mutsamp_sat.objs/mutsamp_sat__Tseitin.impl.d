lib/sat/tseitin.ml: Array Cnf List Mutsamp_netlist
