lib/sat/equiv.ml: Array Cnf List Mutsamp_netlist Printf Solver Tseitin
