lib/sat/cnf.mli:
