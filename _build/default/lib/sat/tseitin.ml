module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate

type t = { cnf : Cnf.t; var_of_net : int array }

let gate_clauses cnf out kind a b =
  match kind with
  | Gate.Buf ->
    Cnf.add_clause cnf [ -out; a ];
    Cnf.add_clause cnf [ out; -a ]
  | Gate.Not ->
    Cnf.add_clause cnf [ -out; -a ];
    Cnf.add_clause cnf [ out; a ]
  | Gate.And ->
    Cnf.add_clause cnf [ -out; a ];
    Cnf.add_clause cnf [ -out; b ];
    Cnf.add_clause cnf [ out; -a; -b ]
  | Gate.Nand ->
    Cnf.add_clause cnf [ out; a ];
    Cnf.add_clause cnf [ out; b ];
    Cnf.add_clause cnf [ -out; -a; -b ]
  | Gate.Or ->
    Cnf.add_clause cnf [ out; -a ];
    Cnf.add_clause cnf [ out; -b ];
    Cnf.add_clause cnf [ -out; a; b ]
  | Gate.Nor ->
    Cnf.add_clause cnf [ -out; -a ];
    Cnf.add_clause cnf [ -out; -b ];
    Cnf.add_clause cnf [ out; a; b ]
  | Gate.Xor ->
    Cnf.add_clause cnf [ -out; a; b ];
    Cnf.add_clause cnf [ -out; -a; -b ];
    Cnf.add_clause cnf [ out; -a; b ];
    Cnf.add_clause cnf [ out; a; -b ]
  | Gate.Xnor ->
    Cnf.add_clause cnf [ out; a; b ];
    Cnf.add_clause cnf [ out; -a; -b ];
    Cnf.add_clause cnf [ -out; -a; b ];
    Cnf.add_clause cnf [ -out; a; -b ]
  | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> assert false

let encode_shared ~into ~share_inputs (nl : Netlist.t) =
  let cnf = into in
  let n = Array.length nl.gates in
  let var_of_net = Array.make n 0 in
  (* Pass 1: allocate variables (shared PIs reuse). *)
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Pi name ->
        (match List.assoc_opt name share_inputs with
         | Some v -> var_of_net.(i) <- v
         | None -> var_of_net.(i) <- Cnf.new_var cnf)
      | _ -> var_of_net.(i) <- Cnf.new_var cnf)
    nl.gates;
  (* Pass 2: constraints. *)
  Array.iteri
    (fun i (g : Gate.t) ->
      let out = var_of_net.(i) in
      match g.kind with
      | Gate.Pi _ -> ()
      | Gate.Dff _ -> ()  (* free variable: full-scan view *)
      | Gate.Const true -> Cnf.add_clause cnf [ out ]
      | Gate.Const false -> Cnf.add_clause cnf [ -out ]
      | Gate.Buf | Gate.Not ->
        gate_clauses cnf out g.kind var_of_net.(g.fanins.(0)) 0
      | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
        gate_clauses cnf out g.kind var_of_net.(g.fanins.(0)) var_of_net.(g.fanins.(1)))
    nl.gates;
  { cnf; var_of_net }

let encode ?into nl =
  let cnf = match into with Some c -> c | None -> Cnf.create () in
  encode_shared ~into:cnf ~share_inputs:[] nl

let xor_out cnf a b =
  let out = Cnf.new_var cnf in
  Cnf.add_clause cnf [ -out; a; b ];
  Cnf.add_clause cnf [ -out; -a; -b ];
  Cnf.add_clause cnf [ out; -a; b ];
  Cnf.add_clause cnf [ out; a; -b ];
  out

let or_list cnf lits =
  if lits = [] then invalid_arg "Tseitin.or_list: empty";
  let out = Cnf.new_var cnf in
  List.iter (fun l -> Cnf.add_clause cnf [ out; -l ]) lits;
  Cnf.add_clause cnf (-out :: lits);
  out
