(** CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis, VSIDS-style activity-based decisions
    with phase saving, and geometric restarts. Intended for the miter
    and ATPG instances this repository produces (thousands of variables),
    not as a competition solver. *)

type result =
  | Sat of bool array
      (** model indexed by variable (entry 0 unused) *)
  | Unsat

val solve : ?assumptions:Cnf.lit list -> Cnf.t -> result
(** Decide the formula. [assumptions] are forced as decision-level-0
    units for this call. Deterministic: the same formula and assumptions
    always take the same search path. *)

val is_satisfying : Cnf.t -> bool array -> bool
(** [is_satisfying cnf model] checks the model against every clause
    (test oracle). *)
