type lit = int
type clause = lit array

type t = { mutable vars : int; mutable cls : clause list; mutable count : int }

let create () = { vars = 0; cls = []; count = 0 }

let new_var t =
  t.vars <- t.vars + 1;
  t.vars

let num_vars t = t.vars
let num_clauses t = t.count

let neg l = -l
let var_of l = abs l

let add_clause t lits =
  if lits = [] then invalid_arg "Cnf.add_clause: empty clause";
  List.iter
    (fun l ->
      if l = 0 then invalid_arg "Cnf.add_clause: zero literal";
      if abs l > t.vars then invalid_arg "Cnf.add_clause: unallocated variable")
    lits;
  let sorted = List.sort_uniq Stdlib.compare lits in
  let tautology = List.exists (fun l -> List.mem (-l) sorted) sorted in
  if not tautology then begin
    t.cls <- Array.of_list sorted :: t.cls;
    t.count <- t.count + 1
  end

let clauses t = Array.of_list (List.rev t.cls)
