(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus the repository's extension experiments, then runs
   bechamel micro-benchmarks of the kernels behind each table.

   Sections:
     Table 1 — operator fault-coverage efficiency (paper Table 1)
     Table 2 — test-oriented vs random 10% sampling (paper Table 2)
     E3      — ATPG-effort reduction from validation-data reuse (the
               introduction's claim; the paper shows no table, we do)
     A1      — ablation: MS vs sample rate
     A2      — ablation: serial vs parallel fault simulation
     throughput — fault-sim pattern x fault pairs per second
     bechamel — one Test.make per table/experiment kernel

   `dune exec bench/main.exe` runs the full configuration (a few
   minutes); `dune exec bench/main.exe -- --quick` uses reduced budgets
   (tens of seconds). `--skip-micro` drops the bechamel section.
   `--report FILE` writes the whole run — per-section spans, pipeline
   counters, micro estimates — as a mutsamp run report (same JSON
   schema as the CLI's --report); `--metrics` dumps the counter
   snapshot to stderr. `--history DIR` appends the same report to the
   bench trajectory store as DIR/BENCH_<timestamp>.json, the files
   `mutsamp benchdiff` compares across commits. *)

module Registry = Mutsamp_circuits.Registry
module Operator = Mutsamp_mutation.Operator
module Strategy = Mutsamp_sampling.Strategy
module Vectorgen = Mutsamp_validation.Vectorgen
module Fsim = Mutsamp_fault.Fsim
module Netlist = Mutsamp_netlist.Netlist
module Prpg = Mutsamp_atpg.Prpg
module Podem = Mutsamp_atpg.Podem
module Prng = Mutsamp_util.Prng
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Report = Mutsamp_core.Report
module Paper_data = Mutsamp_core.Paper_data
module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json
module Runreport = Mutsamp_obs.Runreport
module Budget = Mutsamp_robust.Budget
module Degrade = Mutsamp_robust.Degrade
module Pool = Mutsamp_exec.Pool
module Ctx = Mutsamp_exec.Ctx
module Cliargs = Mutsamp_exec.Cliargs
module Profile = Mutsamp_obs.Profile

let quick = Cliargs.flag [ "--quick" ] Sys.argv
let skip_micro = Cliargs.flag [ "--skip-micro" ] Sys.argv
let print_metrics = Cliargs.flag [ "--metrics" ] Sys.argv
let report_path = Cliargs.value_opt ~long:"--report" Sys.argv
let history_dir = Cliargs.value_opt ~long:"--history" Sys.argv

(* --jobs N (also -j N, --jobs=N, -jN): worker domains for the sharded
   stages (1 = sequential, 0 = one per core). Results are bit-identical
   at any setting; the throughput section additionally measures
   jobs 1/2/4 regardless. *)
let jobs = Cliargs.jobs ~default:1 Sys.argv

let bench_pool = if jobs = 1 then None else Some (Pool.create ~domains:jobs)

let bench_ctx =
  match bench_pool with None -> Ctx.default | Some p -> Ctx.with_pool p

let config = if quick then Config.quick else Config.default
let t2_repetitions = if quick then 3 else 20
let t1_repetitions = if quick then 2 else 5

let section title = Printf.printf "\n==== %s ====\n\n%!" title

let timed label f =
  let r, dt = Trace.with_span_timed label f in
  Printf.printf "[%s: %.1fs]\n%!" label dt;
  r

(* Prepared pipelines, shared across sections. The throughput section
   additionally stresses wide128 (128-bit inputs), which is not a paper
   benchmark and so stays out of the table sections. *)
let prepare_entry (e : Registry.entry) =
  (e.Registry.name, lazy (Pipeline.prepare (e.Registry.design ())))

let paper_pipelines = List.map prepare_entry Registry.paper_benchmarks

let pipelines =
  paper_pipelines
  @ List.filter_map
      (fun (e : Registry.entry) ->
        if e.Registry.name = "wide128" then Some (prepare_entry e) else None)
      Registry.all

let pipeline name = Lazy.force (List.assoc name pipelines)

(* Full-operator efficiency rows, reused for Table 1 display and the
   Table 2 weights. *)
let full_rows = Hashtbl.create 4

let full_row name =
  match Hashtbl.find_opt full_rows name with
  | Some row -> row
  | None ->
    let row =
      Experiments.operator_efficiency_avg ~config ~operators:Operator.all
        ~repetitions:t1_repetitions ~ctx:bench_ctx (pipeline name) ~name
    in
    Hashtbl.replace full_rows name row;
    row

let equivalents_cache = Hashtbl.create 4

let equivalents name =
  match Hashtbl.find_opt equivalents_cache name with
  | Some eq -> eq
  | None ->
    let eq =
      Pipeline.classify_equivalents ~screen:config.Config.equivalence_screen
        ~ctx:bench_ctx ~seed:config.Config.seed (pipeline name)
    in
    Hashtbl.replace equivalents_cache name eq;
    eq

let circuit_names = List.map fst paper_pipelines

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  section "Table 1: operator fault-coverage efficiency";
  let rows =
    List.map
      (fun name ->
        timed (name ^ " table1") (fun () ->
            let full = full_row name in
            (* Display the paper's four operators from the full row. *)
            {
              full with
              Experiments.per_operator =
                List.filter
                  (fun (r : Experiments.operator_row) ->
                    List.exists (Operator.equal r.Experiments.op)
                      [ Operator.LOR; Operator.VR; Operator.CVR; Operator.CR ])
                  full.Experiments.per_operator;
            }))
      circuit_names
  in
  print_endline "Measured (this reproduction):";
  print_endline (Report.table1 rows);
  print_endline "";
  print_endline "Published (paper Table 1):";
  print_endline (Report.paper_table1 ());
  List.iter
    (fun (row : Experiments.table1_row) ->
      let measured =
        List.map
          (fun (r : Experiments.operator_row) ->
            (r.Experiments.op, r.Experiments.metric.Mutsamp_sampling.Nlfce.nlfce))
          row.Experiments.per_operator
      in
      Printf.printf "shape[%s]: LOR weakest among paper operators: %b\n"
        row.Experiments.circuit
        (Paper_data.table1_ordering_holds measured row.Experiments.circuit))
    rows

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

let run_table2 () =
  section "Table 2: test-oriented vs random 10% mutant sampling";
  let averages =
    List.map
      (fun name ->
        timed (name ^ " table2") (fun () ->
            let weights = Experiments.weights_of_table1 (full_row name) in
            Experiments.sampling_comparison_avg ~config ~repetitions:t2_repetitions
              ~ctx:bench_ctx
              (pipeline name) ~name ~weights ~equivalents:(equivalents name)))
      circuit_names
  in
  Printf.printf "Measured (means over %d repetitions):\n" t2_repetitions;
  print_endline (Report.table2_average averages);
  print_endline "";
  print_endline "Published (paper Table 2):";
  print_endline (Report.paper_table2 ());
  List.iter
    (fun (a : Experiments.table2_average) ->
      Printf.printf
        "shape[%s]: oriented MS >= random MS (mean): %b; oriented NLFCE >= random NLFCE (mean): %b\n"
        a.Experiments.circuit
        (a.Experiments.oriented_ms_mean >= a.Experiments.random_ms_mean)
        (a.Experiments.oriented_nlfce_mean >= a.Experiments.random_nlfce_mean))
    averages

(* Table 2 rerun with the PAPER's published operator-efficiency profile
   as weights: separates "does the oriented strategy transfer" from "do
   our measured efficiencies match the authors'". *)
let run_table2_published_weights () =
  section "Table 2b: oriented sampling with the paper's published weights";
  let averages =
    List.map
      (fun name ->
        timed (name ^ " table2b") (fun () ->
            Experiments.sampling_comparison_avg ~config ~repetitions:t2_repetitions
              ~ctx:bench_ctx
              (pipeline name) ~name
              ~weights:(Paper_data.published_weights name)
              ~equivalents:(equivalents name)))
      circuit_names
  in
  print_endline (Report.table2_average averages)

(* ------------------------------------------------------------------ *)
(* E3: ATPG effort                                                    *)
(* ------------------------------------------------------------------ *)

(* Validation data of the test-oriented 10% sample: what a project
   would actually re-use as a free initial test set. *)
let mutation_seed_sequences name =
  let p = pipeline name in
  let weights = Experiments.weights_of_table1 (full_row name) in
  let prng = Prng.create (config.Config.seed + 77) in
  let sample =
    Strategy.sample prng (Strategy.Operator_weighted weights) p.Pipeline.mutants
      ~rate:config.Config.sample_rate
  in
  let vector_config =
    { config.Config.vector with Vectorgen.seed = config.Config.seed + 78 }
  in
  (Vectorgen.generate ~config:vector_config p.Pipeline.design sample)
    .Vectorgen.test_set

let run_e3 () =
  section "E3: ATPG effort with and without validation-data seeding";
  List.iter
    (fun name ->
      (* The XOR-tree decoder c499 is PODEM's degenerate case; its
         deterministic phase runs on the SAT engine instead. *)
      let generator =
        if name = "c499" then Mutsamp_atpg.Topoff.Use_sat
        else Mutsamp_atpg.Topoff.Use_podem
      in
      let rows =
        timed (name ^ " e3") (fun () ->
            Experiments.atpg_effort ~config ~generator ~ctx:bench_ctx (pipeline name)
              ~name ~mutation_sequences:(mutation_seed_sequences name))
      in
      print_endline (Report.atpg_effort ~circuit:name rows))
    circuit_names

(* ------------------------------------------------------------------ *)
(* A1: MS vs sample rate                                              *)
(* ------------------------------------------------------------------ *)

let run_a1 () =
  section "A1 (ablation): mutation score vs sample rate";
  let rates = [ 0.05; 0.10; 0.20; 0.40 ] in
  List.iter
    (fun name ->
      let rows =
        timed (name ^ " a1") (fun () ->
            Experiments.ms_vs_rate ~config ~ctx:bench_ctx (pipeline name) ~name
              ~weights:(Experiments.weights_of_table1 (full_row name))
              ~equivalents:(equivalents name) ~rates)
      in
      print_endline (Report.ms_vs_rate ~circuit:name rows))
    [ "b01"; "c432" ]

(* ------------------------------------------------------------------ *)
(* A2: serial vs parallel fault simulation                            *)
(* ------------------------------------------------------------------ *)

let run_a2 () =
  section "A2 (ablation): serial vs word-parallel fault simulation";
  (* Sequential circuits: serial vs parallel-fault (one fault per lane). *)
  List.iter
    (fun name ->
      let p = pipeline name in
      if p.Pipeline.sequential then begin
        let nl = p.Pipeline.netlist in
        let faults = p.Pipeline.faults in
        let bits = Array.length nl.Netlist.input_nets in
        let sequence =
          Prpg.uniform_sequence (Prng.create 98) ~bits
            ~length:(if quick then 248 else 992)
        in
        let time label f = Trace.with_span_timed label f in
        let rs, ts =
          time (name ^ " serial") (fun () ->
              Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence)
        in
        let rp, tp =
          time (name ^ " parallel-fault") (fun () ->
              Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence)
        in
        Printf.printf
          "%s (sequential): %d faults, %d cycles | parallel-fault %.3fs, serial %.3fs (speedup %.1fx), coverage equal: %b\n%!"
          name (List.length faults) (Array.length sequence) tp ts
          (ts /. Float.max tp 1e-9)
          (Fsim.coverage_percent rp = Fsim.coverage_percent rs)
      end)
    [ "b01"; "b03" ];
  (* Combinational circuits: serial vs parallel-pattern (PPSFP). *)
  List.iter
    (fun name ->
      let p = pipeline name in
      if not p.Pipeline.sequential then begin
        let nl = p.Pipeline.netlist in
        let faults = p.Pipeline.faults in
        let bits = Array.length nl.Netlist.input_nets in
        let patterns =
          Prpg.uniform_sequence (Prng.create 99) ~bits
            ~length:(if quick then 248 else 992)
        in
        let time label f = Trace.with_span_timed label f in
        let rp, tp =
          time (name ^ " parallel") (fun () ->
              Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence:patterns)
        in
        let rs, ts =
          time (name ^ " serial") (fun () ->
              Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence:patterns)
        in
        Printf.printf
          "%s: %d faults, %d patterns | parallel %.3fs, serial %.3fs (speedup %.1fx), coverage equal: %b\n%!"
          name (List.length faults) (Array.length patterns) tp ts
          (ts /. Float.max tp 1e-9)
          (Fsim.coverage_percent rp = Fsim.coverage_percent rs)
      end)
    [ "c432"; "c499" ]

(* ------------------------------------------------------------------ *)
(* A3: SCOAP guidance in PODEM                                        *)
(* ------------------------------------------------------------------ *)

let run_a3 () =
  section "A3 (ablation): SCOAP-guided vs unguided PODEM";
  List.iter
    (fun name ->
      let p = pipeline name in
      if not p.Pipeline.sequential then begin
        let nl = p.Pipeline.netlist in
        let run guided =
          List.fold_left
            (fun (bt, impl, aborted) f ->
              match Podem.find_test ~backtrack_limit:2000 ~guided nl f with
              | Ok (_, stats) ->
                (bt + stats.Podem.backtracks, impl + stats.Podem.implications, aborted)
              | Error _ ->
                (* search hit the backtrack limit; charge the limit *)
                (bt + 2000, impl, aborted + 1))
            (0, 0, 0) p.Pipeline.faults
        in
        let gb, gi, ga = run true in
        let ub, ui, ua = run false in
        Printf.printf
          "%s: guided %d backtracks / %d implications / %d aborts | unguided %d / %d / %d\n%!"
          name gb gi ga ub ui ua
      end)
    [ "c432" ]

(* ------------------------------------------------------------------ *)
(* Fault-simulation throughput                                        *)
(* ------------------------------------------------------------------ *)

(* Effective bandwidth of each combinational backend: pattern x fault
   pairs processed per wall-clock second. Detected faults drop out of
   later passes, so this is a lower bound on raw lane throughput.
   Returned so the run report can embed the numbers.

   Key scheme: every engine gets an explicit "name@engine[@jobsN]" row
   (the per-engine trajectory benchdiff gates on); the bare
   "name[@jobsN]" keys additionally alias the compiled rows — the
   default engine for combinational netlists — so the pre-engine-API
   history (whose bare keys were the packed kernel) reads the
   packed->compiled speedup as an improvement, not a key loss. *)
let throughput_engines =
  [ ("packed", Fsim.Packed); ("event", Fsim.Event); ("compiled", Fsim.Compiled) ]

let run_throughput () =
  section "fault-simulation throughput (pattern x fault pairs / s)";
  (* Each jobs level gets its own pool so the jobs=1 rows stay the
     sequential kernels. *)
  let measure ctx ~jobs:j (ename, engine) name =
    let p = pipeline name in
    let nl = p.Pipeline.netlist in
    let faults = p.Pipeline.faults in
    let bits = Array.length nl.Netlist.input_nets in
    let length = if quick then 496 else 1984 in
    let patterns = Prpg.uniform_sequence (Prng.create 123) ~bits ~length in
    (* Best of five: single quick-mode passes finish in milliseconds,
       where scheduler noise alone swings the rate by ±30% — far too
       flaky for the benchdiff CI gate — and the compiled engine pays
       its one-off specialisation on the first pass only (the program
       cache serves the rest). The minimum wall time is the standard
       noise-robust estimator (slowdowns are one-sided). *)
    let r = ref None and best = ref infinity in
    for _ = 1 to 5 do
      let r', dt =
        Trace.with_span_timed
          (Printf.sprintf "%s throughput (%s, jobs %d)" name ename j)
          (fun () -> Fsim.run ~engine ~ctx nl ~faults ~sequence:patterns)
      in
      r := Some r';
      if dt < !best then best := dt
    done;
    let r = Option.get !r and dt = !best in
    let pairs = float_of_int (List.length faults * length) in
    let rate = pairs /. Float.max dt 1e-9 in
    Printf.printf
      "%s (%s, jobs %d): %d faults x %d patterns in %.3fs -> %.3g pattern-fault pairs/s (coverage %.2f%%)\n%!"
      name ename j (List.length faults) length dt rate (Fsim.coverage_percent r);
    ( (if j = 1 then Printf.sprintf "%s@%s" name ename
       else Printf.sprintf "%s@%s@jobs%d" name ename j),
      rate )
  in
  let rows =
    List.concat_map
      (fun j ->
        let pool = if j = 1 then None else Some (Pool.create ~domains:j) in
        let ctx = match pool with None -> Ctx.default | Some p -> Ctx.with_pool p in
        let rows =
          List.concat_map
            (fun eng ->
              List.map (measure ctx ~jobs:j eng) [ "c432"; "c499"; "wide128" ])
            throughput_engines
        in
        (match pool with None -> () | Some p -> Pool.shutdown p);
        rows)
      [ 1; 2; 4 ]
  in
  let bare_aliases =
    List.filter_map
      (fun (key, rate) ->
        match String.split_on_char '@' key with
        | [ name; "compiled" ] -> Some (name, rate)
        | [ name; "compiled"; jobs ] -> Some (name ^ "@" ^ jobs, rate)
        | _ -> None)
      rows
  in
  rows @ bare_aliases

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/experiment      *)
(* ------------------------------------------------------------------ *)

(* Returns the ns/run estimates so the run report can embed them.
   Metrics stay off during measurement: the instrumented kernels are
   exactly what the <2% disabled-overhead budget is about, and enabled
   counters would distort the comparison across runs. *)
let run_micro () =
  section "bechamel micro-benchmarks (kernels behind each table)";
  let metrics_were_on = Metrics.enabled () in
  Metrics.set_enabled false;
  let open Bechamel in
  let p432 = pipeline "c432" in
  let nl = p432.Pipeline.netlist in
  let faults = p432.Pipeline.faults in
  let patterns = Prpg.uniform_sequence (Prng.create 4) ~bits:36 ~length:63 in
  let mutants = p432.Pipeline.mutants in
  let some_fault = List.nth faults (List.length faults / 2) in
  (* Table 1's inner loop: one fault-simulation pass of a single
     63-lane word batch, on the default (compiled) engine. *)
  let table1_kernel () = ignore (Fsim.run nl ~faults ~sequence:patterns) in
  (* Table 2's extra work over Table 1: drawing a weighted sample. *)
  let table2_kernel () =
    let prng = Prng.create 5 in
    ignore
      (Strategy.sample prng
         (Strategy.Operator_weighted [ (Operator.CR, 4.); (Operator.VR, 2.) ])
         mutants ~rate:0.1)
  in
  (* E3's deterministic phase: one PODEM call. *)
  let e3_kernel () = ignore (Podem.find_test nl some_fault) in
  let a2_serial () =
    ignore (Fsim.run ~engine:Fsim.Serial nl ~faults ~sequence:patterns)
  in
  let a2_parallel () =
    ignore (Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence:patterns)
  in
  let tests =
    [
      Test.make ~name:"table1.fault-sim-one-word" (Staged.stage table1_kernel);
      Test.make ~name:"table2.weighted-sampling" (Staged.stage table2_kernel);
      Test.make ~name:"e3.podem-one-fault" (Staged.stage e3_kernel);
      Test.make ~name:"a2.serial-fault-sim" (Staged.stage a2_serial);
      Test.make ~name:"a2.parallel-fault-sim" (Staged.stage a2_parallel);
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-34s %14.1f ns/run\n%!" name est;
            estimates := (name, est) :: !estimates
          | Some _ | None -> Printf.printf "%-34s (no estimate)\n%!" name)
        results)
    tests;
  Metrics.set_enabled metrics_were_on;
  List.rev !estimates

let () =
  Printf.printf "mutsamp bench harness (%s config, seed %d)\n"
    (if quick then "quick" else "default")
    config.Config.seed;
  (* Section spans are coarse enough to trace unconditionally; counters
     only when someone will read them. *)
  Trace.set_enabled true;
  Trace.reset ();
  if print_metrics || report_path <> None || history_dir <> None then
    Metrics.set_enabled true;
  let throughput, micro =
    Trace.with_span "bench" @@ fun () ->
    run_table1 ();
    run_table2 ();
    run_table2_published_weights ();
    run_e3 ();
    run_a1 ();
    run_a2 ();
    run_a3 ();
    let throughput = run_throughput () in
    (throughput, if not skip_micro then run_micro () else [])
  in
  if print_metrics then Format.eprintf "%a@?" Metrics.pp (Metrics.snapshot ());
  (if report_path <> None || history_dir <> None then begin
     let extra =
       ( "fsim_throughput_pairs_per_sec",
         Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) throughput) )
       (* The robust section plus the robust.* counters in the metrics
          snapshot record whether any stage degraded mid-bench — a
          trajectory with a degraded run is not comparable to an exact
          one. *)
       :: ( "robust",
            match Degrade.to_json () with
            | Json.Obj fields ->
              Json.Obj (fields @ [ ("budget", Budget.to_json (Budget.ambient ())) ])
            | other -> other )
       :: ("profile", Profile.to_json (Profile.current ()))
       ::
       (if micro = [] then []
        else
          [
            ( "micro_ns_per_run",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) micro) );
          ])
     in
     let report =
       Runreport.make ~command:"bench" ~circuits:circuit_names
         ~config:(Config.to_json config) ~seed:config.Config.seed ~extra
         ~spans:(Trace.roots ()) ~metrics:(Metrics.snapshot ()) ()
     in
     let write path =
       try
         Runreport.write_file path report;
         Printf.printf "run report written to %s\n" path
       with Sys_error msg ->
         Printf.eprintf "bench: cannot write report: %s\n" msg;
         exit 1
     in
     Option.iter write report_path;
     match history_dir with
     | None -> ()
     | Some dir ->
       (* One timestamped row per run: the trajectory store benchdiff
          gates against. UTC so rows sort the same on every machine. *)
       (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
        with Unix.Unix_error (e, _, _) ->
          Printf.eprintf "bench: cannot create %s: %s\n" dir (Unix.error_message e);
          exit 1);
       let tm = Unix.gmtime (Unix.gettimeofday ()) in
       let stamp =
         Printf.sprintf "%04d%02d%02d-%02d%02d%02d" (tm.Unix.tm_year + 1900)
           (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
           tm.Unix.tm_sec
       in
       write (Filename.concat dir (Printf.sprintf "BENCH_%s.json" stamp))
   end);
  (match bench_pool with None -> () | Some p -> Pool.shutdown p);
  print_endline "\nbench: done"
