(* Scratch micro-bench for Bitsim.step_multi (parallel-fault path). *)
module Registry = Mutsamp_circuits.Registry
module Flow = Mutsamp_synth.Flow
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Prng = Mutsamp_util.Prng

let () =
  let entry = List.find (fun e -> e.Registry.name = "b09") Registry.all in
  let nl = Flow.synthesize (entry.Registry.design ()) in
  let faults = Fault.full_list nl in
  let prng = Prng.create 7 in
  let n_in = Array.length nl.Mutsamp_netlist.Netlist.input_nets in
  let sequence =
    Array.init 64 (fun _ ->
        Mutsamp_fault.Pattern.of_code ~inputs:n_in (Prng.int prng (1 lsl n_in)))
  in
  (* warmup *)
  ignore (Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence);
  let reps = 40 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Fsim.run ~engine:Fsim.Packed nl ~faults ~sequence)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "b09 parallel-fault: %d faults, 64 cycles, %d reps: %.2f ms/run\n"
    (List.length faults) reps (1000. *. dt /. float_of_int reps)
