(** Arbitrary-width unsigned bit vectors.

    Values model the word-level data of the behavioural HDL: a width in
    bits (>= 1) and an unsigned payload stored as 63-bit limbs in the
    {!Packvec} layout. All arithmetic wraps modulo [2^width], as VHDL
    [unsigned] arithmetic does after resizing. There is no upper width
    limit; only {!to_int} requires the value to fit a native integer. *)

type t
(** A bit vector: width plus payload. Structural equality compares both. *)

val make : width:int -> int -> t
(** [make ~width v] is [v] truncated to [width] bits. Raises
    [Invalid_argument] if [width < 1] or [v] is negative. *)

val zero : int -> t
(** [zero width] is the all-zero vector. *)

val ones : int -> t
(** [ones width] is the all-one vector. *)

val init : int -> (int -> bool) -> t
(** [init width f] sets bit [i] to [f i]. *)

val width : t -> int

val to_int : t -> int
(** The payload as a native integer. Raises [Invalid_argument] when
    [width > 62]; use {!bit} for wide vectors. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Orders by width, then unsigned value. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB is 0). Raises [Invalid_argument] if [i] is
    out of range. *)

val set_bit : t -> int -> bool -> t

(** Arithmetic (wrapping, operands must have equal width). *)

val add : t -> t -> t
val sub : t -> t -> t

(** Bitwise logic (operands must have equal width). *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(** Comparisons as unsigned integers (operands must have equal width). *)

val lt : t -> t -> bool
val le : t -> t -> bool

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] is bits [hi..lo] inclusive, width [hi-lo+1]. *)

val concat : t -> t -> t
(** [concat hi lo] juxtaposes: result width is the sum, [hi] in the upper
    bits. *)

val resize : t -> int -> t
(** [resize v w] zero-extends or truncates to width [w]. *)

val to_string : t -> string
(** Binary literal, MSB first, e.g. ["5'b01101"]. *)

val pp : Format.formatter -> t -> unit

val of_packvec : Packvec.t -> t
val to_packvec : t -> Packvec.t
(** Conversions to the mutable packed-lane representation (copying). *)
