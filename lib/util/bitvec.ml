(* Multi-word unsigned bit vectors on the Packvec limb layout: 63
   payload bits per native-int limb, LSB first. A limb may use bit 62
   (the OCaml sign bit), so unsigned limb comparison flips the sign bit
   and arithmetic recovers carries with the MSB-majority identity. *)

let limb_bits = Packvec.word_bits

type t = { w : int; words : int array }

let limbs_for w = Packvec.words_for w
let last_mask w = Packvec.last_mask w

let mask_last t =
  let n = Array.length t.words in
  t.words.(n - 1) <- t.words.(n - 1) land last_mask t.w;
  t

let make ~width v =
  if width < 1 then
    invalid_arg (Printf.sprintf "Bitvec.make: width %d not positive" width);
  if v < 0 then invalid_arg "Bitvec.make: negative value";
  let words = Array.make (limbs_for width) 0 in
  words.(0) <- v;
  mask_last { w = width; words }

let zero width = make ~width 0

let ones width =
  let words = Array.make (limbs_for width) (-1) in
  mask_last { w = width; words }

let width t = t.w

let to_int t =
  if t.w > 62 then invalid_arg "Bitvec.to_int: width exceeds 62-bit integers";
  t.words.(0)

let equal a b = a.w = b.w && a.words = b.words

(* Unsigned limb compare: flip the sign bit so bit 62 orders last. *)
let ucmp x y = Stdlib.compare (x lxor min_int) (y lxor min_int)

let compare a b =
  let c = Stdlib.compare a.w b.w in
  if c <> 0 then c
  else begin
    let rec go j =
      if j < 0 then 0
      else
        let c = ucmp a.words.(j) b.words.(j) in
        if c <> 0 then c else go (j - 1)
    in
    go (Array.length a.words - 1)
  end

let check_same a b op =
  if a.w <> b.w then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch (%d vs %d)" op a.w b.w)

let bit t i =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.bit: index out of range";
  (t.words.(i / limb_bits) lsr (i mod limb_bits)) land 1 = 1

let set_bit t i b =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.set_bit: index out of range";
  let words = Array.copy t.words in
  let j = i / limb_bits and k = i mod limb_bits in
  if b then words.(j) <- words.(j) lor (1 lsl k)
  else words.(j) <- words.(j) land lnot (1 lsl k);
  { t with words }

let add a b =
  check_same a b "add";
  let n = Array.length a.words in
  let words = Array.make n 0 in
  let carry = ref 0 in
  for j = 0 to n - 1 do
    let x = a.words.(j) and y = b.words.(j) in
    let s = x + y + !carry in
    words.(j) <- s;
    (* Carry out of a full 63-bit add: majority of the operand MSBs and
       the complemented sum MSB. *)
    carry := ((x land y) lor ((x lor y) land lnot s)) lsr (limb_bits - 1)
  done;
  mask_last { a with words }

let sub a b =
  check_same a b "sub";
  let n = Array.length a.words in
  let words = Array.make n 0 in
  let borrow = ref 0 in
  for j = 0 to n - 1 do
    let x = a.words.(j) and y = b.words.(j) in
    let d = x - y - !borrow in
    words.(j) <- d;
    borrow := ((lnot x land y) lor ((lnot x lor y) land d)) lsr (limb_bits - 1)
  done;
  mask_last { a with words }

let map2 op a b =
  let words = Array.init (Array.length a.words) (fun j -> op a.words.(j) b.words.(j)) in
  { a with words }

let logand a b = check_same a b "logand"; map2 ( land ) a b
let logor a b = check_same a b "logor"; map2 ( lor ) a b
let logxor a b = check_same a b "logxor"; map2 ( lxor ) a b

let lognot a =
  mask_last { a with words = Array.map lnot a.words }

let lt a b = check_same a b "lt"; compare a b < 0
let le a b = check_same a b "le"; compare a b <= 0

let init width f =
  if width < 1 then invalid_arg "Bitvec.init: width not positive";
  let words = Array.make (limbs_for width) 0 in
  for i = 0 to width - 1 do
    if f i then words.(i / limb_bits) <- words.(i / limb_bits) lor (1 lsl (i mod limb_bits))
  done;
  { w = width; words }

let slice t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.w then invalid_arg "Bitvec.slice: bad range";
  init (hi - lo + 1) (fun i -> bit t (lo + i))

let concat hi lo =
  init (hi.w + lo.w) (fun i -> if i < lo.w then bit lo i else bit hi (i - lo.w))

let resize t w =
  if w < 1 then invalid_arg "Bitvec.resize: bad width";
  init w (fun i -> i < t.w && bit t i)

let to_string t =
  let buf = Buffer.create (t.w + 4) in
  Buffer.add_string buf (string_of_int t.w);
  Buffer.add_string buf "'b";
  for i = t.w - 1 downto 0 do
    Buffer.add_char buf (if bit t i then '1' else '0')
  done;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let of_packvec (p : Packvec.t) = { w = p.Packvec.width; words = Array.copy p.Packvec.words }
let to_packvec t = { Packvec.width = t.w; words = Array.copy t.words }
