let word_bits = 63

type t = { width : int; words : int array }

let words_for width = (width + word_bits - 1) / word_bits

let last_mask width =
  let r = width mod word_bits in
  if r = 0 then -1 else (1 lsl r) - 1

let create width =
  if width < 1 then invalid_arg "Packvec.create: width < 1";
  { width; words = Array.make (words_for width) 0 }

let width t = t.width
let words t = t.words
let num_words t = Array.length t.words

let copy t = { t with words = Array.copy t.words }

let check_index t i op =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Packvec.%s: index %d out of range 0..%d" op i (t.width - 1))

let get t i =
  check_index t i "get";
  (t.words.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

let set t i b =
  check_index t i "set";
  let j = i / word_bits and k = i mod word_bits in
  if b then t.words.(j) <- t.words.(j) lor (1 lsl k)
  else t.words.(j) <- t.words.(j) land lnot (1 lsl k)

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let set_all t =
  Array.fill t.words 0 (Array.length t.words) (-1);
  let n = Array.length t.words in
  t.words.(n - 1) <- t.words.(n - 1) land last_mask t.width

let init width f =
  let t = create width in
  for i = 0 to width - 1 do
    if f i then set t i true
  done;
  t

let is_zero t = Array.for_all (fun w -> w = 0) t.words

let equal a b =
  a.width = b.width
  && (let n = Array.length a.words in
      let rec go j = j >= n || (a.words.(j) = b.words.(j) && go (j + 1)) in
      go 0)

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c
  else begin
    (* Unsigned word compare, most significant word first; the sign bit
       of a 63-bit OCaml int is never set by a masked word, so plain
       compare is safe. *)
    let rec go j = if j < 0 then 0 else
        let c = Stdlib.compare a.words.(j) b.words.(j) in
        if c <> 0 then c else go (j - 1)
    in
    go (Array.length a.words - 1)
  end

(* 16-entry nibble table keeps popcount branch-free per 4 bits. *)
let nibble = [| 0; 1; 1; 2; 1; 2; 2; 3; 1; 2; 2; 3; 2; 3; 3; 4 |]

let popcount_word w =
  let rec go w acc = if w = 0 then acc else go (w lsr 4) (acc + nibble.(w land 0xf)) in
  (* Shift once first so the sign bit cannot keep the loop spinning. *)
  go ((w lsr 4) land max_int) nibble.(w land 0xf)

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let lowest_bit w =
  let rec go k = if (w lsr k) land 1 = 1 then k else go (k + 1) in
  go 0

let first_set t =
  let n = Array.length t.words in
  let rec go j =
    if j >= n then None
    else if t.words.(j) = 0 then go (j + 1)
    else Some ((j * word_bits) + lowest_bit t.words.(j))
  in
  go 0

let first_diff a b =
  if a.width <> b.width then invalid_arg "Packvec.first_diff: width mismatch";
  let n = Array.length a.words in
  let rec go j =
    if j >= n then None
    else begin
      let d = a.words.(j) lxor b.words.(j) in
      if d = 0 then go (j + 1) else Some ((j * word_bits) + lowest_bit d)
    end
  in
  go 0

let blit ~src ~dst =
  if src.width <> dst.width then invalid_arg "Packvec.blit: width mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let check_same a b op =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Packvec.%s: width mismatch (%d vs %d)" op a.width b.width)

let map2_into op a b ~into =
  let n = Array.length a.words in
  for j = 0 to n - 1 do
    into.words.(j) <- op a.words.(j) b.words.(j)
  done

let logand_into a b ~into =
  check_same a b "logand_into"; check_same a into "logand_into";
  map2_into ( land ) a b ~into

let logor_into a b ~into =
  check_same a b "logor_into"; check_same a into "logor_into";
  map2_into ( lor ) a b ~into

let logxor_into a b ~into =
  check_same a b "logxor_into"; check_same a into "logxor_into";
  map2_into ( lxor ) a b ~into

let lognot_into a ~into =
  check_same a into "lognot_into";
  let n = Array.length a.words in
  for j = 0 to n - 1 do
    into.words.(j) <- lnot a.words.(j)
  done;
  into.words.(n - 1) <- into.words.(n - 1) land last_mask a.width

let of_code ~width code =
  if code < 0 then invalid_arg "Packvec.of_code: negative code";
  if width < 1 then invalid_arg "Packvec.of_code: width < 1";
  let t = create width in
  t.words.(0) <- code land (if width >= word_bits then -1 else last_mask width);
  (* OCaml ints carry at most 62 payload bits, so the code never reaches
     word 1; widths beyond that just leave the upper words zero. *)
  t

let to_code t =
  if t.width > 62 then
    invalid_arg "Packvec.to_code: width exceeds 62-bit integer codes";
  t.words.(0)

let random prng width =
  let t = create width in
  let n = Array.length t.words in
  for j = 0 to n - 1 do
    (* Int64.to_int wraps modulo 2^63: a full random 63-bit word. *)
    t.words.(j) <- Int64.to_int (Prng.bits64 prng)
  done;
  t.words.(n - 1) <- t.words.(n - 1) land last_mask width;
  t

let to_string t =
  let buf = Buffer.create (t.width + 4) in
  Buffer.add_string buf (string_of_int t.width);
  Buffer.add_string buf "'b";
  for i = t.width - 1 downto 0 do
    Buffer.add_char buf (if get t i then '1' else '0')
  done;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)
