(** Arbitrary-width packed bit vectors.

    The shared wide-pattern kernel: a vector of [width] bits stored as
    [ceil (width / 63)] native-int words, 63 payload bits per word, LSB
    first (bit [i] lives in word [i / 63], bit [i mod 63]). The
    simulators treat each bit as one parallel lane; [Bitvec] uses the
    same layout for word-level arithmetic, so conversions are blits.

    The word array is exposed deliberately: hot simulation loops index
    it directly instead of going through per-bit accessors. Unused high
    bits of the last word are kept zero by every operation here;
    writers that touch {!words} directly must preserve that invariant
    (mask with {!last_mask}). *)

val word_bits : int
(** Payload bits per word (63). *)

type t = { width : int; words : int array }

val words_for : int -> int
(** [words_for width] is the number of words a [width]-bit vector
    occupies. *)

val last_mask : int -> int
(** Mask of the valid bits in the last word of a [width]-bit vector
    ([-1] when the width is a multiple of {!word_bits}). *)

val create : int -> t
(** All-zero vector. Raises [Invalid_argument] when [width < 1]. *)

val init : int -> (int -> bool) -> t
(** [init width f] sets bit [i] to [f i]. *)

val width : t -> int
val words : t -> int array
val num_words : t -> int
val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> bool -> unit
(** Bit access; raise [Invalid_argument] out of range. [set] mutates. *)

val clear : t -> unit
val set_all : t -> unit

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned lexicographic: width first, then value. *)

val popcount : t -> int
val popcount_word : int -> int
(** Set bits in the whole vector / in one raw word. *)

val first_set : t -> int option
(** Lowest set bit index, if any. *)

val first_diff : t -> t -> int option
(** Lowest index where the two vectors differ — the first detecting
    lane when comparing good and faulty responses. Raises
    [Invalid_argument] on width mismatch. *)

val blit : src:t -> dst:t -> unit

val logand_into : t -> t -> into:t -> unit
val logor_into : t -> t -> into:t -> unit
val logxor_into : t -> t -> into:t -> unit
val lognot_into : t -> into:t -> unit
(** Word-parallel logic, writing into a caller-owned destination (which
    may alias an operand). All operands must share one width. *)

val of_code : width:int -> int -> t
(** Spread a non-negative integer code over the low bits (codes carry
    at most 62 payload bits; higher bits of the vector are zero). *)

val to_code : t -> int
(** Inverse of {!of_code}; raises [Invalid_argument] when [width > 62]. *)

val random : Prng.t -> int -> t
(** Uniform random vector of the given width. *)

val to_string : t -> string
(** Binary literal, MSB first, e.g. ["5'b01101"]. *)

val pp : Format.formatter -> t -> unit
