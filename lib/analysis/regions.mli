(** Fanout-free regions, reconvergent stems and structural cone hashes.

    One {!compute} pass over a netlist yields the per-net structural
    facts the rest of the pipeline consumes: the fanout-free region
    partition (lint rule NL009, [Netlist.Stats] cross-check),
    reconvergent-stem classification (NL007), and a Merkle-style
    content hash of every net's input cone. The cone hashes are the
    foundation of incremental store invalidation: a net's hash pins
    down the exact structure of the logic feeding it, so an edit
    elsewhere in the design leaves it — and every store entry keyed by
    it — untouched. See docs/STORE.md. *)

type t = {
  head : int array;
      (** fanout-free-region head per net: the first net at or after
          this one with multiple fanouts, a primary-output use, or a
          flip-flop D pin use *)
  region_count : int;  (** distinct heads *)
  max_region_size : int;  (** most logic gates sharing one head *)
  reconvergent : bool array;
      (** per net: is this a multi-fanout stem whose branches meet
          again downstream? *)
  reconvergence_count : int;  (** number of reconvergent stems *)
  cone_hash : string array;
      (** hex digest of the net's input-cone structure. Primary
          inputs hash by position, constants by value, flip-flops by
          (init, position) as pseudo-sources — the hash never crosses
          a register — and gates by kind plus fanin hashes in literal
          pin order, so the hash also fixes which subtree each fault
          pin index refers to. *)
}

val compute : Mutsamp_netlist.Netlist.t -> t

(** {1 Influence groups}

    Faults whose effects can reach the same set of primary outputs are
    interchangeable for store keying: their detection results depend
    only on the structure of those outputs' input cones and the
    applied patterns. {!cone_groups} partitions a fault list
    accordingly; [Mutsamp_core.Pipeline] keys one store entry per
    group. *)

type cone_group = {
  ghash : string;
      (** digest of the cone hashes of the reachable primary outputs'
          driving nets (ascending output order); [""]-digest for
          faults that reach no output *)
  nets : int list;
      (** union of the reachable outputs' input cones, ascending —
          the blast radius a [--cone NET] invalidation matches on *)
  faults : (int * Mutsamp_fault.Fault.t * string) list;
      (** (index in the original fault list, fault, site hash) in
          original list order. The site hash fixes the fault's exact
          structural position: stem faults by cone hash, branch
          faults by the gate's cone hash plus pin index. *)
  cacheable : bool;
      (** false when two faults in the group share a site hash
          (indistinguishable in a stored payload) — the caller must
          then compute this group fresh and never cache it *)
}

val cone_groups :
  Mutsamp_netlist.Netlist.t -> t -> Mutsamp_fault.Fault.t list -> cone_group list
(** Deterministic: groups ordered by first member's fault-list index.
    Every input fault appears in exactly one group. *)

val net_tokens : Mutsamp_netlist.Netlist.t -> int list -> string list
(** Human-usable names for a net set, sorted and deduplicated:
    primary-input names, [n<id>] labels (the Benchfmt convention) and
    the names of primary outputs driven by a net in the set. These are
    what [mutsamp store invalidate --cone NET] matches against. *)
