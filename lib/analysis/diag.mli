(** One diagnostic: a rule instance anchored to a location.

    [loc] is a short stable anchor used by waivers ([--waive RULEID:LOC]):
    the signal name for HDL findings, ["net<N>"] for netlist findings,
    ["mutant<N>"] for triage findings. [message] carries the full
    human-readable explanation. *)

type t = {
  rule : Rule.t;
  circuit : string;
  loc : string;
  message : string;
  waived : bool;
}

val make : rule:Rule.t -> circuit:string -> loc:string -> message:string -> t
(** Not waived; waiving is applied later by {!Engine}. *)

val to_string : t -> string
(** ["circuit: RULEID severity [loc] message"], with a ["(waived)"]
    suffix when waived. *)

val to_json : t -> Mutsamp_obs.Json.t

val compare : t -> t -> int
(** Severity (descending), then circuit, rule id, loc, message. *)
