(** Immediate-dominator trees (Cooper–Harvey–Kennedy).

    Generic engine over an integer-indexed flow graph plus a netlist
    convenience computing {e post}-dominators toward the observation
    points: net [d] post-dominates net [s] when every path from [s] to
    any primary output (or flip-flop D pin) passes through [d] — so a
    fault effect originating at [s] can only be observed if it
    propagates through every post-dominator of [s]. The ATPG prefilter
    and the NL007+ lint rules consume exactly this fact. *)

type t = {
  n : int;  (** real node count; the virtual root is node [n] *)
  idom : int array;
      (** immediate dominator per node: a real node, [n] (the virtual
          root) when the node's paths only meet at the root, or [-1]
          when the node is unreachable from the root *)
  rpo : int array;  (** reverse-postorder number per node; [-1] unreachable *)
}

val compute : n:int -> succs:int list array -> roots:int list -> t
(** Dominators of the flow graph whose nodes are [0..n-1], with edges
    [succs] and a virtual root [n] that has an edge to every node in
    [roots]. Standard iterative CHK on the reverse postorder; nodes
    unreachable from the root get [idom = -1]. *)

val post : Mutsamp_netlist.Netlist.t -> t
(** Post-dominators of every net toward the observation points: the
    flow graph is the reversed netlist (an edge from each gate to each
    of its fanins) rooted at the nets driving primary outputs and
    flip-flop D pins. [idom.(v)] is the first net every
    fault-propagation path from [v] must cross; nets that reach no
    observation point (dead logic) get [-1]. *)

val dominators : t -> int -> int list
(** The strict dominator chain of a node, nearest first, virtual root
    excluded. Empty for roots and unreachable nodes. *)

val dominates : t -> int -> int -> bool
(** [dominates t d v]: does [d] (strictly or trivially, [d = v])
    dominate [v]? Linear in the chain length. *)
