(** Behavioural-level lint over an elaborated design.

    Supersedes the ad-hoc style checks that used to be folded into
    elaboration: [Hdl.Check] keeps the hard structural errors
    (undeclared names, width mismatches), this pass reports the
    semantic smells — [HDL001]..[HDL007] in the catalogue
    ([docs/ANALYSIS.md]). *)

val run : circuit:string -> Mutsamp_hdl.Ast.design -> Diag.t list
(** Requires an elaborated design. Diagnostics come back unsorted and
    unwaived; {!Engine} applies waivers and ordering. *)
