module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate

let net_loc i = Printf.sprintf "net%d" i

let run ?(check_observability = true) ~circuit (nl : Netlist.t) =
  let diags = ref [] in
  let emit rule loc fmt =
    Printf.ksprintf
      (fun message -> diags := Diag.make ~rule ~circuit ~loc ~message :: !diags)
      fmt
  in
  let n = Array.length nl.Netlist.gates in
  let gate i = nl.Netlist.gates.(i) in
  let kind i = (gate i).Gate.kind in
  (* NL001: constant nets. *)
  let cp = Constprop.compute nl in
  List.iter
    (fun (i, v) ->
      emit Rule.nl_constant_net (net_loc i) "%s gate output is always %d"
        (Gate.kind_name (kind i))
        (if v then 1 else 0))
    (Constprop.constant_nets cp);
  (* NL002: gates outside every output cone — what [Sweep.run] would
     remove. *)
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter mark (gate i).Gate.fanins
    end
  in
  Array.iter (fun (_, net) -> mark net) nl.Netlist.output_list;
  let fanouts = Netlist.fanouts nl in
  for i = 0 to n - 1 do
    match kind i with
    | Gate.Pi _ -> ()
    | k ->
      if not live.(i) then
        emit Rule.nl_dead_gate (net_loc i) "%s gate feeds no primary output"
          (Gate.kind_name k)
  done;
  (* NL003: inputs are always kept by the sweeper, so "dead" for a PI
     means it feeds nothing and is not wired straight to an output. *)
  Array.iter
    (fun i ->
      if fanouts.(i) = []
         && not (Array.exists (fun (_, net) -> net = i) nl.Netlist.output_list)
      then emit Rule.nl_unused_input (net_loc i) "primary input drives no gate")
    nl.Netlist.input_nets;
  (* NL005: buffers (the builder never emits them; imports can). *)
  for i = 0 to n - 1 do
    match kind i with
    | Gate.Buf -> emit Rule.nl_buffer_gate (net_loc i) "buffer copies net %d"
                    (gate i).Gate.fanins.(0)
    | _ -> ()
  done;
  (* NL006: structural duplicates the hash-consing missed (imported
     netlists, nets tied mid-flow). *)
  let seen = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let g = gate i in
    (match g.Gate.kind with
     | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor
     | Gate.Not | Gate.Buf ->
       let fanins = Array.to_list g.Gate.fanins in
       let fanins =
         if Gate.is_commutative g.Gate.kind then List.sort Stdlib.compare fanins
         else fanins
       in
       let key = (Gate.kind_name g.Gate.kind, fanins) in
       (match Hashtbl.find_opt seen key with
        | Some first ->
          emit Rule.nl_duplicate_gate (net_loc i) "%s gate duplicates net %d"
            (Gate.kind_name g.Gate.kind) first
        | None -> Hashtbl.add seen key i)
     | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ())
  done;
  (* NL004: live, non-constant nets that still cannot influence any
     output — every propagation path is blocked by a constant side
     input. *)
  if check_observability then begin
    let ut = Untestable.analyze nl in
    for i = 0 to n - 1 do
      if live.(i)
         && Constprop.value cp i = Constprop.Unknown
         && not (Untestable.stem_observable ut i)
      then
        emit Rule.nl_blocked_net (net_loc i)
          "%s gate output cannot influence any primary output"
          (Gate.kind_name (kind i))
    done
  end;
  !diags
