module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate

let net_loc i = Printf.sprintf "net%d" i

let run ?(check_observability = true) ?(hotspot_fanout = 32)
    ?(max_region = 512) ~circuit (nl : Netlist.t) =
  let diags = ref [] in
  let emit rule loc fmt =
    Printf.ksprintf
      (fun message -> diags := Diag.make ~rule ~circuit ~loc ~message :: !diags)
      fmt
  in
  let n = Array.length nl.Netlist.gates in
  let gate i = nl.Netlist.gates.(i) in
  let kind i = (gate i).Gate.kind in
  (* NL001: constant nets. *)
  let cp = Constprop.compute nl in
  List.iter
    (fun (i, v) ->
      emit Rule.nl_constant_net (net_loc i) "%s gate output is always %d"
        (Gate.kind_name (kind i))
        (if v then 1 else 0))
    (Constprop.constant_nets cp);
  (* NL002: gates outside every output cone — what [Sweep.run] would
     remove. *)
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter mark (gate i).Gate.fanins
    end
  in
  Array.iter (fun (_, net) -> mark net) nl.Netlist.output_list;
  let fanouts = Netlist.fanouts nl in
  for i = 0 to n - 1 do
    match kind i with
    | Gate.Pi _ -> ()
    | k ->
      if not live.(i) then
        emit Rule.nl_dead_gate (net_loc i) "%s gate feeds no primary output"
          (Gate.kind_name k)
  done;
  (* NL003: inputs are always kept by the sweeper, so "dead" for a PI
     means it feeds nothing and is not wired straight to an output. *)
  Array.iter
    (fun i ->
      if fanouts.(i) = []
         && not (Array.exists (fun (_, net) -> net = i) nl.Netlist.output_list)
      then emit Rule.nl_unused_input (net_loc i) "primary input drives no gate")
    nl.Netlist.input_nets;
  (* NL005: buffers (the builder never emits them; imports can). *)
  for i = 0 to n - 1 do
    match kind i with
    | Gate.Buf -> emit Rule.nl_buffer_gate (net_loc i) "buffer copies net %d"
                    (gate i).Gate.fanins.(0)
    | _ -> ()
  done;
  (* NL006: structural duplicates the hash-consing missed (imported
     netlists, nets tied mid-flow). *)
  let seen = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let g = gate i in
    (match g.Gate.kind with
     | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor
     | Gate.Not | Gate.Buf ->
       let fanins = Array.to_list g.Gate.fanins in
       let fanins =
         if Gate.is_commutative g.Gate.kind then List.sort Stdlib.compare fanins
         else fanins
       in
       let key = (Gate.kind_name g.Gate.kind, fanins) in
       (match Hashtbl.find_opt seen key with
        | Some first ->
          emit Rule.nl_duplicate_gate (net_loc i) "%s gate duplicates net %d"
            (Gate.kind_name g.Gate.kind) first
        | None -> Hashtbl.add seen key i)
     | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ())
  done;
  (* NL007/NL009: structural smells from the dataflow engine —
     reconvergent wide stems (test-generation hotspots) and outsized
     fanout-free regions (usually a missing pipeline cut). *)
  let regions = Regions.compute nl in
  for i = 0 to n - 1 do
    let fo = List.length fanouts.(i) in
    if fo >= hotspot_fanout && regions.Regions.reconvergent.(i) then
      emit Rule.nl_reconvergent_hotspot (net_loc i)
        "net fans out %d ways and reconverges downstream" fo
  done;
  let region_size = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    match kind i with
    | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ()
    | _ ->
      let h = regions.Regions.head.(i) in
      Hashtbl.replace region_size h
        (1 + Option.value ~default:0 (Hashtbl.find_opt region_size h))
  done;
  Hashtbl.iter
    (fun h size ->
      if size > max_region then
        emit Rule.nl_oversized_region (net_loc h)
          "fanout-free region holds %d logic gates (threshold %d)" size
          max_region)
    region_size;
  (* NL004: live, non-constant nets that still cannot influence any
     output — every propagation path is blocked by a constant side
     input. *)
  if check_observability then begin
    let ut = Untestable.analyze nl in
    for i = 0 to n - 1 do
      if live.(i)
         && Constprop.value cp i = Constprop.Unknown
         && not (Untestable.stem_observable ut i)
      then
        emit Rule.nl_blocked_net (net_loc i)
          "%s gate output cannot influence any primary output"
          (Gate.kind_name (kind i))
    done;
    (* NL008: post-dominator side-input conflicts. Every path from the
       net to an output runs through each of its post-dominators, and an
       And/Nand (resp. Or/Nor) dominator only passes the effect when its
       off-path fanins are 1 (resp. 0). When two dominators demand
       opposite values of the same side net — or a demand contradicts a
       proved constant — no single vector sensitises any path, which the
       per-gate may-differ sweep behind NL004 cannot see. Combinational
       only: across flops the demands may be met in different cycles. *)
    if Netlist.num_dffs nl = 0 then begin
      let pdom = Domtree.post nl in
      let stamp = Array.make n (-1) in
      let in_cone start =
        let rec go i =
          if stamp.(i) <> start then begin
            stamp.(i) <- start;
            List.iter go fanouts.(i)
          end
        in
        go start;
        fun i -> stamp.(i) = start
      in
      for i = 0 to n - 1 do
        if live.(i)
           && Constprop.value cp i = Constprop.Unknown
           && Untestable.stem_observable ut i
           && pdom.Domtree.idom.(i) >= 0
        then begin
          let cone = in_cone i in
          let reqs = Hashtbl.create 8 in
          let conflict = ref None in
          let require dom f v =
            if !conflict = None then begin
              let clash reason = conflict := Some (dom, f, v, reason) in
              match Constprop.value cp f with
              | Constprop.Zero when v -> clash "that net is constant 0"
              | Constprop.One when not v -> clash "that net is constant 1"
              | _ -> (
                match Hashtbl.find_opt reqs f with
                | Some (prev, prev_dom) when prev <> v ->
                  clash
                    (Printf.sprintf "dominating net%d needs net%d=%d"
                       prev_dom f (if prev then 1 else 0))
                | Some _ -> ()
                | None -> Hashtbl.add reqs f (v, dom))
            end
          in
          List.iter
            (fun d ->
              match
                match kind d with
                | Gate.And | Gate.Nand -> Some true
                | Gate.Or | Gate.Nor -> Some false
                | _ -> None
              with
              | None -> ()
              | Some v ->
                Array.iter
                  (fun f -> if not (cone f) then require d f v)
                  (gate d).Gate.fanins)
            (Domtree.dominators pdom i);
          match !conflict with
          | Some (dom, f, v, reason) ->
            emit Rule.nl_dominator_blocked (net_loc i)
              "no sensitised path to any output: dominating %s gate net%d \
               needs net%d=%d, but %s"
              (Gate.kind_name (kind dom)) dom f (if v then 1 else 0) reason
          | None -> ()
        end
      done
    end
  end;
  !diags
