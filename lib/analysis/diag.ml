module Json = Mutsamp_obs.Json

type t = {
  rule : Rule.t;
  circuit : string;
  loc : string;
  message : string;
  waived : bool;
}

let make ~rule ~circuit ~loc ~message = { rule; circuit; loc; message; waived = false }

let to_string d =
  Printf.sprintf "%s: %s %s [%s] %s%s" d.circuit d.rule.Rule.id
    (Rule.severity_name d.rule.Rule.severity)
    d.loc d.message
    (if d.waived then " (waived)" else "")

let to_json d =
  Json.Obj
    [
      ("id", Json.String d.rule.Rule.id);
      ("severity", Json.String (Rule.severity_name d.rule.Rule.severity));
      ("circuit", Json.String d.circuit);
      ("loc", Json.String d.loc);
      ("message", Json.String d.message);
      ("waived", Json.Bool d.waived);
    ]

let compare a b =
  let sev r = -Rule.severity_rank r.Rule.severity in
  Stdlib.compare
    (sev a.rule, a.circuit, a.rule.Rule.id, a.loc, a.message)
    (sev b.rule, b.circuit, b.rule.Rule.id, b.loc, b.message)
