module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Metrics = Mutsamp_obs.Metrics

let c_builds = Metrics.counter "analysis.domtree.builds"

type t = { n : int; idom : int array; rpo : int array }

(* Cooper–Harvey–Kennedy: process nodes in reverse postorder, setting
   each node's idom to the intersection (in the dominator tree built so
   far) of its processed predecessors, iterating to a fixpoint. On the
   acyclic graphs a netlist produces one pass suffices; the loop keeps
   the engine correct on arbitrary graphs (the brute-force differential
   tests feed it random ones). *)
let compute ~n ~succs ~roots =
  Metrics.incr c_builds;
  let root = n in
  let succ_of v = if v = root then roots else succs.(v) in
  (* Reverse postorder from the root (iterative DFS; netlist chains can
     be thousands of nodes deep). *)
  let rpo = Array.make (n + 1) (-1) in
  let post = ref [] in
  let state = Array.make (n + 1) 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let dfs v =
    if state.(v) = 0 then begin
      state.(v) <- 1;
      let stack = ref [ (v, succ_of v) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, next) :: rest -> (
          match next with
          | [] ->
            state.(u) <- 2;
            post := u :: !post;
            stack := rest
          | w :: next' ->
            stack := (u, next') :: rest;
            if state.(w) = 0 then begin
              state.(w) <- 1;
              stack := (w, succ_of w) :: !stack
            end)
      done
    end
  in
  dfs root;
  let order = Array.of_list !post in
  (* [post] is postorder reversed already (consed on finish). *)
  Array.iteri (fun i v -> rpo.(v) <- i) order;
  (* Predecessors restricted to the reachable subgraph. *)
  let preds = Array.make (n + 1) [] in
  Array.iter
    (fun v ->
      List.iter (fun w -> if rpo.(w) >= 0 then preds.(w) <- v :: preds.(w)) (succ_of v))
    order;
  let idom = Array.make (n + 1) (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if rpo.(a) > rpo.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let new_idom =
            List.fold_left
              (fun acc p ->
                if idom.(p) < 0 then acc
                else match acc with None -> Some p | Some a -> Some (intersect a p))
              None preds.(v)
          in
          match new_idom with
          | Some d when idom.(v) <> d ->
            idom.(v) <- d;
            changed := true
          | _ -> ()
        end)
      order
  done;
  { n; idom = Array.sub idom 0 n; rpo = Array.sub rpo 0 n }

(* Observation points: nets driving primary outputs, plus nets feeding
   flip-flop D pins (a difference captured into state is potentially
   observable in a later cycle; treating it as a sink keeps the
   post-dominator facts conservative on sequential netlists). *)
let post (nl : Netlist.t) =
  let n = Array.length nl.Netlist.gates in
  let sinks = Hashtbl.create 16 in
  Array.iter (fun (_, net) -> Hashtbl.replace sinks net ()) nl.Netlist.output_list;
  Array.iter
    (fun (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Dff _ -> Hashtbl.replace sinks g.Gate.fanins.(0) ()
      | _ -> ())
    nl.Netlist.gates;
  let roots =
    List.sort compare (Hashtbl.fold (fun net () acc -> net :: acc) sinks [])
  in
  (* Reversed netlist: an edge from each gate to each distinct fanin. *)
  let succs =
    Array.map
      (fun (g : Gate.t) ->
        Array.to_list g.Gate.fanins |> List.sort_uniq compare)
      nl.Netlist.gates
  in
  compute ~n ~succs ~roots

let dominators t v =
  if v < 0 || v >= t.n || t.idom.(v) < 0 then []
  else begin
    let rec chain d acc =
      if d = t.n || d < 0 then List.rev acc else chain t.idom.(d) (d :: acc)
    in
    chain t.idom.(v) []
  end

let dominates t d v = d = v || List.mem d (dominators t v)
