module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Topo = Mutsamp_netlist.Topo

type value = Zero | One | Unknown

type t = { nl : Netlist.t; values : value array }

let v_not = function Zero -> One | One -> Zero | Unknown -> Unknown

(* [a] and [b] are the fanin NET IDS, [va]/[vb] their lattice values;
   the net ids let us use structural facts (same net, complementary
   pair) that hold even when the value is Unknown. *)
let eval (nl : Netlist.t) values kind a b =
  let va = values.(a) and vb = values.(b) in
  let complementary =
    (match nl.Netlist.gates.(b).Gate.kind with
     | Gate.Not -> nl.Netlist.gates.(b).Gate.fanins.(0) = a
     | _ -> false)
    || match nl.Netlist.gates.(a).Gate.kind with
       | Gate.Not -> nl.Netlist.gates.(a).Gate.fanins.(0) = b
       | _ -> false
  in
  let same = a = b in
  match kind with
  | Gate.And ->
    if va = Zero || vb = Zero || complementary then Zero
    else if va = One && vb = One then One
    else if same then va
    else if va = One then vb
    else if vb = One then va
    else Unknown
  | Gate.Or ->
    if va = One || vb = One || complementary then One
    else if va = Zero && vb = Zero then Zero
    else if same then va
    else if va = Zero then vb
    else if vb = Zero then va
    else Unknown
  | Gate.Nand ->
    if va = Zero || vb = Zero || complementary then One
    else if va = One && vb = One then Zero
    else if same then v_not va
    else if va = One then v_not vb
    else if vb = One then v_not va
    else Unknown
  | Gate.Nor ->
    if va = One || vb = One || complementary then Zero
    else if va = Zero && vb = Zero then One
    else if same then v_not va
    else if va = Zero then v_not vb
    else if vb = Zero then v_not va
    else Unknown
  | Gate.Xor ->
    if complementary then One
    else if same then Zero
    else (match va, vb with
      | Unknown, _ | _, Unknown -> Unknown
      | _ -> if va = vb then Zero else One)
  | Gate.Xnor ->
    if complementary then Zero
    else if same then One
    else (match va, vb with
      | Unknown, _ | _, Unknown -> Unknown
      | _ -> if va = vb then One else Zero)
  | Gate.Pi _ | Gate.Const _ | Gate.Buf | Gate.Not | Gate.Dff _ ->
    invalid_arg "Constprop.eval: not a binary gate"

let compute (nl : Netlist.t) =
  let n = Array.length nl.Netlist.gates in
  let values = Array.make n Unknown in
  (* Topo order covers the combinational gates; sources and DFFs are
     handled inline. A DFF whose D is proved equal to its reset value
     can never change state, so the outer fixpoint loop re-runs the
     combinational pass after a register is pinned. *)
  let topo = Topo.compute nl in
  let pass () =
    let changed = ref false in
    let set i v =
      if values.(i) <> v then begin
        values.(i) <- v;
        changed := true
      end
    in
    for i = 0 to n - 1 do
      match nl.Netlist.gates.(i).Gate.kind with
      | Gate.Const b -> set i (if b then One else Zero)
      | Gate.Pi _ -> ()
      | Gate.Dff init ->
        let d = nl.Netlist.gates.(i).Gate.fanins.(0) in
        let reset = if init then One else Zero in
        if values.(d) = reset then set i reset
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor -> ()
    done;
    Array.iter
      (fun i ->
        let g = nl.Netlist.gates.(i) in
        match g.Gate.kind with
        | Gate.Buf -> set i values.(g.Gate.fanins.(0))
        | Gate.Not -> set i (v_not values.(g.Gate.fanins.(0)))
        | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
          set i (eval nl values g.Gate.kind g.Gate.fanins.(0) g.Gate.fanins.(1))
        | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ())
      topo.Topo.order;
    !changed
  in
  (* Values only move up the lattice (Unknown -> constant), so this
     terminates in at most [dffs + 1] passes. *)
  while pass () do () done;
  { nl; values }

let value t i = t.values.(i)

let constant_nets t =
  let acc = ref [] in
  for i = Array.length t.values - 1 downto 0 do
    match t.values.(i), t.nl.Netlist.gates.(i).Gate.kind with
    | (Zero | One), Gate.Const _ -> ()
    | Zero, _ -> acc := (i, false) :: !acc
    | One, _ -> acc := (i, true) :: !acc
    | Unknown, _ -> ()
  done;
  !acc

let num_constant t = List.length (constant_nets t)
