(** Orchestration: waivers, severity policy, metrics, report section.

    The engine is what the [mutsamp lint] subcommand (and the test
    suite) drives: it runs the HDL and netlist passes, marks findings
    matched by a waiver, bumps the [analysis.*] counters, and renders
    the ["analysis"] section of the schema-1 run report. *)

type waiver = { rule_id : string; loc : string }
(** [loc = "*"] waives the rule everywhere; otherwise the diagnostic's
    loc must match exactly. *)

val waiver_of_string : string -> (waiver, string) result
(** Parses ["RULEID:LOC"] (["RULEID"] alone means ["RULEID:*"]);
    rejects unknown rule ids, and retired ids with a distinct message
    naming the retirement reason — a waiver that can never match
    anything is a configuration error, not a silent no-op. *)

type options = {
  waivers : waiver list;
  strict : bool;  (** treat warnings as errors for {!error_count} *)
  check_observability : bool;  (** run the quadratic NL004 pass *)
}

val default_options : options

val lint_design :
  options -> circuit:string -> Mutsamp_hdl.Ast.design -> Diag.t list
(** HDL pass, waivers applied, sorted, counters bumped. *)

val lint_netlist :
  options -> circuit:string -> Mutsamp_netlist.Netlist.t -> Diag.t list

val finish : options -> Diag.t list -> Diag.t list
(** Apply waivers, sort by severity and bump the counters — for
    diagnostics produced outside the two lint passes (e.g.
    {!Triage.diagnostics}). *)

val apply_waivers : waiver list -> Diag.t list -> Diag.t list

val error_count : strict:bool -> Diag.t list -> int
(** Unwaived findings at error severity (strict: warning too) — the
    CLI exits nonzero when positive. *)

val summary : Diag.t list -> (string * int) list
(** [("findings", _); ("errors", _); ("warnings", _); ("infos", _);
    ("waived", _)] over unwaived (waived for the last) findings. *)

val report_section : Diag.t list -> Mutsamp_obs.Json.t
(** The ["analysis"] report object: the summary counts, per-rule
    counts, and the full diagnostic list. *)
