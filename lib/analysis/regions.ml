module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Topo = Mutsamp_netlist.Topo
module Fault = Mutsamp_fault.Fault

type t = {
  head : int array;
  region_count : int;
  max_region_size : int;
  reconvergent : bool array;
  reconvergence_count : int;
  cone_hash : string array;
}

let digest s = Digest.to_hex (Digest.string s)

let is_logic (g : Gate.t) =
  match g.Gate.kind with
  | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> false
  | _ -> true

let compute (nl : Netlist.t) =
  let n = Array.length nl.Netlist.gates in
  let fanouts = Netlist.fanouts nl in
  let drives_po = Array.make n false in
  Array.iter (fun (_, net) -> drives_po.(net) <- true) nl.Netlist.output_list;
  (* Fanout-free regions: follow single-fanout edges forward until a
     stem, an output use or a register boundary. Memoized; the chase
     cannot loop because any cycle passes through a DFF, which stops
     it. *)
  let head = Array.make n (-1) in
  let rec head_of v =
    if head.(v) >= 0 then head.(v)
    else begin
      let h =
        match fanouts.(v) with
        | [ g ] when (not drives_po.(v)) && is_logic nl.Netlist.gates.(g) -> head_of g
        | _ -> v
      in
      head.(v) <- h;
      h
    end
  in
  for v = 0 to n - 1 do
    ignore (head_of v)
  done;
  let region_size = Hashtbl.create 64 in
  let bump h by =
    Hashtbl.replace region_size h (by + try Hashtbl.find region_size h with Not_found -> 0)
  in
  Array.iteri
    (fun v (g : Gate.t) -> bump head.(v) (if is_logic g then 1 else 0))
    nl.Netlist.gates;
  let region_count = Hashtbl.length region_size in
  let max_region_size = Hashtbl.fold (fun _ s acc -> max s acc) region_size 0 in
  (* Reconvergent stems: from each fanout branch of a multi-fanout net,
     walk forward stamping ownership; meeting a node another branch of
     the same stem already owns is a reconvergence. Stamps are
     versioned per stem so no clearing is needed. *)
  let reconvergent = Array.make n false in
  let stamp = Array.make n (-1) in
  let owner = Array.make n (-1) in
  let version = ref 0 in
  let reconvergence_count = ref 0 in
  for s = 0 to n - 1 do
    match fanouts.(s) with
    | [] | [ _ ] -> ()
    | branches ->
      incr version;
      let meet = ref false in
      List.iteri
        (fun b g ->
          let todo = ref [ g ] in
          while !todo <> [] do
            match !todo with
            | [] -> ()
            | v :: rest ->
              todo := rest;
              if stamp.(v) = !version then begin
                if owner.(v) <> b then meet := true
              end
              else begin
                stamp.(v) <- !version;
                owner.(v) <- b;
                todo := List.rev_append fanouts.(v) !todo
              end
          done)
        branches;
      if !meet then begin
        reconvergent.(s) <- true;
        incr reconvergence_count
      end
  done;
  (* Merkle input-cone hashes. Fanins hash in literal pin order — a
     sorted rendering would leave pin indices (branch-fault sites)
     ambiguous under operand swap; the builder's hash-consing already
     normalises symmetric gates, so nothing is lost. *)
  let cone_hash = Array.make n "" in
  let pi_pos = Hashtbl.create 16 and dff_pos = Hashtbl.create 16 in
  Array.iteri (fun i net -> Hashtbl.replace pi_pos net i) nl.Netlist.input_nets;
  Array.iteri (fun i net -> Hashtbl.replace dff_pos net i) nl.Netlist.dff_nets;
  Array.iteri
    (fun v (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Pi _ -> cone_hash.(v) <- digest (Printf.sprintf "pi:%d" (Hashtbl.find pi_pos v))
      | Gate.Const b -> cone_hash.(v) <- digest (Printf.sprintf "const:%b" b)
      | Gate.Dff init ->
        cone_hash.(v) <-
          digest (Printf.sprintf "dff:%b:%d" init (Hashtbl.find dff_pos v))
      | _ -> ())
    nl.Netlist.gates;
  let topo = Topo.compute nl in
  Array.iter
    (fun v ->
      let g = nl.Netlist.gates.(v) in
      let parts =
        Array.to_list g.Gate.fanins |> List.map (fun f -> cone_hash.(f))
      in
      cone_hash.(v) <-
        digest (Gate.kind_name g.Gate.kind ^ "(" ^ String.concat "," parts ^ ")"))
    topo.Topo.order;
  {
    head;
    region_count;
    max_region_size;
    reconvergent;
    reconvergence_count = !reconvergence_count;
    cone_hash;
  }

(* --- influence groups -------------------------------------------------- *)

type cone_group = {
  ghash : string;
  nets : int list;
  faults : (int * Fault.t * string) list;
  cacheable : bool;
}

let fault_net (f : Fault.t) =
  match f.Fault.site with Fault.Stem n -> n | Fault.Branch { gate; _ } -> gate

let site_hash t (f : Fault.t) =
  let pol = match f.Fault.polarity with Fault.Stuck_at_0 -> "sa0" | Fault.Stuck_at_1 -> "sa1" in
  match f.Fault.site with
  | Fault.Stem n -> digest (Printf.sprintf "stem:%s:%s" t.cone_hash.(n) pol)
  | Fault.Branch { gate; pin } ->
    digest (Printf.sprintf "branch:%s:%d:%s" t.cone_hash.(gate) pin pol)

let cone_groups (nl : Netlist.t) t faults =
  let n = Array.length nl.Netlist.gates in
  let npo = Array.length nl.Netlist.output_list in
  let words = (npo + 62) / 63 in
  let words = max words 1 in
  (* Per-net reachable-output bitsets, propagated against the topo
     order: every consumer of a net appears later in the order, so
     walking gates in reverse pushes each gate's finished mask into
     its fanins exactly once. *)
  let masks = Array.init n (fun _ -> Array.make words 0) in
  Array.iteri
    (fun po (_, net) -> masks.(net).(po / 63) <- masks.(net).(po / 63) lor (1 lsl (po mod 63)))
    nl.Netlist.output_list;
  let topo = Topo.compute nl in
  for k = Array.length topo.Topo.order - 1 downto 0 do
    let v = topo.Topo.order.(k) in
    let g = nl.Netlist.gates.(v) in
    Array.iter
      (fun f ->
        for w = 0 to words - 1 do
          masks.(f).(w) <- masks.(f).(w) lor masks.(v).(w)
        done)
      g.Gate.fanins
  done;
  let mask_key m = String.concat "," (Array.to_list (Array.map string_of_int m)) in
  (* One group per distinct mask; hash and member cone memoized. *)
  let group_info = Hashtbl.create 16 in
  let info_of mask =
    let key = mask_key mask in
    match Hashtbl.find_opt group_info key with
    | Some i -> i
    | None ->
      let pos = ref [] in
      for po = npo - 1 downto 0 do
        if mask.(po / 63) land (1 lsl (po mod 63)) <> 0 then pos := po :: !pos
      done;
      let drivers = List.map (fun po -> snd nl.Netlist.output_list.(po)) !pos in
      let ghash = digest (String.concat "" (List.map (fun d -> t.cone_hash.(d)) drivers)) in
      let seen = Array.make n false in
      let rec cone v =
        if not seen.(v) then begin
          seen.(v) <- true;
          Array.iter cone nl.Netlist.gates.(v).Gate.fanins
        end
      in
      List.iter cone drivers;
      let nets = ref [] in
      for v = n - 1 downto 0 do
        if seen.(v) then nets := v :: !nets
      done;
      let info = (ghash, !nets) in
      Hashtbl.replace group_info key info;
      info
  in
  let groups = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i f ->
      let mask = masks.(fault_net f) in
      let ghash, nets = info_of mask in
      match Hashtbl.find_opt groups ghash with
      | Some members -> members := (i, f, site_hash t f) :: !members
      | None ->
        let members = ref [ (i, f, site_hash t f) ] in
        Hashtbl.replace groups ghash members;
        order := (ghash, nets, members) :: !order)
    faults;
  List.rev_map
    (fun (ghash, nets, members) ->
      let faults = List.rev !members in
      let sites = Hashtbl.create 16 in
      let cacheable =
        List.for_all
          (fun (_, _, sh) ->
            if Hashtbl.mem sites sh then false
            else begin
              Hashtbl.replace sites sh ();
              true
            end)
          faults
      in
      { ghash; nets; faults; cacheable })
    !order

let net_tokens (nl : Netlist.t) nets =
  let po_names = Hashtbl.create 16 in
  Array.iter
    (fun (name, net) ->
      Hashtbl.replace po_names net (name :: (try Hashtbl.find po_names net with Not_found -> [])))
    nl.Netlist.output_list;
  let tokens =
    List.concat_map
      (fun v ->
        let base =
          match nl.Netlist.gates.(v).Gate.kind with
          | Gate.Pi name -> name
          | _ -> Printf.sprintf "n%d" v
        in
        base :: (try Hashtbl.find po_names v with Not_found -> []))
      nets
  in
  List.sort_uniq compare tokens
