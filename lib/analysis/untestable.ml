module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Fault = Mutsamp_fault.Fault

type verdict = Testable_maybe | Unexcitable | Unobservable

type t = {
  nl : Netlist.t;
  cp : Constprop.t;
  md : bool array;  (* may-differ scratch, reused across proofs *)
}

let analyze nl = { nl; cp = Constprop.compute nl; md = Array.make (Array.length nl.Netlist.gates) false }

let constants t = t.cp

(* Forward may-differ pass. [seed] is a net forced to "differs"; for a
   branch fault [pin_of] identifies the one (gate, pin) whose input is
   considered differing even though its driver net is not. Values from
   constant propagation describe the fault-free circuit, so a side
   input blocks only when it is both proved constant and proved
   unaffected ([not md]): in that case the faulty circuit holds the
   same constant there. *)
let run_pass t ~seed ~pin =
  let nl = t.nl in
  let gates = nl.Netlist.gates in
  let n = Array.length gates in
  let md = t.md in
  Array.fill md 0 n false;
  (match seed with Some s -> md.(s) <- true | None -> ());
  let in_differs g p f =
    md.(f) || (match pin with Some (pg, pp) -> pg = g && pp = p | None -> false)
  in
  let zero f = Constprop.value t.cp f = Constprop.Zero in
  let one f = Constprop.value t.cp f = Constprop.One in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if not md.(i) || seed = Some i then begin
        let g = gates.(i) in
        let out =
          match g.Gate.kind with
          | Gate.Pi _ | Gate.Const _ -> false
          | Gate.Buf | Gate.Not | Gate.Dff _ -> in_differs i 0 g.Gate.fanins.(0)
          | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
            let f0 = g.Gate.fanins.(0) and f1 = g.Gate.fanins.(1) in
            let d0 = in_differs i 0 f0 and d1 = in_differs i 1 f1 in
            let blocks f d =
              match g.Gate.kind with
              | Gate.And | Gate.Nand -> zero f && not d
              | Gate.Or | Gate.Nor -> one f && not d
              | Gate.Xor | Gate.Xnor | _ -> false
            in
            (d0 && not (blocks f1 d1)) || (d1 && not (blocks f0 d0))
        in
        if out && not md.(i) then begin
          md.(i) <- true;
          changed := true
        end
      end
    done
  done

let reaches_output t =
  Array.exists (fun (_, net) -> t.md.(net)) t.nl.Netlist.output_list

let stem_observable t net =
  run_pass t ~seed:(Some net) ~pin:None;
  reaches_output t

let prove t (f : Fault.t) =
  let stuck_one = match f.Fault.polarity with Fault.Stuck_at_0 -> false | Fault.Stuck_at_1 -> true in
  let driver =
    match f.Fault.site with
    | Fault.Stem net -> net
    | Fault.Branch { gate; pin } -> t.nl.Netlist.gates.(gate).Gate.fanins.(pin)
  in
  let good = Constprop.value t.cp driver in
  let fault_matches_constant =
    match good, stuck_one with
    | Constprop.Zero, false | Constprop.One, true -> true
    | _ -> false
  in
  if fault_matches_constant then Unexcitable
  else begin
    (match f.Fault.site with
     | Fault.Stem net -> run_pass t ~seed:(Some net) ~pin:None
     | Fault.Branch { gate; pin } -> run_pass t ~seed:None ~pin:(Some (gate, pin)));
    if reaches_output t then Testable_maybe else Unobservable
  end

let is_untestable t f =
  match prove t f with Testable_maybe -> false | Unexcitable | Unobservable -> true

let count_untestable t faults =
  List.fold_left (fun acc f -> if is_untestable t f then acc + 1 else acc) 0 faults
