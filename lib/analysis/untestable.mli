(** Static untestability proofs for stuck-at faults.

    Two sound rules, no SAT solving:

    - {b Excitation}: if constant propagation proves a net holds [v] in
      the fault-free circuit, then stuck-at-[v] on that net (or on a
      branch fed by it) leaves the circuit unchanged — untestable.
    - {b Observability}: a forward "may-differ" pass from the fault
      site. A difference propagates through And/Nand only when the side
      input is not a constant 0 (dually 1 for Or/Nor); Xor/Xnor/Buf/Not
      never block; Dff carries a difference across cycles, so the pass
      iterates to a fixpoint on sequential circuits. If no primary
      output may ever differ, the fault is untestable.

    Both rules are conservative: [prove] returning [false] says
    nothing; [true] is a proof. *)

type verdict = Testable_maybe | Unexcitable | Unobservable

type t

val analyze : Mutsamp_netlist.Netlist.t -> t
(** One constant-propagation pass, shared by every [prove] call. *)

val constants : t -> Constprop.t

val stem_observable : t -> int -> bool
(** Could a value change seeded at this net ever reach a primary
    output? [false] is a proof that it cannot (the net is blocked). *)

val prove : t -> Mutsamp_fault.Fault.t -> verdict
(** [Unexcitable]/[Unobservable] are proofs of untestability;
    [Testable_maybe] means "not statically decided". *)

val is_untestable : t -> Mutsamp_fault.Fault.t -> bool

val count_untestable : t -> Mutsamp_fault.Fault.t list -> int
