type severity = Error | Warning | Info

type t = {
  id : string;
  severity : severity;
  title : string;
}

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"
let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

let mk id severity title = { id; severity; title }

let hdl_self_assign = mk "HDL001" Warning "self-assignment"
let hdl_never_read = mk "HDL002" Warning "signal written but never read"
let hdl_never_written = mk "HDL003" Warning "signal declared but never written"
let hdl_dead_assign = mk "HDL004" Warning "dead assignment"
let hdl_unread_input = mk "HDL005" Warning "input never read"
let hdl_unassigned_output = mk "HDL006" Error "output never assigned"
let hdl_constant_branch = mk "HDL007" Warning "branch condition is constant"

let nl_constant_net = mk "NL001" Warning "net provably constant"
let nl_dead_gate = mk "NL002" Warning "gate unreachable from any output"
let nl_unused_input = mk "NL003" Warning "primary input drives nothing"
let nl_blocked_net = mk "NL004" Warning "net cannot influence any output"
let nl_buffer_gate = mk "NL005" Info "redundant buffer gate"
let nl_duplicate_gate = mk "NL006" Info "structurally duplicate gate"
let nl_reconvergent_hotspot = mk "NL007" Info "reconvergent fanout hotspot"

let nl_dominator_blocked =
  mk "NL008" Warning "net blocked by conflicting dominator side inputs"

let nl_oversized_region = mk "NL009" Info "oversized fanout-free region"

let mut_stillborn = mk "MUT001" Info "stillborn mutant (equivalent to original)"
let mut_duplicate = mk "MUT002" Info "duplicate mutant"

(* Retired ids keep their meaning reserved forever: a waiver naming one
   is a configuration error (the rule can never fire again), not a
   silent no-op, and the id is never reassigned. *)
let retired =
  [
    ( "ATP001",
      "never emitted as a diagnostic; static unexcitability proofs are \
       counted under analysis.static_untestable instead" );
    ( "ATP002",
      "never emitted as a diagnostic; static unobservability proofs are \
       counted under analysis.static_untestable instead" );
  ]

let all =
  List.sort (fun a b -> compare a.id b.id)
  [
    hdl_self_assign; hdl_never_read; hdl_never_written; hdl_dead_assign;
    hdl_unread_input; hdl_unassigned_output; hdl_constant_branch;
    nl_constant_net; nl_dead_gate; nl_unused_input; nl_blocked_net;
    nl_buffer_gate; nl_duplicate_gate;
    nl_reconvergent_hotspot; nl_dominator_blocked; nl_oversized_region;
    mut_stillborn; mut_duplicate;
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun r -> r.id = id) all

let find_retired id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun (rid, _) -> rid = id) retired
