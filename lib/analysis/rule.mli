(** The static-analysis rule registry.

    Every diagnostic the engine can emit is an instance of a rule with
    a stable identifier ([HDL003], [NL001], [MUT002], …). Identifiers
    never change meaning across releases: consumers key waivers and
    dashboards on them, so a retired rule's id (see {!retired}) is not
    reused. The full catalogue with remediation advice lives in
    [docs/ANALYSIS.md]. *)

type severity = Error | Warning | Info

type t = {
  id : string;  (** stable, e.g. ["NL001"] *)
  severity : severity;
  title : string;  (** one-line summary shown next to the id *)
}

val all : t list
(** The catalogue of active rules, sorted by id. *)

val find : string -> t option
(** Look an active rule up by (case-insensitive) id. *)

val retired : (string * string) list
(** Ids permanently out of service, with the reason. They are not in
    {!all}, can never fire, and are never reassigned — a waiver naming
    one is a configuration error. *)

val find_retired : string -> (string * string) option
(** Case-insensitive lookup in {!retired}. *)

val severity_name : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val severity_rank : severity -> int
(** [Error] ranks highest; used for sorting diagnostics. *)

(* Handles for the individual rules, so emitting code cannot typo an
   id. Grouped by analysis family. *)

val hdl_self_assign : t (* HDL001 *)
val hdl_never_read : t (* HDL002 *)
val hdl_never_written : t (* HDL003 *)
val hdl_dead_assign : t (* HDL004 *)
val hdl_unread_input : t (* HDL005 *)
val hdl_unassigned_output : t (* HDL006 *)
val hdl_constant_branch : t (* HDL007 *)

val nl_constant_net : t (* NL001 *)
val nl_dead_gate : t (* NL002 *)
val nl_unused_input : t (* NL003 *)
val nl_blocked_net : t (* NL004 *)
val nl_buffer_gate : t (* NL005 *)
val nl_duplicate_gate : t (* NL006 *)
val nl_reconvergent_hotspot : t (* NL007 *)
val nl_dominator_blocked : t (* NL008 *)
val nl_oversized_region : t (* NL009 *)

val mut_stillborn : t (* MUT001 *)
val mut_duplicate : t (* MUT002 *)
