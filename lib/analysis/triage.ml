open Mutsamp_hdl.Ast
module Mutant = Mutsamp_mutation.Mutant
module Operator = Mutsamp_mutation.Operator
module Metrics = Mutsamp_obs.Metrics

type verdict = Kept | Stillborn | Duplicate of int

type t = {
  design : design;
  verdicts : (Mutant.t * verdict) list;
  kept : Mutant.t list;
  stillborn : int;
  duplicates : int;
  discards_by_op : (Operator.t * int) list;
}

let c_stillborn = Metrics.counter "analysis.triage.stillborn"
let c_duplicate = Metrics.counter "analysis.triage.duplicates"
let c_kept = Metrics.counter "analysis.triage.kept"

(* --- environment ------------------------------------------------------- *)

type env = { widths : (string, int) Hashtbl.t; kinds : (string, kind) Hashtbl.t }

let build_env (d : design) =
  let widths = Hashtbl.create 16 and kinds = Hashtbl.create 16 in
  List.iter
    (fun (dc : decl) ->
      Hashtbl.replace widths dc.name dc.width;
      Hashtbl.replace kinds dc.name dc.kind)
    d.decls;
  { widths; kinds }

let mask w = (1 lsl w) - 1

let lit_width (l : literal) =
  match l.width with
  | Some w -> w
  | None -> invalid_arg "Triage.normalize: unsized literal (design not elaborated)"

(* Width of a normalized expression, mirroring the simulator: a
   non-relational binop takes the width of its left operand. *)
let rec width_of env = function
  | Const l -> lit_width l
  | Ref name -> Hashtbl.find env.widths name
  | Unop (Not, e) -> width_of env e
  | Binop (op, a, _) -> if is_relational op then 1 else width_of env a
  | Bit _ -> 1
  | Slice (_, hi, lo) -> hi - lo + 1
  | Concat (a, b) -> width_of env a + width_of env b
  | Resize (_, w) -> w

let cst ~width value = Const { value = value land mask width; width = Some width }
let as_const = function Const l -> Some l.value | _ -> None

(* Structural complement test on normalized operands: [not x] never
   survives normalization as [not (not y)], so one level suffices. *)
let complementary a b =
  (match b with Unop (Not, b') -> equal_expr a b' | _ -> false)
  || (match a with Unop (Not, a') -> equal_expr a' b | _ -> false)

(* --- smart constructors ------------------------------------------------
   Each takes already-normalized children and returns a normalized
   expression. Every internal call strictly shrinks the term or moves
   to a constructor no rule rewrites again, so the rewriting
   terminates. *)

let rec mk_not _env a =
  match a with
  | Const l -> cst ~width:(lit_width l) (lnot l.value)
  | Unop (Not, x) -> x
  | _ -> Unop (Not, a)

and mk_logical env op a b =
  let w = width_of env a in
  let m = mask w in
  let fold va vb =
    match op with
    | And -> va land vb
    | Or -> va lor vb
    | Xor -> va lxor vb
    | Nand -> lnot (va land vb)
    | Nor -> lnot (va lor vb)
    | Xnor -> lnot (va lxor vb)
    | _ -> assert false
  in
  match as_const a, as_const b with
  | Some va, Some vb -> cst ~width:w (fold va vb)
  | _ ->
    if equal_expr a b then
      (match op with
       | And | Or -> a
       | Xor -> cst ~width:w 0
       | Xnor -> cst ~width:w m
       | Nand | Nor -> mk_not env a
       | _ -> assert false)
    else if complementary a b then
      (match op with
       | And | Nor -> cst ~width:w 0
       | Or | Nand | Xor -> cst ~width:w m
       | Xnor -> cst ~width:w 0
       | _ -> assert false)
    else
      let with_const v other =
        if v = 0 then
          (match op with
           | And -> Some (cst ~width:w 0)
           | Or | Xor -> Some other
           | Nand -> Some (cst ~width:w m)
           | Nor | Xnor -> Some (mk_not env other)
           | _ -> None)
        else if v = m then
          (match op with
           | And | Xnor -> Some other
           | Or -> Some (cst ~width:w m)
           | Xor | Nand -> Some (mk_not env other)
           | Nor -> Some (cst ~width:w 0)
           | _ -> None)
        else None
      in
      let folded =
        match as_const a, as_const b with
        | Some v, None -> with_const v b
        | None, Some v -> with_const v a
        | _ -> None
      in
      (match folded with
       | Some e -> e
       | None ->
         let a, b = if Stdlib.compare a b <= 0 then (a, b) else (b, a) in
         Binop (op, a, b))

and mk_arith env op a b =
  let w = width_of env a in
  match op, as_const a, as_const b with
  | Add, Some va, Some vb -> cst ~width:w (va + vb)
  | Sub, Some va, Some vb -> cst ~width:w (va - vb)
  | Add, Some 0, None -> b
  | Add, None, Some 0 -> a
  | Sub, None, Some 0 -> a
  | Sub, _, _ when equal_expr a b -> cst ~width:w 0
  | Add, _, _ ->
    let a, b = if Stdlib.compare a b <= 0 then (a, b) else (b, a) in
    Binop (Add, a, b)
  | _ -> Binop (op, a, b)

(* Comparisons are unsigned over masked values. [Gt]/[Ge] flip to
   [Lt]/[Le]; [Neq] becomes [not Eq]; one-bit comparisons become logic
   gates so the logical identities above apply to them too. *)
and mk_rel env op a b =
  match op with
  | Gt -> mk_rel env Lt b a
  | Ge -> mk_rel env Le b a
  | _ ->
    let w = width_of env a in
    if w = 1 then
      match op with
      | Lt -> mk_logical env And (mk_not env a) b
      | Le -> mk_logical env Or (mk_not env a) b
      | Eq -> mk_logical env Xnor a b
      | Neq -> mk_logical env Xor a b
      | _ -> assert false
    else
      let m = mask w in
      match as_const a, as_const b with
      | Some va, Some vb ->
        let r =
          match op with
          | Lt -> va < vb
          | Le -> va <= vb
          | Eq -> va = vb
          | Neq -> va <> vb
          | _ -> assert false
        in
        cst ~width:1 (if r then 1 else 0)
      | ca, cb ->
        if equal_expr a b then
          cst ~width:1 (match op with Le | Eq -> 1 | _ -> 0)
        else
          let eq x v = mk_eq env x (cst ~width:w v) in
          (match op, ca, cb with
           | Neq, _, _ -> mk_not env (mk_eq env a b)
           | Lt, _, Some 0 -> cst ~width:1 0
           | Lt, _, Some 1 -> eq a 0
           | Lt, _, Some v when v = m -> mk_not env (eq a m)
           | Lt, Some 0, _ -> mk_not env (eq b 0)
           | Lt, Some v, _ when v = m -> cst ~width:1 0
           | Le, _, Some v when v = m -> cst ~width:1 1
           | Le, _, Some 0 -> eq a 0
           | Le, _, Some v when v = m - 1 -> mk_not env (eq a m)
           | Le, Some 0, _ -> cst ~width:1 1
           | Le, Some 1, _ -> mk_not env (eq b 0)
           | Le, Some v, _ when v = m -> eq b m
           | Eq, _, _ -> mk_eq env a b
           | _ -> Binop (op, a, b))

and mk_eq _env a b =
  (* Only reached with operands wider than one bit and not both
     constant; just canonicalise the order. *)
  let a, b = if Stdlib.compare a b <= 0 then (a, b) else (b, a) in
  Binop (Eq, a, b)

let mk_binop env op a b =
  if is_logical op then mk_logical env op a b
  else if is_arith op then mk_arith env op a b
  else mk_rel env op a b

let mk_bit env a i =
  match a with
  | Const l -> cst ~width:1 (l.value lsr i)
  | _ -> if width_of env a = 1 && i = 0 then a else Bit (a, i)

let mk_slice env a hi lo =
  match a with
  | Const l -> cst ~width:(hi - lo + 1) (l.value lsr lo)
  | _ -> if lo = 0 && hi = width_of env a - 1 then a else Slice (a, hi, lo)

let mk_concat env a b =
  let wa = width_of env a and wb = width_of env b in
  match as_const a, as_const b with
  | Some va, Some vb when wa + wb <= 62 -> cst ~width:(wa + wb) ((va lsl wb) lor vb)
  | _ -> Concat (a, b)

let mk_resize env a w =
  match a with
  | Const l -> cst ~width:w l.value
  | _ -> if width_of env a = w then a else Resize (a, w)

let rec norm_expr env e =
  match e with
  | Const l -> cst ~width:(lit_width l) l.value
  | Ref _ -> e
  | Unop (Not, a) -> mk_not env (norm_expr env a)
  | Binop (op, a, b) -> mk_binop env op (norm_expr env a) (norm_expr env b)
  | Bit (a, i) -> mk_bit env (norm_expr env a) i
  | Slice (a, hi, lo) -> mk_slice env (norm_expr env a) hi lo
  | Concat (a, b) -> mk_concat env (norm_expr env a) (norm_expr env b)
  | Resize (a, w) -> mk_resize env (norm_expr env a) w

(* --- statements -------------------------------------------------------- *)

let rec reads name = function
  | Const _ -> false
  | Ref n -> n = name
  | Unop (_, e) | Bit (e, _) | Slice (e, _, _) | Resize (e, _) -> reads name e
  | Binop (_, a, b) | Concat (a, b) -> reads name a || reads name b

(* Drop an assignment immediately overwritten by the next statement.
   Register writes are deferred to the cycle boundary (reads in between
   see the pre-cycle value), so for a register the earlier of two
   adjacent writes is dead unconditionally; for a variable or output
   only when the second right-hand side does not read the target. *)
let rec drop_dead_stores env = function
  | (Assign (x, _) as s1) :: (Assign (y, e2) :: _ as rest) when x = y ->
    let dead =
      match Hashtbl.find_opt env.kinds x with
      | Some (Reg _) -> true
      | Some (Var | Output) -> not (reads x e2)
      | _ -> false
    in
    if dead then drop_dead_stores env rest else s1 :: drop_dead_stores env rest
  | s :: rest -> s :: drop_dead_stores env rest
  | [] -> []

let rec norm_stmt env s =
  match s with
  | Null -> []
  | Assign (x, e) -> [ Assign (x, norm_expr env e) ]
  | If (c, t, f) ->
    (match norm_expr env c with
     | Const l -> if l.value <> 0 then norm_stmts env t else norm_stmts env f
     | Unop (Not, c') ->
       (* if not c then T else F  =  if c then F else T; c' is already
          normalized and not itself Not-headed. *)
       branch env c' f t
     | c -> branch env c t f)
  | Case (scrut, arms, others) ->
    (match norm_expr env scrut with
     | Const l ->
       let hit =
         List.find_opt (fun (choices, _) -> List.exists (fun c -> c.value = l.value) choices) arms
       in
       (match hit, others with
        | Some (_, body), _ -> norm_stmts env body
        | None, Some body -> norm_stmts env body
        | None, None -> [])
     | scrut ->
       let arms = List.map (fun (cs, body) -> (cs, norm_stmts env body)) arms in
       let others = Option.map (norm_stmts env) others in
       let empty = function [] -> true | _ :: _ -> false in
       if List.for_all (fun (_, b) -> empty b) arms
          && (match others with None -> true | Some b -> empty b)
       then []
       else [ Case (scrut, arms, others) ])

and branch env c t f =
  let t = norm_stmts env t and f = norm_stmts env f in
  match t, f with [], [] -> [] | _ -> [ If (c, t, f) ]

and norm_stmts env ss = drop_dead_stores env (List.concat_map (norm_stmt env) ss)

let normalize (d : design) =
  let env = build_env d in
  { d with body = norm_stmts env d.body }

let normalize_expr (d : design) e = norm_expr (build_env d) e
let expr_reads_name = reads

(* --- triage ------------------------------------------------------------

   Mutant populations reach the hundreds of thousands (wide128), so the
   dedup table stores one full-traversal structural hash per kept
   mutant instead of its normal form: constant memory per mutant, and
   the polymorphic [Hashtbl.hash]'s bounded traversal (which would
   collapse large designs into one bucket) is avoided. A bucket hit
   re-normalizes the candidate representative to confirm true
   structural equality, so a hash collision can never discard a
   non-duplicate. *)

let mix h v = (h * 0x01000193) lxor (v land max_int)

let rec hash_expr h = function
  | Const l -> mix (mix (mix h 1) l.value) (Option.value ~default:(-1) l.width)
  | Ref n -> mix (mix h 2) (Hashtbl.hash n)
  | Unop (Not, a) -> hash_expr (mix h 3) a
  | Binop (op, a, b) -> hash_expr (hash_expr (mix (mix h 4) (Hashtbl.hash op)) a) b
  | Bit (a, i) -> hash_expr (mix (mix h 5) i) a
  | Slice (a, hi, lo) -> hash_expr (mix (mix (mix h 6) hi) lo) a
  | Concat (a, b) -> hash_expr (hash_expr (mix h 7) a) b
  | Resize (a, w) -> hash_expr (mix (mix h 8) w) a

let rec hash_stmt h = function
  | Null -> mix h 10
  | Assign (x, e) -> hash_expr (mix (mix h 11) (Hashtbl.hash x)) e
  | If (c, t, f) -> hash_stmts (hash_stmts (hash_expr (mix h 12) c) t) f
  | Case (scrut, arms, others) ->
    let h = hash_expr (mix h 13) scrut in
    let h =
      List.fold_left
        (fun h (cs, body) ->
          hash_stmts
            (List.fold_left (fun h (l : literal) -> mix h l.value) h cs)
            body)
        h arms
    in
    (match others with None -> mix h 14 | Some b -> hash_stmts (mix h 15) b)

and hash_stmts h ss = List.fold_left hash_stmt h ss

(* Mutation never touches declarations, so the body alone suffices. *)
let hash_design (d : design) = hash_stmts 0x811c9dc5 d.body

let run (d : design) (mutants : Mutant.t list) =
  let nd = normalize d in
  let hd = hash_design nd in
  let by_id : (int, Mutant.t) Hashtbl.t = Hashtbl.create 997 in
  let seen : (int, int list) Hashtbl.t = Hashtbl.create 997 in
  let discards = Hashtbl.create 16 in
  let discard (m : Mutant.t) =
    Hashtbl.replace discards m.Mutant.op
      (1 + Option.value ~default:0 (Hashtbl.find_opt discards m.Mutant.op))
  in
  let stillborn = ref 0 and duplicates = ref 0 in
  let verdicts =
    List.map
      (fun (m : Mutant.t) ->
        let nm = normalize m.Mutant.design in
        let h = hash_design nm in
        let v =
          if h = hd && equal_design nm nd then begin
            incr stillborn;
            Metrics.incr c_stillborn;
            discard m;
            Stillborn
          end
          else
            let bucket = Option.value ~default:[] (Hashtbl.find_opt seen h) in
            let rep =
              List.find_opt
                (fun id ->
                  equal_design nm
                    (normalize (Hashtbl.find by_id id).Mutant.design))
                bucket
            in
            match rep with
            | Some rep ->
              incr duplicates;
              Metrics.incr c_duplicate;
              discard m;
              Duplicate rep
            | None ->
              Hashtbl.replace seen h (m.Mutant.id :: bucket);
              Hashtbl.replace by_id m.Mutant.id m;
              Metrics.incr c_kept;
              Kept
        in
        (m, v))
      mutants
  in
  List.iter
    (fun ((m : Mutant.t), v) ->
      match v with
      | Stillborn | Duplicate _ ->
        Metrics.add_named ("analysis.triage.discard." ^ Operator.name m.Mutant.op) 1
      | Kept -> ())
    verdicts;
  let kept =
    List.filter_map (fun (m, v) -> match v with Kept -> Some m | _ -> None) verdicts
  in
  let discards_by_op =
    List.filter_map
      (fun op -> Option.map (fun n -> (op, n)) (Hashtbl.find_opt discards op))
      Operator.all
  in
  {
    design = nd;
    verdicts;
    kept;
    stillborn = !stillborn;
    duplicates = !duplicates;
    discards_by_op;
  }

type outcome = { total : int; killed : int; equivalent : int }

let extrapolate t ~killed ~equivalent =
  let status = Hashtbl.create 97 in
  (* id -> `Killed | `Equivalent | `Survived, for kept mutants *)
  List.iter
    (fun ((m : Mutant.t), v) ->
      match v with
      | Kept ->
        let s =
          if killed m then `Killed else if equivalent m then `Equivalent else `Survived
        in
        Hashtbl.replace status m.Mutant.id s
      | Stillborn | Duplicate _ -> ())
    t.verdicts;
  let total = ref 0 and k = ref 0 and e = ref 0 in
  List.iter
    (fun ((m : Mutant.t), v) ->
      incr total;
      let s =
        match v with
        | Kept -> Hashtbl.find status m.Mutant.id
        | Stillborn -> `Equivalent
        | Duplicate rep -> Hashtbl.find status rep
      in
      match s with
      | `Killed -> incr k
      | `Equivalent -> incr e
      | `Survived -> ())
    t.verdicts;
  { total = !total; killed = !k; equivalent = !e }

let diagnostics t ~circuit =
  List.filter_map
    (fun ((m : Mutant.t), v) ->
      let loc = Printf.sprintf "mutant%d" m.Mutant.id in
      match v with
      | Kept -> None
      | Stillborn ->
        Some
          (Diag.make ~rule:Rule.mut_stillborn ~circuit ~loc
             ~message:
               (Printf.sprintf "%s @%d (%s) normalizes to the original design"
                  (Operator.name m.Mutant.op) m.Mutant.site m.Mutant.info))
      | Duplicate rep ->
        Some
          (Diag.make ~rule:Rule.mut_duplicate ~circuit ~loc
             ~message:
               (Printf.sprintf "%s @%d (%s) duplicates mutant %d"
                  (Operator.name m.Mutant.op) m.Mutant.site m.Mutant.info rep)))
    t.verdicts
