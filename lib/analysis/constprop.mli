(** Ternary constant propagation over gate-level netlists.

    Computes, for every net, whether its value is provably constant in
    the fault-free circuit. The lattice is {!value}: [Zero]/[One] mean
    "constant in every reachable state under every input", [Unknown]
    means "not proved constant" — the analysis is sound but incomplete.

    Beyond plain constant folding (seeded by [Const] gates) the
    evaluator recognises same-net and complementary-pair operands:
    [And(x, Not x)] is [Zero] even though the two fanins are distinct
    nets — the structural-hashing builder never folds that shape, and
    [Redundancy.tie_net] creates it when tying nets mid-round.

    Flip-flops start [Unknown] unless their D input is proved constant
    and equal to their reset value, in which case the register can
    never change and its output is that constant. *)

type value = Zero | One | Unknown

type t

val compute : Mutsamp_netlist.Netlist.t -> t

val value : t -> int -> value
(** The proved value of a net. *)

val constant_nets : t -> (int * bool) list
(** Nets proved constant whose gate is not itself a [Const] gate,
    ascending. *)

val num_constant : t -> int
(** [List.length (constant_nets t)]. *)
