module Json = Mutsamp_obs.Json
module Metrics = Mutsamp_obs.Metrics

type waiver = { rule_id : string; loc : string }

let waiver_of_string s =
  let rule_id, loc =
    match String.index_opt s ':' with
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "*")
  in
  match Rule.find rule_id with
  | None -> (
    match Rule.find_retired rule_id with
    | Some (id, reason) ->
      Error (Printf.sprintf "retired rule id %s: %s" id reason)
    | None -> Error (Printf.sprintf "unknown rule id %S" rule_id))
  | Some r ->
    if loc = "" then Error "empty waiver location (use RULEID:LOC or RULEID:*)"
    else Ok { rule_id = r.Rule.id; loc }

type options = {
  waivers : waiver list;
  strict : bool;
  check_observability : bool;
}

let default_options = { waivers = []; strict = false; check_observability = true }

let matches (w : waiver) (d : Diag.t) =
  w.rule_id = d.Diag.rule.Rule.id && (w.loc = "*" || w.loc = d.Diag.loc)

let apply_waivers waivers diags =
  List.map
    (fun (d : Diag.t) ->
      if List.exists (fun w -> matches w d) waivers then { d with Diag.waived = true }
      else d)
    diags

let c_findings = Metrics.counter "analysis.findings"
let c_waived = Metrics.counter "analysis.waived"
let c_errors = Metrics.counter "analysis.errors"

let record diags =
  List.iter
    (fun (d : Diag.t) ->
      if d.Diag.waived then Metrics.incr c_waived
      else begin
        Metrics.incr c_findings;
        Metrics.add_named ("analysis.rule." ^ d.Diag.rule.Rule.id) 1;
        if d.Diag.rule.Rule.severity = Rule.Error then Metrics.incr c_errors
      end)
    diags;
  diags

let finish options diags =
  record (List.sort Diag.compare (apply_waivers options.waivers diags))

let lint_design options ~circuit d = finish options (Hdl_lint.run ~circuit d)

let lint_netlist options ~circuit nl =
  finish options
    (Nl_lint.run ~check_observability:options.check_observability ~circuit nl)

let error_count ~strict diags =
  List.length
    (List.filter
       (fun (d : Diag.t) ->
         (not d.Diag.waived)
         &&
         match d.Diag.rule.Rule.severity with
         | Rule.Error -> true
         | Rule.Warning -> strict
         | Rule.Info -> false)
       diags)

let summary diags =
  let count pred = List.length (List.filter pred diags) in
  let live sev (d : Diag.t) = (not d.Diag.waived) && d.Diag.rule.Rule.severity = sev in
  [
    ("findings", count (fun (d : Diag.t) -> not d.Diag.waived));
    ("errors", count (live Rule.Error));
    ("warnings", count (live Rule.Warning));
    ("infos", count (live Rule.Info));
    ("waived", count (fun (d : Diag.t) -> d.Diag.waived));
  ]

let report_section diags =
  let rules = Hashtbl.create 16 in
  List.iter
    (fun (d : Diag.t) ->
      if not d.Diag.waived then
        let id = d.Diag.rule.Rule.id in
        Hashtbl.replace rules id (1 + Option.value ~default:0 (Hashtbl.find_opt rules id)))
    diags;
  let rule_counts =
    List.sort Stdlib.compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rules [])
  in
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.Int v)) (summary diags)
    @ [
        ("rules", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) rule_counts));
        ("diagnostics", Json.List (List.map Diag.to_json diags));
      ])
