open Mutsamp_hdl.Ast
module Pretty = Mutsamp_hdl.Pretty

(* Signal usage: reads anywhere in an expression, writes as assignment
   targets, regardless of reachability (reachability is HDL007's job). *)

let rec expr_reads acc = function
  | Const _ -> ()
  | Ref n -> Hashtbl.replace acc n ()
  | Unop (_, e) | Bit (e, _) | Slice (e, _, _) | Resize (e, _) -> expr_reads acc e
  | Binop (_, a, b) | Concat (a, b) ->
    expr_reads acc a;
    expr_reads acc b

let rec stmt_uses reads writes = function
  | Null -> ()
  | Assign (x, e) ->
    Hashtbl.replace writes x ();
    expr_reads reads e
  | If (c, t, f) ->
    expr_reads reads c;
    List.iter (stmt_uses reads writes) t;
    List.iter (stmt_uses reads writes) f
  | Case (scrut, arms, others) ->
    expr_reads reads scrut;
    List.iter (fun (_, body) -> List.iter (stmt_uses reads writes) body) arms;
    Option.iter (List.iter (stmt_uses reads writes)) others

let run ~circuit (d : design) =
  let diags = ref [] in
  let emit rule loc fmt =
    Printf.ksprintf
      (fun message -> diags := Diag.make ~rule ~circuit ~loc ~message :: !diags)
      fmt
  in
  let reads = Hashtbl.create 32 and writes = Hashtbl.create 32 in
  List.iter (stmt_uses reads writes) d.body;
  let read n = Hashtbl.mem reads n and written n = Hashtbl.mem writes n in
  List.iter
    (fun (dc : decl) ->
      match dc.kind with
      | Input ->
        if not (read dc.name) then
          emit Rule.hdl_unread_input dc.name "input '%s' is never read" dc.name
      | Output ->
        if not (written dc.name) then
          emit Rule.hdl_unassigned_output dc.name
            "output '%s' is never assigned and reads as 0" dc.name
      | Reg _ | Var ->
        let what = match dc.kind with Reg _ -> "register" | _ -> "variable" in
        if not (written dc.name) then
          emit Rule.hdl_never_written dc.name "%s '%s' is never written" what dc.name
        else if not (read dc.name) then
          emit Rule.hdl_never_read dc.name "%s '%s' is written but never read" what
            dc.name
      | Const_decl _ -> ())
    d.decls;
  let kinds = Hashtbl.create 16 in
  List.iter (fun (dc : decl) -> Hashtbl.replace kinds dc.name dc.kind) d.decls;
  (* The triage normalizer folds with the simulator's exact semantics,
     so an expression it reduces to a literal really is constant. *)
  let as_const e =
    match Triage.normalize_expr d e with Const l -> Some l.value | _ -> None
  in
  let dead_assigns label body =
    List.iter
      (fun s ->
        match s with
        | Assign (x, _) ->
          emit Rule.hdl_dead_assign x "assignment to '%s' is %s" x label
        | _ -> ())
      body
  in
  (* Statements are numbered in pre-order so the [if@N]/[case@N] waiver
     locs are stable for a given design. *)
  let counter = ref (-1) in
  let next () = incr counter; !counter in
  let rec walk_list ss =
    (* Adjacent overwrite of the same target: dead for a register
       always (writes are deferred to the cycle boundary), for a
       variable or output when the second RHS does not read it. *)
    let rec pairs = function
      | Assign (x, _) :: (Assign (y, e2) :: _ as rest) when x = y ->
        let dead =
          match Hashtbl.find_opt kinds x with
          | Some (Reg _) -> true
          | Some (Var | Output) -> not (Triage.expr_reads_name x e2)
          | _ -> false
        in
        if dead then
          emit Rule.hdl_dead_assign x "assignment to '%s' is immediately overwritten"
            x;
        pairs rest
      | _ :: rest -> pairs rest
      | [] -> ()
    in
    pairs ss;
    List.iter walk ss
  and walk s =
    let n = next () in
    match s with
    | Null -> ()
    | Assign (x, Ref y) when x = y ->
      emit Rule.hdl_self_assign x "'%s := %s' has no effect" x x
    | Assign _ -> ()
    | If (c, t, f) ->
      (match as_const c with
       | Some v ->
         emit Rule.hdl_constant_branch
           (Printf.sprintf "if@%d" n)
           "condition '%s' is always %s" (Pretty.expr c)
           (if v <> 0 then "true" else "false");
         dead_assigns "unreachable" (if v <> 0 then f else t)
       | None -> ());
      walk_list t;
      walk_list f
    | Case (scrut, arms, others) ->
      (match as_const scrut with
       | Some v ->
         emit Rule.hdl_constant_branch
           (Printf.sprintf "case@%d" n)
           "case scrutinee '%s' is always %d" (Pretty.expr scrut) v;
         List.iter
           (fun (choices, body) ->
             if not (List.exists (fun (l : literal) -> l.value = v) choices) then
               dead_assigns "unreachable" body)
           arms
       | None -> ());
      List.iter (fun (_, body) -> walk_list body) arms;
      Option.iter walk_list others
  in
  walk_list d.body;
  !diags
