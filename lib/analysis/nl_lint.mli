(** Gate-level lint over a netlist: [NL001]..[NL009].

    [Netlist.lint] keeps the hard invariants (arities, ranges, cycles);
    this pass reports redundancy and reachability smells on a netlist
    that already satisfies them. [NL007]/[NL009] come from the
    structural dataflow engine ({!Regions}): [hotspot_fanout] is the
    fanout width at which a reconvergent stem is flagged, [max_region]
    the largest unflagged fanout-free region. The observability passes
    ([NL004], and the post-dominator conflict rule [NL008]) each run a
    sweep per live net, so they are quadratic in netlist size;
    [check_observability:false] (used under tight budgets) skips
    both. *)

val run :
  ?check_observability:bool ->
  ?hotspot_fanout:int ->
  ?max_region:int ->
  circuit:string ->
  Mutsamp_netlist.Netlist.t ->
  Diag.t list
