(** Gate-level lint over a netlist: [NL001]..[NL006].

    [Netlist.lint] keeps the hard invariants (arities, ranges, cycles);
    this pass reports redundancy and reachability smells on a netlist
    that already satisfies them. The observability pass ([NL004]) runs
    one may-differ sweep per live net, so it is quadratic in netlist
    size; [check_observability:false] (used under tight budgets) skips
    it. *)

val run :
  ?check_observability:bool ->
  circuit:string ->
  Mutsamp_netlist.Netlist.t ->
  Diag.t list
