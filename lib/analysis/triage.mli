(** Static mutant triage: discard stillborn and duplicate mutants
    before any simulation or equivalence checking.

    The core is {!normalize}, a semantics-preserving rewriter over
    elaborated designs: bottom-up constant folding with exactly the
    simulator's masking semantics, local algebraic identities on
    syntactically equal (hence pure, hence value-equal) operands
    ([x and x], [a <= a], [x xor not x]), canonical operand order for
    commutative operators, relational canonicalisation ([a > b] to
    [b < a], one-bit comparisons to logic gates), splicing of
    branches with constant conditions, and adjacent dead-store
    elimination. Two designs with equal normal forms are behaviourally
    identical cycle-for-cycle.

    A mutant whose normal form equals the original's is {e stillborn}
    (semantically equivalent — it can feed the E term of
    MS = K/(M − E) without an equivalence check); one whose normal
    form equals an earlier kept mutant's is a {e duplicate} whose kill
    outcome is that of its representative. {!extrapolate} rebuilds the
    full-population (total, killed, equivalent) counts from results on
    the kept set only, so the mutation score is bit-identical to an
    untriaged run wherever the downstream equivalence checker would
    have proved the stillborns equivalent. *)

module Mutant = Mutsamp_mutation.Mutant
module Operator = Mutsamp_mutation.Operator

type verdict =
  | Kept
  | Stillborn
  | Duplicate of int  (** id of the kept representative *)

type t = {
  design : Mutsamp_hdl.Ast.design;  (** normalized original *)
  verdicts : (Mutant.t * verdict) list;  (** every mutant, input order *)
  kept : Mutant.t list;
  stillborn : int;
  duplicates : int;
  discards_by_op : (Operator.t * int) list;  (** nonzero entries only *)
}

val normalize : Mutsamp_hdl.Ast.design -> Mutsamp_hdl.Ast.design
(** Requires an elaborated design (every literal sized). *)

val normalize_expr :
  Mutsamp_hdl.Ast.design -> Mutsamp_hdl.Ast.expr -> Mutsamp_hdl.Ast.expr
(** Normalize one expression in the design's declaration environment
    (the design supplies signal widths). *)

val expr_reads_name : string -> Mutsamp_hdl.Ast.expr -> bool

val run : Mutsamp_hdl.Ast.design -> Mutant.t list -> t
(** Also bumps the [analysis.triage.*] metrics. *)

type outcome = { total : int; killed : int; equivalent : int }

val extrapolate :
  t ->
  killed:(Mutant.t -> bool) ->
  equivalent:(Mutant.t -> bool) ->
  outcome
(** The callbacks are consulted for kept mutants only; discarded ones
    inherit [equivalent] (stillborn) or their representative's
    outcome (duplicates). *)

val diagnostics : t -> circuit:string -> Diag.t list
(** One [MUT001]/[MUT002] per discarded mutant. *)
