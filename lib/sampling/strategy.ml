module Prng = Mutsamp_util.Prng
module Stats = Mutsamp_util.Stats
module Operator = Mutsamp_mutation.Operator
module Mutant = Mutsamp_mutation.Mutant

type t =
  | Random_uniform
  | Operator_weighted of (Operator.t * float) list

let sample_size ~rate total =
  if rate <= 0. || rate > 1. then invalid_arg "Strategy.sample_size: rate not in (0,1]";
  if total = 0 then 0 else max 1 (int_of_float (Float.round (rate *. float_of_int total)))

(* Allocate [total] slots over operator classes with weights, capping
   each quota at the class population and redistributing the excess. *)
let allocate weights populations total =
  let ops = Array.of_list (List.map fst populations) in
  let pops = Array.of_list (List.map snd populations) in
  let w =
    Array.map
      (fun op ->
        let base = Option.value ~default:0. (List.assoc_opt op weights) in
        max base 0.)
      ops
  in
  (* Weighted share of each class: weight × population. *)
  let shares = Array.mapi (fun i pop -> w.(i) *. float_of_int pop) pops in
  let all_zero = Array.for_all (fun s -> s = 0.) shares in
  let shares =
    if all_zero then Array.map float_of_int pops  (* degrade to proportional *)
    else shares
  in
  let quota = ref (Stats.largest_remainder ~total shares) in
  (* Cap and redistribute until stable. *)
  let continue = ref true in
  while !continue do
    continue := false;
    let q = !quota in
    let overflow = ref 0 in
    Array.iteri
      (fun i qi ->
        if qi > pops.(i) then begin
          overflow := !overflow + (qi - pops.(i));
          q.(i) <- pops.(i)
        end)
      (Array.copy q);
    if !overflow > 0 then begin
      (* Spread the overflow over classes with spare capacity,
         proportionally to their shares. *)
      let spare = Array.mapi (fun i qi -> pops.(i) - qi) q in
      let spare_shares =
        Array.mapi (fun i s -> if spare.(i) > 0 then max s 1e-9 else 0.) shares
      in
      if Array.exists (fun s -> s > 0.) spare_shares then begin
        let extra = Stats.largest_remainder ~total:!overflow spare_shares in
        Array.iteri (fun i e -> q.(i) <- q.(i) + e) extra;
        continue := true
      end
    end;
    quota := q
  done;
  Array.to_list (Array.mapi (fun i qi -> (ops.(i), min qi pops.(i))) !quota)

let quotas strategy populations ~total =
  match strategy with
  | Random_uniform ->
    allocate (List.map (fun (op, _) -> (op, 1.)) populations) populations total
  | Operator_weighted weights -> allocate weights populations total

let sample prng strategy mutants ~rate =
  let total = sample_size ~rate (List.length mutants) in
  match strategy with
  | Random_uniform ->
    let arr = Array.of_list mutants in
    let chosen = Prng.sample_without_replacement prng total arr in
    let keep = Hashtbl.create total in
    Array.iter (fun (m : Mutant.t) -> Hashtbl.replace keep m.id ()) chosen;
    List.filter (fun (m : Mutant.t) -> Hashtbl.mem keep m.id) mutants
  | Operator_weighted _ ->
    let populations =
      List.filter (fun (_, n) -> n > 0) (Mutsamp_mutation.Generate.count_by_operator mutants)
    in
    let alloc = quotas strategy populations ~total in
    let keep = Hashtbl.create total in
    List.iter
      (fun (op, n) ->
        let pool =
          Array.of_list (List.filter (fun (m : Mutant.t) -> Operator.equal m.op op) mutants)
        in
        let chosen = Prng.sample_without_replacement prng n pool in
        Array.iter (fun (m : Mutant.t) -> Hashtbl.replace keep m.id ()) chosen)
      alloc;
    List.filter (fun (m : Mutant.t) -> Hashtbl.mem keep m.id) mutants

(* Static triage feeds per-operator discard counts back into the
   sampling view of the population: quotas computed over the effective
   (surviving) class sizes avoid spending budget on mutants the
   analysis already proved stillborn or duplicate. *)
let effective_populations populations ~discards =
  List.map
    (fun (op, n) ->
      let d = Option.value ~default:0 (List.assoc_opt op discards) in
      (op, max 0 (n - d)))
    populations
