(** Mutant-sampling strategies — the paper's section 4.

    Both strategies extract exactly the same number of mutants
    ([round (rate · M)]):

    - {!Random_uniform} is the classical 10 % sampling of Offutt &
      Untch: a uniform sample of the whole population;
    - {!Operator_weighted} allocates the budget across operators in
      proportion to weight(op) · population(op), where the weight is
      the operator's stuck-at efficiency (the paper uses the NLFCE from
      its Table 1 study), then samples uniformly inside each operator
      class. Quotas are capped by class population and the excess is
      redistributed, so the total is always met when the population
      allows. *)

type t =
  | Random_uniform
  | Operator_weighted of (Mutsamp_mutation.Operator.t * float) list
      (** weights may be any non-negative numbers; missing operators get
          weight 0 *)

val sample_size : rate:float -> int -> int
(** [round (rate · total)], at least 1 when the population is
    non-empty. Raises [Invalid_argument] unless [0 < rate <= 1]. *)

val sample :
  Mutsamp_util.Prng.t ->
  t ->
  Mutsamp_mutation.Mutant.t list ->
  rate:float ->
  Mutsamp_mutation.Mutant.t list
(** Select [sample_size ~rate M] mutants. The result preserves the
    original relative order. *)

val quotas :
  t -> (Mutsamp_mutation.Operator.t * int) list -> total:int ->
  (Mutsamp_mutation.Operator.t * int) list
(** The per-operator allocation the weighted strategy uses (exposed for
    tests and reports): sums to [total], each quota within the class
    population. For {!Random_uniform}, proportional to population. *)

val effective_populations :
  (Mutsamp_mutation.Operator.t * int) list ->
  discards:(Mutsamp_mutation.Operator.t * int) list ->
  (Mutsamp_mutation.Operator.t * int) list
(** Subtract the statically-discarded mutants (stillborn + duplicate,
    from [Mutsamp_analysis.Triage]) from each operator's population,
    clamping at 0 — the denominator the sampling quotas should see
    after triage. Operators absent from [discards] are unchanged. *)
