(** Bit-parallel netlist simulation, width-parametric.

    Every net carries [words_per_net] native-int words of {!word_bits}
    independent simulation lanes each (lane [l] is bit [l mod word_bits]
    of word [l / word_bits]). For a combinational circuit one [step]
    evaluates [lanes t] patterns at once; for a sequential circuit the
    lanes are independent sequences advancing in lockstep, each with its
    own flip-flop state.

    Input and output arrays are flat: input [k]'s word [j] lives at
    index [k * words_per_net t + j], and likewise for outputs in
    [output_list] order. With the default single word per net the
    layout coincides with one word per input/output.

    The fault simulator also uses this engine with all lanes carrying
    the same pattern: good value vs faulty value then differ per lane
    only where a fault is injected. *)

val word_bits : int
(** Lanes per word (63 — the full OCaml native int). *)

val all_ones : int
(** Word with every lane set ([-1]). *)

type t

type injection =
  | Net of int  (** the whole net (stem fault) *)
  | Pin of { gate : int; pin : int }
      (** one gate's input pin (branch fault); for a flip-flop, pin 0 is
          the D input *)

val create : ?lanes:int -> Netlist.t -> t
(** [create ~lanes nl] sizes every net for at least [lanes] lanes
    (rounded up to whole words; default one word = {!word_bits}
    lanes). Raises [Invalid_argument] when [lanes < 1]. *)

val netlist : t -> Netlist.t

val lanes : t -> int
(** Usable lanes ([words_per_net * word_bits]). *)

val words_per_net : t -> int

val reset : t -> unit
(** Load every flip-flop's reset value into all lanes. *)

val step : t -> int array -> int array
(** [step t inputs] evaluates one cycle. [inputs] holds
    [words_per_net t] words per primary input, flat in [input_nets]
    order; the result holds the same per primary output, in
    [output_list] order. Flip-flops advance. Raises [Invalid_argument]
    on an input arity mismatch. *)

val step_with_fault : t -> int array -> fault_net:int -> stuck_value:int -> int array
(** Like {!step}, but after evaluating [fault_net] its value is forced
    to [stuck_value] (a full word: 0 or {!all_ones}, applied to every
    word) before propagating further, and the faulty flip-flop state
    evolves accordingly. [fault_net] may be any net, including a PI or
    DFF output. *)

val step_injected : t -> int array -> inj:injection -> stuck:int -> int array
(** Generalisation of {!step_with_fault} covering pin (branch)
    faults. *)

type lane_injection = {
  inj : injection;
  lanes : int array;
      (** which lanes this fault lives in: a bit mask of
          [words_per_net] words *)
  stuck : int;  (** 0 or {!all_ones}; applied only within [lanes] *)
}

val step_multi : t -> int array -> injections:lane_injection list -> int array
(** One cycle with several faults, each confined to its own lanes —
    the classical parallel-fault simulation step (lane 0 carries the
    good machine, lanes 1.. one fault each). Flip-flop state diverges
    per lane, so sequential circuits work naturally. *)

val net_values : t -> int array
(** A copy of all net words after the last step, flat per net
    (diagnostic use). *)

val dff_states : t -> int array
(** Current flip-flop state words, [words_per_net] per flip-flop in
    [dff_nets] order — after a [step], the state the next cycle will
    start from. *)
