type t = {
  nets : int;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  logic_gates : int;
  gate_histogram : (string * int) list;
  levels : int;
  max_fanout : int;
  regions : int;
  max_region : int;
  reconvergences : int;
}

(* Fanout-free regions and reconvergent stems, mirroring the semantics
   of [Mutsamp_analysis.Regions.compute] (cross-checked in the test
   suite); duplicated compactly here because the analysis library sits
   above this one in the dependency order. *)
let structure (nl : Netlist.t) fanouts =
  let n = Array.length nl.Netlist.gates in
  let is_logic (g : Gate.t) =
    match g.Gate.kind with
    | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> false
    | _ -> true
  in
  let drives_po = Array.make n false in
  Array.iter (fun (_, net) -> drives_po.(net) <- true) nl.Netlist.output_list;
  let head = Array.make n (-1) in
  let rec head_of v =
    if head.(v) >= 0 then head.(v)
    else begin
      let h =
        match fanouts.(v) with
        | [ g ] when (not drives_po.(v)) && is_logic nl.Netlist.gates.(g) ->
          head_of g
        | _ -> v
      in
      head.(v) <- h;
      h
    end
  in
  let region_size = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let h = head_of v in
    let logic = if is_logic nl.Netlist.gates.(v) then 1 else 0 in
    Hashtbl.replace region_size h
      (logic + try Hashtbl.find region_size h with Not_found -> 0)
  done;
  let regions = Hashtbl.length region_size in
  let max_region = Hashtbl.fold (fun _ s acc -> max s acc) region_size 0 in
  let stamp = Array.make n (-1) in
  let owner = Array.make n (-1) in
  let version = ref 0 in
  let reconvergences = ref 0 in
  for s = 0 to n - 1 do
    match fanouts.(s) with
    | [] | [ _ ] -> ()
    | branches ->
      incr version;
      let meet = ref false in
      List.iteri
        (fun b g ->
          let todo = ref [ g ] in
          while !todo <> [] do
            match !todo with
            | [] -> ()
            | v :: rest ->
              todo := rest;
              if stamp.(v) = !version then begin
                if owner.(v) <> b then meet := true
              end
              else begin
                stamp.(v) <- !version;
                owner.(v) <- b;
                todo := List.rev_append fanouts.(v) !todo
              end
          done)
        branches;
      if !meet then incr reconvergences
  done;
  (regions, max_region, !reconvergences)

let compute (nl : Netlist.t) =
  let histogram = Hashtbl.create 16 in
  Array.iter
    (fun (g : Gate.t) ->
      let key = Gate.kind_name g.kind in
      Hashtbl.replace histogram key (1 + Option.value ~default:0 (Hashtbl.find_opt histogram key)))
    nl.gates;
  let gate_histogram =
    List.sort Stdlib.compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram [])
  in
  let topo = Topo.compute nl in
  let fanouts = Netlist.fanouts nl in
  let max_fanout =
    Array.fold_left (fun acc fo -> max acc (List.length fo)) 0 fanouts
  in
  let regions, max_region, reconvergences = structure nl fanouts in
  {
    nets = Netlist.num_gates nl;
    primary_inputs = Array.length nl.input_nets;
    primary_outputs = Array.length nl.output_list;
    flip_flops = Netlist.num_dffs nl;
    logic_gates = Netlist.num_logic_gates nl;
    gate_histogram;
    levels = topo.Topo.max_level;
    max_fanout;
    regions;
    max_region;
    reconvergences;
  }

let to_string s =
  let hist =
    String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) s.gate_histogram)
  in
  Printf.sprintf
    "nets=%d PI=%d PO=%d DFF=%d gates=%d levels=%d max_fanout=%d regions=%d \
     max_region=%d reconv=%d [%s]"
    s.nets s.primary_inputs s.primary_outputs s.flip_flops s.logic_gates s.levels
    s.max_fanout s.regions s.max_region s.reconvergences hist

let pp fmt s = Format.pp_print_string fmt (to_string s)
