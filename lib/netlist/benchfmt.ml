exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

(* --- writer ------------------------------------------------------------ *)

(* Every net needs a name: primary inputs keep theirs, everything else
   is named after its id. *)
let net_name (nl : Netlist.t) i =
  match nl.gates.(i).Gate.kind with
  | Gate.Pi name -> name
  | _ -> Printf.sprintf "n%d" i

let looks_like_internal_label name =
  String.length name > 1
  && name.[0] = 'n'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name 1 (String.length name - 1))

let to_string (nl : Netlist.t) =
  (* Internal nets are labelled n<id>; a port carrying such a name
     could collide with them. *)
  Array.iter
    (fun name ->
      if looks_like_internal_label name then
        invalid_arg ("Benchfmt.to_string: input name collides with net labels: " ^ name))
    (Netlist.input_names nl);
  Array.iter
    (fun (name, _) ->
      if looks_like_internal_label name then
        invalid_arg ("Benchfmt.to_string: output name collides with net labels: " ^ name))
    nl.output_list;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s (exported by mutsamp)\n" nl.name);
  Array.iter
    (fun net -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (net_name nl net)))
    nl.input_nets;
  (* Outputs keep their PO names through BUFF aliases, so names,
     count and order survive the round trip even when one net feeds
     several POs or a PO name differs from its driving net's label. *)
  let aliases = Buffer.create 128 in
  Array.iter
    (fun (name, net) ->
      let driver = net_name nl net in
      Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" name);
      if name <> driver then
        Buffer.add_string aliases (Printf.sprintf "%s = BUFF(%s)\n" name driver))
    nl.output_list;
  Array.iteri
    (fun i (g : Gate.t) ->
      let name = net_name nl i in
      let operands () =
        String.concat ", " (Array.to_list (Array.map (net_name nl) g.fanins))
      in
      match g.kind with
      | Gate.Pi _ -> ()
      | Gate.Const false -> Buffer.add_string buf (Printf.sprintf "%s = CONST0\n" name)
      | Gate.Const true -> Buffer.add_string buf (Printf.sprintf "%s = CONST1\n" name)
      | Gate.Buf -> Buffer.add_string buf (Printf.sprintf "%s = BUFF(%s)\n" name (operands ()))
      | Gate.Not -> Buffer.add_string buf (Printf.sprintf "%s = NOT(%s)\n" name (operands ()))
      | Gate.And -> Buffer.add_string buf (Printf.sprintf "%s = AND(%s)\n" name (operands ()))
      | Gate.Or -> Buffer.add_string buf (Printf.sprintf "%s = OR(%s)\n" name (operands ()))
      | Gate.Nand -> Buffer.add_string buf (Printf.sprintf "%s = NAND(%s)\n" name (operands ()))
      | Gate.Nor -> Buffer.add_string buf (Printf.sprintf "%s = NOR(%s)\n" name (operands ()))
      | Gate.Xor -> Buffer.add_string buf (Printf.sprintf "%s = XOR(%s)\n" name (operands ()))
      | Gate.Xnor -> Buffer.add_string buf (Printf.sprintf "%s = XNOR(%s)\n" name (operands ()))
      | Gate.Dff init ->
        Buffer.add_string buf
          (Printf.sprintf "%s = DFF(%s)%s\n" name (operands ())
             (if init then "  # init=1" else "")))
    nl.gates;
  Buffer.add_buffer buf aliases;
  Buffer.contents buf

(* --- reader ------------------------------------------------------------ *)

type def =
  | Dinput
  | Dconst of bool
  | Dgate of string * string list  (* function name, operand signals *)
  | Ddff of string * bool  (* D signal, init *)

let parse_lines src =
  let inputs = ref [] in
  let outputs = ref [] in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let define name d =
    if Hashtbl.mem defs name then fail "signal %s multiply driven" name;
    Hashtbl.replace defs name d;
    order := name :: !order
  in
  let strip s = String.trim s in
  String.split_on_char '\n' src
  |> List.iteri (fun lineno raw ->
         let line =
           match String.index_opt raw '#' with
           | Some i -> String.sub raw 0 i
           | None -> raw
         in
         let init_one =
           (* the writer's "# init=1" annotation *)
           let rec contains i =
             i + 6 <= String.length raw && (String.sub raw i 6 = "init=1" || contains (i + 1))
           in
           contains 0
         in
         let line = strip line in
         if line <> "" then begin
           let fail_line fmt =
             Printf.ksprintf
               (fun m -> fail "line %d: %s" (lineno + 1) m)
               fmt
           in
           let paren_arg prefix =
             let plen = String.length prefix in
             if String.length line > plen + 1
                && String.uppercase_ascii (String.sub line 0 plen) = prefix
                && line.[plen] = '('
                && line.[String.length line - 1] = ')'
             then Some (strip (String.sub line (plen + 1) (String.length line - plen - 2)))
             else None
           in
           match paren_arg "INPUT" with
           | Some name ->
             define name Dinput;
             inputs := name :: !inputs
           | None ->
             (match paren_arg "OUTPUT" with
              | Some name -> outputs := name :: !outputs
              | None ->
                (match String.index_opt line '=' with
                 | None -> fail_line "expected INPUT/OUTPUT/assignment"
                 | Some eq ->
                   let name = strip (String.sub line 0 eq) in
                   let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
                   let upper = String.uppercase_ascii rhs in
                   if upper = "CONST0" then define name (Dconst false)
                   else if upper = "CONST1" then define name (Dconst true)
                   else begin
                     match String.index_opt rhs '(' with
                     | None -> fail_line "expected FUNC(args)"
                     | Some lp ->
                       if rhs.[String.length rhs - 1] <> ')' then fail_line "missing ')'";
                       let func = String.uppercase_ascii (strip (String.sub rhs 0 lp)) in
                       let args =
                         String.sub rhs (lp + 1) (String.length rhs - lp - 2)
                         |> String.split_on_char ','
                         |> List.map strip
                         |> List.filter (fun s -> s <> "")
                       in
                       if func = "DFF" then begin
                         match args with
                         | [ d ] -> define name (Ddff (d, init_one))
                         | _ -> fail_line "DFF takes one operand"
                       end
                       else define name (Dgate (func, args))
                   end))
         end);
  (List.rev !inputs, List.rev !outputs, defs)

let of_string ?(name = "bench") src =
  let inputs, outputs, defs = parse_lines src in
  let module B = Netlist.Builder in
  let b = B.create name in
  let nets : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let dff_pending = ref [] in
  (* Signals whose definition is being elaborated right now: hitting one
     again means a combinational cycle (e.g. [a = AND(a, b)]), which
     would otherwise recurse forever. DFF feedback is fine — the Q net
     exists before the D cone is walked. *)
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec net_of signal =
    match Hashtbl.find_opt nets signal with
    | Some id -> id
    | None ->
      if Hashtbl.mem visiting signal then
        fail "combinational cycle through signal %s" signal;
      Hashtbl.add visiting signal ();
      let id = net_of_uncached signal in
      Hashtbl.remove visiting signal;
      id
  and net_of_uncached signal =
      (match Hashtbl.find_opt defs signal with
       | None -> fail "undefined signal %s" signal
       | Some Dinput ->
         let id = B.input b signal in
         Hashtbl.replace nets signal id;
         id
       | Some (Dconst v) ->
         let id = B.const b v in
         Hashtbl.replace nets signal id;
         id
       | Some (Ddff (d, init)) ->
         (* Create Q first so feedback through the D cone terminates. *)
         let q = B.dff b ~init in
         Hashtbl.replace nets signal q;
         dff_pending := (q, d) :: !dff_pending;
         q
       | Some (Dgate (func, args)) ->
         let arg_nets = List.map net_of args in
         let id = build_gate func arg_nets signal in
         Hashtbl.replace nets signal id;
         id)
  and build_gate func args signal =
    let module B = Netlist.Builder in
    let chain2 f = function
      | a :: b :: rest -> List.fold_left f (f a b) rest
      | _ -> fail "%s: %s needs at least two operands" signal func
    in
    let unary f = function
      | [ a ] -> f a
      | _ -> fail "%s: %s takes one operand" signal func
    in
    match func with
    | "AND" -> chain2 (B.and_ b) args
    | "OR" -> chain2 (B.or_ b) args
    | "XOR" -> chain2 (B.xor_ b) args
    (* n-ary NAND/NOR/XNOR = negation of the n-ary base function. *)
    | "NAND" -> B.not_ b (chain2 (B.and_ b) args)
    | "NOR" -> B.not_ b (chain2 (B.or_ b) args)
    | "XNOR" -> B.not_ b (chain2 (B.xor_ b) args)
    | "NOT" -> unary (B.not_ b) args
    | "BUFF" | "BUF" -> unary (B.buf b) args
    | _ -> fail "%s: unknown function %s" signal func
  in
  (* Force every defined signal so unreferenced logic is kept. *)
  List.iter (fun s -> ignore (net_of s)) inputs;
  Hashtbl.iter (fun s _ -> ignore (net_of s)) defs;
  List.iter
    (fun (q, d) -> Netlist.Builder.connect_dff b q ~d:(net_of d))
    !dff_pending;
  List.iter (fun o -> Netlist.Builder.output b o (net_of o)) outputs;
  Netlist.Builder.finalize b

let write_file path nl =
  let oc = open_out path in
  (try output_string oc (to_string nl) with e -> close_out oc; raise e);
  close_out oc

(* --- typed-result entry points ----------------------------------------- *)

module Rerror = Mutsamp_robust.Error
module Chaos = Mutsamp_robust.Chaos

(* Recover the "line N:" location prefix the line parser embeds. *)
let located_error ?file msg =
  let line =
    if String.length msg > 5 && String.sub msg 0 5 = "line " then
      let rest = String.sub msg 5 (String.length msg - 5) in
      match String.index_opt rest ':' with
      | Some i -> int_of_string_opt (String.sub rest 0 i)
      | None -> None
    else None
  in
  Rerror.Parse_error { loc = { Rerror.file; line }; msg }

let parse ?name ?file src =
  try
    match Chaos.trip Chaos.Parse_input with
    | Error e -> Error e
    | Ok () -> Ok (of_string ?name src)
  with
  | Parse_error msg -> Error (located_error ?file msg)
  | Chaos.Injected _ -> Error (Rerror.Injected Rerror.Parse)
  | Stack_overflow ->
    Error
      (Rerror.Parse_error
         { loc = { Rerror.file; line = None }; msg = "netlist too deep to elaborate" })

let read_file_result ?name path =
  match
    try
      let ic = open_in path in
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      Ok src
    with Sys_error msg -> Error (Rerror.Io_error msg)
  with
  | Error e -> Error e
  | Ok src -> parse ?name ~file:path src
