(** Netlist size and structure metrics for reports. *)

type t = {
  nets : int;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  logic_gates : int;
  gate_histogram : (string * int) list;  (** kind name -> count, nonzero only *)
  levels : int;  (** combinational depth *)
  max_fanout : int;
  regions : int;  (** fanout-free regions *)
  max_region : int;  (** logic gates in the largest fanout-free region *)
  reconvergences : int;  (** multi-fanout stems whose branches reconverge *)
}

val compute : Netlist.t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
