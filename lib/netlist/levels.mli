(** Levelized netlist view for the event-driven and compiled fault-sim
    backends: combinational gates bucketed by logic depth, dense
    int-array fanouts, and per-net combinational output-reachability
    bitsets. Immutable after {!compute}, so one value is safely shared
    across simulation domains. *)

type t = private {
  nl : Netlist.t;
  level : int array;  (** per net; sources (PI/Const/DFF) are level 0 *)
  max_level : int;
  order : int array;  (** combinational gates only, level-ascending *)
  level_off : int array;
      (** length [max_level + 2]: gates of level [l] occupy
          [order.[level_off.(l) .. level_off.(l+1) - 1]] *)
  pos : int array;  (** per net: index into [order], [-1] for sources *)
  fanout_comb : int array array;
      (** per net: combinational gates reading it, ascending ids *)
  fanout_dff : int array array;
      (** per net: flip-flop nets reading it as their D pin *)
  reach_words : int;
  reach : int array;
      (** net [n] combinationally reaches PO [o] iff bit [o mod 63] of
          [reach.((n * reach_words) + o / 63)] is set *)
}

val compute : Netlist.t -> t
val netlist : t -> Netlist.t

val reaches_output : t -> int -> bool
(** Whether the net combinationally reaches any primary output. *)

val num_comb_gates : t -> int
