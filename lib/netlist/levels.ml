(* Levelized view of a netlist for the event-driven and compiled fault
   simulators: combinational gates bucketed by logic depth, dense
   int-array fanouts, and per-net reachable-output bitsets. Everything
   here is immutable after [compute], so one value can be shared across
   simulation domains. *)

type t = {
  nl : Netlist.t;
  level : int array;  (* per net; sources are level 0 *)
  max_level : int;
  order : int array;  (* combinational gates, level-ascending *)
  level_off : int array;
      (* length max_level + 2: gates of level l occupy
         order.[level_off.(l) .. level_off.(l+1) - 1] *)
  pos : int array;  (* per net: index into [order], -1 for sources *)
  fanout_comb : int array array;  (* per net: combinational consumers *)
  fanout_dff : int array array;  (* per net: DFFs reading it as D *)
  reach_words : int;
  reach : int array;
      (* net n combinationally reaches PO o iff bit [o mod 63] of
         reach.((n * reach_words) + o / 63) is set *)
}

let word_bits = 63

let compute (nl : Netlist.t) =
  let topo = Topo.compute nl in
  let n = Array.length nl.Netlist.gates in
  let level = topo.Topo.level in
  let max_level = topo.Topo.max_level in
  (* Stable level sort: counting sort over the topo order keeps same-level
     gates in topological (hence deterministic) relative order. *)
  let counts = Array.make (max_level + 2) 0 in
  Array.iter
    (fun i -> counts.(level.(i) + 1) <- counts.(level.(i) + 1) + 1)
    topo.Topo.order;
  for l = 1 to max_level + 1 do
    counts.(l) <- counts.(l) + counts.(l - 1)
  done;
  let level_off = Array.copy counts in
  let order = Array.make (Array.length topo.Topo.order) 0 in
  let fill = Array.copy counts in
  Array.iter
    (fun i ->
      order.(fill.(level.(i))) <- i;
      fill.(level.(i)) <- fill.(level.(i)) + 1)
    topo.Topo.order;
  let pos = Array.make n (-1) in
  Array.iteri (fun k i -> pos.(i) <- k) order;
  let comb = Array.make n [] and dff = Array.make n [] in
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Pi _ | Gate.Const _ -> ()
      | Gate.Dff _ ->
        let d = g.Gate.fanins.(0) in
        dff.(d) <- i :: dff.(d)
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        Array.iter (fun f -> comb.(f) <- i :: comb.(f)) g.Gate.fanins)
    nl.Netlist.gates;
  let fanout_comb = Array.map (fun l -> Array.of_list (List.rev l)) comb in
  let fanout_dff = Array.map (fun l -> Array.of_list (List.rev l)) dff in
  let npo = Array.length nl.Netlist.output_list in
  let reach_words = (npo + word_bits - 1) / word_bits in
  let reach = Array.make (n * reach_words) 0 in
  Array.iteri
    (fun o (_, net) ->
      let w = (net * reach_words) + (o / word_bits) in
      reach.(w) <- reach.(w) lor (1 lsl (o mod word_bits)))
    nl.Netlist.output_list;
  (* Reverse-topological propagation: a gate's reach flows onto its
     fanins. Stops at DFF boundaries — this is combinational reach. *)
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    let g = nl.Netlist.gates.(i) in
    Array.iter
      (fun f ->
        for j = 0 to reach_words - 1 do
          reach.((f * reach_words) + j) <-
            reach.((f * reach_words) + j) lor reach.((i * reach_words) + j)
        done)
      g.Gate.fanins
  done;
  {
    nl;
    level;
    max_level;
    order;
    level_off;
    pos;
    fanout_comb;
    fanout_dff;
    reach_words;
    reach;
  }

let netlist t = t.nl

let reaches_output t net =
  let base = net * t.reach_words in
  let rec go j = j < t.reach_words && (t.reach.(base + j) <> 0 || go (j + 1)) in
  go 0

let num_comb_gates t = Array.length t.order
