(** ISCAS ".bench" netlist interchange format.

    Reader and writer for the textual format the ISCAS'85/'89 suites
    are distributed in:

    {v
# comment
INPUT(G1)
OUTPUT(G22)
G10 = NAND(G1, G3)
G23 = DFF(G10)
G5 = NOT(G2)
v}

    Supported functions: AND, NAND, OR, NOR, XOR, XNOR (any arity ≥ 2,
    decomposed into 2-input chains on import), NOT, BUFF, DFF, and the
    non-standard CONST0/CONST1 extensions. DFF reset values are not
    part of the format; the writer annotates [# init=1] after
    one-initialised flip-flops and the reader honours the annotation
    (absent it, flip-flops reset to 0).

    The importer builds through {!Netlist.Builder}, so structurally
    duplicate gates are shared and constants folded — the imported
    netlist computes the same functions but need not be
    gate-for-gate identical to the file. *)

exception Parse_error of string

val to_string : Netlist.t -> string
val write_file : string -> Netlist.t -> unit

val parse :
  ?name:string ->
  ?file:string ->
  string ->
  (Netlist.t, Mutsamp_robust.Error.t) result
(** Typed-result import: malformed input becomes
    [Error (Parse_error _)] carrying the (1-based) source line when the
    message is line-located, never an exception. [file] only labels the
    error location. *)

val read_file_result :
  ?name:string -> string -> (Netlist.t, Mutsamp_robust.Error.t) result
(** {!parse} on a file's contents; unreadable files become
    [Error (Io_error _)]. *)
