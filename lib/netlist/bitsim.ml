let lanes = 62
let all_ones = (1 lsl lanes) - 1

type t = {
  nl : Netlist.t;
  topo : Topo.t;
  values : int array;  (* per net, one word of lanes *)
  state : int array;  (* per net, flip-flop state (unused for others) *)
  (* Dense fault-forcing scratch for [step_multi]: per-net and per-pin
     masks live in preallocated arrays (pin slot = gate*2 + pin; gates
     have at most two fanins). Touched slots are remembered so clearing
     costs O(#injections), not O(#gates). *)
  net_mask : int array;
  net_forced : int array;
  pin_mask : int array;
  pin_force : int array;
  mutable touched_nets : int list;
  mutable touched_pins : int list;
}

type injection =
  | Net of int
  | Pin of { gate : int; pin : int }

let create nl =
  let n = Array.length nl.Netlist.gates in
  {
    nl;
    topo = Topo.compute nl;
    values = Array.make n 0;
    state = Array.make n 0;
    net_mask = Array.make n 0;
    net_forced = Array.make n 0;
    pin_mask = Array.make (2 * n) 0;
    pin_force = Array.make (2 * n) 0;
    touched_nets = [];
    touched_pins = [];
  }

let netlist t = t.nl

let reset t =
  Array.iter
    (fun q ->
      match t.nl.Netlist.gates.(q).Gate.kind with
      | Gate.Dff init -> t.state.(q) <- (if init then all_ones else 0)
      | _ -> assert false)
    t.nl.Netlist.dff_nets

(* One evaluation cycle with an optional fault injection. *)
let step_internal t inputs fault stuck =
  let gates = t.nl.Netlist.gates in
  if Array.length inputs <> Array.length t.nl.Netlist.input_nets then
    invalid_arg "Bitsim.step: input arity mismatch";
  let forced_net =
    match fault with Some (Net n) -> n | Some (Pin _) | None -> -1
  in
  let pin_gate, pin_idx =
    match fault with Some (Pin { gate; pin }) -> (gate, pin) | Some (Net _) | None -> (-1, -1)
  in
  let force i v = if i = forced_net then stuck else v in
  (* Sources: PIs, constants, flip-flop outputs. *)
  Array.iteri
    (fun k net -> t.values.(net) <- force net (inputs.(k) land all_ones))
    t.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v -> t.values.(i) <- force i (if v then all_ones else 0)
      | Gate.Dff _ -> t.values.(i) <- force i t.state.(i)
      | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
      | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    gates;
  (* Combinational gates in topological order. *)
  Array.iter
    (fun i ->
      let g = gates.(i) in
      let operand k =
        let v = t.values.(g.Gate.fanins.(k)) in
        if i = pin_gate && k = pin_idx then stuck else v
      in
      let a = operand 0 in
      let b = if Array.length g.Gate.fanins > 1 then operand 1 else 0 in
      t.values.(i) <- force i (Gate.eval2 g.Gate.kind a b land all_ones))
    t.topo.Topo.order;
  (* Advance flip-flops: D pins may themselves carry a pin fault. *)
  Array.iter
    (fun q ->
      let d = gates.(q).Gate.fanins.(0) in
      let v = if q = pin_gate && pin_idx = 0 then stuck else t.values.(d) in
      t.state.(q) <- v)
    t.nl.Netlist.dff_nets;
  Array.map (fun (_, net) -> t.values.(net)) t.nl.Netlist.output_list

let step t inputs = step_internal t inputs None 0

let step_with_fault t inputs ~fault_net ~stuck_value =
  step_internal t inputs (Some (Net fault_net)) (stuck_value land all_ones)

let step_injected t inputs ~inj ~stuck =
  step_internal t inputs (Some inj) (stuck land all_ones)

type lane_injection = {
  inj : injection;
  lanes : int;
  stuck : int;
}

(* Multi-fault evaluation: per-net and per-pin forcing masks are merged
   into the preallocated dense scratch arrays, then one pass applies
   [value = (v land ~mask) lor forced] wherever a mask is set. *)
let step_multi t inputs ~injections =
  let gates = t.nl.Netlist.gates in
  if Array.length inputs <> Array.length t.nl.Netlist.input_nets then
    invalid_arg "Bitsim.step_multi: input arity mismatch";
  let net_mask = t.net_mask and net_forced = t.net_forced in
  let pin_mask = t.pin_mask and pin_force = t.pin_force in
  List.iter
    (fun { inj; lanes; stuck } ->
      let lanes = lanes land all_ones in
      match inj with
      | Net net ->
        if net_mask.(net) = 0 then t.touched_nets <- net :: t.touched_nets;
        net_mask.(net) <- net_mask.(net) lor lanes;
        net_forced.(net) <-
          (net_forced.(net) land lnot lanes) lor (stuck land lanes)
      | Pin { gate; pin } ->
        let s = (2 * gate) + pin in
        if pin_mask.(s) = 0 then t.touched_pins <- s :: t.touched_pins;
        pin_mask.(s) <- pin_mask.(s) lor lanes;
        pin_force.(s) <-
          (pin_force.(s) land lnot lanes) lor (stuck land lanes))
    injections;
  let force i v =
    let m = net_mask.(i) in
    if m = 0 then v else (v land lnot m) lor (net_forced.(i) land m)
  in
  Array.iteri
    (fun k net -> t.values.(net) <- force net (inputs.(k) land all_ones))
    t.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v -> t.values.(i) <- force i (if v then all_ones else 0)
      | Gate.Dff _ -> t.values.(i) <- force i t.state.(i)
      | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
      | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    gates;
  Array.iter
    (fun i ->
      let g = gates.(i) in
      let operand k =
        let v = t.values.(g.Gate.fanins.(k)) in
        let m = pin_mask.((2 * i) + k) in
        if m = 0 then v else (v land lnot m) lor (pin_force.((2 * i) + k) land m)
      in
      let a = operand 0 in
      let b = if Array.length g.Gate.fanins > 1 then operand 1 else 0 in
      t.values.(i) <- force i (Gate.eval2 g.Gate.kind a b land all_ones))
    t.topo.Topo.order;
  Array.iter
    (fun q ->
      let d = gates.(q).Gate.fanins.(0) in
      let m = pin_mask.(2 * q) in
      let v =
        if m = 0 then t.values.(d)
        else (t.values.(d) land lnot m) lor (pin_force.(2 * q) land m)
      in
      t.state.(q) <- v)
    t.nl.Netlist.dff_nets;
  List.iter (fun n -> net_mask.(n) <- 0; net_forced.(n) <- 0) t.touched_nets;
  List.iter (fun s -> pin_mask.(s) <- 0; pin_force.(s) <- 0) t.touched_pins;
  t.touched_nets <- [];
  t.touched_pins <- [];
  Array.map (fun (_, net) -> t.values.(net)) t.nl.Netlist.output_list

let net_values t = Array.copy t.values

let dff_states t = Array.map (fun q -> t.state.(q)) t.nl.Netlist.dff_nets
