let word_bits = 63
let all_ones = -1

type t = {
  nl : Netlist.t;
  topo : Topo.t;
  nw : int;  (* words per net *)
  values : int array;  (* net i, word j at [i*nw + j] *)
  state : int array;  (* flip-flop state, same layout (unused for others) *)
  (* Dense fault-forcing scratch for [step_multi]: per-net and per-pin
     masks live in preallocated arrays (pin slot = gate*2 + pin; gates
     have at most two fanins). Touched slots are remembered so clearing
     costs O(#injections), not O(#gates). *)
  net_mask : int array;
  net_forced : int array;
  pin_mask : int array;
  pin_force : int array;
  mutable touched_nets : int list;
  mutable touched_pins : int list;
}

type injection =
  | Net of int
  | Pin of { gate : int; pin : int }

let create ?(lanes = word_bits) nl =
  if lanes < 1 then invalid_arg "Bitsim.create: lanes < 1";
  let nw = (lanes + word_bits - 1) / word_bits in
  let n = Array.length nl.Netlist.gates in
  {
    nl;
    topo = Topo.compute nl;
    nw;
    values = Array.make (n * nw) 0;
    state = Array.make (n * nw) 0;
    net_mask = Array.make (n * nw) 0;
    net_forced = Array.make (n * nw) 0;
    pin_mask = Array.make (2 * n * nw) 0;
    pin_force = Array.make (2 * n * nw) 0;
    touched_nets = [];
    touched_pins = [];
  }

let netlist t = t.nl
let lanes t = t.nw * word_bits
let words_per_net t = t.nw

let reset t =
  Array.iter
    (fun q ->
      match t.nl.Netlist.gates.(q).Gate.kind with
      | Gate.Dff init ->
        Array.fill t.state (q * t.nw) t.nw (if init then all_ones else 0)
      | _ -> assert false)
    t.nl.Netlist.dff_nets

let check_inputs t inputs op =
  if Array.length inputs <> Array.length t.nl.Netlist.input_nets * t.nw then
    invalid_arg (Printf.sprintf "Bitsim.%s: input arity mismatch" op)

let outputs t =
  let nw = t.nw in
  let outs = t.nl.Netlist.output_list in
  let r = Array.make (Array.length outs * nw) 0 in
  Array.iteri
    (fun o (_, net) -> Array.blit t.values (net * nw) r (o * nw) nw)
    outs;
  r

(* One evaluation cycle with an optional fault injection. *)
let step_internal t inputs fault stuck =
  let gates = t.nl.Netlist.gates in
  check_inputs t inputs "step";
  let nw = t.nw in
  let forced_net =
    match fault with Some (Net n) -> n | Some (Pin _) | None -> -1
  in
  let pin_gate, pin_idx =
    match fault with Some (Pin { gate; pin }) -> (gate, pin) | Some (Net _) | None -> (-1, -1)
  in
  (* Sources: PIs, constants, flip-flop outputs. *)
  Array.iteri
    (fun k net ->
      if net = forced_net then Array.fill t.values (net * nw) nw stuck
      else Array.blit inputs (k * nw) t.values (net * nw) nw)
    t.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v ->
        let w = if i = forced_net then stuck else if v then all_ones else 0 in
        Array.fill t.values (i * nw) nw w
      | Gate.Dff _ ->
        if i = forced_net then Array.fill t.values (i * nw) nw stuck
        else Array.blit t.state (i * nw) t.values (i * nw) nw
      | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
      | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    gates;
  (* Combinational gates in topological order. *)
  Array.iter
    (fun i ->
      let g = gates.(i) in
      let kind = g.Gate.kind in
      let f0 = g.Gate.fanins.(0) in
      let two = Array.length g.Gate.fanins > 1 in
      let f1 = if two then g.Gate.fanins.(1) else 0 in
      let forced = i = forced_net in
      for j = 0 to nw - 1 do
        let a =
          if i = pin_gate && pin_idx = 0 then stuck else t.values.((f0 * nw) + j)
        in
        let b =
          if not two then 0
          else if i = pin_gate && pin_idx = 1 then stuck
          else t.values.((f1 * nw) + j)
        in
        t.values.((i * nw) + j) <- (if forced then stuck else Gate.eval2 kind a b)
      done)
    t.topo.Topo.order;
  (* Advance flip-flops: D pins may themselves carry a pin fault. *)
  Array.iter
    (fun q ->
      let d = gates.(q).Gate.fanins.(0) in
      if q = pin_gate && pin_idx = 0 then Array.fill t.state (q * nw) nw stuck
      else Array.blit t.values (d * nw) t.state (q * nw) nw)
    t.nl.Netlist.dff_nets;
  outputs t

let step t inputs = step_internal t inputs None 0

let step_with_fault t inputs ~fault_net ~stuck_value =
  step_internal t inputs (Some (Net fault_net)) stuck_value

let step_injected t inputs ~inj ~stuck = step_internal t inputs (Some inj) stuck

type lane_injection = {
  inj : injection;
  lanes : int array;
  stuck : int;
}

(* Multi-fault evaluation: per-net and per-pin forcing masks are merged
   into the preallocated dense scratch arrays, then one pass applies
   [value = (v land ~mask) lor forced] wherever a mask is set. *)
let step_multi t inputs ~injections =
  let gates = t.nl.Netlist.gates in
  check_inputs t inputs "step_multi";
  let nw = t.nw in
  let net_mask = t.net_mask and net_forced = t.net_forced in
  let pin_mask = t.pin_mask and pin_force = t.pin_force in
  List.iter
    (fun { inj; lanes; stuck } ->
      if Array.length lanes <> nw then
        invalid_arg "Bitsim.step_multi: lane-mask word count mismatch";
      let merge mask forced base =
        for j = 0 to nw - 1 do
          let l = lanes.(j) in
          if l <> 0 then begin
            mask.(base + j) <- mask.(base + j) lor l;
            forced.(base + j) <-
              (forced.(base + j) land lnot l) lor (stuck land l)
          end
        done
      in
      match inj with
      | Net net ->
        if net_mask.(net * nw) = 0 then t.touched_nets <- net :: t.touched_nets;
        merge net_mask net_forced (net * nw)
      | Pin { gate; pin } ->
        let s = (2 * gate) + pin in
        if pin_mask.(s * nw) = 0 then t.touched_pins <- s :: t.touched_pins;
        merge pin_mask pin_force (s * nw))
    injections;
  let force_net net j v =
    let m = net_mask.((net * nw) + j) in
    if m = 0 then v else (v land lnot m) lor (net_forced.((net * nw) + j) land m)
  in
  Array.iteri
    (fun k net ->
      for j = 0 to nw - 1 do
        t.values.((net * nw) + j) <- force_net net j inputs.((k * nw) + j)
      done)
    t.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v ->
        let w = if v then all_ones else 0 in
        for j = 0 to nw - 1 do
          t.values.((i * nw) + j) <- force_net i j w
        done
      | Gate.Dff _ ->
        for j = 0 to nw - 1 do
          t.values.((i * nw) + j) <- force_net i j t.state.((i * nw) + j)
        done
      | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
      | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    gates;
  Array.iter
    (fun i ->
      let g = gates.(i) in
      let kind = g.Gate.kind in
      let f0 = g.Gate.fanins.(0) in
      let two = Array.length g.Gate.fanins > 1 in
      let f1 = if two then g.Gate.fanins.(1) else 0 in
      let s0 = ((2 * i) + 0) * nw and s1 = ((2 * i) + 1) * nw in
      for j = 0 to nw - 1 do
        let a =
          let v = t.values.((f0 * nw) + j) in
          let m = pin_mask.(s0 + j) in
          if m = 0 then v else (v land lnot m) lor (pin_force.(s0 + j) land m)
        in
        let b =
          if not two then 0
          else begin
            let v = t.values.((f1 * nw) + j) in
            let m = pin_mask.(s1 + j) in
            if m = 0 then v else (v land lnot m) lor (pin_force.(s1 + j) land m)
          end
        in
        t.values.((i * nw) + j) <- force_net i j (Gate.eval2 kind a b)
      done)
    t.topo.Topo.order;
  Array.iter
    (fun q ->
      let d = gates.(q).Gate.fanins.(0) in
      let s = 2 * q * nw in
      for j = 0 to nw - 1 do
        let v = t.values.((d * nw) + j) in
        let m = pin_mask.(s + j) in
        t.state.((q * nw) + j) <-
          (if m = 0 then v else (v land lnot m) lor (pin_force.(s + j) land m))
      done)
    t.nl.Netlist.dff_nets;
  List.iter
    (fun net ->
      Array.fill net_mask (net * nw) nw 0;
      Array.fill net_forced (net * nw) nw 0)
    t.touched_nets;
  List.iter
    (fun s ->
      Array.fill pin_mask (s * nw) nw 0;
      Array.fill pin_force (s * nw) nw 0)
    t.touched_pins;
  t.touched_nets <- [];
  t.touched_pins <- [];
  outputs t

let net_values t = Array.copy t.values

let dff_states t =
  let nw = t.nw in
  let dffs = t.nl.Netlist.dff_nets in
  let r = Array.make (Array.length dffs * nw) 0 in
  Array.iteri (fun k q -> Array.blit t.state (q * nw) r (k * nw) nw) dffs;
  r
