(** Fault-isolated campaign service daemon.

    One accept loop, one connection thread per client, one worker
    thread executing queued jobs against a shared {!Mutsamp_exec.Pool}
    and [--store] handle. Requests are admitted through a bounded
    queue ({!Bq}): when it is full the client gets an immediate typed
    [overloaded] reply (exit code 69 client-side) instead of unbounded
    latency — load is shed, never buffered.

    Fault isolation is per request: the worker runs each job under a
    fresh {!Mutsamp_robust.Budget} with observability state (metrics,
    degrade record, store counters, chaos armings) reset at entry, and
    converts any escape — typed [Error.E], injected chaos, or an
    arbitrary exception — into a typed error reply. One poisoned
    request can never take the daemon down.

    Drain (SIGTERM/SIGINT or {!initiate_drain}) is graceful: stop
    accepting, answer new requests with [overloaded], finish queued
    jobs, and after [drain_grace_ms] budget-cancel whatever is still
    running via {!Mutsamp_robust.Budget.expire}; {!run} then returns
    normally so the process exits 0. Signal handlers only set an
    atomic flag — the accept loop observes it on its next ~250 ms
    select tick. See docs/SERVICE.md. *)

module Error = Mutsamp_robust.Error
module Store = Mutsamp_store.Store

type listen = Unix_path of string | Tcp of string * int
(** [Tcp (addr, port)] binds a numeric address, e.g. ["127.0.0.1"]. *)

type config = {
  listen : listen;
  queue_depth : int;  (** bounded-queue capacity; overflow is shed *)
  request_deadline_ms : int;  (** server-side cap per request; 0 = none *)
  idle_timeout_ms : int;  (** close idle connections; 0 = never *)
  drain_grace_ms : int;  (** budget-cancel in-flight work after this *)
  jobs : int;  (** worker pool domains; 1 = in-process sequential *)
  store : Store.t option;
  chaos_specs : string list;  (** armed for every request (test hook) *)
  chaos_seed : int;
  log : (string -> unit) option;  (** verbose logging sink *)
}

val config :
  ?queue_depth:int ->
  ?request_deadline_ms:int ->
  ?idle_timeout_ms:int ->
  ?drain_grace_ms:int ->
  ?jobs:int ->
  ?store:Store.t ->
  ?chaos_specs:string list ->
  ?chaos_seed:int ->
  ?log:(string -> unit) ->
  listen ->
  config
(** Defaults: queue depth 16, no request deadline, 30 s idle timeout,
    2 s drain grace, 1 job, no store, no chaos. *)

type t

val create : config -> (t, Error.t) result
(** Bind and listen (unlinking a stale Unix-socket path first).
    Failures are [Io_error]. *)

val run : t -> unit
(** Serve until drained: blocks in the accept loop, then performs the
    graceful drain and releases the socket (and pool). Call
    {!initiate_drain} — or install it as a SIGTERM/SIGINT handler —
    to stop. *)

val initiate_drain : t -> unit
(** Request a graceful drain. Only sets an atomic flag, so it is safe
    to call from a signal handler or any thread. *)

val draining : t -> bool
