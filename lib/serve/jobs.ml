module Registry = Mutsamp_circuits.Registry
module Netlist = Mutsamp_netlist.Netlist
module Fsim = Mutsamp_fault.Fsim
module Pattern = Mutsamp_fault.Pattern
module Collapse = Mutsamp_fault.Collapse
module Prpg = Mutsamp_atpg.Prpg
module Scan = Mutsamp_atpg.Scan
module Topoff = Mutsamp_atpg.Topoff
module Operator = Mutsamp_mutation.Operator
module Prng = Mutsamp_util.Prng
module Config = Mutsamp_core.Config
module Pipeline = Mutsamp_core.Pipeline
module Experiments = Mutsamp_core.Experiments
module Report = Mutsamp_core.Report
module Analysis = Mutsamp_analysis
module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json
module Error = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Ctx = Mutsamp_exec.Ctx

(* --- front-end cache --------------------------------------------------- *)

(* Prepared pipelines (parse, elaborate, synth, collapse, mutants) are
   deterministic per circuit, so the daemon keeps them across requests
   — repeat traffic for a design skips the whole front end. Counters
   are process-global atomics (the daemon resets Metrics per request)
   plus per-request Metrics mirrors. *)
let a_frontend_hits = Atomic.make 0
let a_frontend_misses = Atomic.make 0
let m_frontend_hits = Metrics.counter "serve.frontend_hits"
let m_frontend_misses = Metrics.counter "serve.frontend_misses"

let frontend_hits () = Atomic.get a_frontend_hits
let frontend_misses () = Atomic.get a_frontend_misses

let cache : (string, Pipeline.t) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let entry name =
  match Registry.find name with
  | Some e -> e
  | None ->
    raise (Error.E (Error.Protocol (Printf.sprintf "unknown circuit %S" name)))

(* Single consumer (the worker thread, or the one-shot CLI), so holding
   the mutex across the compute is fine — it only guards the table. *)
let prepare name =
  Mutex.lock cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cache_mutex)
    (fun () ->
      match Hashtbl.find_opt cache name with
      | Some p ->
        ignore (Atomic.fetch_and_add a_frontend_hits 1);
        Metrics.incr m_frontend_hits;
        p
      | None ->
        ignore (Atomic.fetch_and_add a_frontend_misses 1);
        Metrics.incr m_frontend_misses;
        let e = entry name in
        let d =
          Trace.with_span "parse"
            ~attrs:[ ("circuit", e.Registry.name) ]
            (fun () -> e.Registry.design ())
        in
        let p = Pipeline.prepare d in
        Hashtbl.replace cache name p;
        p)

let reset_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

(* --- job bodies -------------------------------------------------------- *)

(* Each returns the exact bytes the matching batch subcommand prints to
   stdout — the CLI calls these too, so daemon replies are
   bit-identical to batch output by construction. *)

let faultsim ~ctx ~circuit ~vectors ~lfsr ~seed =
  let e = entry circuit in
  let p = prepare e.Registry.name in
  let bits = Array.length p.Pipeline.netlist.Netlist.input_nets in
  let patterns =
    if lfsr && bits >= 2 && bits <= Prpg.max_lfsr_width then
      Array.map
        (fun code -> Pattern.of_code ~inputs:bits code)
        (Prpg.lfsr_sequence ~width:bits ~seed ~length:vectors)
    else Prpg.uniform_sequence (Prng.create seed) ~bits ~length:vectors
  in
  let r = Pipeline.fault_simulate ~ctx p patterns in
  Printf.sprintf "%s: %d collapsed faults, %d vectors -> %.2f%% coverage (%d detected)\n"
    e.Registry.name r.Fsim.total vectors (Fsim.coverage_percent r) r.Fsim.detected

let atpg ~ctx ~circuit ~generator ~seed =
  let generator =
    match generator with
    | "podem" -> Topoff.Use_podem
    | "sat" -> Topoff.Use_sat
    | other ->
      raise
        (Error.E (Error.Protocol (Printf.sprintf "unknown generator %S" other)))
  in
  let e = entry circuit in
  let p = prepare e.Registry.name in
  let scanned =
    if p.Pipeline.sequential then Scan.full_scan p.Pipeline.netlist
    else p.Pipeline.netlist
  in
  let faults = (Collapse.run scanned).Collapse.representatives in
  let r = Topoff.run ~generator ~ctx ~seed scanned ~faults ~seed_patterns:[||] in
  Printf.sprintf
    "%s%s: %d faults | random: %d vectors (%d detected) | atpg: %d calls, %d vectors (%d detected) | untestable %d, aborted %d | coverage %.2f%% of testable%s\n"
    e.Registry.name
    (if p.Pipeline.sequential then " (full-scan)" else "")
    r.Topoff.total_faults r.Topoff.random_patterns r.Topoff.random_detected
    r.Topoff.atpg_calls r.Topoff.atpg_patterns r.Topoff.atpg_detected
    r.Topoff.untestable r.Topoff.aborted r.Topoff.final_coverage_percent
    (if r.Topoff.degraded then
       Printf.sprintf " | DEGRADED (random fallback x%d, +%d detected)"
         r.Topoff.degraded_retries r.Topoff.degraded_detected
     else "")

let default_names = function
  | [] -> List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.paper_benchmarks
  | names -> names

let resolve names =
  List.map (fun n -> ((entry n).Registry.name, prepare n)) names

let table1 ~ctx ~circuits ~quick ~seed =
  let config =
    { (if quick then Config.quick else Config.default) with Config.seed }
  in
  let names = default_names circuits in
  let rows =
    List.map
      (fun (name, p) -> Experiments.operator_efficiency_avg ~config ~ctx p ~name)
      (resolve names)
  in
  Report.table1 rows ^ "\n"

let table2 ?equiv_progress ~ctx ~circuits ~quick ~seed ~repetitions () =
  let config =
    { (if quick then Config.quick else Config.default) with Config.seed }
  in
  let names = default_names circuits in
  let rows =
    List.map
      (fun (name, p) ->
        let full =
          Experiments.operator_efficiency_avg ~config ~operators:Operator.all
            ~ctx p ~name
        in
        let weights = Experiments.weights_of_table1 full in
        let equiv_ctx =
          { ctx with
            Ctx.progress =
              (match equiv_progress with
               | None -> None
               | Some f ->
                 Some (fun ~stage:_ ~done_ ~total -> f ~name ~done_ ~total));
          }
        in
        let equivalents =
          Pipeline.classify_equivalents ~screen:config.Config.equivalence_screen
            ~ctx:equiv_ctx ~seed p
        in
        Experiments.sampling_comparison_avg ~config ~repetitions ~ctx p ~name
          ~weights ~equivalents)
      (resolve names)
  in
  Report.table2_average rows ^ "\n"

let lint ~ctx ~circuits ~strict =
  let names = match circuits with [] -> Registry.names () | ns -> ns in
  let opts =
    { Analysis.Engine.waivers = []; strict; check_observability = true }
  in
  let budget = Ctx.budget ctx in
  let diags =
    List.concat_map
      (fun name ->
        (match Budget.check_deadline budget ~stage:Error.Pipeline with
         | Ok () -> ()
         | Error e -> raise (Error.E e));
        let e = entry name in
        Trace.with_span "lint" ~attrs:[ ("circuit", name) ] @@ fun () ->
        let d = e.Registry.design () in
        let dd = Analysis.Engine.lint_design opts ~circuit:name d in
        let nl =
          Trace.with_span "synth" (fun () -> Mutsamp_synth.Flow.synthesize d)
        in
        dd @ Analysis.Engine.lint_netlist opts ~circuit:name nl)
      names
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Analysis.Diag.to_string d);
      Buffer.add_char buf '\n')
    diags;
  let s = Analysis.Engine.summary diags in
  let get k = Option.value ~default:0 (List.assoc_opt k s) in
  Buffer.add_string buf
    (Printf.sprintf
       "%d circuit(s): %d finding(s) — %d error(s), %d warning(s), %d info(s), %d waived\n"
       (List.length names) (get "findings") (get "errors") (get "warnings")
       (get "infos") (get "waived"));
  ( Buffer.contents buf,
    Analysis.Engine.report_section diags,
    Analysis.Engine.error_count ~strict diags )
