(** Job bodies shared between the batch CLI and the service daemon.

    Each function returns the exact bytes the matching batch
    subcommand prints to stdout; the CLI prints the returned string
    and the daemon ships it as the reply's ["output"], so the two are
    bit-identical {e by construction}, never by convention. Typed
    failures (unknown circuit, bad engine, budget cuts escaping a
    stage) raise {!Mutsamp_robust.Error.E} for the caller to contain.

    Prepared pipelines are cached per circuit in a process-global
    table ({!prepare}): deterministic front-end artifacts (parse,
    elaborate, synth, collapse, mutant enumeration) are computed once
    per daemon lifetime and reused across requests, counted under
    [serve.frontend_hits] / [serve.frontend_misses]. *)

module Json = Mutsamp_obs.Json
module Ctx = Mutsamp_exec.Ctx
module Pipeline = Mutsamp_core.Pipeline

val prepare : string -> Pipeline.t
(** Cached {!Mutsamp_core.Pipeline.prepare} keyed by registry circuit
    name. Raises [Error.E (Protocol _)] for an unknown circuit. *)

val reset_cache : unit -> unit
val frontend_hits : unit -> int
val frontend_misses : unit -> int

val faultsim :
  ctx:Ctx.t -> circuit:string -> vectors:int -> lfsr:bool -> seed:int -> string

val atpg : ctx:Ctx.t -> circuit:string -> generator:string -> seed:int -> string
(** [generator] is ["podem"] or ["sat"]. *)

val table1 : ctx:Ctx.t -> circuits:string list -> quick:bool -> seed:int -> string
(** Empty [circuits] defaults to the paper's benchmark set. *)

val table2 :
  ?equiv_progress:(name:string -> done_:int -> total:int -> unit) ->
  ctx:Ctx.t ->
  circuits:string list ->
  quick:bool ->
  seed:int ->
  repetitions:int ->
  unit ->
  string

val lint :
  ctx:Ctx.t -> circuits:string list -> strict:bool -> string * Json.t * int
(** [(text output, "analysis" report section, error count under
    [strict])]. Empty [circuits] lints the whole registry. *)
