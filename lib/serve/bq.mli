(** Bounded multi-producer single-consumer job queue.

    The admission point of the service daemon: producers never block —
    {!try_push} either enqueues or reports the queue full, and the
    caller sheds the request with a typed [Overloaded] reply. The
    consumer blocks in {!pop} until work arrives or the queue is
    closed {e and} drained (jobs admitted before a drain began still
    come out, so every admitted request gets its reply). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] on a capacity below 1. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed — never blocks. *)

val pop : 'a t -> 'a option
(** Blocking dequeue; [None] once the queue is closed and empty. *)

val close : 'a t -> unit
(** Reject all future pushes and wake blocked consumers. Items already
    queued remain poppable. Idempotent. *)

val closed : 'a t -> bool
val depth : 'a t -> int
val capacity : 'a t -> int
