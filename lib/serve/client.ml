module Json = Mutsamp_obs.Json
module Error = Mutsamp_robust.Error
module Retry = Mutsamp_robust.Retry
module Budget = Mutsamp_robust.Budget

type t = { fd : Unix.file_descr; buf : Buffer.t }

let sockaddr_of = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp (addr, port) ->
    Unix.ADDR_INET (Unix.inet_addr_of_string addr, port)

let default_policy =
  Retry.policy ~max_attempts:5 ~base_delay_ms:50. ~max_delay_ms:1000. ()

(* Daemon startup and client launch race in scripts and CI, so connect
   is retried with exponential backoff; a budget deadline (when one is
   ambient-installed) cuts the retry loop with a typed error. *)
let connect ?(policy = default_policy) ?budget listen =
  let addr =
    try Ok (sockaddr_of listen)
    with Failure _ | Invalid_argument _ ->
      Error (Error.Io_error "bad listen address")
  in
  match addr with
  | Error e -> Error e
  | Ok addr -> (
    let o =
      Retry.run ~policy ?budget ~stage:Error.Serve (fun ~attempt:_ ~scale:_ ->
          let fd =
            Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
          in
          match Unix.connect fd addr with
          | () -> Ok fd
          | exception Unix.Unix_error (err, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error (Unix.error_message err))
    in
    match o.Retry.result with
    | Ok fd -> Ok { fd; buf = Buffer.create 256 }
    | Error (Retry.Budget_cut e) -> Error e
    | Error (Retry.Exhausted msg) ->
      Error
        (Error.Io_error
           (Printf.sprintf "connect: %s (after %d attempts)" msg
              o.Retry.attempts)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let recv_line t ~timeout_ms =
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear t.buf;
      Buffer.add_string t.buf (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
  in
  let deadline =
    match timeout_ms with
    | None -> None
    | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))
  in
  let rec loop () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
      let wait =
        match deadline with
        | None -> -1.
        | Some d ->
          let w = d -. Unix.gettimeofday () in
          if w <= 0. then 0. else w
      in
      if wait = 0. && deadline <> None then Error (Error.Timeout Error.Serve)
      else
        match Unix.select [ t.fd ] [] [] wait with
        | [], _, _ -> Error (Error.Timeout Error.Serve)
        | _ -> (
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error (Error.Io_error "connection closed by daemon")
          | n ->
            Buffer.add_subbytes t.buf chunk 0 n;
            loop ()
          | exception Unix.Unix_error (err, _, _) ->
            Error (Error.Io_error (Unix.error_message err)))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

(* Raw round-trip: ships [line] verbatim (the malformed-payload test
   path) and returns the daemon's raw reply line. *)
let request_line ?timeout_ms t line =
  match write_all t.fd (line ^ "\n") with
  | () -> recv_line t ~timeout_ms
  | exception Unix.Unix_error (err, _, _) ->
    Error (Error.Io_error (Unix.error_message err))

let request ?timeout_ms t json =
  match request_line ?timeout_ms t (Json.to_compact json) with
  | Error e -> Error e
  | Ok line -> Protocol.parse_reply line
