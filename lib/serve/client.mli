(** Client side of the service protocol.

    Used by the [mutsamp client] subcommand and the serve tests.
    {!connect} retries with the shared {!Mutsamp_robust.Retry}
    exponential-backoff combinator (daemon startup and client launch
    race in scripts), and every failure is a typed
    {!Mutsamp_robust.Error.t} whose [exit_code] the CLI propagates. *)

module Json = Mutsamp_obs.Json
module Error = Mutsamp_robust.Error
module Retry = Mutsamp_robust.Retry
module Budget = Mutsamp_robust.Budget

type t

val connect :
  ?policy:Retry.policy -> ?budget:Budget.t -> Server.listen -> (t, Error.t) result
(** Connect with retries (default policy: 5 attempts, 50 ms base
    delay, exponential with jitter). [Budget_cut] surfaces as the
    cutting error; exhaustion as [Io_error]. *)

val close : t -> unit

val request : ?timeout_ms:int -> t -> Json.t -> (Protocol.reply, Error.t) result
(** One request/reply round trip. [timeout_ms] bounds the wait for the
    reply line ([Error (Timeout Serve)] when exceeded); omitted =
    wait indefinitely. *)

val request_line : ?timeout_ms:int -> t -> string -> (string, Error.t) result
(** Raw round trip: ships [line] verbatim — the malformed-payload test
    path — and returns the daemon's reply line unparsed. *)
