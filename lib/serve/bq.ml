(* Bounded MPSC job queue with load-shedding admission.

   Connection handler threads [try_push]; the single worker thread
   [pop]s. The queue never blocks a producer: admission either succeeds
   immediately or fails immediately (the caller sheds the request with
   a typed [Overloaded] reply), so a traffic burst costs bounded memory
   and bounded client latency instead of an unbounded backlog. *)

type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bq.create: capacity must be >= 1";
  {
    capacity;
    items = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

(* Blocks until an item is available or the queue is closed AND empty:
   a closed queue still drains — jobs admitted before the drain began
   keep their promise of a reply. *)
let pop t =
  with_lock t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let closed t = with_lock t (fun () -> t.closed)
let depth t = with_lock t (fun () -> Queue.length t.items)
let capacity t = t.capacity
