module Json = Mutsamp_obs.Json
module Metrics = Mutsamp_obs.Metrics
module Runreport = Mutsamp_obs.Runreport
module Error = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Store = Mutsamp_store.Store
module Pool = Mutsamp_exec.Pool
module Ctx = Mutsamp_exec.Ctx

(* Per-request Metrics mirrors of the process-global serve counters
   (the worker resets Metrics before each job, so these register the
   cumulative values into each request's own snapshot). *)
let m_requests = Metrics.counter "serve.requests"
let m_ok = Metrics.counter "serve.ok"
let m_errors = Metrics.counter "serve.errors"
let m_rejected = Metrics.counter "serve.rejected"
let h_request_seconds = Metrics.histogram "serve.request_seconds"
let h_queue_wait_seconds = Metrics.histogram "serve.queue_wait_seconds"

type listen = Unix_path of string | Tcp of string * int

type config = {
  listen : listen;
  queue_depth : int;
  request_deadline_ms : int;  (* 0 = no per-request cap *)
  idle_timeout_ms : int;  (* 0 = connections never idle out *)
  drain_grace_ms : int;
  jobs : int;
  store : Store.t option;
  chaos_specs : string list;
  chaos_seed : int;
  log : (string -> unit) option;
}

let config ?(queue_depth = 16) ?(request_deadline_ms = 0) ?(idle_timeout_ms = 30_000)
    ?(drain_grace_ms = 2_000) ?(jobs = 1) ?store ?(chaos_specs = [])
    ?(chaos_seed = 2005) ?log listen =
  {
    listen;
    queue_depth;
    request_deadline_ms;
    idle_timeout_ms;
    drain_grace_ms;
    jobs;
    store;
    chaos_specs;
    chaos_seed;
    log;
  }

(* A queued job: the handler thread parks on the condvar; the worker
   fills [reply] and signals. Every admitted job is answered exactly
   once — the worker catches everything. *)
type job = {
  request : Protocol.request;
  enqueued_at : float;
  jmutex : Mutex.t;
  jcond : Condition.t;
  mutable reply : Json.t option;
}

type t = {
  cfg : config;
  sock : Unix.file_descr;
  cleanup : unit -> unit;
  queue : job Bq.t;
  pool : Pool.t option;
  started_at : float;
  (* Signal handlers may ONLY touch this atomic (no mutexes in handler
     context); the accept loop polls it and performs the actual drain
     in ordinary thread context. *)
  drain_flag : bool Atomic.t;
  draining : bool Atomic.t;
  inflight : Budget.t option Atomic.t;
  worker_done : bool Atomic.t;
  a_requests : int Atomic.t;
  a_ok : int Atomic.t;
  a_errors : int Atomic.t;
  a_rejected : int Atomic.t;
}

let log t fmt =
  Printf.ksprintf (fun m -> match t.cfg.log with None -> () | Some f -> f m) fmt

let draining t = Atomic.get t.draining || Atomic.get t.drain_flag
let initiate_drain t = Atomic.set t.drain_flag true

let counters t =
  [
    ("requests", Atomic.get t.a_requests);
    ("ok", Atomic.get t.a_ok);
    ("errors", Atomic.get t.a_errors);
    ("rejected", Atomic.get t.a_rejected);
    ("frontend_hits", Jobs.frontend_hits ());
    ("frontend_misses", Jobs.frontend_misses ());
  ]

(* --- socket setup ------------------------------------------------------ *)

let create cfg =
  match
    let sock, cleanup =
      match cfg.listen with
      | Unix_path path ->
        if Sys.file_exists path then (try Unix.unlink path with _ -> ());
        let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind s (Unix.ADDR_UNIX path);
        (s, fun () -> try Unix.unlink path with _ -> ())
      | Tcp (addr, port) ->
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
        (s, fun () -> ())
    in
    Unix.listen sock 64;
    (* Per-request metric snapshots ride in every reply report. Tracing
       stays off: span collectors are not resettable per request while
       a persistent pool holds per-domain state. *)
    Metrics.set_enabled true;
    let pool = if cfg.jobs = 1 then None else Some (Pool.create ~domains:cfg.jobs) in
    {
      cfg;
      sock;
      cleanup;
      queue = Bq.create ~capacity:cfg.queue_depth;
      pool;
      started_at = Unix.gettimeofday ();
      drain_flag = Atomic.make false;
      draining = Atomic.make false;
      inflight = Atomic.make None;
      worker_done = Atomic.make false;
      a_requests = Atomic.make 0;
      a_ok = Atomic.make 0;
      a_errors = Atomic.make 0;
      a_rejected = Atomic.make 0;
    }
  with
  | t -> Ok t
  | exception Unix.Unix_error (err, _, arg) ->
    Error (Error.Io_error (Printf.sprintf "%s: %s" arg (Unix.error_message err)))
  | exception Sys_error msg -> Error (Error.Io_error msg)

(* --- worker ------------------------------------------------------------ *)

let robust_json budget =
  match Degrade.to_json () with
  | Json.Obj fields -> Json.Obj (fields @ [ ("budget", Budget.to_json budget) ])
  | other -> other

(* Test-only op: occupy the worker for [ms] while polling the request
   budget, so overload-burst and drain tests are deterministic without
   heavy compute. Cancellation (deadline, drain-grace expiry) lands as
   a typed [Timeout serve] error. *)
let run_sleep ~budget ms =
  let step = 0.025 in
  let remaining = ref (float_of_int ms /. 1000.) in
  while !remaining > 0. do
    (match Budget.check_deadline budget ~stage:Error.Serve with
     | Ok () -> ()
     | Error e -> raise (Error.E e));
    let d = Float.min step !remaining in
    Thread.delay d;
    remaining := !remaining -. d
  done;
  Printf.sprintf "slept %d ms\n" ms

(* Returns (stdout-identical output, extra report sections). *)
let run_op ~ctx ~budget (op : Protocol.op) =
  match op with
  | Protocol.Health -> ("ok\n", [])
  | Protocol.Stats -> ("{}\n", [])
  | Protocol.Sleep { ms } -> (run_sleep ~budget ms, [])
  | Protocol.Faultsim { circuit; vectors; lfsr; seed } ->
    (Jobs.faultsim ~ctx ~circuit ~vectors ~lfsr ~seed, [])
  | Protocol.Atpg { circuit; generator; seed } ->
    (Jobs.atpg ~ctx ~circuit ~generator ~seed, [])
  | Protocol.Table1 { circuits; quick; seed } ->
    (Jobs.table1 ~ctx ~circuits ~quick ~seed, [])
  | Protocol.Table2 { circuits; quick; seed; repetitions } ->
    (Jobs.table2 ~ctx ~circuits ~quick ~seed ~repetitions (), [])
  | Protocol.Lint { circuits; strict } ->
    let output, analysis, _errors = Jobs.lint ~ctx ~circuits ~strict in
    (output, [ ("analysis", analysis) ])

let execute t (job : job) =
  let req = job.request in
  let op = Protocol.op_name req.op in
  let started = Unix.gettimeofday () in
  let queue_wait = started -. job.enqueued_at in
  (* Request-scoped observability: each reply's report sees only its
     own request's work. The single worker thread serialises jobs, so
     resetting the process-global state here is race-free. *)
  Metrics.reset ();
  Store.reset_counters ();
  Degrade.reset ();
  Chaos.init ~seed:t.cfg.chaos_seed ();
  Chaos.disarm_all ();
  let arm_failure = ref None in
  List.iter
    (fun spec ->
      match Chaos.parse_spec spec with
      | Ok () -> ()
      | Error msg ->
        if !arm_failure = None then
          arm_failure := Some (Error.Protocol ("bad chaos spec: " ^ msg)))
    (t.cfg.chaos_specs @ req.chaos);
  let deadline_ms =
    match
      List.filter (fun ms -> ms > 0)
        [ Option.value ~default:0 req.deadline_ms; t.cfg.request_deadline_ms ]
    with
    | [] -> None
    | caps -> Some (List.fold_left min max_int caps)
  in
  (* Always a fresh budget (never the shared [unlimited] constant), so
     the drain watchdog can [expire] it. *)
  let budget = Budget.create ?deadline_ms:deadline_ms () in
  Budget.set_ambient budget;
  Atomic.set t.inflight (Some budget);
  let ctx =
    Ctx.make ?pool:t.pool ~budget ?store:t.cfg.store ~engine:req.engine ()
  in
  let result =
    match !arm_failure with
    | Some e -> Error e
    | None -> (
      try Ok (run_op ~ctx ~budget req.op) with
      | Error.E e -> Error e
      | Chaos.Injected _ -> Error (Error.Injected Error.Serve)
      | e ->
        (* Request-level fault isolation: an arbitrary worker exception
           becomes a typed reply; the daemon carries on. *)
        Error (Error.Io_error (Printexc.to_string e)))
  in
  Chaos.disarm_all ();
  Atomic.set t.inflight None;
  Budget.set_ambient Budget.unlimited;
  let wall = Unix.gettimeofday () -. started in
  (match result with
   | Ok _ -> Atomic.incr t.a_ok
   | Error _ -> Atomic.incr t.a_errors);
  log t "%s id=%S %s (%.1f ms)" op req.id
    (match result with Ok _ -> "ok" | Error e -> Error.class_name e)
    (wall *. 1000.);
  match result with
  | Error e -> Protocol.error_reply ~id:req.id e
  | Ok (output, extra_sections) ->
    (* Mirror the cumulative serve counters into this request's metric
       snapshot (Metrics was reset above, so add = set). Frontend
       cache counters are bumped live by [Jobs.prepare] and so already
       reflect this request's activity. *)
    Metrics.add m_requests (Atomic.get t.a_requests);
    Metrics.add m_ok (Atomic.get t.a_ok);
    Metrics.add m_errors (Atomic.get t.a_errors);
    Metrics.add m_rejected (Atomic.get t.a_rejected);
    Metrics.observe h_request_seconds wall;
    Metrics.observe h_queue_wait_seconds queue_wait;
    let serve_section =
      Json.Obj
        ([
           ("id", Json.String req.id);
           ("op", Json.String op);
           ("queue_wait_ms", Json.Float (queue_wait *. 1000.));
           ("wall_ms", Json.Float (wall *. 1000.));
           ("queue_capacity", Json.Int (Bq.capacity t.queue));
           ("draining", Json.Bool (draining t));
         ]
        @ List.map (fun (name, v) -> (name, Json.Int v)) (counters t))
    in
    let report =
      Runreport.make ~command:op
        ~circuits:(Protocol.op_circuits req.op)
        ?seed:(Protocol.op_seed req.op)
        ~extra:
          ([
             ( "exec",
               Json.Obj
                 [
                   ("jobs_requested", Json.Int t.cfg.jobs);
                   ( "jobs",
                     Json.Int
                       (match t.pool with None -> 1 | Some p -> Pool.size p) );
                   ("engine", Json.String (Ctx.engine_to_string req.engine));
                 ] );
             ("robust", robust_json budget);
             ("store", Store.report_section t.cfg.store);
             ("serve", serve_section);
           ]
          @ extra_sections)
        ~spans:[]
        ~metrics:(Metrics.snapshot ())
        ()
    in
    Protocol.ok_reply ~id:req.id ~op ~report ~output ()

let worker_loop t =
  let rec loop () =
    match Bq.pop t.queue with
    | None -> ()
    | Some job ->
      let reply = execute t job in
      Mutex.lock job.jmutex;
      job.reply <- Some reply;
      Condition.signal job.jcond;
      Mutex.unlock job.jmutex;
      loop ()
  in
  loop ();
  Atomic.set t.worker_done true

(* --- connections ------------------------------------------------------- *)

let uptime t = Unix.gettimeofday () -. t.started_at

let health_reply t ~id =
  Protocol.ok_reply ~id ~op:"health" ~output:"ok\n"
    ~extra:
      [
        ("draining", Json.Bool (draining t));
        ("uptime_s", Json.Float (uptime t));
      ]
    ()

let stats_json t =
  Json.Obj
    ([
       ("uptime_s", Json.Float (uptime t));
       ("draining", Json.Bool (draining t));
       ("queue_depth", Json.Int (Bq.depth t.queue));
       ("queue_capacity", Json.Int (Bq.capacity t.queue));
       ("jobs", Json.Int (match t.pool with None -> 1 | Some p -> Pool.size p));
     ]
    @ List.map (fun (name, v) -> (name, Json.Int v)) (counters t)
    @ [
        ( "store",
          match t.cfg.store with
          | None -> Json.Null
          | Some s -> Store.stats_to_json ~dir:(Store.dir s) (Store.stats s) );
      ])

let stats_reply t ~id =
  let stats = stats_json t in
  Protocol.ok_reply ~id ~op:"stats"
    ~output:(Json.to_compact stats ^ "\n")
    ~extra:[ ("stats", stats) ]
    ()

let process t line =
  Atomic.incr t.a_requests;
  match Protocol.parse_request line with
  | Error e ->
    Atomic.incr t.a_errors;
    Protocol.error_reply ~id:"" e
  | Ok req -> (
    match req.op with
    (* Liveness probes are answered inline on the connection thread —
       a wedged or saturated worker must not make health checks hang. *)
    | Protocol.Health -> health_reply t ~id:req.id
    | Protocol.Stats -> stats_reply t ~id:req.id
    | _ ->
      if draining t then begin
        Atomic.incr t.a_rejected;
        Protocol.error_reply ~id:req.id (Error.Overloaded "daemon is draining")
      end
      else begin
        let job =
          {
            request = req;
            enqueued_at = Unix.gettimeofday ();
            jmutex = Mutex.create ();
            jcond = Condition.create ();
            reply = None;
          }
        in
        if not (Bq.try_push t.queue job) then begin
          Atomic.incr t.a_rejected;
          Protocol.error_reply ~id:req.id
            (Error.Overloaded
               (Printf.sprintf "queue full (depth %d)" (Bq.capacity t.queue)))
        end
        else begin
          Mutex.lock job.jmutex;
          while job.reply = None do
            Condition.wait job.jcond job.jmutex
          done;
          let reply = Option.get job.reply in
          Mutex.unlock job.jmutex;
          reply
        end
      end)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let handle_conn t fd =
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let idle_s =
    if t.cfg.idle_timeout_ms <= 0 then -1.
    else float_of_int t.cfg.idle_timeout_ms /. 1000.
  in
  let take_line () =
    let s = Buffer.contents acc in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear acc;
      Buffer.add_string acc (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
  in
  let read_more () =
    match Unix.select [ fd ] [] [] idle_s with
    | [], _, _ -> `Idle
    | _ -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> `Eof
      | n ->
        Buffer.add_subbytes acc chunk 0 n;
        `More
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `More
  in
  let rec loop () =
    match take_line () with
    | Some line ->
      if String.trim line <> "" then begin
        let reply = process t line in
        write_all fd (Json.to_compact reply ^ "\n")
      end;
      loop ()
    | None -> (
      match read_more () with
      | `More -> loop ()
      | `Eof -> ()
      | `Idle -> log t "connection idle for %d ms, closing" t.cfg.idle_timeout_ms)
  in
  (try loop () with
   | Unix.Unix_error _ | Sys_error _ -> ()
   | e ->
     (* Connection-level fault isolation mirror of the worker's. *)
     log t "connection handler error: %s" (Printexc.to_string e));
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- main loop and drain ----------------------------------------------- *)

let run t =
  let worker = Thread.create worker_loop t in
  (* Accept loop: short select ticks so a drain request (signal or
     initiate_drain) is observed within ~250 ms without any work in
     signal-handler context. *)
  let rec accept_loop () =
    if Atomic.get t.drain_flag then ()
    else begin
      (match Unix.select [ t.sock ] [] [] 0.25 with
       | [], _, _ -> ()
       | _ -> (
         match Unix.accept t.sock with
         | fd, _ -> ignore (Thread.create (handle_conn t) fd)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* Graceful drain: stop admitting (the closed queue sheds new pushes;
     [draining] short-circuits them earlier with a typed reply), let
     already-admitted jobs finish, and once the grace period lapses
     budget-cancel whatever is still running — the worker's next
     deadline poll lands a typed [Timeout] in that client's reply. *)
  let drain_started = Unix.gettimeofday () in
  Atomic.set t.draining true;
  Bq.close t.queue;
  log t "drain: started (queue depth %d)" (Bq.depth t.queue);
  let grace_s = float_of_int t.cfg.drain_grace_ms /. 1000. in
  let watchdog =
    Thread.create
      (fun () ->
        while not (Atomic.get t.worker_done) do
          Thread.delay 0.05;
          if Unix.gettimeofday () -. drain_started > grace_s then
            match Atomic.get t.inflight with
            | Some b -> Budget.expire b
            | None -> ()
        done)
      ()
  in
  Thread.join worker;
  Thread.join watchdog;
  (match t.pool with None -> () | Some p -> Pool.shutdown p);
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  t.cleanup ();
  log t "drain: complete (%.1f ms)"
    ((Unix.gettimeofday () -. drain_started) *. 1000.)
