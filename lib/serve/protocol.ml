module Json = Mutsamp_obs.Json
module Error = Mutsamp_robust.Error

type op =
  | Health
  | Stats
  | Sleep of { ms : int }
  | Faultsim of { circuit : string; vectors : int; lfsr : bool; seed : int }
  | Atpg of { circuit : string; generator : string; seed : int }
  | Table1 of { circuits : string list; quick : bool; seed : int }
  | Table2 of { circuits : string list; quick : bool; seed : int; repetitions : int }
  | Lint of { circuits : string list; strict : bool }

type request = {
  id : string;
  op : op;
  deadline_ms : int option;
  chaos : string list;
  engine : Mutsamp_exec.Ctx.engine;
}

let op_name = function
  | Health -> "health"
  | Stats -> "stats"
  | Sleep _ -> "sleep"
  | Faultsim _ -> "faultsim"
  | Atpg _ -> "atpg"
  | Table1 _ -> "table1"
  | Table2 _ -> "table2"
  | Lint _ -> "lint"

let op_circuits = function
  | Health | Stats | Sleep _ -> []
  | Faultsim { circuit; _ } | Atpg { circuit; _ } -> [ circuit ]
  | Table1 { circuits; _ } | Table2 { circuits; _ } | Lint { circuits; _ } ->
    circuits

let op_seed = function
  | Health | Stats | Sleep _ | Lint _ -> None
  | Faultsim { seed; _ } | Atpg { seed; _ } | Table1 { seed; _ }
  | Table2 { seed; _ } ->
    Some seed

(* --- request parsing --------------------------------------------------- *)

let proto fmt = Printf.ksprintf (fun m -> Error (Error.Protocol m)) fmt
let ( let* ) r f = Result.bind r f

let opt_field doc name ~default ~conv =
  match Json.member name doc with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match conv v with
    | Some x -> Ok x
    | None -> proto "field %S has the wrong type" name)

let string_conv = function Json.String s -> Some s | _ -> None
let int_conv = function Json.Int i -> Some i | _ -> None
let bool_conv = function Json.Bool b -> Some b | _ -> None

let string_list_conv = function
  | Json.List items ->
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | Json.String s :: rest -> all (s :: acc) rest
      | _ -> None
    in
    all [] items
  | _ -> None

let req_string doc name =
  match Json.member name doc with
  | Some (Json.String s) -> Ok s
  | Some _ -> proto "field %S must be a string" name
  | None -> proto "missing field %S" name

let parse_op doc =
  let* name = req_string doc "op" in
  match name with
  | "health" -> Ok Health
  | "stats" -> Ok Stats
  | "sleep" ->
    let* ms = opt_field doc "ms" ~default:100 ~conv:int_conv in
    if ms < 0 then proto "sleep: negative ms" else Ok (Sleep { ms })
  | "faultsim" ->
    let* circuit = req_string doc "circuit" in
    let* vectors = opt_field doc "vectors" ~default:256 ~conv:int_conv in
    let* lfsr = opt_field doc "lfsr" ~default:false ~conv:bool_conv in
    let* seed = opt_field doc "seed" ~default:2005 ~conv:int_conv in
    if vectors < 1 then proto "faultsim: vectors must be >= 1"
    else Ok (Faultsim { circuit; vectors; lfsr; seed })
  | "atpg" ->
    let* circuit = req_string doc "circuit" in
    let* generator =
      opt_field doc "generator" ~default:"podem" ~conv:string_conv
    in
    let* seed = opt_field doc "seed" ~default:2005 ~conv:int_conv in
    if generator <> "podem" && generator <> "sat" then
      proto "atpg: unknown generator %S (podem or sat)" generator
    else Ok (Atpg { circuit; generator; seed })
  | "table1" ->
    let* circuits = opt_field doc "circuits" ~default:[] ~conv:string_list_conv in
    let* quick = opt_field doc "quick" ~default:true ~conv:bool_conv in
    let* seed = opt_field doc "seed" ~default:2005 ~conv:int_conv in
    Ok (Table1 { circuits; quick; seed })
  | "table2" ->
    let* circuits = opt_field doc "circuits" ~default:[] ~conv:string_list_conv in
    let* quick = opt_field doc "quick" ~default:true ~conv:bool_conv in
    let* seed = opt_field doc "seed" ~default:2005 ~conv:int_conv in
    let* repetitions = opt_field doc "repetitions" ~default:5 ~conv:int_conv in
    if repetitions < 1 then proto "table2: repetitions must be >= 1"
    else Ok (Table2 { circuits; quick; seed; repetitions })
  | "lint" ->
    let* circuits = opt_field doc "circuits" ~default:[] ~conv:string_list_conv in
    let* strict = opt_field doc "strict" ~default:false ~conv:bool_conv in
    Ok (Lint { circuits; strict })
  | other -> proto "unknown op %S" other

let parse_request line =
  match Json.parse line with
  | Error msg -> proto "bad request JSON: %s" msg
  | Ok (Json.Obj _ as doc) ->
    let* id = opt_field doc "id" ~default:"" ~conv:string_conv in
    let* deadline_ms =
      opt_field doc "deadline_ms" ~default:None
        ~conv:(fun v -> Option.map Option.some (int_conv v))
    in
    let* chaos = opt_field doc "chaos" ~default:[] ~conv:string_list_conv in
    let* engine_s = opt_field doc "engine" ~default:"auto" ~conv:string_conv in
    let* engine =
      match Mutsamp_exec.Ctx.engine_of_string engine_s with
      | Some e -> Ok e
      | None ->
        proto "unknown engine %S (auto, packed, event or compiled)" engine_s
    in
    let* op = parse_op doc in
    Ok { id; op; deadline_ms; chaos; engine }
  | Ok _ -> proto "request must be a JSON object"

(* --- replies ----------------------------------------------------------- *)

let ok_reply ~id ~op ?(extra = []) ?report ~output () =
  Json.Obj
    ([
       ("status", Json.String "ok");
       ("id", Json.String id);
       ("op", Json.String op);
       ("output", Json.String output);
     ]
    @ extra
    @ match report with None -> [] | Some r -> [ ("report", r) ])

let error_reply ~id e =
  Json.Obj
    [
      ("status", Json.String "error");
      ("id", Json.String id);
      ("class", Json.String (Error.class_name e));
      ("message", Json.String (Error.to_string e));
      ("exit_code", Json.Int (Error.exit_code e));
    ]

type reply =
  | Ok_reply of { id : string; op : string; output : string; report : Json.t option }
  | Error_reply of { id : string; class_ : string; message : string; exit_code : int }

let parse_reply line =
  match Json.parse line with
  | Error msg -> proto "bad reply JSON: %s" msg
  | Ok doc -> (
    let str name ~default =
      match Json.member name doc with Some (Json.String s) -> s | _ -> default
    in
    match Json.member "status" doc with
    | Some (Json.String "ok") ->
      Ok
        (Ok_reply
           {
             id = str "id" ~default:"";
             op = str "op" ~default:"";
             output = str "output" ~default:"";
             report = Json.member "report" doc;
           })
    | Some (Json.String "error") ->
      Ok
        (Error_reply
           {
             id = str "id" ~default:"";
             class_ = str "class" ~default:"io";
             message = str "message" ~default:"";
             exit_code =
               (match Json.member "exit_code" doc with
                | Some (Json.Int n) -> n
                | _ -> 74);
           })
    | _ -> proto "reply has no status field")
