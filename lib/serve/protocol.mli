(** Wire protocol of the campaign service daemon.

    Newline-delimited JSON, one object per line in each direction (see
    docs/SERVICE.md for the grammar). A request names an [op] plus
    op-specific fields and four optional envelope fields: [id]
    (echoed verbatim in the reply), [deadline_ms] (per-request budget
    cap), [chaos] (injection specs armed for this request only —
    the fault-isolation test hook) and [engine] (fault-simulation
    backend for the request: ["auto"], ["packed"], ["event"] or
    ["compiled"]; default ["auto"]). Replies are either
    [{"status":"ok", ..., "output", "report"?}] — [output] is the
    byte-identical stdout text of the equivalent batch CLI command,
    [report] a schema-1 run report — or [{"status":"error", "class",
    "message", "exit_code"}] mapping {!Mutsamp_robust.Error.t} onto
    the wire. *)

module Json = Mutsamp_obs.Json
module Error = Mutsamp_robust.Error

type op =
  | Health  (** liveness probe; answered inline, never queued *)
  | Stats  (** queue/counter/store snapshot; answered inline *)
  | Sleep of { ms : int }
      (** test-only: hold the worker for [ms] under budget polling —
          makes overload and drain tests deterministic *)
  | Faultsim of { circuit : string; vectors : int; lfsr : bool; seed : int }
  | Atpg of { circuit : string; generator : string; seed : int }
      (** [generator] is the test-generation algorithm ([podem]/[sat]),
          distinct from the envelope's fault-simulation [engine] *)
  | Table1 of { circuits : string list; quick : bool; seed : int }
  | Table2 of { circuits : string list; quick : bool; seed : int; repetitions : int }
  | Lint of { circuits : string list; strict : bool }

type request = {
  id : string;  (** client correlation token, echoed in the reply *)
  op : op;
  deadline_ms : int option;
  chaos : string list;  (** {!Mutsamp_robust.Chaos.parse_spec} specs *)
  engine : Mutsamp_exec.Ctx.engine;
      (** fault-simulation backend installed in the request's context *)
}

val op_name : op -> string
val op_circuits : op -> string list
val op_seed : op -> int option

val parse_request : string -> (request, Error.t) result
(** Parse one request line. All failures — unparsable JSON, a
    non-object, missing/ill-typed fields, an unknown op — are
    [Error.Protocol], which the server turns into a typed error reply
    (exit code 79 client-side), never a dropped connection. *)

val ok_reply :
  id:string ->
  op:string ->
  ?extra:(string * Json.t) list ->
  ?report:Json.t ->
  output:string ->
  unit ->
  Json.t

val error_reply : id:string -> Error.t -> Json.t

type reply =
  | Ok_reply of { id : string; op : string; output : string; report : Json.t option }
  | Error_reply of { id : string; class_ : string; message : string; exit_code : int }

val parse_reply : string -> (reply, Error.t) result
(** Client-side reply parsing; failures are [Error.Protocol]. *)
