module Sim = Mutsamp_hdl.Sim
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Ctx = Mutsamp_exec.Ctx

(* Observability series (no-ops unless metrics collection is on). *)
let c_sequences = Metrics.counter "kill.sequences"

(* Per-operator kill events, e.g. [kill.killed.AOR]. A mutant counts
   once per sequence that kills it, so re-detections across sequences
   show up — the interesting ratio is against [kill.sequences]. *)
let record_kill (mutants : Mutant.t array) i =
  if Metrics.enabled () then
    Metrics.add_named ("kill.killed." ^ Operator.name mutants.(i).Mutant.op) 1

type t = {
  original : Mutsamp_hdl.Ast.design;
  mutants : Mutant.t array;
  original_sim : Sim.t;
  mutant_sims : Sim.t array;
}

let make original ms =
  {
    original;
    mutants = Array.of_list ms;
    original_sim = Sim.create original;
    mutant_sims = Array.of_list (List.map (fun (m : Mutant.t) -> Sim.create m.design) ms);
  }

let original t = t.original
let mutants t = Array.to_list t.mutants
let size t = Array.length t.mutants

let reference_outputs t seq =
  Sim.reset t.original_sim;
  List.map (Sim.step t.original_sim) seq

(* Compare a mutant against precomputed reference outputs, stopping at
   the first difference. *)
let killed_against t reference i seq =
  let sim = t.mutant_sims.(i) in
  Sim.reset sim;
  let rec loop seq reference =
    match seq, reference with
    | [], [] -> false
    | stim :: seq', ref_obs :: reference' ->
      let obs = Sim.step sim stim in
      if Sim.outputs_equal obs ref_obs then loop seq' reference' else true
    | _, _ -> invalid_arg "Kill: reference length mismatch"
  in
  loop seq reference

let killed_by t i seq =
  let reference = reference_outputs t seq in
  killed_against t reference i seq

(* First cycle where the mutant's outputs diverge from the reference,
   or None. *)
let detection_cycle t reference i seq =
  let sim = t.mutant_sims.(i) in
  Sim.reset sim;
  let rec loop cycle seq reference =
    match seq, reference with
    | [], [] -> None
    | stim :: seq', ref_obs :: reference' ->
      let obs = Sim.step sim stim in
      if Sim.outputs_equal obs ref_obs then loop (cycle + 1) seq' reference'
      else Some cycle
    | _, _ -> invalid_arg "Kill: reference length mismatch"
  in
  loop 0 seq reference

(* Entry-point chaos consultation; see {!Fsim}. A mutant skipped
   because the budget ran out is reported alive — never killed — so
   degraded mutation scores are conservative. *)
let chaos_entry () =
  match Chaos.fire Chaos.Kill_run with
  | Some Chaos.Timeout -> Some (Rerror.Timeout Rerror.Kill)
  | Some Chaos.Exception ->
    raise (Chaos.Injected "chaos: injected exception at kill")
  | Some (Chaos.Truncate _) | None -> None

let note_degraded = function
  | None -> ()
  | Some e ->
    Degrade.note ~stage:Rerror.Kill
      ~detail:"mutant execution cut short; remaining mutants reported alive" e

(* Sharding: the reference replay uses the shared [original_sim], so
   references are computed on the coordinating domain before any
   fan-out; shard bodies only touch [mutant_sims] at their own disjoint
   candidate indices. Candidate order is preserved — shards take
   contiguous slices and the merge concatenates in slice order — so
   parallel results are bit-identical to sequential ones. *)

let candidate_array t alive =
  match alive with
  | Some l -> Array.of_list l
  | None -> Array.init (Array.length t.mutants) (fun i -> i)

let kills_at t ?alive ?(ctx = Ctx.default) seq =
  let reference = reference_outputs t seq in
  let cand = candidate_array t alive in
  Metrics.incr c_sequences;
  let seq_len = List.length seq in
  let shard ~budget ~lo ~len =
    let stop = ref (chaos_entry ()) in
    let out =
      List.filter_map
        (fun i ->
          if !stop <> None then None
          else begin
            (match Budget.spend budget ~stage:Rerror.Kill Budget.Fsim_pairs seq_len with
             | Ok () -> ()
             | Error e -> stop := Some e);
            if !stop <> None then None
            else
              match detection_cycle t reference i seq with
              | Some c ->
                record_kill t.mutants i;
                Some (i, c)
              | None -> None
          end)
        (Array.to_list (Array.sub cand lo len))
    in
    note_degraded !stop;
    out
  in
  List.concat (Array.to_list (Ctx.map_shards ctx ~n:(Array.length cand) ~f:shard))

let kills t ?alive ?(ctx = Ctx.default) seq =
  let reference = reference_outputs t seq in
  let cand = candidate_array t alive in
  Metrics.incr c_sequences;
  let seq_len = List.length seq in
  let shard ~budget ~lo ~len =
    let stop = ref (chaos_entry ()) in
    let out =
      List.filter
        (fun i ->
          if !stop <> None then false
          else begin
            (match Budget.spend budget ~stage:Rerror.Kill Budget.Fsim_pairs seq_len with
             | Ok () -> ()
             | Error e -> stop := Some e);
            if !stop <> None then false
            else begin
              let hit = killed_against t reference i seq in
              if hit then record_kill t.mutants i;
              hit
            end
          end)
        (Array.to_list (Array.sub cand lo len))
    in
    note_degraded !stop;
    out
  in
  List.concat (Array.to_list (Ctx.map_shards ctx ~n:(Array.length cand) ~f:shard))

let killed_set t ?(ctx = Ctx.default) sequences =
  let n = Array.length t.mutants in
  if Ctx.jobs ctx <= 1 then begin
    (* Sequential path, byte-for-byte the historical behaviour:
       references are replayed lazily, only for sequences the budget
       actually reaches. *)
    let budget = Ctx.budget ctx in
    let killed = Array.make n false in
    let stop = ref (chaos_entry ()) in
    List.iter
      (fun seq ->
        if !stop = None then begin
          Metrics.incr c_sequences;
          let reference = reference_outputs t seq in
          let seq_len = List.length seq in
          let i = ref 0 in
          while !stop = None && !i < n do
            if not killed.(!i) then begin
              match Budget.spend budget ~stage:Rerror.Kill Budget.Fsim_pairs seq_len with
              | Error e -> stop := Some e
              | Ok () ->
                if killed_against t reference !i seq then begin
                  killed.(!i) <- true;
                  record_kill t.mutants !i
                end
            end;
            incr i
          done
        end)
      sequences;
    note_degraded !stop;
    killed
  end
  else begin
    (* Mutant-sharded: every shard walks the whole test set over its own
       slice of the population, with dropping inside the slice — the
       same per-mutant work order as the sequential path. *)
    let refs =
      List.map (fun seq -> (seq, List.length seq, reference_outputs t seq)) sequences
    in
    List.iter (fun _ -> Metrics.incr c_sequences) sequences;
    let shard ~budget ~lo ~len =
      let killed = Array.make len false in
      let stop = ref (chaos_entry ()) in
      List.iter
        (fun (seq, seq_len, reference) ->
          if !stop = None then begin
            let i = ref 0 in
            while !stop = None && !i < len do
              if not killed.(!i) then begin
                match Budget.spend budget ~stage:Rerror.Kill Budget.Fsim_pairs seq_len with
                | Error e -> stop := Some e
                | Ok () ->
                  if killed_against t reference (lo + !i) seq then begin
                    killed.(!i) <- true;
                    record_kill t.mutants (lo + !i)
                  end
              end;
              incr i
            done
          end)
        refs;
      note_degraded !stop;
      killed
    in
    Array.concat (Array.to_list (Ctx.map_shards ctx ~n ~f:shard))
  end
