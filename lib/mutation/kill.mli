(** Mutant execution: decide which mutants a test sequence kills.

    A mutant is killed by a sequence when, applying the sequence from
    reset to both the original design and the mutant, at least one
    output differs in at least one cycle. Simulators are compiled once
    per mutant and reused across candidate sequences. *)

type t
(** A runner holding the original design and a mutant population. *)

val make : Mutsamp_hdl.Ast.design -> Mutant.t list -> t
(** Compile the original and every mutant. *)

val original : t -> Mutsamp_hdl.Ast.design
val mutants : t -> Mutant.t list
val size : t -> int

val reference_outputs :
  t -> Mutsamp_hdl.Sim.stimulus list -> Mutsamp_hdl.Sim.observation list
(** Outputs of the original design on a sequence, from reset. *)

val killed_by : t -> int -> Mutsamp_hdl.Sim.stimulus list -> bool
(** [killed_by t i seq]: does [seq] kill mutant index [i]? Simulation
    stops at the first differing cycle. *)

val kills :
  t ->
  ?alive:int list ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_hdl.Sim.stimulus list ->
  int list
(** Indices of mutants killed by the sequence, restricted to [alive]
    (default: the whole population). *)

val kills_at :
  t ->
  ?alive:int list ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_hdl.Sim.stimulus list ->
  (int * int) list
(** Like {!kills} but with the 0-based cycle of the first differing
    output per killed mutant, so callers can truncate the sequence after
    its last useful cycle. *)

val killed_set :
  t ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_hdl.Sim.stimulus list list ->
  bool array
(** For a whole test set (list of sequences), the per-mutant killed
    flags, with fault dropping across sequences. *)

(** Execution: with a pool in [?ctx] (default {!Mutsamp_exec.Ctx.default},
    sequential) the mutant population is sharded into contiguous chunks
    evaluated on worker domains — reference outputs are replayed once on
    the coordinator, each mutant's compiled simulator belongs to exactly
    one shard, and results merge in population order, bit-identical to
    the sequential path.

    Budgets: each mutant·sequence check spends the sequence length in
    [Fsim_pairs] work units against the context budget (default:
    ambient; split evenly across shards and refunded after the join).
    Exhaustion stops the campaign early: unchecked mutants are reported
    alive (conservative mutation scores) and the degradation is recorded
    via {!Mutsamp_robust.Degrade}. The [Kill_run] chaos point is
    consulted on entry of every shard, inside the worker. *)
