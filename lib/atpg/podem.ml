module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Topo = Mutsamp_netlist.Topo
module Fault = Mutsamp_fault.Fault
module V = Fivevalued
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos

type result = Test of Mutsamp_fault.Pattern.t | Untestable | Aborted

type stats = { backtracks : int; implications : int }

(* Observability series (no-ops unless metrics collection is on). *)
let c_calls = Metrics.counter "podem.calls"
let c_backtracks = Metrics.counter "podem.backtracks"
let c_implications = Metrics.counter "podem.implications"
let c_tests = Metrics.counter "podem.tests_generated"
let c_untestable = Metrics.counter "podem.untestable"
let c_aborted = Metrics.counter "podem.aborted"
let h_backtracks = Metrics.histogram "podem.backtracks_per_call"

type ctx = {
  nl : Netlist.t;
  topo : Topo.t;
  fanouts : int list array;
  fault : Fault.t;
  site_net : int;  (* the net whose good value activates the fault *)
  values : V.t array;
  pi_value : V.t array;  (* per input position *)
  pi_position : (int, int) Hashtbl.t;  (* net -> input position *)
  scoap : Scoap.t;  (* branching heuristics *)
  guided : bool;  (* use SCOAP guidance (ablation knob) *)
  backtrack_limit : int;
  mutable backtracks : int;
  mutable implications : int;
}

let stuck_value (f : Fault.t) =
  match f.polarity with Fault.Stuck_at_0 -> V.Zero | Fault.Stuck_at_1 -> V.One

let fault_pin (f : Fault.t) =
  match f.site with
  | Fault.Branch { gate; pin } -> (gate, pin)
  | Fault.Stem _ -> (-1, -1)

let fault_stem (f : Fault.t) =
  match f.site with Fault.Stem n -> n | Fault.Branch _ -> -1

(* Value gate [i] actually sees on pin [k]: a branch fault overrides the
   faulty-machine projection with the stuck value once the good value is
   known. *)
let operand_value ctx i k =
  let g = ctx.nl.Netlist.gates.(i) in
  let v = ctx.values.(g.Gate.fanins.(k)) in
  let pin_gate, pin_idx = fault_pin ctx.fault in
  if i = pin_gate && k = pin_idx then
    match V.good v with
    | V.X -> V.X
    | gv -> V.combine gv (stuck_value ctx.fault)
  else v

(* Five-valued full-circuit simulation from the current PI assignment,
   with the fault inserted at its site. *)
let imply ctx =
  ctx.implications <- ctx.implications + 1;
  let stuck = stuck_value ctx.fault in
  let stem_net = fault_stem ctx.fault in
  let apply_stem i v =
    if i = stem_net then
      match V.good v with
      | V.X -> V.X
      | g -> V.combine g stuck
    else v
  in
  (* Sources. *)
  Array.iteri
    (fun pos net -> ctx.values.(net) <- apply_stem net ctx.pi_value.(pos))
    ctx.nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Const v -> ctx.values.(i) <- apply_stem i (V.of_bool v)
      | Gate.Pi _ | Gate.Dff _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or
      | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    ctx.nl.Netlist.gates;
  (* Combinational gates. *)
  Array.iter
    (fun i ->
      let g = ctx.nl.Netlist.gates.(i) in
      let a = operand_value ctx i 0 in
      let b = if Array.length g.Gate.fanins > 1 then operand_value ctx i 1 else V.X in
      ctx.values.(i) <- apply_stem i (V.eval g.Gate.kind a b))
    ctx.topo.Topo.order

let detected ctx =
  Array.exists (fun (_, net) -> V.is_error ctx.values.(net)) ctx.nl.Netlist.output_list

(* Gates whose output is X while some (effective) input carries an
   error. The effective view matters for the branch-faulted gate: the
   error lives on its overridden pin, not on any net. *)
let d_frontier ctx =
  let frontier = ref [] in
  Array.iter
    (fun i ->
      let g = ctx.nl.Netlist.gates.(i) in
      if ctx.values.(i) = V.X
         && Array.exists
              (fun k -> V.is_error (operand_value ctx i k))
              (Array.init (Array.length g.Gate.fanins) (fun k -> k))
      then frontier := i :: !frontier)
    ctx.topo.Topo.order;
  List.rev !frontier

(* Is there a path of X-valued nets from some frontier gate to a PO? *)
let x_path_exists ctx frontier =
  let po = Array.make (Array.length ctx.nl.Netlist.gates) false in
  Array.iter (fun (_, net) -> po.(net) <- true) ctx.nl.Netlist.output_list;
  let visited = Array.make (Array.length ctx.nl.Netlist.gates) false in
  let rec dfs i =
    if po.(i) then true
    else
      List.exists
        (fun sink ->
          (not visited.(sink))
          && (match ctx.nl.Netlist.gates.(sink).Gate.kind with
              | Gate.Dff _ -> false
              | _ ->
                visited.(sink) <- true;
                ctx.values.(sink) = V.X && dfs sink))
        ctx.fanouts.(i)
  in
  List.exists
    (fun g ->
      visited.(g) <- true;
      dfs g)
    frontier

(* Next objective: activate the fault, then drive an error through the
   D-frontier. None = dead end under the current assignment. *)
let objective ctx =
  let site_good = V.good ctx.values.(ctx.site_net) in
  let stuck = stuck_value ctx.fault in
  if site_good = V.X then
    (* Activation: drive the site to the complement of the stuck value. *)
    Some (ctx.site_net, stuck = V.Zero)
  else if site_good = stuck then None  (* activation impossible here *)
  else
    match d_frontier ctx with
    | [] -> None
    | frontier ->
      (* Advance the error through the most observable frontier gate
         (first gate when guidance is off). *)
      let g =
        if ctx.guided then
          List.fold_left
            (fun best cand ->
              if ctx.scoap.Scoap.co.(cand) < ctx.scoap.Scoap.co.(best) then cand else best)
            (List.hd frontier) frontier
        else List.hd frontier
      in
      let gate = ctx.nl.Netlist.gates.(g) in
      let x_input =
        Array.to_list gate.Gate.fanins
        |> List.find_opt (fun f -> ctx.values.(f) = V.X)
      in
      (match x_input with
       | None -> None
       | Some net ->
         let v =
           match V.controlling_value gate.Gate.kind with
           | Some c -> not c  (* non-controlling value lets the error pass *)
           | None -> false  (* XOR-ish: any known value propagates *)
         in
         Some (net, v))

(* Walk an objective back to an unassigned primary input. *)
let backtrace ctx net v =
  let rec walk net v =
    match Hashtbl.find_opt ctx.pi_position net with
    | Some pos -> (pos, v)
    | None ->
      let g = ctx.nl.Netlist.gates.(net) in
      (match g.Gate.kind with
       | Gate.Const _ | Gate.Pi _ | Gate.Dff _ ->
         (* Const can't be backtraced — caller guards; Pi handled above;
            Dff rejected at entry. *)
         invalid_arg "Podem.backtrace: hit a non-drivable net"
       | Gate.Buf | Gate.Not ->
         walk g.Gate.fanins.(0) (v <> V.inverts g.Gate.kind)
       | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
         (* Among the X inputs, follow the cheapest one to control
            toward the needed value (SCOAP guidance). *)
         let next_value = v <> V.inverts g.Gate.kind in
         let cost f =
           if next_value then ctx.scoap.Scoap.cc1.(f) else ctx.scoap.Scoap.cc0.(f)
         in
         let x_input =
           Array.fold_left
             (fun best f ->
               if ctx.values.(f) <> V.X then best
               else
                 match best with
                 | None -> Some f
                 | Some b ->
                   if ctx.guided && cost f < cost b then Some f else best)
             None g.Gate.fanins
         in
         (match x_input with
          | Some f -> walk f next_value
          | None ->
            (* Output X with all inputs known cannot happen after imply. *)
            invalid_arg "Podem.backtrace: X output with known inputs"))
  in
  walk net v

exception Abort
exception Stop of Rerror.t

let generate_core ~backtrack_limit ~guided ~budget nl fault =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Podem.generate: sequential netlist (apply Scan.full_scan first)";
  let pi_position = Hashtbl.create 16 in
  Array.iteri (fun pos net -> Hashtbl.replace pi_position net pos) nl.Netlist.input_nets;
  let site_net =
    match fault.Fault.site with
    | Fault.Stem n -> n
    | Fault.Branch { gate; pin } -> nl.Netlist.gates.(gate).Gate.fanins.(pin)
  in
  let ctx =
    {
      nl;
      topo = Topo.compute nl;
      fanouts = Netlist.fanouts nl;
      fault;
      site_net;
      values = Array.make (Array.length nl.Netlist.gates) V.X;
      pi_value = Array.make (Array.length nl.Netlist.input_nets) V.X;
      pi_position;
      scoap = Scoap.compute nl;
      guided;
      backtrack_limit;
      backtracks = 0;
      implications = 0;
    }
  in
  (* A fault whose site is a constant net can never be activated when
     the constant equals the stuck value, and is trivially activated
     otherwise; imply handles both, no special case needed. *)
  let rec search () =
    imply ctx;
    if detected ctx then true
    else begin
      match objective ctx with
      | None -> false
      | Some (net, v) ->
        (* If activation is pending but the D-frontier exists, make sure
           an X-path remains; prune otherwise. *)
        let site_good = V.good ctx.values.(ctx.site_net) in
        let viable =
          if site_good = V.X then true
          else
            match d_frontier ctx with
            | [] -> false
            | frontier -> x_path_exists ctx frontier
        in
        if not viable then false
        else begin
          match backtrace ctx net v with
          | exception Invalid_argument _ -> false
          | pos, value ->
            ctx.pi_value.(pos) <- V.of_bool value;
            if search () then true
            else begin
              ctx.backtracks <- ctx.backtracks + 1;
              (* One work unit per backtrack; also polls the deadline. *)
              (match Budget.spend budget ~stage:Rerror.Podem Budget.Podem_backtracks 1 with
               | Ok () -> ()
               | Error e -> raise (Stop e));
              if ctx.backtracks > ctx.backtrack_limit then raise Abort;
              ctx.pi_value.(pos) <- V.of_bool (not value);
              if search () then true
              else begin
                ctx.pi_value.(pos) <- V.X;
                (* Re-simulate so the parent frame sees a consistent
                   assignment. *)
                imply ctx;
                false
              end
            end
        end
    end
  in
  let outcome =
    match search () with
    | true ->
      Test
        (Mutsamp_fault.Pattern.init
           ~inputs:(Array.length ctx.pi_value)
           (fun pos -> ctx.pi_value.(pos) = V.One))
    | false -> Untestable
    | exception Abort -> Aborted
  in
  Metrics.incr c_calls;
  Metrics.add c_backtracks ctx.backtracks;
  Metrics.add c_implications ctx.implications;
  Metrics.observe h_backtracks (float_of_int ctx.backtracks);
  (match outcome with
   | Test _ -> Metrics.incr c_tests
   | Untestable -> Metrics.incr c_untestable
   | Aborted -> Metrics.incr c_aborted);
  (outcome, { backtracks = ctx.backtracks; implications = ctx.implications })

let find_test ?(backtrack_limit = 10_000) ?(guided = true) ?budget nl fault =
  let budget = match budget with Some b -> b | None -> Budget.ambient () in
  Chaos.contain Rerror.Podem (fun () ->
      (match Chaos.trip Chaos.Podem_search with
       | Ok () -> ()
       | Error e -> raise (Rerror.E e));
      match generate_core ~backtrack_limit ~guided ~budget nl fault with
      | exception Stop e -> raise (Rerror.E e)
      | Test p, stats -> (Some p, stats)
      | Untestable, stats -> (None, stats)
      | Aborted, _ ->
        (* Distinct from a redundancy proof: the search ran out of its
           own backtrack limit, so the fault's status is unknown. *)
        raise (Rerror.E (Rerror.Aborted Rerror.Podem)))
