(** Time-frame expansion.

    Unrolls a sequential netlist into [frames] copies of its
    combinational logic: frame 0 starts from the declared reset state,
    frame [f]'s flip-flop outputs are frame [f-1]'s D values. Primary
    inputs and outputs are replicated per frame with ["@f"] suffixes,
    so the result is purely combinational and every engine that works
    on combinational netlists (PODEM, the SAT miter) works on it.

    A single stuck-at fault is permanent hardware damage: when [fault]
    is given, it is injected into {e every} frame, which is what makes
    the expansion generate true functional test sequences. *)

val frame_input_name : string -> int -> string
(** [frame_input_name "en" 2] is ["en@2"]. *)

val frame_output_name : string -> int -> string

val expand :
  ?fault:Mutsamp_fault.Fault.t ->
  frames:int ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_netlist.Netlist.t
(** Raises [Invalid_argument] if [frames < 1]. The fault refers to
    nets/pins of the ORIGINAL netlist. Combinational netlists unroll
    too (frames are then independent copies). *)

val patterns_of_assignment :
  Mutsamp_netlist.Netlist.t ->
  frames:int ->
  (string * bool) list ->
  Mutsamp_fault.Pattern.t array
(** Decode a per-frame-input assignment (as produced by the SAT miter's
    counterexample on an expanded pair) into one pattern per frame of
    the original netlist. Missing inputs default to 0. *)
