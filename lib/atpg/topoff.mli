(** The industrial test-generation flow the paper's proposal plugs into:
    seed patterns (free validation data), a pseudo-random phase, then
    deterministic ATPG for the faults that remain.

    Running it with different seed sets quantifies how much ATPG effort
    the validation data saves — the claim of the paper's introduction
    (experiment E3 in DESIGN.md). *)

type generator = Use_podem | Use_sat
(** Deterministic test generator for phase 3 (PODEM or SAT). Distinct
    from the fault-simulation {!Mutsamp_exec.Ctx.engine} knob, which
    rides in on [ctx]. *)

type report = {
  total_faults : int;
  seed_detected : int;  (** detected by the seed patterns *)
  random_detected : int;  (** additionally detected by the random phase *)
  atpg_detected : int;  (** additionally detected by deterministic tests *)
  untestable : int;  (** proven redundant *)
  aborted : int;
      (** left undetected with unknown status: PODEM hit its backtrack
          limit, or the run degraded before the fault was resolved *)
  final_coverage_percent : float;  (** over testable faults *)
  seed_patterns : int;
  random_patterns : int;
  atpg_calls : int;
  atpg_patterns : int;  (** deterministic vectors added *)
  degraded : bool;
      (** deterministic ATPG was cut short by budget/deadline/injection
          and the random fallback ran *)
  degraded_retries : int;  (** fallback rounds actually taken *)
  degraded_detected : int;  (** additionally detected by the fallback *)
  test_set : Mutsamp_fault.Pattern.t array;
      (** the complete final pattern set, in order *)
}

val run :
  ?generator:generator ->
  ?random_budget:int ->
  ?random_stall:int ->
  ?seed:int ->
  ?backtrack_limit:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  ?degraded_retries:int ->
  Mutsamp_netlist.Netlist.t ->
  faults:Mutsamp_fault.Fault.t list ->
  seed_patterns:Mutsamp_fault.Pattern.t array ->
  report
(** [run nl ~faults ~seed_patterns] executes the three phases on a
    combinational netlist (apply {!Scan.full_scan} first for sequential
    designs).

    The random phase draws batches of 63 uniform patterns and stops
    after [random_stall] consecutive batches with no new detection or
    when [random_budget] patterns have been applied (defaults: 4 and
    4096). Every deterministic test is fault-simulated against the
    remaining faults so one ATPG call can cover several faults.
    [backtrack_limit] (default 2000) bounds each PODEM call; exhausted
    budgets are reported as [aborted]. XOR-dominated circuits are
    PODEM's worst case — prefer [Use_sat] there.

    [ctx] (default {!Mutsamp_exec.Ctx.default}) carries the execution
    pool, budget and static-filter switch. [ctx.static_filter] (default
    [true]) consults {!Prefilter} before each deterministic call: a
    statically-proved-untestable fault is counted as [untestable]
    without running the engine. The proofs are sound, so coverage and
    classifications are unchanged — only [atpg_calls] shrinks. With a
    pool, the fault-simulation passes shard across worker domains; the
    flow itself is sequential, so reports stay bit-identical to the
    sequential path.

    Degradation: when the context budget (default: ambient) is
    exhausted — SAT
    conflicts, PODEM backtracks or the wall-clock deadline — the
    deterministic phase stops and up to [degraded_retries] (default 3)
    random top-off rounds run instead, doubling the vector count each
    round. The run then {e returns} a report with [degraded = true] and
    partial coverage rather than failing; pending faults are counted as
    [aborted]. Under the default unlimited budget the flow and report
    are identical to the pre-budget behaviour. *)
