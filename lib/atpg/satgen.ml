module Netlist = Mutsamp_netlist.Netlist
module Fault = Mutsamp_fault.Fault
module Inject = Mutsamp_fault.Inject
module Fsim = Mutsamp_fault.Fsim
module Equiv = Mutsamp_sat.Equiv

type result = Test of Mutsamp_fault.Pattern.t | Untestable

let generate ?budget nl fault =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Satgen.generate: sequential netlist (apply Scan.full_scan first)";
  let faulty = Inject.apply nl fault in
  match Equiv.check ?budget nl faulty with
  | Error e -> Error e
  | Ok Equiv.Equivalent -> Ok Untestable
  | Ok (Equiv.Counterexample assignment) -> Ok (Test (Fsim.input_pattern nl assignment))

