module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Sweep = Mutsamp_netlist.Sweep
module Fault = Mutsamp_fault.Fault
module Collapse = Mutsamp_fault.Collapse
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Degrade = Mutsamp_robust.Degrade
module Ctx = Mutsamp_exec.Ctx

let tie_net (nl : Netlist.t) net value =
  let gates = Array.copy nl.gates in
  (match gates.(net).Gate.kind with
   | Gate.Pi _ ->
     (* Tying a primary input would change the interface; skip (the
        caller filters these out). *)
     assert false
   | _ -> gates.(net) <- { Gate.kind = Gate.Const value; fanins = [||] });
  { nl with Netlist.gates }

let round ~static_filter ~dominance ~budget ~first_error nl =
  let tied = ref 0 in
  let skipped = ref 0 in
  let current = ref nl in
  (* Static pre-filter: a sound untestability proof licenses a tie
     without touching the solver. Every tie turns a net into a
     constant, which strengthens later static proofs in the same
     round, so the filter is rebuilt after each tie. *)
  let filter = ref (if static_filter then Some (Prefilter.make nl) else None) in
  (* Testable-verdict reuse: a completed Test proof for a fault is a
     Test proof for its whole equivalence class, and (through gate
     dominance) for the output fault its effect coincides with — those
     nets need no solver call of their own. Verdicts hold only while
     the netlist is unchanged, so every tie clears the cache (and the
     collapse structure it is keyed by). *)
  let structure = ref None in
  let testable : (Fault.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let class_of f =
    let coll, _ =
      match !structure with
      | Some s -> s
      | None ->
        let s = (Collapse.run !current, Netlist.fanouts !current) in
        structure := Some s;
        s
    in
    match coll.Collapse.class_of f with
    | rep -> Some rep
    | exception Invalid_argument _ -> None
  in
  let known_testable fault =
    dominance
    && (match class_of fault with Some rep -> Hashtbl.mem testable rep | None -> false)
  in
  let mark_testable fault =
    if dominance then begin
      (match class_of fault with
       | Some rep -> Hashtbl.replace testable rep ()
       | None -> ());
      (* Gate dominance: when the proven fault sits on a single-fanout
         net, its test also detects the coinciding output fault of the
         one gate it feeds. *)
      let consumer =
        match fault.Fault.site with
        | Fault.Branch { gate; _ } -> Some gate
        | Fault.Stem n -> (
          match !structure with
          | Some (_, fanouts) -> (
            match fanouts.(n) with [ g ] -> Some g | _ -> None)
          | None -> None)
      in
      match consumer with
      | None -> ()
      | Some g ->
        let out_polarity =
          match (!current).Netlist.gates.(g).Gate.kind, fault.Fault.polarity with
          | Gate.And, Fault.Stuck_at_1 -> Some Fault.Stuck_at_1
          | Gate.Or, Fault.Stuck_at_0 -> Some Fault.Stuck_at_0
          | Gate.Nand, Fault.Stuck_at_1 -> Some Fault.Stuck_at_0
          | Gate.Nor, Fault.Stuck_at_0 -> Some Fault.Stuck_at_1
          | _ -> None
        in
        match out_polarity with
        | None -> ()
        | Some polarity -> (
          match class_of { Fault.site = Fault.Stem g; polarity } with
          | Some rep -> Hashtbl.replace testable rep ()
          | None -> ())
    end
  in
  let gate_count = Array.length nl.Netlist.gates in
  let net = ref 0 in
  while !net < gate_count do
    let i = !net in
    (* Net ids are stable within a round because tying only replaces a
       gate in place; sweeping happens between rounds. *)
    (match (!current).Netlist.gates.(i).Gate.kind with
     | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ()
     | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
     | Gate.Xor | Gate.Xnor ->
       let tie value =
         current := tie_net !current i value;
         if static_filter then filter := Some (Prefilter.make !current);
         structure := None;
         Hashtbl.reset testable;
         incr tied;
         true
       in
       let statically_untestable fault =
         match !filter with
         | Some pf -> Prefilter.is_untestable pf fault
         | None -> false
       in
       let try_tie polarity value =
         let fault = { Fault.site = Fault.Stem i; polarity } in
         if statically_untestable fault then tie value
         else if known_testable fault then false
         else
           match Satgen.generate ~budget !current fault with
           | Ok Satgen.Untestable ->
             (* Only a completed UNSAT proof licenses tying the net — an
                aborted solve says nothing about redundancy. *)
             tie value
           | Ok (Satgen.Test _) ->
             mark_testable fault;
             false
           | Error e ->
             if !first_error = None then first_error := Some e;
             incr skipped;
             false
       in
       (* stuck-at-0 untestable -> the net never influences an output
          when forced to 0 ... precisely: outputs are identical with the
          net forced to 0, so tie it to 0; dually for stuck-at-1. *)
       if not (try_tie Fault.Stuck_at_0 false) then
         ignore (try_tie Fault.Stuck_at_1 true));
    incr net
  done;
  (!current, !tied, !skipped)

let remove ?(max_rounds = 4) ?(ctx = Ctx.default) nl =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Redundancy.remove: sequential netlist (apply Scan.full_scan first)";
  let budget = Ctx.budget ctx in
  let static_filter = ctx.Ctx.static_filter in
  let dominance = ctx.Ctx.dominance in
  let total_skipped = ref 0 in
  let first_error = ref None in
  let rec loop nl total rounds =
    if rounds = 0 then (fst (Sweep.run nl), total)
    else begin
      let cleaned, tied, skipped = round ~static_filter ~dominance ~budget ~first_error nl in
      total_skipped := !total_skipped + skipped;
      let swept = fst (Sweep.run cleaned) in
      if tied = 0 then (swept, total) else loop swept (total + tied) (rounds - 1)
    end
  in
  let result = loop nl 0 max_rounds in
  (match !first_error with
   | Some e when !total_skipped > 0 ->
     Degrade.note ~stage:Rerror.Pipeline
       ~detail:
         (Printf.sprintf "redundancy removal left %d nets undecided" !total_skipped)
       e
   | _ -> ());
  result
