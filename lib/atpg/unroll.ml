module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Topo = Mutsamp_netlist.Topo
module Fault = Mutsamp_fault.Fault
module B = Netlist.Builder

let frame_input_name name f = Printf.sprintf "%s@%d" name f
let frame_output_name name f = Printf.sprintf "%s@%d" name f

let expand ?fault ~frames (nl : Netlist.t) =
  if frames < 1 then invalid_arg "Unroll.expand: frames < 1";
  let b = B.create (Printf.sprintf "%s_x%d" nl.name frames) in
  let topo = Topo.compute nl in
  let n = Array.length nl.gates in
  let stem_net = match fault with
    | Some { Fault.site = Fault.Stem net; _ } -> net
    | Some { Fault.site = Fault.Branch _; _ } | None -> -1
  in
  let pin_gate, pin_idx = match fault with
    | Some { Fault.site = Fault.Branch { gate; pin }; _ } -> (gate, pin)
    | Some { Fault.site = Fault.Stem _; _ } | None -> (-1, -1)
  in
  let stuck_const () =
    match fault with
    | Some { Fault.polarity = Fault.Stuck_at_0; _ } -> B.const b false
    | Some { Fault.polarity = Fault.Stuck_at_1; _ } -> B.const b true
    | None -> assert false
  in
  (* copy.(net) = builder net of the original net in the CURRENT frame;
     prev_d.(k) = builder net of dff k's D cone in the PREVIOUS frame. *)
  let copy = Array.make n (-1) in
  let prev_d = Array.make (Array.length nl.dff_nets) (-1) in
  for f = 0 to frames - 1 do
    (* A stem fault overrides the net's value for every reader. *)
    let faulted i v = if i = stem_net then stuck_const () else v in
    (* Sources. *)
    Array.iter
      (fun net ->
        let name =
          match nl.gates.(net).Gate.kind with
          | Gate.Pi name -> name
          | _ -> assert false
        in
        copy.(net) <- faulted net (B.input b (frame_input_name name f)))
      nl.input_nets;
    Array.iteri
      (fun i (g : Gate.t) ->
        match g.kind with
        | Gate.Const v -> copy.(i) <- faulted i (B.const b v)
        | Gate.Dff init ->
          let k =
            let rec find k = if nl.dff_nets.(k) = i then k else find (k + 1) in
            find 0
          in
          let state = if f = 0 then B.const b init else prev_d.(k) in
          copy.(i) <- faulted i state
        | Gate.Pi _ | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
        | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
      nl.gates;
    (* Combinational gates. *)
    Array.iter
      (fun i ->
        let g = nl.gates.(i) in
        let operand k =
          let v = copy.(g.Gate.fanins.(k)) in
          if i = pin_gate && k = pin_idx then stuck_const () else v
        in
        let value =
          match g.Gate.kind with
          | Gate.Buf -> B.buf b (operand 0)
          | Gate.Not -> B.not_ b (operand 0)
          | Gate.And -> B.and_ b (operand 0) (operand 1)
          | Gate.Or -> B.or_ b (operand 0) (operand 1)
          | Gate.Nand -> B.nand_ b (operand 0) (operand 1)
          | Gate.Nor -> B.nor_ b (operand 0) (operand 1)
          | Gate.Xor -> B.xor_ b (operand 0) (operand 1)
          | Gate.Xnor -> B.xnor_ b (operand 0) (operand 1)
          | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> assert false
        in
        copy.(i) <- faulted i value)
      topo.Topo.order;
    (* Outputs of this frame; next-frame state (a D-pin branch fault
       belongs to the capturing flip-flop and corrupts what the next
       frame sees). *)
    Array.iter
      (fun (name, net) -> B.output b (frame_output_name name f) copy.(net))
      nl.output_list;
    Array.iteri
      (fun k q ->
        let d = nl.gates.(q).Gate.fanins.(0) in
        let v = if q = pin_gate && pin_idx = 0 then stuck_const () else copy.(d) in
        prev_d.(k) <- v)
      nl.dff_nets
  done;
  B.finalize b

let patterns_of_assignment (nl : Netlist.t) ~frames assignment =
  Array.init frames (fun f ->
      Mutsamp_fault.Pattern.init ~inputs:(Array.length nl.input_nets) (fun k ->
          let name =
            match nl.gates.(nl.input_nets.(k)).Gate.kind with
            | Gate.Pi name -> name
            | _ -> assert false
          in
          match List.assoc_opt (frame_input_name name f) assignment with
          | Some v -> v
          | None -> false))
