(** SAT-based redundancy removal.

    A stem stuck-at fault that the exact ATPG proves untestable means
    the net can be tied to the stuck value without changing any primary
    output — the textbook link between untestability and logic
    redundancy. {!remove} ties every such net, sweeps the dead logic,
    and repeats (removing one redundancy can expose another) until a
    fixpoint or the round budget.

    The result computes the same function (the test suite checks the
    miter) with a fully-testable — or at least less redundant — stem
    fault set. *)

val remove :
  ?max_rounds:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_netlist.Netlist.t * int
(** Returns the cleaned netlist and the number of nets tied off.
    [max_rounds] defaults to 4. Raises [Invalid_argument] on
    sequential netlists ({!Scan.full_scan} first if that
    approximation suits the use).

    [ctx] (default {!Mutsamp_exec.Ctx.default}) carries the budget and
    the static-filter switch. [ctx.static_filter] (default [true])
    consults {!Prefilter} before each
    miter solve: a net whose fault is already statically proved
    untestable is tied without calling the solver. The proofs are sound,
    so the final netlist and tie count are identical either way — only
    the number of SAT invocations drops (watch [sat.solves] against
    [analysis.static_untestable]).

    Soundness under budgets: a net is tied only on a {e completed}
    UNSAT proof. When the context budget (default: ambient) cuts a
    solve short
    the net is skipped — conservatively kept — and the degradation is
    recorded; the cleaned netlist is always equivalent to the input. *)
