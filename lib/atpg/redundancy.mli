(** SAT-based redundancy removal.

    A stem stuck-at fault that the exact ATPG proves untestable means
    the net can be tied to the stuck value without changing any primary
    output — the textbook link between untestability and logic
    redundancy. {!remove} ties every such net, sweeps the dead logic,
    and repeats (removing one redundancy can expose another) until a
    fixpoint or the round budget.

    The result computes the same function (the test suite checks the
    miter) with a fully-testable — or at least less redundant — stem
    fault set. *)

val remove :
  ?max_rounds:int ->
  ?budget:Mutsamp_robust.Budget.t ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_netlist.Netlist.t * int
(** Returns the cleaned netlist and the number of nets tied off.
    [max_rounds] defaults to 4. Raises [Invalid_argument] on
    sequential netlists ({!Scan.full_scan} first if that
    approximation suits the use).

    Soundness under budgets: a net is tied only on a {e completed}
    UNSAT proof. When [budget] (default: ambient) cuts a solve short
    the net is skipped — conservatively kept — and the degradation is
    recorded; the cleaned netlist is always equivalent to the input. *)
