module Netlist = Mutsamp_netlist.Netlist
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Equiv = Mutsamp_sat.Equiv
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade

type result =
  | Test of Mutsamp_fault.Pattern.t array
  | No_test_within of int

let generate ?(max_frames = 8) ?budget nl fault =
  let budget = match budget with Some b -> b | None -> Budget.ambient () in
  Chaos.contain Rerror.Seqatpg (fun () ->
      let check = function Ok () -> () | Error e -> raise (Rerror.E e) in
      let rec try_frames k =
        if k > max_frames then No_test_within max_frames
        else begin
          check (Chaos.trip Chaos.Seqatpg_frame);
          check (Budget.check_deadline budget ~stage:Rerror.Seqatpg);
          let good = Unroll.expand ~frames:k nl in
          let faulty = Unroll.expand ~fault ~frames:k nl in
          match Equiv.check ~budget good faulty with
          | Error e -> raise (Rerror.E e)
          | Ok Equiv.Equivalent -> try_frames (k + 1)
          | Ok (Equiv.Counterexample assignment) ->
            Test (Unroll.patterns_of_assignment nl ~frames:k assignment)
        end
      in
      try_frames 1)

let generate_set ?max_frames ?budget nl ~faults =
  let budget = match budget with Some b -> b | None -> Budget.ambient () in
  let sequences = ref [] in
  let rec work remaining undetected =
    match remaining with
    | [] -> undetected
    | target :: rest ->
      (match generate ?max_frames ~budget nl target with
       | Error e ->
         (* Budget/deadline/injection: stop expanding and return every
            unresolved fault as undetected — a partial but valid set. *)
         Degrade.note ~stage:Rerror.Seqatpg
           ~detail:"sequential ATPG cut short; remaining faults left undetected" e;
         List.rev_append remaining undetected
       | Ok (No_test_within _) -> work rest (target :: undetected)
       | Ok (Test seq) ->
         sequences := seq :: !sequences;
         (* The new sequence may detect other remaining faults too. *)
         let r = Fsim.run nl ~faults:(target :: rest) ~sequence:seq in
         let survivors =
           Array.to_list r.Fsim.detections
           |> List.filter_map (fun (d : Fsim.detection) ->
                  match d.Fsim.detected_at with
                  | None -> Some d.Fsim.fault
                  | Some _ -> None)
         in
         work
           (List.filter (fun f -> List.exists (Fault.equal f) survivors) rest)
           undetected)
  in
  let undetected = work faults [] in
  (List.rev !sequences, List.rev undetected)
