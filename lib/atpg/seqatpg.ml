module Netlist = Mutsamp_netlist.Netlist
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Equiv = Mutsamp_sat.Equiv

type result =
  | Test of Mutsamp_fault.Pattern.t array
  | No_test_within of int

let generate ?(max_frames = 8) nl fault =
  let rec try_frames k =
    if k > max_frames then No_test_within max_frames
    else begin
      let good = Unroll.expand ~frames:k nl in
      let faulty = Unroll.expand ~fault ~frames:k nl in
      match Equiv.check good faulty with
      | Equiv.Equivalent -> try_frames (k + 1)
      | Equiv.Counterexample assignment ->
        Test (Unroll.patterns_of_assignment nl ~frames:k assignment)
    end
  in
  try_frames 1

let generate_set ?max_frames nl ~faults =
  let sequences = ref [] in
  let rec work remaining undetected =
    match remaining with
    | [] -> undetected
    | target :: rest ->
      (match generate ?max_frames nl target with
       | No_test_within _ -> work rest (target :: undetected)
       | Test seq ->
         sequences := seq :: !sequences;
         (* The new sequence may detect other remaining faults too. *)
         let r = Fsim.run_sequential nl ~faults:(target :: rest) ~sequence:seq in
         let survivors =
           Array.to_list r.Fsim.detections
           |> List.filter_map (fun (d : Fsim.detection) ->
                  match d.Fsim.detected_at with
                  | None -> Some d.Fsim.fault
                  | Some _ -> None)
         in
         work
           (List.filter (fun f -> List.exists (Fault.equal f) survivors) rest)
           undetected)
  in
  let undetected = work faults [] in
  (List.rev !sequences, List.rev undetected)
