module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Collapse = Mutsamp_fault.Collapse
module Prng = Mutsamp_util.Prng
module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Degrade = Mutsamp_robust.Degrade
module Retry = Mutsamp_robust.Retry
module Ctx = Mutsamp_exec.Ctx

type generator = Use_podem | Use_sat

(* Observability series (no-ops unless metrics collection is on). *)
let c_runs = Metrics.counter "topoff.runs"
let c_atpg_calls = Metrics.counter "topoff.atpg_calls"
let c_atpg_patterns = Metrics.counter "topoff.atpg_patterns"
let c_random_patterns = Metrics.counter "topoff.random_patterns"
let c_untestable = Metrics.counter "topoff.untestable"
let c_aborted = Metrics.counter "topoff.aborted"
let c_degraded = Metrics.counter "topoff.degraded_runs"

type report = {
  total_faults : int;
  seed_detected : int;
  random_detected : int;
  atpg_detected : int;
  untestable : int;
  aborted : int;
  final_coverage_percent : float;
  seed_patterns : int;
  random_patterns : int;
  atpg_calls : int;
  atpg_patterns : int;
  degraded : bool;
  degraded_retries : int;
  degraded_detected : int;
  test_set : Mutsamp_fault.Pattern.t array;
}

(* Which of [faults] does [patterns] detect? Returns the undetected
   remainder. *)
let surviving ~ctx nl faults patterns =
  if patterns = [||] then faults
  else begin
    let r = Fsim.run ~ctx nl ~faults ~sequence:patterns in
    Array.to_list r.Fsim.detections
    |> List.filter_map (fun (d : Fsim.detection) ->
           match d.Fsim.detected_at with None -> Some d.Fsim.fault | Some _ -> None)
  end

let run ?(generator = Use_podem) ?(random_budget = 4096) ?(random_stall = 4) ?(seed = 1)
    ?(backtrack_limit = 2000) ?(ctx = Ctx.default) ?(degraded_retries = 3)
    nl ~faults ~seed_patterns =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Topoff.run: sequential netlist (apply Scan.full_scan first)";
  let budget = Ctx.budget ctx in
  let static_filter = ctx.Ctx.static_filter in
  let expired () =
    match Budget.check_deadline budget ~stage:Rerror.Topoff with
    | Ok () -> false
    | Error _ -> true
  in
  Trace.with_span "atpg"
    ~attrs:[ ("generator", match generator with Use_podem -> "podem" | Use_sat -> "sat") ]
  @@ fun () ->
  Metrics.incr c_runs;
  let total_faults = List.length faults in
  let test_set = ref (Array.to_list seed_patterns) in
  (* Phase 1: seed patterns. *)
  let after_seed = surviving ~ctx nl faults seed_patterns in
  let seed_detected = total_faults - List.length after_seed in
  (* Phase 2: pseudo-random batches with stall detection. *)
  let prng = Prng.create seed in
  let bits = Array.length nl.Netlist.input_nets in
  let remaining = ref after_seed in
  let random_patterns = ref 0 in
  let stall = ref 0 in
  while
    (not (expired ()))
    && !stall < random_stall && !random_patterns < random_budget && !remaining <> []
  do
    let batch = Prpg.uniform_sequence prng ~bits ~length:Bitsim.word_bits in
    let before = List.length !remaining in
    let next = surviving ~ctx nl !remaining batch in
    random_patterns := !random_patterns + Bitsim.word_bits;
    if List.length next = before then incr stall
    else begin
      stall := 0;
      test_set := !test_set @ Array.to_list batch
    end;
    if List.length next <> before then remaining := next
  done;
  let random_detected = List.length after_seed - List.length !remaining in
  (* Phase 3: deterministic ATPG with cross fault dropping. *)
  let atpg_calls = ref 0 in
  let atpg_patterns = ref 0 in
  let untestable = ref 0 in
  let aborted = ref 0 in
  let atpg_detected = ref 0 in
  let degrade_error = ref None in
  (* Static pre-filter: faults with a standing untestability proof
     never reach the deterministic engine. The netlist is fixed for
     the whole run, so one analysis pass serves every fault. *)
  let filter = if static_filter then Some (Prefilter.make nl) else None in
  let rec phase3 pending =
    match pending with
    | [] -> []
    | target :: rest -> (
      match Budget.check_deadline budget ~stage:Rerror.Topoff with
      | Error e ->
        degrade_error := Some e;
        pending
      | Ok () ->
        if (match filter with
            | Some pf -> Prefilter.is_untestable pf target
            | None -> false)
        then begin
          incr untestable;
          phase3 rest
        end
        else begin
        incr atpg_calls;
        let outcome =
          match generator with
          | Use_podem ->
            (match Podem.find_test ~backtrack_limit ~budget nl target with
             | Ok (Some p, _) -> `Test p
             | Ok (None, _) -> `Untestable
             | Error (Rerror.Aborted _) -> `Aborted
             | Error e -> `Stop e)
          | Use_sat ->
            (match Satgen.generate ~budget nl target with
             | Ok (Satgen.Test p) -> `Test p
             | Ok Satgen.Untestable -> `Untestable
             | Error e -> `Stop e)
        in
        (match outcome with
         | `Test p ->
           incr atpg_patterns;
           test_set := !test_set @ [ p ];
           (* Drop every remaining fault this vector also detects. *)
           let next = surviving ~ctx nl (target :: rest) [| p |] in
           atpg_detected := !atpg_detected + (List.length rest + 1 - List.length next);
           phase3 next
         | `Untestable ->
           incr untestable;
           phase3 rest
         | `Aborted ->
           (* Stage-local backtrack limit: this fault alone is given up;
              deterministic generation continues for the rest. *)
           incr aborted;
           phase3 rest
         | `Stop e ->
           (* Budget/timeout/injection: the whole deterministic phase is
              cut short and the caller-visible degradation path runs. *)
           degrade_error := Some e;
           pending)
        end)
  in
  (* Dominance ordering: target the dominating classes first and defer
     the dominated ones to the tail of the same pass. Any test set
     detecting a dominating input fault also detects its dominated
     output fault, so by the time the tail is reached the deferred
     faults have almost always been cross-dropped — fewer dedicated
     SAT/PODEM calls for the same targeted-or-dropped guarantee. Every
     fault of [remaining] is still in the list (reorder, not filter),
     so coverage accounting keeps its denominator. *)
  let ordered =
    if not ctx.Ctx.dominance then !remaining
    else begin
      let coll = Collapse.run nl in
      let dom = Collapse.dominance nl coll in
      let deferred = Hashtbl.create 64 in
      List.iter (fun f -> Hashtbl.replace deferred f ()) dom.Collapse.deferred;
      let is_deferred f =
        match coll.Collapse.class_of f with
        | rep -> Hashtbl.mem deferred rep
        | exception Invalid_argument _ -> false
      in
      let first, last = List.partition (fun f -> not (is_deferred f)) !remaining in
      first @ last
    end
  in
  let leftover = ref (phase3 ordered) in
  (* Graceful degradation: when deterministic ATPG was cut short, fall
     back to bounded random top-off rounds with exponential
     vector-count backoff (64, 128, 256, … patterns per retry), driven
     by the shared {!Retry} combinator: the attempt [scale] is the
     number of word-wide batches simulated per round. Random
     simulation costs no SAT/PODEM budget, so partial coverage keeps
     improving even after the solver quota is gone; only the deadline
     can stop the retries early ([Budget_cut]). *)
  let degraded_detected = ref 0 in
  let retries_used = ref 0 in
  (match !degrade_error with
   | None -> ()
   | Some e ->
     Metrics.incr c_degraded;
     Degrade.note ~stage:Rerror.Topoff
       ~detail:"deterministic ATPG cut short; random top-off fallback" e;
     let o =
       Retry.run
         ~policy:(Retry.policy ~max_attempts:degraded_retries ())
         ~budget ~stage:Rerror.Topoff
         (fun ~attempt:_ ~scale ->
           for _batch = 1 to scale do
             if !leftover <> [] then begin
               let batch = Prpg.uniform_sequence prng ~bits ~length:Bitsim.word_bits in
               random_patterns := !random_patterns + Bitsim.word_bits;
               let before = List.length !leftover in
               let next = surviving ~ctx nl !leftover batch in
               if List.length next < before then begin
                 test_set := !test_set @ Array.to_list batch;
                 degraded_detected := !degraded_detected + (before - List.length next);
                 leftover := next
               end
             end
           done;
           if !leftover = [] then Ok () else Error "undetected faults remain")
     in
     retries_used := o.attempts);
  (* Whatever survived the fallback is undetected with unknown status —
     counted as aborted, never as untestable. *)
  aborted := !aborted + List.length !leftover;
  Metrics.add c_atpg_calls !atpg_calls;
  Metrics.add c_atpg_patterns !atpg_patterns;
  Metrics.add c_random_patterns !random_patterns;
  Metrics.add c_untestable !untestable;
  Metrics.add c_aborted !aborted;
  Trace.add_attr "faults" (string_of_int total_faults);
  Trace.add_attr "atpg_calls" (string_of_int !atpg_calls);
  let testable = total_faults - !untestable in
  let detected =
    seed_detected + random_detected + !atpg_detected + !degraded_detected
  in
  {
    total_faults;
    seed_detected;
    random_detected;
    atpg_detected = !atpg_detected;
    untestable = !untestable;
    aborted = !aborted;
    final_coverage_percent =
      (if testable = 0 then 100. else 100. *. float_of_int detected /. float_of_int testable);
    seed_patterns = Array.length seed_patterns;
    random_patterns = !random_patterns;
    atpg_calls = !atpg_calls;
    atpg_patterns = !atpg_patterns;
    degraded = !degrade_error <> None;
    degraded_retries = !retries_used;
    degraded_detected = !degraded_detected;
    test_set = Array.of_list !test_set;
  }
