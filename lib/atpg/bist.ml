module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Fault = Mutsamp_fault.Fault
module Packvec = Mutsamp_util.Packvec

type signature = int

let misr_step ~width ~taps signature response =
  let fb =
    List.fold_left (fun acc tap -> acc lxor ((signature lsr (tap - 1)) land 1)) 0 taps
  in
  (((signature lsl 1) lor fb) lxor response) land ((1 lsl width) - 1)

let misr_signature ~width ~taps responses =
  List.fold_left (fun s r -> misr_step ~width ~taps s r) 0 responses

(* A response wider than one word is absorbed word by word (one MISR
   clock each); responses of ≤ 63 outputs behave exactly like the
   plain int fold. *)
let misr_absorb ~width ~taps signature (response : Packvec.t) =
  Array.fold_left (fun s w -> misr_step ~width ~taps s w) signature response.Packvec.words

let misr_fold ~width ~taps responses =
  List.fold_left (fun s r -> misr_absorb ~width ~taps s r) 0 responses

type report = {
  patterns : int;
  good_signature : signature;
  signature_detected : int;
  comparison_detected : int;
  aliased : int;
  total_faults : int;
}

let run ?(misr_width = 16) nl ~faults ~seed ~length =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Bist.run: sequential netlist (apply Scan.full_scan first)";
  let bits = Array.length nl.Netlist.input_nets in
  let n_out = Array.length nl.Netlist.output_list in
  let patterns =
    if bits >= 2 && bits <= Prpg.max_lfsr_width then
      Array.map
        (Packvec.of_code ~width:bits)
        (Prpg.lfsr_sequence ~width:bits ~seed ~length)
    else Prpg.uniform_sequence (Mutsamp_util.Prng.create seed) ~bits ~length
  in
  let taps = Prpg.lfsr_taps misr_width in
  let sim = Bitsim.create ~lanes:1 nl in
  let words_of p =
    Array.init bits (fun k -> if Packvec.get p k then Bitsim.all_ones else 0)
  in
  let response outs = Packvec.init n_out (fun k -> outs.(k) land 1 = 1) in
  let good_responses =
    Array.to_list (Array.map (fun p -> response (Bitsim.step sim (words_of p))) patterns)
  in
  let good_signature = misr_fold ~width:misr_width ~taps good_responses in
  let signature_detected = ref 0 in
  let comparison_detected = ref 0 in
  let aliased = ref 0 in
  List.iter
    (fun f ->
      let inj = Fault.injection f and stuck = Fault.stuck_word f in
      let faulty_responses =
        Array.to_list
          (Array.map
             (fun p -> response (Bitsim.step_injected sim (words_of p) ~inj ~stuck))
             patterns)
      in
      let differs = not (List.equal Packvec.equal faulty_responses good_responses) in
      let sig_differs =
        misr_fold ~width:misr_width ~taps faulty_responses <> good_signature
      in
      if differs then incr comparison_detected;
      if sig_differs then incr signature_detected;
      if differs && not sig_differs then incr aliased)
    faults;
  {
    patterns = length;
    good_signature;
    signature_detected = !signature_detected;
    comparison_detected = !comparison_detected;
    aliased = !aliased;
    total_faults = List.length faults;
  }
