(** Sequential ATPG by time-frame expansion.

    For a fault in a sequential netlist, search for the shortest
    functional test sequence (applied from reset) that distinguishes
    the good machine from the faulty one: unroll both to [k] frames
    ({!Unroll.expand}, fault in every frame), miter them with the SAT
    engine, and grow [k] until a counterexample appears or the frame
    budget runs out.

    Unlike the full-scan flow ({!Scan}), the resulting sequences need
    no test hardware — they are the kind of test the paper applies to
    the ITC'99 circuits. *)

type result =
  | Test of Mutsamp_fault.Pattern.t array
      (** one input pattern per cycle, applied from reset *)
  | No_test_within of int  (** no detecting sequence of ≤ that many frames *)

val generate :
  ?max_frames:int ->
  ?budget:Mutsamp_robust.Budget.t ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_fault.Fault.t ->
  (result, Mutsamp_robust.Error.t) Stdlib.result
(** [max_frames] defaults to 8. The returned sequence is the shortest
    (fewest frames) the expansion admits. Works on combinational
    netlists too (the answer then has 1 frame). Each frame expansion
    checks the deadline and the miter solves spend [Sat_conflicts];
    [budget] defaults to the ambient budget. *)

val generate_set :
  ?max_frames:int ->
  ?budget:Mutsamp_robust.Budget.t ->
  Mutsamp_netlist.Netlist.t ->
  faults:Mutsamp_fault.Fault.t list ->
  Mutsamp_fault.Pattern.t array list * Mutsamp_fault.Fault.t list
(** Tests for a whole fault list with cross fault dropping (each new
    sequence is fault-simulated against the remaining faults). Returns
    the sequences and the faults left undetected within the frame
    budget. If [budget] (default: ambient) runs out mid-list the
    remaining faults are returned as undetected and the degradation is
    recorded ({!Mutsamp_robust.Degrade}) — the partial sequence set is
    still valid. *)
