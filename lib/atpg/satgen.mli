(** SAT-based ATPG.

    A test for a stuck-at fault exists iff the good circuit and the
    faulty circuit ({!Mutsamp_fault.Inject.apply}) are not equivalent;
    the miter counterexample is the test pattern. Exact like PODEM, and
    a useful cross-check for it — the two engines must agree on
    testability for every fault, which the test suite exploits. *)

type result =
  | Test of Mutsamp_fault.Pattern.t  (** pattern over the netlist's inputs *)
  | Untestable

val generate :
  ?budget:Mutsamp_robust.Budget.t ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_fault.Fault.t ->
  (result, Mutsamp_robust.Error.t) Stdlib.result
(** [Error] means the miter solve was cut short — crucially, {e not} a
    proof of untestability; callers tracking redundancy must treat it
    as unknown. [budget] defaults to the ambient budget. Raises
    [Invalid_argument] on a sequential netlist. *)

