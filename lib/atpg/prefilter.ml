module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Fault = Mutsamp_fault.Fault
module Untestable = Mutsamp_analysis.Untestable
module Constprop = Mutsamp_analysis.Constprop
module Domtree = Mutsamp_analysis.Domtree
module Metrics = Mutsamp_obs.Metrics

type t = {
  nl : Netlist.t;
  ut : Untestable.t;
  scoap : Scoap.t;
  pdom : Domtree.t lazy_t;
  fanouts : int list array lazy_t;
}

let c_static = Metrics.counter "analysis.static_untestable"
let c_pruned = Metrics.counter "analysis.domtree.pruned"

let make nl =
  {
    nl;
    ut = Untestable.analyze nl;
    scoap = Scoap.compute nl;
    pdom = lazy (Domtree.post nl);
    fanouts = lazy (Netlist.fanouts nl);
  }

(* The net whose value appears on the faulty line: the stem itself, or
   the driver of the branch's pin. *)
let line_driver t (f : Fault.t) =
  match f.Fault.site with
  | Fault.Stem n -> n
  | Fault.Branch { gate; pin } -> t.nl.Netlist.gates.(gate).Gate.fanins.(pin)

(* SCOAP infinity is a structural proof: CC1 = inf means no input
   assignment drives the net to 1 (the cost only becomes infinite when
   a required side is itself provably stuck), and CO = inf means no
   sensitised path from the stem reaches an output. Exciting stuck-at-v
   requires driving the line to (not v), so CC(not v) = inf proves
   unexcitability; CO = inf at the stem proves unobservability for the
   stem and every branch it feeds. *)
let scoap_verdict t f =
  let d = line_driver t f in
  let inf = Scoap.infinity_cost in
  let unexcitable =
    match f.Fault.polarity with
    | Fault.Stuck_at_0 -> t.scoap.Scoap.cc1.(d) >= inf
    | Fault.Stuck_at_1 -> t.scoap.Scoap.cc0.(d) >= inf
  in
  if unexcitable then Untestable.Unexcitable
  else if t.scoap.Scoap.co.(d) >= inf then Untestable.Unobservable
  else Untestable.Testable_maybe

exception Blocked

(* Dominator-chain observability: a fault effect can only reach an
   output by crossing every post-dominator of its origin, and at each
   And/Nand (Or/Nor) dominator the side inputs that cannot themselves
   carry the effect must hold 1 (0) — simultaneously, since the
   netlist is combinational and there is a single time frame. Each such
   mandatory assignment is checked against the constant-propagation
   facts, the SCOAP controllability costs, and the other mandatory
   assignments; any contradiction is a proof of untestability. This
   catches reconvergence conflicts the per-net SCOAP costs cannot see
   (e.g. a net that must be 1 to excite and 0 to propagate). Sound only
   combinationally — with flip-flops the requirements could be met in
   different cycles — so sequential netlists skip it (the ATPG engines
   run on scanned netlists anyway). *)
let domtree_verdict t (f : Fault.t) =
  if Netlist.num_dffs t.nl > 0 then Untestable.Testable_maybe
  else begin
    let gates = t.nl.Netlist.gates in
    let start =
      match f.Fault.site with Fault.Stem n -> n | Fault.Branch { gate; _ } -> gate
    in
    let pdom = Lazy.force t.pdom in
    if pdom.Domtree.idom.(start) < 0 then Untestable.Unobservable
    else begin
      let fanouts = Lazy.force t.fanouts in
      (* Nets the fault effect may reach: only values outside this cone
         are fixed and can be required. *)
      let cone = Array.make (Array.length gates) false in
      let rec reach v =
        if not cone.(v) then begin
          cone.(v) <- true;
          List.iter reach fanouts.(v)
        end
      in
      reach start;
      let consts = Untestable.constants t.ut in
      let reqs = Hashtbl.create 16 in
      let require net v =
        match Hashtbl.find_opt reqs net with
        | Some v' -> if v' <> v then raise Blocked
        | None ->
          (match Constprop.value consts net with
           | Constprop.Zero when v -> raise Blocked
           | Constprop.One when not v -> raise Blocked
           | _ -> ());
          let cc = if v then t.scoap.Scoap.cc1.(net) else t.scoap.Scoap.cc0.(net) in
          if cc >= Scoap.infinity_cost then raise Blocked;
          Hashtbl.replace reqs net v
      in
      let side_value kind =
        match kind with
        | Gate.And | Gate.Nand -> Some true
        | Gate.Or | Gate.Nor -> Some false
        | _ -> None
      in
      match
        (* Excitation and site-gate propagation for branch faults: the
           stuck line's driver must carry the opposite value, and the
           sibling pin the gate's non-controlling one. *)
        (match f.Fault.site with
         | Fault.Stem _ -> ()
         | Fault.Branch { gate; pin } ->
           let g = gates.(gate) in
           let driver = g.Gate.fanins.(pin) in
           let excite =
             match f.Fault.polarity with Fault.Stuck_at_0 -> true | Fault.Stuck_at_1 -> false
           in
           if not cone.(driver) then require driver excite;
           match side_value g.Gate.kind with
           | Some v when Array.length g.Gate.fanins > 1 ->
             let other = g.Gate.fanins.(1 - pin) in
             if not cone.(other) then require other v
           | _ -> ());
        List.iter
          (fun d ->
            let g = gates.(d) in
            match side_value g.Gate.kind with
            | None -> ()
            | Some v ->
              Array.iter (fun fanin -> if not cone.(fanin) then require fanin v) g.Gate.fanins)
          (Domtree.dominators pdom start)
      with
      | () -> Untestable.Testable_maybe
      | exception Blocked -> Untestable.Unobservable
    end
  end

let prove t f =
  match Untestable.prove t.ut f with
  | Untestable.Testable_maybe -> (
    match scoap_verdict t f with
    | Untestable.Testable_maybe -> (
      match domtree_verdict t f with
      | Untestable.Testable_maybe -> Untestable.Testable_maybe
      | v ->
        Metrics.incr c_pruned;
        v)
    | v -> v)
  | v -> v

let is_untestable t f =
  match prove t f with
  | Untestable.Testable_maybe -> false
  | Untestable.Unexcitable | Untestable.Unobservable ->
    Metrics.incr c_static;
    true
