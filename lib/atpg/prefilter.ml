module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Fault = Mutsamp_fault.Fault
module Untestable = Mutsamp_analysis.Untestable
module Metrics = Mutsamp_obs.Metrics

type t = { nl : Netlist.t; ut : Untestable.t; scoap : Scoap.t }

let c_static = Metrics.counter "analysis.static_untestable"

let make nl = { nl; ut = Untestable.analyze nl; scoap = Scoap.compute nl }

(* The net whose value appears on the faulty line: the stem itself, or
   the driver of the branch's pin. *)
let line_driver t (f : Fault.t) =
  match f.Fault.site with
  | Fault.Stem n -> n
  | Fault.Branch { gate; pin } -> t.nl.Netlist.gates.(gate).Gate.fanins.(pin)

(* SCOAP infinity is a structural proof: CC1 = inf means no input
   assignment drives the net to 1 (the cost only becomes infinite when
   a required side is itself provably stuck), and CO = inf means no
   sensitised path from the stem reaches an output. Exciting stuck-at-v
   requires driving the line to (not v), so CC(not v) = inf proves
   unexcitability; CO = inf at the stem proves unobservability for the
   stem and every branch it feeds. *)
let scoap_verdict t f =
  let d = line_driver t f in
  let inf = Scoap.infinity_cost in
  let unexcitable =
    match f.Fault.polarity with
    | Fault.Stuck_at_0 -> t.scoap.Scoap.cc1.(d) >= inf
    | Fault.Stuck_at_1 -> t.scoap.Scoap.cc0.(d) >= inf
  in
  if unexcitable then Untestable.Unexcitable
  else if t.scoap.Scoap.co.(d) >= inf then Untestable.Unobservable
  else Untestable.Testable_maybe

let prove t f =
  match Untestable.prove t.ut f with
  | Untestable.Testable_maybe -> scoap_verdict t f
  | v -> v

let is_untestable t f =
  match prove t f with
  | Untestable.Testable_maybe -> false
  | Untestable.Unexcitable | Untestable.Unobservable ->
    Metrics.incr c_static;
    true
