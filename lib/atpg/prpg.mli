(** Pseudo-random pattern generation.

    Two generators of test-pattern codes:
    - {!lfsr_sequence}: a Fibonacci LFSR with a primitive feedback
      polynomial (the structure a BIST pattern generator would use);
    - {!uniform_sequence}: splitmix-based uniform codes.

    The paper's pseudo-random baselines use {!uniform_sequence} for the
    statistics and {!lfsr_sequence} where hardware plausibility
    matters; both are deterministic from their seed. *)

val max_lfsr_width : int

val lfsr_taps : int -> int list
(** Tap positions (1-based, as in the standard tables) of a primitive
    polynomial for the given register width (2..{!max_lfsr_width}).
    Raises [Invalid_argument] outside that range. *)

val lfsr_sequence : width:int -> seed:int -> length:int -> int array
(** [length] successive LFSR states, each masked to [width] bits. A
    zero [seed] is replaced by 1 (the all-zero state is absorbing). *)

val lfsr_period_is_maximal : width:int -> bool
(** Check (by iteration) that the polynomial for [width] really has
    period [2^width - 1]. Intended for tests on small widths; linear in
    the period. *)

val uniform_sequence :
  Mutsamp_util.Prng.t -> bits:int -> length:int -> Mutsamp_fault.Pattern.t array
(** Uniform [bits]-bit patterns from the given PRNG; any positive
    width. Raises [Invalid_argument] when [bits] is not positive. *)

val weighted_sequence :
  Mutsamp_util.Prng.t ->
  one_probability:float array ->
  length:int ->
  Mutsamp_fault.Pattern.t array
(** Weighted random patterns: bit [k] of each pattern is 1 with
    probability [one_probability.(k)] (clamped to [0,1]) — the
    classical remedy when a circuit's random-pattern-resistant faults
    need biased inputs (wide AND trees want mostly-1 inputs, etc.).
    Raises [Invalid_argument] when the profile is empty. *)
