(** Built-in self-test emulation: LFSR pattern generation plus MISR
    response compaction.

    A BIST session applies [length] LFSR patterns and folds every
    output response into a multiple-input signature register; a fault
    is caught when the final faulty signature differs from the good
    one. Compaction can alias (a faulty response folding to the good
    signature); {!run} reports both the signature coverage and the
    true comparison coverage so the aliasing loss is visible. *)

type signature = int

val misr_step : width:int -> taps:int list -> signature -> int -> signature
(** One MISR clock: shift with LFSR feedback, XOR the response word in.
    [width] caps the register (≤ 62); [taps] as in {!Prpg.lfsr_taps}. *)

val misr_signature : width:int -> taps:int list -> int list -> signature
(** Fold a whole response stream (initial signature 0). *)

val misr_absorb :
  width:int -> taps:int list -> signature -> Mutsamp_util.Packvec.t -> signature
(** Absorb a packed response of any output count, one MISR clock per
    63-bit word — coincides with {!misr_step} on word 0 when the
    response fits one word. *)

type report = {
  patterns : int;
  good_signature : signature;
  signature_detected : int;  (** faults whose final signature differs *)
  comparison_detected : int;  (** faults a per-pattern comparison catches *)
  aliased : int;  (** detected by comparison but masked in the signature *)
  total_faults : int;
}

val run :
  ?misr_width:int ->
  Mutsamp_netlist.Netlist.t ->
  faults:Mutsamp_fault.Fault.t list ->
  seed:int ->
  length:int ->
  report
(** Emulate a session on a combinational netlist (raises
    [Invalid_argument] on sequential ones — scan them first).
    [misr_width] defaults to 16. *)
