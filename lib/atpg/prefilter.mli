(** Static untestability pre-filter for the ATPG engines.

    Combines the sound static proofs the analysis layer offers —
    constant propagation (excitation), the may-differ forward pass
    (observability), SCOAP infinity costs, and a post-dominator
    side-requirement rule (on combinational netlists, every path from
    the fault to an output runs through each of its post-dominators;
    conflicting mandatory side-input values across that chain mean no
    single vector sensitises any path) — into one oracle that the
    SAT/PODEM callers consult before paying for a solve. A [true]
    from {!is_untestable} is a proof; [false] just means "not decided
    statically, ask the solver".

    Every successful proof bumps the [analysis.static_untestable]
    counter (the dominator rule's share also under
    [analysis.domtree.pruned]), so run reports show how much solver
    work the filter saved. *)

type t

val make : Mutsamp_netlist.Netlist.t -> t
(** One shared analysis pass (constprop + SCOAP) over the netlist.
    Rebuild after any structural edit — {!Redundancy} re-makes it
    after each tie, because a tied net becomes a constant that
    strengthens later proofs. *)

val prove : t -> Mutsamp_fault.Fault.t -> Mutsamp_analysis.Untestable.verdict

val is_untestable : t -> Mutsamp_fault.Fault.t -> bool
(** [true] is a proof of untestability (and bumps
    [analysis.static_untestable]); [false] is no information. *)
