(** PODEM: path-oriented decision making, for combinational netlists.

    The search assigns primary inputs only. Each step derives an
    objective (activate the fault, then advance the D-frontier),
    backtraces it to a primary-input assignment, five-valued-simulates,
    and backtracks on failure. PODEM is complete: with an unbounded
    backtrack budget, [Untestable] is a proof of redundancy. *)

type stats = {
  backtracks : int;
  implications : int;  (** five-valued simulation passes *)
}

val find_test :
  ?backtrack_limit:int ->
  ?guided:bool ->
  ?budget:Mutsamp_robust.Budget.t ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_fault.Fault.t ->
  (Mutsamp_fault.Pattern.t option * stats, Mutsamp_robust.Error.t) Stdlib.result
(** Typed-result entry point, separating the three ways a search ends:
    [Ok (Some p, _)] is a test, [Ok (None, _)] is a {e proof} that the
    fault is untestable, and [Error (Aborted Podem)] means the search
    hit [backtrack_limit] with the fault's status unknown — callers must
    not count it as redundant. One [Podem_backtracks] work unit is spent
    per backtrack against [budget] (default: ambient), yielding
    [Error (Budget_exhausted _)] / [Error (Timeout Podem)] when
    exhausted. [backtrack_limit] defaults to 10_000; [guided] (default
    true) enables the SCOAP branching heuristics — turning it off
    reverts to first-X-input/first-frontier choices (the A3 ablation).
    Raises [Invalid_argument] on a sequential netlist (use
    {!Scan.full_scan} first). *)
