(** PODEM: path-oriented decision making, for combinational netlists.

    The search assigns primary inputs only. Each step derives an
    objective (activate the fault, then advance the D-frontier),
    backtraces it to a primary-input assignment, five-valued-simulates,
    and backtracks on failure. PODEM is complete: with an unbounded
    backtrack budget, [Untestable] is a proof of redundancy. *)

type result =
  | Test of Mutsamp_fault.Pattern.t
      (** pattern over the netlist's inputs (see {!Mutsamp_fault.Fsim}) *)
  | Untestable
  | Aborted  (** backtrack budget exhausted *)

type stats = {
  backtracks : int;
  implications : int;  (** five-valued simulation passes *)
}

val generate :
  ?backtrack_limit:int ->
  ?guided:bool ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_fault.Fault.t ->
  result * stats
(** Find a test for a single stuck-at fault. [backtrack_limit] defaults
    to 10_000; [guided] (default true) enables the SCOAP branching
    heuristics — turning it off reverts to first-X-input/first-frontier
    choices (the A3 ablation). Raises [Invalid_argument] on a
    sequential netlist (use {!Scan.full_scan} first). *)
