module Prng = Mutsamp_util.Prng
module Packvec = Mutsamp_util.Packvec

let max_lfsr_width = 48

(* Primitive-polynomial tap tables (XAPP 052 / standard LFSR tables).
   Taps are 1-based bit positions; feedback is the XNOR/XOR of the
   tapped bits. Using XOR with a non-zero seed gives period 2^n - 1. *)
let taps_table =
  [|
    [];  (* width 0: unused *)
    [];  (* width 1: unused *)
    [ 2; 1 ];
    [ 3; 2 ];
    [ 4; 3 ];
    [ 5; 3 ];
    [ 6; 5 ];
    [ 7; 6 ];
    [ 8; 6; 5; 4 ];
    [ 9; 5 ];
    [ 10; 7 ];
    [ 11; 9 ];
    [ 12; 6; 4; 1 ];
    [ 13; 4; 3; 1 ];
    [ 14; 5; 3; 1 ];
    [ 15; 14 ];
    [ 16; 15; 13; 4 ];
    [ 17; 14 ];
    [ 18; 11 ];
    [ 19; 6; 2; 1 ];
    [ 20; 17 ];
    [ 21; 19 ];
    [ 22; 21 ];
    [ 23; 18 ];
    [ 24; 23; 22; 17 ];
    [ 25; 22 ];
    [ 26; 6; 2; 1 ];
    [ 27; 5; 2; 1 ];
    [ 28; 25 ];
    [ 29; 27 ];
    [ 30; 6; 4; 1 ];
    [ 31; 28 ];
    [ 32; 22; 2; 1 ];
    [ 33; 20 ];
    [ 34; 27; 2; 1 ];
    [ 35; 33 ];
    [ 36; 25 ];
    [ 37; 5; 4; 3; 2; 1 ];
    [ 38; 6; 5; 1 ];
    [ 39; 35 ];
    [ 40; 38; 21; 19 ];
    [ 41; 38 ];
    [ 42; 41; 20; 19 ];
    [ 43; 42; 38; 37 ];
    [ 44; 43; 18; 17 ];
    [ 45; 44; 42; 41 ];
    [ 46; 45; 26; 25 ];
    [ 47; 42 ];
    [ 48; 47; 21; 20 ];
  |]

let lfsr_taps width =
  if width < 2 || width > max_lfsr_width then
    invalid_arg (Printf.sprintf "Prpg.lfsr_taps: width %d not in 2..%d" width max_lfsr_width);
  taps_table.(width)

let lfsr_next width taps state =
  let fb =
    List.fold_left (fun acc tap -> acc lxor ((state lsr (tap - 1)) land 1)) 0 taps
  in
  ((state lsl 1) lor fb) land ((1 lsl width) - 1)

let lfsr_sequence ~width ~seed ~length =
  let taps = lfsr_taps width in
  let state = ref (if seed land ((1 lsl width) - 1) = 0 then 1 else seed land ((1 lsl width) - 1)) in
  Array.init length (fun _ ->
      let s = !state in
      state := lfsr_next width taps s;
      s)

let lfsr_period_is_maximal ~width =
  let taps = lfsr_taps width in
  let start = 1 in
  let rec iterate state count =
    let next = lfsr_next width taps state in
    if next = start then count + 1
    else if count > 1 lsl width then count  (* safety: cycle without return *)
    else iterate next (count + 1)
  in
  iterate start 0 = (1 lsl width) - 1

let weighted_sequence prng ~one_probability ~length =
  let bits = Array.length one_probability in
  if bits < 1 then invalid_arg "Prpg.weighted_sequence: empty profile";
  Array.init length (fun _ ->
      Packvec.init bits (fun k ->
          let p = Float.max 0. (Float.min 1. one_probability.(k)) in
          Prng.float prng < p))

(* Widths up to 62 keep the historical one-or-two-draw stream (seeded
   experiments stay reproducible); wider patterns draw per bit. *)
let uniform_sequence prng ~bits ~length =
  if bits < 1 then invalid_arg "Prpg.uniform_sequence: bits not positive";
  if bits <= 62 then
    let draw () =
      if bits <= 30 then Prng.int prng (1 lsl bits)
      else (Prng.int prng (1 lsl (bits - 30)) lsl 30) lor Prng.int prng (1 lsl 30)
    in
    Array.init length (fun _ -> Packvec.of_code ~width:bits (draw ()))
  else Array.init length (fun _ -> Packvec.init bits (fun _ -> Prng.bool prng))
