(** Flat self-time profile over a span tree.

    Aggregates spans by name: invocation count, total (inclusive)
    duration, self (exclusive) duration and allocated words. Self time
    only accrues to main-track spans — worker spans run concurrently
    with the coordinator span they were grafted under, so counting
    their duration as self time would double-count the wall clock.
    Consequently the self times of a profile always sum to at most
    [wall_s], the summed duration of the main-track root spans. *)

type row = {
  name : string;
  count : int;
  total_s : float;  (** inclusive: sum of span durations *)
  self_s : float;  (** exclusive: total minus same-track child time *)
  alloc_words : float;
}

type t = { wall_s : float; rows : row list  (** sorted by [self_s] desc *) }

val of_spans : Trace.span list -> t
val current : unit -> t
(** [of_spans (Trace.roots ())]. *)

val row_to_json : row -> Json.t
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
val print : out_channel -> t -> unit
