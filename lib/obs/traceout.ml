(* Chrome trace-event JSON (the format ui.perfetto.dev and
   chrome://tracing load): a flat list of events with microsecond
   timestamps. Each span becomes one complete ("X") event on the thread
   (tid) matching its track, so every worker domain renders as its own
   track; metadata ("M") events name the process and each thread. *)

let pid = 1

let span_args (s : Trace.span) =
  let attrs = List.map (fun (k, v) -> (k, Json.String v)) s.Trace.attrs in
  Json.Obj (attrs @ [ ("alloc_words", Json.Float s.Trace.alloc_words) ])

let rec span_events acc (s : Trace.span) =
  let ev =
    Json.Obj
      [
        ("name", Json.String s.Trace.name);
        ("cat", Json.String "mutsamp");
        ("ph", Json.String "X");
        ("ts", Json.Float (s.Trace.start_s *. 1e6));
        ("dur", Json.Float (s.Trace.duration_s *. 1e6));
        ("pid", Json.Int pid);
        ("tid", Json.Int s.Trace.track);
        ("args", span_args s);
      ]
  in
  List.fold_left span_events (ev :: acc) s.Trace.children

let metadata_events tracks =
  let process_name =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("args", Json.Obj [ ("name", Json.String "mutsamp") ]);
      ]
  in
  let thread_events =
    List.concat_map
      (fun (track, label) ->
        [
          Json.Obj
            [
              ("name", Json.String "thread_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int track);
              ("args", Json.Obj [ ("name", Json.String label) ]);
            ];
          Json.Obj
            [
              ("name", Json.String "thread_sort_index");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int track);
              ("args", Json.Obj [ ("sort_index", Json.Int track) ]);
            ];
        ])
      tracks
  in
  process_name :: thread_events

let to_json ~tracks spans =
  let events = metadata_events tracks @ List.rev (List.fold_left span_events [] spans) in
  Json.Obj
    [
      ("traceEvents", Json.List events);
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ~tracks spans = Json.to_string (to_json ~tracks spans)

let current () = to_string ~tracks:(Trace.tracks ()) (Trace.roots ())
