(** Chrome trace-event / Perfetto JSON export of a span tree.

    Produces the JSON object format that ui.perfetto.dev and
    chrome://tracing load: one complete ("X") event per span with
    microsecond [ts]/[dur], [tid] set to the span's track so each
    worker domain renders as its own track, plus metadata ("M") events
    naming the process and each registered track. *)

val to_json : tracks:(int * string) list -> Trace.span list -> Json.t
val to_string : tracks:(int * string) list -> Trace.span list -> string

val current : unit -> string
(** Export [Trace.roots ()] with [Trace.tracks ()] — what [--trace-out]
    writes. *)
