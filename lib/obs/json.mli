(** Minimal JSON values, printer and parser.

    The repository's run reports and bench trajectories are plain JSON
    files; nothing in the environment provides a JSON library, so this
    module implements the small subset we need. The printer is stable:
    the same value always renders to the same bytes (object keys keep
    their construction order, floats use a shortest round-tripping
    decimal), which makes reports diffable and golden-testable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline at
    top level. Non-finite floats render as [null] (JSON has no NaN). *)

val to_compact : t -> string
(** Single-line rendering with no whitespace and {e no} trailing
    newline — one frame of a newline-delimited protocol (the service
    daemon's request/reply wire format). Same stability guarantees as
    {!to_string}. *)

val parse : string -> (t, string) result
(** Parse one JSON document. Numbers without [.], [e] or [E] become
    [Int]; everything else numeric becomes [Float]. Errors carry a byte
    offset. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val equal : t -> t -> bool
