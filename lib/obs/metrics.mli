(** Process-global counters and histograms.

    Instrumented code registers a handle once at module initialisation
    ([counter]/[histogram] are idempotent per name) and bumps it from
    hot loops. With collection disabled — the default — [incr], [add]
    and [observe] are a single mutable-field check, so the fault
    simulator and SAT solver inner loops pay nothing measurable.

    Histograms keep count/sum/min/max summaries (enough for run
    reports) rather than buckets. *)

type counter
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_suppressed : (unit -> 'a) -> 'a
(** Run [f] with collection suppressed on the calling domain only
    (restored on exit, exception-safe). Counts are atomics and the
    registries are mutex-guarded, so handles may be bumped from any
    domain; suppression is for sharded work whose coordinator already
    counts the series. *)

val counter : string -> counter
(** Register (or fetch) the counter with this name. *)

val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val observe : histogram -> float -> unit

val add_named : string -> int -> unit
(** Registry lookup by name on every call — for dynamically named
    series (e.g. per-operator kill counts). Only pays the lookup when
    collection is enabled. *)

val observe_named : string -> float -> unit

type histogram_stats = { n : int; sum : float; min_v : float; max_v : float }

type snapshot = {
  counters : (string * int) list;  (** nonzero counters, sorted by name *)
  histograms : (string * histogram_stats) list;
      (** histograms with observations, sorted by name *)
}

val reset : unit -> unit
(** Zero every registered series (registrations are kept). *)

val snapshot : unit -> snapshot
val to_json : snapshot -> Json.t

val stats_to_json : histogram_stats -> Json.t
(** The per-histogram object used inside [to_json] (n/sum/min/max/mean)
    — for report sections that embed a subset of histograms. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition (version 0.0.4): counters as counters,
    histograms as a summary ([_count]/[_sum]) plus [_min]/[_max]
    gauges. Series names are prefixed with [mutsamp_] and sanitised
    ([.] → [_]). *)

val pp : Format.formatter -> snapshot -> unit
