(* Compare two schema-1 run reports for performance regressions. Each
   group names a report section holding a flat {key: number} object —
   except "wall", which is computed from the span tree — plus the
   direction in which bigger numbers are better. *)

type direction = Higher_better | Lower_better

type delta = {
  group : string;
  key : string;
  old_v : float;
  new_v : float;
  pct : float;  (** signed percent change, new vs old *)
  regressed : bool;
}

type result = {
  deltas : delta list;
  missing : (string * string) list;
      (** (group, key) pairs present in only one report *)
  empty_groups : string list;
      (** requested groups with no keys in either report *)
}

let default_groups = [ "throughput"; "micro"; "wall" ]

let direction_of = function
  | "throughput" -> Higher_better
  | _ -> Lower_better

let section_of_group = function
  | "throughput" -> "fsim_throughput_pairs_per_sec"
  | "micro" -> "micro_ns_per_run"
  | g -> g

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

(* Wall time of a report: summed duration of its root spans. Gives a
   gate signal for reports that carry no bench section (e.g. a plain
   faultsim run). *)
let wall_of report =
  match Json.member "spans" report with
  | Some (Json.List spans) ->
    let dur acc s =
      match Json.member "duration_s" s with
      | Some v -> ( match number v with Some f -> acc +. f | None -> acc)
      | None -> acc
    in
    Some (List.fold_left dur 0.0 spans)
  | _ -> None

let keys_of_group group report =
  match group with
  | "wall" -> (
    match wall_of report with Some w -> [ ("wall_s", w) ] | None -> [])
  | g -> (
    match Json.member (section_of_group g) report with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> match number v with Some f -> Some (k, f) | None -> None)
        fields
    | _ -> [])

let judge ~threshold_pct dir ~old_v ~new_v =
  let pct =
    if old_v = 0.0 then if new_v = 0.0 then 0.0 else Float.infinity
    else (new_v -. old_v) /. Float.abs old_v *. 100.0
  in
  let factor = threshold_pct /. 100.0 in
  let regressed =
    match dir with
    | Higher_better -> new_v < old_v *. (1.0 -. factor)
    | Lower_better -> new_v > old_v *. (1.0 +. factor)
  in
  (pct, regressed)

let compare_reports ?(threshold_pct = 20.0) ?(groups = default_groups) ~old_
    ~new_ () =
  let deltas = ref [] in
  let missing = ref [] in
  let empty_groups = ref [] in
  List.iter
    (fun group ->
      let dir = direction_of group in
      let olds = keys_of_group group old_ in
      let news = keys_of_group group new_ in
      if olds = [] && news = [] then empty_groups := group :: !empty_groups;
      List.iter
        (fun (key, old_v) ->
          match List.assoc_opt key news with
          | Some new_v ->
            let pct, regressed = judge ~threshold_pct dir ~old_v ~new_v in
            deltas := { group; key; old_v; new_v; pct; regressed } :: !deltas
          | None -> missing := (group, key) :: !missing)
        olds;
      List.iter
        (fun (key, _) ->
          if not (List.mem_assoc key olds) then missing := (group, key) :: !missing)
        news)
    groups;
  {
    deltas = List.rev !deltas;
    missing = List.rev !missing;
    empty_groups = List.rev !empty_groups;
  }

let regressions r = List.filter (fun d -> d.regressed) r.deltas

let pp fmt r =
  Format.fprintf fmt "%-12s %-24s %14s %14s %9s  %s@\n" "group" "key" "old"
    "new" "change" "verdict";
  List.iter
    (fun d ->
      Format.fprintf fmt "%-12s %-24s %14.4g %14.4g %+8.1f%%  %s@\n" d.group
        d.key d.old_v d.new_v d.pct
        (if d.regressed then "REGRESSED" else "ok"))
    r.deltas;
  List.iter
    (fun (group, key) ->
      Format.fprintf fmt "%-12s %-24s %s@\n" group key
        "(present in only one report)")
    r.missing;
  List.iter
    (fun group ->
      Format.fprintf fmt "%-12s %-24s %s@\n" group "-"
        "(no keys in either report)")
    r.empty_groups

let print oc r =
  let fmt = Format.formatter_of_out_channel oc in
  pp fmt r;
  Format.pp_print_flush fmt ()
