(* Counts are atomics and the registries are mutex-guarded so workers
   on other domains can bump shared handles without tearing; sums of
   atomic increments are order-independent, so totals stay
   deterministic under sharded execution. *)
type counter = { c_name : string; count : int Atomic.t }

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Per-domain suppression, so sharded work that would double-count a
   series already counted by its coordinator can run with collection
   locally off without touching the global flag. *)
let suppressed_key = Domain.DLS.new_key (fun () -> false)
let live () = Atomic.get enabled_flag && not (Domain.DLS.get suppressed_key)

let with_suppressed f =
  let prev = Domain.DLS.get suppressed_key in
  Domain.DLS.set suppressed_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set suppressed_key prev) f

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counter name =
  locked registry_mutex @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = Atomic.make 0 } in
    Hashtbl.replace counters name c;
    c

let histogram name =
  locked registry_mutex @@ fun () ->
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        h_mutex = Mutex.create ();
        n = 0;
        sum = 0.;
        min_v = infinity;
        max_v = neg_infinity;
      }
    in
    Hashtbl.replace histograms name h;
    h

let incr c = if live () then Atomic.incr c.count
let add c n = if live () then ignore (Atomic.fetch_and_add c.count n)

let observe h v =
  if live () then
    locked h.h_mutex @@ fun () ->
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v

let add_named name n = if live () then add (counter name) n
let observe_named name v = if live () then observe (histogram name) v

let reset () =
  locked registry_mutex @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.count 0) counters;
  Hashtbl.iter
    (fun _ h ->
      locked h.h_mutex @@ fun () ->
      h.n <- 0;
      h.sum <- 0.;
      h.min_v <- infinity;
      h.max_v <- neg_infinity)
    histograms

type histogram_stats = { n : int; sum : float; min_v : float; max_v : float }

type snapshot = {
  counters : (string * int) list;
  histograms : (string * histogram_stats) list;
}

let snapshot () =
  locked registry_mutex @@ fun () ->
  let cs =
    Hashtbl.fold
      (fun name c acc ->
        let v = Atomic.get c.count in
        if v <> 0 then (name, v) :: acc else acc)
      counters []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let hs =
    Hashtbl.fold
      (fun name (h : histogram) acc ->
        let stats =
          locked h.h_mutex @@ fun () ->
          { n = h.n; sum = h.sum; min_v = h.min_v; max_v = h.max_v }
        in
        if stats.n > 0 then (name, stats) :: acc else acc)
      histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { counters = cs; histograms = hs }

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : histogram_stats)) ->
               ( k,
                 Json.Obj
                   [
                     ("n", Json.Int h.n);
                     ("sum", Json.Float h.sum);
                     ("min", Json.Float h.min_v);
                     ("max", Json.Float h.max_v);
                     ("mean", Json.Float (h.sum /. float_of_int h.n));
                   ] ))
             s.histograms) );
    ]

let stats_to_json (h : histogram_stats) =
  Json.Obj
    [
      ("n", Json.Int h.n);
      ("sum", Json.Float h.sum);
      ("min", Json.Float h.min_v);
      ("max", Json.Float h.max_v);
      ("mean", Json.Float (h.sum /. float_of_int h.n));
    ]

(* Prometheus text exposition format, version 0.0.4. Series names like
   "fsim.patterns_simulated" become "mutsamp_fsim_patterns_simulated";
   our count/sum/min/max histograms map onto a summary plus two
   gauges. *)
let prometheus_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "mutsamp_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let prometheus_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_prometheus s =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = prometheus_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    s.counters;
  List.iter
    (fun (name, (h : histogram_stats)) ->
      let n = prometheus_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.n);
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (prometheus_float h.sum));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s_min gauge\n%s_min %s\n" n n
           (prometheus_float h.min_v));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s_max gauge\n%s_max %s\n" n n
           (prometheus_float h.max_v)))
    s.histograms;
  Buffer.contents buf

let pp fmt s =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-40s %12d@\n" name v)
    s.counters;
  List.iter
    (fun (name, (h : histogram_stats)) ->
      Format.fprintf fmt "%-40s n=%d sum=%.3f min=%.3f max=%.3f mean=%.3f@\n" name
        h.n h.sum h.min_v h.max_v
        (h.sum /. float_of_int h.n))
    s.histograms
