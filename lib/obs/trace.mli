(** Hierarchical tracing spans, domain-safe.

    A span measures one phase of the pipeline: wall-clock duration plus
    the words allocated while it was open, with arbitrary nesting.
    Collection is off by default; every [with_span] call then reduces to
    a single atomic load around the wrapped function, so instrumenting
    hot paths is free in normal runs.

    Each domain records into its own collector (no synchronisation on
    the hot path): spans opened while another span is open on the same
    domain become its children, spans opened at top level become roots.
    The execution engine calls [merge_worker_spans] on the coordinating
    domain after a pool join to graft completed worker spans — tagged
    with their track — into the coordinator's tree. Track 0 is always
    the main domain. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_s : float;
      (** seconds since the trace epoch — the first span opened after
          [reset] *)
  duration_s : float;
  alloc_words : float;
      (** words allocated on the recording domain during the span
          (minor + major − promoted, from [Gc.quick_stat]) *)
  track : int;  (** 0 = main domain, >0 = a worker domain *)
  children : span list;  (** in open order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and the epoch, discard worker collectors
    and restart track numbering from 1. Call between independent runs,
    before any pool for the new run is created. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the function inside a new span on the calling domain's
    collector. The span closes when the function returns or raises (an
    [error=true] attribute marks the raising case, and the exception is
    re-raised). When collection is disabled this is just a function
    call. *)

val with_span_timed :
  ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** Like [with_span] but also return the elapsed seconds, measured even
    when collection is disabled (for callers that print timings). *)

val add_attr : string -> string -> unit
(** Attach an attribute to the calling domain's innermost open span;
    no-op outside any span. Lets a phase record counts it only knows at
    the end, e.g. [Trace.add_attr "faults" (string_of_int n)]. *)

val touch : unit -> unit
(** Register the calling domain's collector (assigning it a track)
    without recording anything. Pool workers call this at startup so
    exporters list every domain even if it recorded no span. *)

val merge_worker_spans : unit -> unit
(** Steal the completed root spans of every other domain's collector
    and graft them, ordered by (track, start), into the calling
    domain's innermost open span (or its root list). Only safe when
    the other domains are quiescent, i.e. after a pool join. *)

val roots : unit -> span list
(** Completed top-level spans of the main domain, in open order. *)

val tracks : unit -> (int * string) list
(** Registered (track, label) pairs, main domain first. *)

val to_json : span list -> Json.t
val span_to_json : span -> Json.t

val pp : Format.formatter -> span list -> unit
(** Indented tree: one line per span with duration, allocation and
    attributes. *)

val print : out_channel -> unit
(** [pp] of [roots ()] to a channel (the CLI's [--trace] output). *)
