type row = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  alloc_words : float;
}

type t = { wall_s : float; rows : row list }

(* Self time is duration minus the time covered by children, but only
   main-track (track 0) spans contribute self time: a worker span runs
   concurrently with its grafted parent, so attributing its duration as
   self time would double-count the wall clock. Worker spans still show
   up in [total_s] (and in the Perfetto export on their own track). *)
let self_of s =
  if s.Trace.track <> 0 then 0.0
  else begin
    let child_time =
      List.fold_left
        (fun acc c -> if c.Trace.track = 0 then acc +. c.Trace.duration_s else acc)
        0.0 s.Trace.children
    in
    Float.max 0.0 (s.Trace.duration_s -. child_time)
  end

let of_spans spans =
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 32 in
  let rec visit s =
    let self = self_of s in
    (match Hashtbl.find_opt tbl s.Trace.name with
     | Some r ->
       r :=
         {
           !r with
           count = !r.count + 1;
           total_s = !r.total_s +. s.Trace.duration_s;
           self_s = !r.self_s +. self;
           alloc_words = !r.alloc_words +. s.Trace.alloc_words;
         }
     | None ->
       Hashtbl.add tbl s.Trace.name
         (ref
            {
              name = s.Trace.name;
              count = 1;
              total_s = s.Trace.duration_s;
              self_s = self;
              alloc_words = s.Trace.alloc_words;
            }));
    List.iter visit s.Trace.children
  in
  List.iter visit spans;
  let wall_s =
    List.fold_left
      (fun acc s -> if s.Trace.track = 0 then acc +. s.Trace.duration_s else acc)
      0.0 spans
  in
  let rows =
    Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
    |> List.sort (fun a b ->
           match compare b.self_s a.self_s with
           | 0 -> compare a.name b.name
           | c -> c)
  in
  { wall_s; rows }

let current () = of_spans (Trace.roots ())

let row_to_json r =
  Json.Obj
    [
      ("name", Json.String r.name);
      ("count", Json.Int r.count);
      ("total_s", Json.Float r.total_s);
      ("self_s", Json.Float r.self_s);
      ("alloc_words", Json.Float r.alloc_words);
    ]

let to_json p =
  Json.Obj
    [
      ("wall_s", Json.Float p.wall_s);
      ("rows", Json.List (List.map row_to_json p.rows));
    ]

let human_words w =
  if Float.abs w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if Float.abs w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let pp fmt p =
  Format.fprintf fmt "%-28s %7s %10s %10s %6s %10s@\n" "span" "count" "total"
    "self" "self%" "alloc";
  List.iter
    (fun r ->
      let pct = if p.wall_s > 0.0 then 100.0 *. r.self_s /. p.wall_s else 0.0 in
      Format.fprintf fmt "%-28s %7d %9.3fs %9.3fs %5.1f%% %10s@\n" r.name
        r.count r.total_s r.self_s pct (human_words r.alloc_words))
    p.rows;
  Format.fprintf fmt "%-28s %7s %10s %9.3fs@\n" "wall" "" "" p.wall_s

let print oc p =
  let fmt = Format.formatter_of_out_channel oc in
  pp fmt p;
  Format.pp_print_flush fmt ()
