let schema_version = 1
let tool_version = "1.0.0"

let make ~command ?(circuits = []) ?config ?seed ?(extra = []) ~spans
    ~(metrics : Metrics.snapshot) () =
  Json.Obj
    ([
       ("schema", Json.Int schema_version);
       ("tool", Json.String "mutsamp");
       ("version", Json.String tool_version);
       ("command", Json.String command);
       ("circuits", Json.List (List.map (fun c -> Json.String c) circuits));
       ("seed", match seed with Some s -> Json.Int s | None -> Json.Null);
       ("config", match config with Some c -> c | None -> Json.Null);
       ("spans", Trace.to_json spans);
       ("metrics", Metrics.to_json metrics);
     ]
    @ extra)

(* Atomic: a crash mid-write must not leave a truncated report where a
   previous good one stood. Inlined temp+rename rather than
   Mutsamp_robust.Atomicio — obs sits below robust in the library
   stack. *)
let write_file path json =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc (Json.to_string json))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

let ( let* ) r f = Result.bind r f

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let expect_string name = function
  | Json.String _ -> Ok ()
  | _ -> Error (Printf.sprintf "field %S must be a string" name)

let expect_number name = function
  | Json.Int _ | Json.Float _ -> Ok ()
  | _ -> Error (Printf.sprintf "field %S must be a number" name)

let rec validate_span path json =
  match json with
  | Json.Obj _ ->
    let* name = field "name" json in
    let* () = expect_string (path ^ ".name") name in
    let* dur = field "duration_s" json in
    let* () = expect_number (path ^ ".duration_s") dur in
    let* start = field "start_s" json in
    let* () = expect_number (path ^ ".start_s") start in
    let* alloc = field "alloc_words" json in
    let* () = expect_number (path ^ ".alloc_words") alloc in
    let* () =
      match Json.member "track" json with
      | Some (Json.Int _) | None -> Ok ()
      | Some _ -> Error (path ^ ".track must be an integer")
    in
    let* () =
      match Json.member "attrs" json with
      | None -> Ok ()
      | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* () = acc in
            expect_string (path ^ ".attrs." ^ k) v)
          (Ok ()) fields
      | Some _ -> Error (path ^ ".attrs must be an object")
    in
    (match Json.member "children" json with
     | None -> Ok ()
     | Some (Json.List children) ->
       List.fold_left
         (fun acc (i, c) ->
           let* () = acc in
           validate_span (Printf.sprintf "%s.children[%d]" path i) c)
         (Ok ())
         (List.mapi (fun i c -> (i, c)) children)
     | Some _ -> Error (path ^ ".children must be a list"))
  | _ -> Error (path ^ " must be an object")

let validate_metrics json =
  match json with
  | Json.Obj _ ->
    let* counters = field "counters" json in
    let* () =
      match counters with
      | Json.Obj fields ->
        List.fold_left
          (fun acc (k, v) ->
            let* () = acc in
            match v with
            | Json.Int _ -> Ok ()
            | _ -> Error (Printf.sprintf "counter %S must be an integer" k))
          (Ok ()) fields
      | _ -> Error "metrics.counters must be an object"
    in
    let* histograms = field "histograms" json in
    (match histograms with
     | Json.Obj fields ->
       List.fold_left
         (fun acc (k, v) ->
           let* () = acc in
           match v with
           | Json.Obj _ ->
             let* n = field "n" v in
             let* () = expect_number ("histogram " ^ k ^ ".n") n in
             let* sum = field "sum" v in
             expect_number ("histogram " ^ k ^ ".sum") sum
           | _ -> Error (Printf.sprintf "histogram %S must be an object" k))
         (Ok ()) fields
     | _ -> Error "metrics.histograms must be an object")
  | _ -> Error "metrics must be an object"

(* The optional "analysis" section (static-analysis findings). Absent
   in reports from commands that run no analysis — validation is
   additive so old reports stay valid. *)
let validate_diag path json =
  match json with
  | Json.Obj _ ->
    let* () =
      List.fold_left
        (fun acc name ->
          let* () = acc in
          let* v = field name json in
          expect_string (path ^ "." ^ name) v)
        (Ok ())
        [ "id"; "circuit"; "loc"; "message" ]
    in
    let* sev = field "severity" json in
    let* () =
      match sev with
      | Json.String ("error" | "warning" | "info") -> Ok ()
      | Json.String s -> Error (Printf.sprintf "%s.severity: unknown severity %S" path s)
      | _ -> Error (path ^ ".severity must be a string")
    in
    (match Json.member "waived" json with
     | Some (Json.Bool _) | None -> Ok ()
     | Some _ -> Error (path ^ ".waived must be a boolean"))
  | _ -> Error (path ^ " must be an object")

let validate_analysis json =
  match json with
  | Json.Obj _ ->
    let* () =
      List.fold_left
        (fun acc name ->
          let* () = acc in
          let* v = field name json in
          match v with
          | Json.Int _ -> Ok ()
          | _ -> Error (Printf.sprintf "analysis.%s must be an integer" name))
        (Ok ())
        [ "findings"; "errors"; "warnings"; "infos"; "waived" ]
    in
    let* rules = field "rules" json in
    let* () =
      match rules with
      | Json.Obj fields ->
        List.fold_left
          (fun acc (k, v) ->
            let* () = acc in
            match v with
            | Json.Int _ -> Ok ()
            | _ -> Error (Printf.sprintf "analysis.rules.%s must be an integer" k))
          (Ok ()) fields
      | _ -> Error "analysis.rules must be an object"
    in
    let* diags = field "diagnostics" json in
    (match diags with
     | Json.List items ->
       List.fold_left
         (fun acc (i, d) ->
           let* () = acc in
           validate_diag (Printf.sprintf "analysis.diagnostics[%d]" i) d)
         (Ok ())
         (List.mapi (fun i d -> (i, d)) items)
     | _ -> Error "analysis.diagnostics must be a list")
  | _ -> Error "field \"analysis\" must be an object"

(* The optional "profile" section: flat self-time rows aggregated by
   span name (the [--profile] flag). *)
let validate_profile_row path json =
  match json with
  | Json.Obj _ ->
    let* name = field "name" json in
    let* () = expect_string (path ^ ".name") name in
    let* count = field "count" json in
    let* () =
      match count with
      | Json.Int _ -> Ok ()
      | _ -> Error (path ^ ".count must be an integer")
    in
    List.fold_left
      (fun acc fname ->
        let* () = acc in
        let* v = field fname json in
        expect_number (path ^ "." ^ fname) v)
      (Ok ())
      [ "total_s"; "self_s"; "alloc_words" ]
  | _ -> Error (path ^ " must be an object")

let validate_profile json =
  match json with
  | Json.Obj _ ->
    let* wall = field "wall_s" json in
    let* () = expect_number "profile.wall_s" wall in
    let* rows = field "rows" json in
    (match rows with
     | Json.List items ->
       List.fold_left
         (fun acc (i, r) ->
           let* () = acc in
           validate_profile_row (Printf.sprintf "profile.rows[%d]" i) r)
         (Ok ())
         (List.mapi (fun i r -> (i, r)) items)
     | _ -> Error "profile.rows must be a list")
  | _ -> Error "field \"profile\" must be an object"

(* The optional "exec" section: jobs actually used plus per-run
   execution-engine histograms (shard imbalance, pool queue-wait). *)
let validate_exec json =
  match json with
  | Json.Obj _ ->
    let* () =
      List.fold_left
        (fun acc name ->
          let* () = acc in
          match Json.member name json with
          | Some (Json.Int _) | None -> Ok ()
          | Some _ -> Error (Printf.sprintf "exec.%s must be an integer" name))
        (Ok ())
        [ "jobs"; "jobs_requested" ]
    in
    (match Json.member "histograms" json with
     | None -> Ok ()
     | Some (Json.Obj fields) ->
       List.fold_left
         (fun acc (k, v) ->
           let* () = acc in
           match v with
           | Json.Obj _ ->
             let* n = field "n" v in
             let* () = expect_number ("exec.histograms." ^ k ^ ".n") n in
             let* sum = field "sum" v in
             expect_number ("exec.histograms." ^ k ^ ".sum") sum
           | _ -> Error (Printf.sprintf "exec.histograms.%s must be an object" k))
         (Ok ()) fields
     | Some _ -> Error "exec.histograms must be an object")
  | _ -> Error "field \"exec\" must be an object"

(* The optional "store" section: whether a campaign store was attached
   (and where), plus the flat store.* counters (hits, misses, puts,
   ...). Counter names are not pinned here — the set may grow — but
   every non-"enabled"/"dir" field must be an integer count. *)
let validate_store json =
  match json with
  | Json.Obj fields ->
    let* enabled = field "enabled" json in
    let* () =
      match enabled with
      | Json.Bool _ -> Ok ()
      | _ -> Error "store.enabled must be a boolean"
    in
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        match (k, v) with
        | "enabled", _ -> Ok ()
        | "dir", Json.String _ -> Ok ()
        | "dir", _ -> Error "store.dir must be a string"
        | _, Json.Int _ -> Ok ()
        | _, _ -> Error (Printf.sprintf "store.%s must be an integer" k))
      (Ok ()) fields
  | _ -> Error "field \"store\" must be an object"

(* The optional "serve" section: per-request service-daemon context
   (request id, op, queueing) plus the flat serve.* counters. Lenient
   like the store section — the field set may grow — but every member
   must be a scalar, never a nested structure. *)
let validate_serve json =
  match json with
  | Json.Obj fields ->
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        match v with
        | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _ | Json.Null ->
          Ok ()
        | _ -> Error (Printf.sprintf "serve.%s must be a scalar" k))
      (Ok ()) fields
  | _ -> Error "field \"serve\" must be an object"

let validate json =
  match json with
  | Json.Obj _ ->
    let* schema = field "schema" json in
    let* () =
      match schema with
      | Json.Int v when v = schema_version -> Ok ()
      | Json.Int v ->
        Error (Printf.sprintf "unsupported schema version %d (expected %d)" v schema_version)
      | _ -> Error "field \"schema\" must be an integer"
    in
    let* tool = field "tool" json in
    let* () =
      match tool with
      | Json.String "mutsamp" -> Ok ()
      | Json.String other -> Error (Printf.sprintf "unexpected tool %S" other)
      | _ -> Error "field \"tool\" must be a string"
    in
    let* command = field "command" json in
    let* () = expect_string "command" command in
    let* () =
      match Json.member "seed" json with
      | Some (Json.Int _ | Json.Null) | None -> Ok ()
      | Some _ -> Error "field \"seed\" must be an integer or null"
    in
    let* spans = field "spans" json in
    let* () =
      match spans with
      | Json.List items ->
        List.fold_left
          (fun acc (i, s) ->
            let* () = acc in
            validate_span (Printf.sprintf "spans[%d]" i) s)
          (Ok ())
          (List.mapi (fun i s -> (i, s)) items)
      | _ -> Error "field \"spans\" must be a list"
    in
    let* metrics = field "metrics" json in
    let* () = validate_metrics metrics in
    let* () =
      match Json.member "analysis" json with
      | None -> Ok ()
      | Some a -> validate_analysis a
    in
    let* () =
      match Json.member "profile" json with
      | None -> Ok ()
      | Some p -> validate_profile p
    in
    let* () =
      match Json.member "exec" json with
      | None -> Ok ()
      | Some e -> validate_exec e
    in
    let* () =
      match Json.member "store" json with
      | None -> Ok ()
      | Some s -> validate_store s
    in
    (match Json.member "serve" json with
     | None -> Ok ()
     | Some s -> validate_serve s)
  | _ -> Error "report must be a JSON object"

let validate_file path =
  let* json = Json.parse_file path in
  validate json
