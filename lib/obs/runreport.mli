(** Machine-readable run reports.

    One experiment run — a CLI subcommand or a bench session — is
    serialised to a single stable JSON document: a versioned header
    (tool, command, the fully resolved configuration, master seed), the
    completed span tree and the metric snapshot. The bench harness and
    the CLI's [--report] flag share this schema, so `BENCH_*.json`
    trajectory files and ad-hoc experiment reports are interchangeable
    inputs for downstream tooling.

    Schema (version 1):
    {v
    { "schema": 1,
      "tool": "mutsamp",
      "version": "<tool version>",
      "command": "<subcommand>",
      "circuits": ["c432", ...],
      "seed": 2005,
      "config": { ... } | null,
      "spans": [ { "name", "start_s", "duration_s", "alloc_words",
                   "track"?, "attrs"?, "children"? } ... ],
      "metrics": { "counters": {..}, "histograms": {..} },
      ...extra fields... }
    v}

    Spans carry an optional ["track"] (worker domain index; absent
    means the main domain). Additive optional sections validated when
    present: ["analysis"] (lint findings), ["profile"] (flat self-time
    rows from [--profile]), ["exec"] (jobs used plus execution-engine
    histograms), ["store"] (campaign-store attachment and reuse
    counters from [--store]) and ["serve"] (per-request service-daemon
    context in daemon replies). *)

val schema_version : int
val tool_version : string

val make :
  command:string ->
  ?circuits:string list ->
  ?config:Json.t ->
  ?seed:int ->
  ?extra:(string * Json.t) list ->
  spans:Trace.span list ->
  metrics:Metrics.snapshot ->
  unit ->
  Json.t

val write_file : string -> Json.t -> unit
(** Atomic: the report is written to a [.tmp.*] sibling and renamed
    into place, so readers never observe a torn file. *)

val validate : Json.t -> (unit, string) result
(** Structural schema check: version, required header fields, every
    span well-formed recursively, metrics numeric. Optional sections
    are validated when present and reports without them remain valid:
    ["analysis"] (per-rule counts and diagnostics from [mutsamp lint]),
    ["profile"] (wall time plus self-time rows from [--profile]),
    ["exec"] (integer job counts plus numeric histograms), ["store"]
    (boolean [enabled], optional [dir], integer counters) and ["serve"]
    (scalar request-context fields). Used by the [bench-smoke] alias
    and the report tests, so a report-format regression fails
    [dune runtest]. *)

val validate_file : string -> (unit, string) result
