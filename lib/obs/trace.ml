type span = {
  name : string;
  attrs : (string * string) list;
  start_s : float;
  duration_s : float;
  alloc_words : float;
  children : span list;
}

type frame = {
  f_name : string;
  mutable f_attrs : (string * string) list;  (* reversed *)
  f_start_abs : float;
  f_start_rel : float;
  f_alloc0 : float;
  mutable f_children_rev : span list;
}

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* The frame stack is a plain per-process structure owned by the main
   domain; worker domains run instrumented code too, so recording is
   simply skipped off-main (span timing is wall-clock bookkeeping, not
   result data — sharded runs keep the coordinator's spans). *)
let recording () = !enabled_flag && Domain.is_main_domain ()

let stack : frame list ref = ref []
let roots_rev : span list ref = ref []
let epoch : float option ref = ref None

let reset () =
  stack := [];
  roots_rev := [];
  epoch := None

let now () = Unix.gettimeofday ()

let alloc_now () =
  (* [Gc.minor_words] reads the live allocation pointer; [quick_stat]'s
     copy is only refreshed at collections and would show 0 for short
     spans. *)
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let add_attr k v =
  if Domain.is_main_domain () then
    match !stack with
    | [] -> ()
    | f :: _ -> f.f_attrs <- (k, v) :: f.f_attrs

let open_frame attrs name =
  let t0 = now () in
  let ep =
    match !epoch with
    | Some e -> e
    | None ->
      epoch := Some t0;
      t0
  in
  let frame =
    {
      f_name = name;
      f_attrs = List.rev attrs;
      f_start_abs = t0;
      f_start_rel = t0 -. ep;
      f_alloc0 = alloc_now ();
      f_children_rev = [];
    }
  in
  stack := frame :: !stack;
  frame

let close_frame frame =
  let t1 = now () in
  let span =
    {
      name = frame.f_name;
      attrs = List.rev frame.f_attrs;
      start_s = frame.f_start_rel;
      duration_s = t1 -. frame.f_start_abs;
      alloc_words = alloc_now () -. frame.f_alloc0;
      children = List.rev frame.f_children_rev;
    }
  in
  (match !stack with
   | f :: rest when f == frame -> stack := rest
   | _ -> ());
  (match !stack with
   | [] -> roots_rev := span :: !roots_rev
   | parent :: _ -> parent.f_children_rev <- span :: parent.f_children_rev)

let with_span ?(attrs = []) name f =
  if not (recording ()) then f ()
  else begin
    let frame = open_frame attrs name in
    match f () with
    | v ->
      close_frame frame;
      v
    | exception e ->
      frame.f_attrs <- ("error", "true") :: frame.f_attrs;
      close_frame frame;
      raise e
  end

let with_span_timed ?(attrs = []) name f =
  if not (recording ()) then begin
    let t0 = now () in
    let v = f () in
    (v, now () -. t0)
  end
  else begin
    let frame = open_frame attrs name in
    match f () with
    | v ->
      let dt = now () -. frame.f_start_abs in
      close_frame frame;
      (v, dt)
    | exception e ->
      frame.f_attrs <- ("error", "true") :: frame.f_attrs;
      close_frame frame;
      raise e
  end

let roots () = List.rev !roots_rev

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let rec span_to_json s =
  let base =
    [
      ("name", Json.String s.name);
      ("start_s", Json.Float s.start_s);
      ("duration_s", Json.Float s.duration_s);
      ("alloc_words", Json.Float s.alloc_words);
    ]
  in
  let attrs =
    if s.attrs = [] then []
    else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs)) ]
  in
  let children =
    if s.children = [] then []
    else [ ("children", Json.List (List.map span_to_json s.children)) ]
  in
  Json.Obj (base @ attrs @ children)

let to_json spans = Json.List (List.map span_to_json spans)

let human_words w =
  if Float.abs w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if Float.abs w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let pp fmt spans =
  let rec go depth s =
    let label = String.make (2 * depth) ' ' ^ s.name in
    let attrs =
      if s.attrs = [] then ""
      else
        "  {"
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) s.attrs)
        ^ "}"
    in
    Format.fprintf fmt "%-32s %9.3fs %10s%s@\n" label s.duration_s
      (human_words s.alloc_words) attrs;
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) spans

let print oc =
  let fmt = Format.formatter_of_out_channel oc in
  pp fmt (roots ());
  Format.pp_print_flush fmt ()
