type span = {
  name : string;
  attrs : (string * string) list;
  start_s : float;
  duration_s : float;
  alloc_words : float;
  track : int;
  children : span list;
}

type frame = {
  f_name : string;
  mutable f_attrs : (string * string) list;  (* reversed *)
  f_start_abs : float;
  f_start_rel : float;
  f_alloc0 : float;
  mutable f_children_rev : span list;
}

(* One collector per domain, kept in domain-local storage: spans opened
   on a worker domain nest in that domain's own stack, so sharded code
   can instrument itself without synchronisation on the hot path. The
   registry below exists only so the coordinating domain can find the
   worker collectors at a join. *)
type collector = {
  c_track : int;  (* 0 is the main domain *)
  c_label : string;
  mutable c_stack : frame list;
  mutable c_roots_rev : span list;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Registry state — all three fields below are guarded by this mutex.
   It is touched only at span open (epoch), first span per domain
   (registration) and merges, never per hot-loop iteration. *)
let registry_mutex = Mutex.create ()
let next_track = ref 0
let collectors : collector list ref = ref []
let epoch : float option ref = ref None

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let new_collector () =
  locked @@ fun () ->
  let track = !next_track in
  next_track := track + 1;
  let c =
    {
      c_track = track;
      c_label = (if track = 0 then "main" else Printf.sprintf "worker-%d" track);
      c_stack = [];
      c_roots_rev = [];
    }
  in
  collectors := !collectors @ [ c ];
  c

let collector_key = Domain.DLS.new_key new_collector
let self () = Domain.DLS.get collector_key

(* Force the main domain onto track 0 at module initialisation. *)
let main_collector = self ()
let touch () = ignore (self ())

let reset () =
  locked @@ fun () ->
  List.iter
    (fun c ->
      c.c_stack <- [];
      c.c_roots_rev <- [])
    !collectors;
  (* Worker domains from before the reset belong to pools of a previous
     run; drop their collectors so a fresh run numbers its tracks from
     1 again. Their domain-local references go stale harmlessly — any
     span they might still record is simply never merged. *)
  collectors := [ main_collector ];
  next_track := 1;
  epoch := None

let now () = Unix.gettimeofday ()

let alloc_now () =
  (* [Gc.minor_words] reads the live allocation pointer; [quick_stat]'s
     copy is only refreshed at collections and would show 0 for short
     spans. Both are per-domain in multicore OCaml, which is exactly
     what a per-domain collector wants. *)
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

let add_attr k v =
  let c = self () in
  match c.c_stack with
  | [] -> ()
  | f :: _ -> f.f_attrs <- (k, v) :: f.f_attrs

let epoch_for t0 =
  locked @@ fun () ->
  match !epoch with
  | Some e -> e
  | None ->
    epoch := Some t0;
    t0

let open_frame c attrs name =
  let t0 = now () in
  let ep = epoch_for t0 in
  let frame =
    {
      f_name = name;
      f_attrs = List.rev attrs;
      f_start_abs = t0;
      f_start_rel = t0 -. ep;
      f_alloc0 = alloc_now ();
      f_children_rev = [];
    }
  in
  c.c_stack <- frame :: c.c_stack;
  frame

let close_frame c frame =
  let t1 = now () in
  let span =
    {
      name = frame.f_name;
      attrs = List.rev frame.f_attrs;
      start_s = frame.f_start_rel;
      duration_s = t1 -. frame.f_start_abs;
      alloc_words = alloc_now () -. frame.f_alloc0;
      track = c.c_track;
      children = List.rev frame.f_children_rev;
    }
  in
  (match c.c_stack with
   | f :: rest when f == frame -> c.c_stack <- rest
   | _ -> ());
  (match c.c_stack with
   | [] -> c.c_roots_rev <- span :: c.c_roots_rev
   | parent :: _ -> parent.f_children_rev <- span :: parent.f_children_rev)

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let c = self () in
    let frame = open_frame c attrs name in
    match f () with
    | v ->
      close_frame c frame;
      v
    | exception e ->
      frame.f_attrs <- ("error", "true") :: frame.f_attrs;
      close_frame c frame;
      raise e
  end

let with_span_timed ?(attrs = []) name f =
  if not (enabled ()) then begin
    let t0 = now () in
    let v = f () in
    (v, now () -. t0)
  end
  else begin
    let c = self () in
    let frame = open_frame c attrs name in
    match f () with
    | v ->
      let dt = now () -. frame.f_start_abs in
      close_frame c frame;
      (v, dt)
    | exception e ->
      frame.f_attrs <- ("error", "true") :: frame.f_attrs;
      close_frame c frame;
      raise e
  end

let roots () = List.rev main_collector.c_roots_rev

let tracks () =
  locked @@ fun () ->
  List.map (fun c -> (c.c_track, c.c_label)) !collectors

(* Called by the execution engine on the coordinating domain after a
   pool join: every completed top-level span recorded by another domain
   is grafted into the coordinator's innermost open span (or its root
   list), tagged with its own track so exporters can reconstruct the
   per-domain timeline. The join's synchronisation makes the workers
   quiescent, so reading their collectors under the registry mutex is
   safe. *)
let merge_worker_spans () =
  if enabled () then begin
    let me = self () in
    let stolen =
      locked @@ fun () ->
      List.concat_map
        (fun c ->
          if c == me then []
          else begin
            let spans = List.rev c.c_roots_rev in
            c.c_roots_rev <- [];
            spans
          end)
        !collectors
    in
    if stolen <> [] then begin
      let stolen =
        List.stable_sort (fun a b -> compare (a.track, a.start_s) (b.track, b.start_s)) stolen
      in
      match me.c_stack with
      | f :: _ -> f.f_children_rev <- List.rev stolen @ f.f_children_rev
      | [] -> me.c_roots_rev <- List.rev stolen @ me.c_roots_rev
    end
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let rec span_to_json s =
  let base =
    [
      ("name", Json.String s.name);
      ("start_s", Json.Float s.start_s);
      ("duration_s", Json.Float s.duration_s);
      ("alloc_words", Json.Float s.alloc_words);
    ]
  in
  let track = if s.track = 0 then [] else [ ("track", Json.Int s.track) ] in
  let attrs =
    if s.attrs = [] then []
    else [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.attrs)) ]
  in
  let children =
    if s.children = [] then []
    else [ ("children", Json.List (List.map span_to_json s.children)) ]
  in
  Json.Obj (base @ track @ attrs @ children)

let to_json spans = Json.List (List.map span_to_json spans)

let human_words w =
  if Float.abs w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if Float.abs w >= 1e6 then Printf.sprintf "%.2fMw" (w /. 1e6)
  else if Float.abs w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let pp fmt spans =
  let rec go depth s =
    let label = String.make (2 * depth) ' ' ^ s.name in
    let attrs =
      let kvs =
        (if s.track = 0 then [] else [ ("track", string_of_int s.track) ]) @ s.attrs
      in
      if kvs = [] then ""
      else
        "  {" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs) ^ "}"
    in
    Format.fprintf fmt "%-32s %9.3fs %10s%s@\n" label s.duration_s
      (human_words s.alloc_words) attrs;
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) spans

let print oc =
  let fmt = Format.formatter_of_out_channel oc in
  pp fmt (roots ());
  Format.pp_print_flush fmt ()
