type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal that round-trips, always with a '.' or exponent so
   parsing recovers a Float (never collapses to Int). *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else begin
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let rec emit buf indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        emit buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (indent + 2);
        escape_to buf k;
        Buffer.add_string buf ": ";
        emit buf (indent + 2) item)
      fields;
    Buffer.add_char buf '\n';
    pad indent;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Single-line emission for newline-delimited protocols: no indent, no
   gratuitous whitespace, and — crucially — no trailing newline, so the
   caller controls the frame delimiter. *)
let rec emit_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        emit_compact buf item)
      fields;
    Buffer.add_char buf '}'

let to_compact v =
  let buf = Buffer.create 1024 in
  emit_compact buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           let cp = hex4 () in
           (* Combine a surrogate pair when one follows. *)
           let cp =
             if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
                && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               else fail "invalid low surrogate"
             end
             else cp
           in
           utf8_of_code buf cp
         | _ -> fail "bad escape");
        loop ()
      | Some c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') -> advance (); digits ()
      | _ -> ()
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "bad number";
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items := parse_value () :: !items; more ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        more ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields := field () :: !fields; more ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        more ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, p) ->
    Error (Printf.sprintf "%s at byte %d" msg p)
  | exception Failure msg -> Error msg

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let equal (a : t) (b : t) = a = b
