(** Regression comparison of two schema-1 run reports.

    Groups select what to compare: ["throughput"] reads the
    [fsim_throughput_pairs_per_sec] section (higher is better),
    ["micro"] reads [micro_ns_per_run] (lower is better), and ["wall"]
    compares the summed duration of root spans (lower is better), which
    gives plain pipeline reports without bench sections a gate signal.
    A key regresses when it moves past the threshold in the bad
    direction; keys present in only one report are reported as missing,
    never as regressions. A requested group with no keys in either
    report lands in [empty_groups] — without that, a report pair that
    silently lost its whole bench section would read as "no
    regressions". *)

type direction = Higher_better | Lower_better

type delta = {
  group : string;
  key : string;
  old_v : float;
  new_v : float;
  pct : float;  (** signed percent change of [new_v] vs [old_v] *)
  regressed : bool;
}

type result = {
  deltas : delta list;
  missing : (string * string) list;  (** (group, key) in only one report *)
  empty_groups : string list;
      (** requested groups with no keys in either report *)
}

val default_groups : string list
(** [["throughput"; "micro"; "wall"]] *)

val compare_reports :
  ?threshold_pct:float ->
  ?groups:string list ->
  old_:Json.t ->
  new_:Json.t ->
  unit ->
  result
(** Default threshold is 20%. *)

val regressions : result -> delta list
val pp : Format.formatter -> result -> unit
val print : out_channel -> result -> unit
