module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module B = Netlist.Builder

(* Aggregated across every sweep in the run (mutant synthesis
   included) — the run report's measure of how much dead logic the
   clean-up removes. *)
let c_sweep_removed = Mutsamp_obs.Metrics.counter "analysis.sweep.removed_gates"

let sweep_stats nl =
  let cleaned, removed = Mutsamp_netlist.Sweep.run nl in
  Mutsamp_obs.Metrics.add c_sweep_removed removed;
  (cleaned, removed)

let sweep nl = fst (sweep_stats nl)

(* NAND2+NOT technology mapping. Rebuilding through the Builder shares
   the inverters and intermediate NANDs that the expansions have in
   common. *)
let to_nand_only (nl : Netlist.t) =
  let b = B.create nl.Netlist.name in
  let n = Array.length nl.Netlist.gates in
  let copy = Array.make n (-1) in
  let dff_fixups = ref [] in
  let nand x y = B.nand_ b x y in
  let inv x = B.not_ b x in
  (* Sources first, then the combinational gates in dependency order. *)
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.kind with
      | Gate.Pi name -> copy.(i) <- B.input b name
      | Gate.Const v -> copy.(i) <- B.const b v
      | Gate.Dff init ->
        let q = B.dff b ~init in
        dff_fixups := (q, g.fanins.(0)) :: !dff_fixups;
        copy.(i) <- q
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor -> ())
    nl.Netlist.gates;
  let topo = Mutsamp_netlist.Topo.compute nl in
  Array.iter
    (fun i ->
      let g = nl.Netlist.gates.(i) in
      let a () = copy.(g.Gate.fanins.(0)) in
      let c () = copy.(g.Gate.fanins.(1)) in
      copy.(i) <-
        (match g.Gate.kind with
         | Gate.Buf -> a ()
         | Gate.Not -> inv (a ())
         | Gate.Nand -> nand (a ()) (c ())
         | Gate.And -> inv (nand (a ()) (c ()))
         | Gate.Or -> nand (inv (a ())) (inv (c ()))
         | Gate.Nor -> inv (nand (inv (a ())) (inv (c ())))
         | Gate.Xor ->
           (* x ^ y = nand(nand(x, nand(x,y)), nand(y, nand(x,y))) *)
           let m = nand (a ()) (c ()) in
           nand (nand (a ()) m) (nand (c ()) m)
         | Gate.Xnor ->
           let m = nand (a ()) (c ()) in
           inv (nand (nand (a ()) m) (nand (c ()) m))
         | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> assert false))
    topo.Mutsamp_netlist.Topo.order;
  List.iter (fun (q, d_orig) -> B.connect_dff b q ~d:copy.(d_orig)) !dff_fixups;
  Array.iter
    (fun (name, net) -> B.output b name copy.(net))
    nl.Netlist.output_list;
  B.finalize b