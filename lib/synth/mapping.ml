module Ast = Mutsamp_hdl.Ast
module Sim = Mutsamp_hdl.Sim
module Bitvec = Mutsamp_util.Bitvec
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim

exception Mapping_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Mapping_error msg)) fmt

type t = {
  design : Ast.design;
  nl : Netlist.t;
  (* For each design input, (name, width, positions of its bits in the
     netlist's input order). *)
  in_ports : (string * int * int array) array;
  (* For each design output, (name, width, positions in output_list). *)
  out_ports : (string * int * int array) array;
}

let make design nl =
  let input_pos = Hashtbl.create 32 in
  Array.iteri
    (fun k name -> Hashtbl.replace input_pos name k)
    (Netlist.input_names nl);
  let output_pos = Hashtbl.create 32 in
  Array.iteri (fun k (name, _) -> Hashtbl.replace output_pos name k) nl.Netlist.output_list;
  let port_positions table (dc : Ast.decl) =
    Array.init dc.width (fun i ->
        let bit = Lower.bit_name dc.name dc.width i in
        match Hashtbl.find_opt table bit with
        | Some k -> k
        | None -> fail "%s: netlist is missing port bit %s" design.Ast.name bit)
  in
  let in_ports =
    Array.of_list
      (List.map
         (fun (dc : Ast.decl) -> (dc.name, dc.width, port_positions input_pos dc))
         (Ast.inputs design))
  in
  let out_ports =
    Array.of_list
      (List.map
         (fun (dc : Ast.decl) -> (dc.name, dc.width, port_positions output_pos dc))
         (Ast.outputs design))
  in
  let design_in_bits =
    List.fold_left (fun acc (dc : Ast.decl) -> acc + dc.width) 0 (Ast.inputs design)
  in
  if design_in_bits <> Array.length nl.Netlist.input_nets then
    fail "%s: netlist has %d input bits, design has %d" design.Ast.name
      (Array.length nl.Netlist.input_nets) design_in_bits;
  { design; nl; in_ports; out_ports }

let netlist t = t.nl
let design t = t.design

let port_bits t name width stimulus =
  match List.assoc_opt name stimulus with
  | Some bv ->
    if Bitvec.width bv <> width then
      fail "%s: input %s width mismatch" t.design.Ast.name name;
    bv
  | None -> fail "%s: stimulus missing input %s" t.design.Ast.name name

let pack_stimuli t stimuli =
  if Array.length stimuli > Bitsim.word_bits then
    fail "%s: %d stimuli exceed %d lanes" t.design.Ast.name (Array.length stimuli)
      Bitsim.word_bits;
  let words = Array.make (Array.length t.nl.Netlist.input_nets) 0 in
  Array.iteri
    (fun lane stimulus ->
      Array.iter
        (fun (name, width, positions) ->
          let bv = port_bits t name width stimulus in
          Array.iteri
            (fun i k -> if Bitvec.bit bv i then words.(k) <- words.(k) lor (1 lsl lane))
            positions)
        t.in_ports)
    stimuli;
  words

let pack_stimulus t stimulus =
  let words = Array.make (Array.length t.nl.Netlist.input_nets) 0 in
  Array.iter
    (fun (name, width, positions) ->
      let bv = port_bits t name width stimulus in
      Array.iteri
        (fun i k -> words.(k) <- (if Bitvec.bit bv i then Bitsim.all_ones else 0))
        positions)
    t.in_ports;
  words

let unpack_outputs t output_words ~lane =
  Array.to_list
    (Array.map
       (fun (name, width, positions) ->
         ( name,
           Bitvec.init width (fun i ->
               (output_words.(positions.(i)) lsr lane) land 1 = 1) ))
       t.out_ports)
