(** Bridging word-level HDL stimuli and bit-level netlist simulation.

    Synthesis expands each HDL port into bit-level nets named by
    {!Lower.bit_name}. This module packs word-level stimuli into the
    {!Mutsamp_netlist.Bitsim} input-word arrays (one bit per lane) and
    unpacks output words back into word-level observations, so the same
    test data drives both the behavioural and the gate-level model. *)

type t
(** A prepared mapping between one design and one netlist. *)

exception Mapping_error of string

val make : Mutsamp_hdl.Ast.design -> Mutsamp_netlist.Netlist.t -> t
(** Build the port correspondence. Raises {!Mapping_error} when the
    netlist's interface does not match the design's. *)

val netlist : t -> Mutsamp_netlist.Netlist.t
val design : t -> Mutsamp_hdl.Ast.design

val pack_stimuli : t -> Mutsamp_hdl.Sim.stimulus array -> int array
(** Pack up to {!Mutsamp_netlist.Bitsim.word_bits} stimuli, one per
    lane, into the per-input word array for [Bitsim.step]. Raises
    {!Mapping_error} on a missing input or too many stimuli. *)

val pack_stimulus : t -> Mutsamp_hdl.Sim.stimulus -> int array
(** One stimulus replicated across every lane (the form fault
    simulation wants: all lanes identical, divergence marks
    detection). *)

val unpack_outputs : t -> int array -> lane:int -> Mutsamp_hdl.Sim.observation
(** Word-level observation of one lane of a [Bitsim.step] result. *)
