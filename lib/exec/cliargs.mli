(** Shared argv scanning for hand-rolled entry points (the bench
    harness), matching the spellings cmdliner accepts for the CLI. *)

val value_opt : long:string -> ?short:string -> string array -> string option
(** [value_opt ~long:"--report" ~short:"-r" argv] finds the value of an
    option given as [--report FILE], [--report=FILE], [-r FILE] or
    [-rFILE]. Last occurrence wins. *)

val int_opt : long:string -> ?short:string -> default:int -> string array -> int
(** [value_opt] parsed as an integer; missing or malformed values yield
    [default]. *)

val jobs : ?default:int -> string array -> int
(** [int_opt ~long:"--jobs" ~short:"-j"], the worker-count option. *)

val flag : string list -> string array -> bool
(** True when any of the given literal flags appears in argv. *)
