module Metrics = Mutsamp_obs.Metrics
module Trace = Mutsamp_obs.Trace

(* Observability series (no-ops unless metrics collection is on). *)
let c_pools = Metrics.counter "exec.pools_created"
let c_runs = Metrics.counter "exec.pool_runs"
let c_tasks = Metrics.counter "exec.tasks"
let c_inline = Metrics.counter "exec.inline_runs"

(* Time from a batch being published to a worker picking it up —
   scheduling latency, i.e. how long work sat in the (single) slot
   before each domain noticed. *)
let h_queue_wait = Metrics.histogram "exec.queue_wait_s"

(* One batch of indexed tasks. Workers claim indices with a shared
   fetch-and-add cursor, so a slow task never stalls the others, and
   the last finisher signals [work_done]. *)
type work = {
  w_run : int -> unit;
  w_n : int;
  w_next : int Atomic.t;
  w_pending : int Atomic.t;
  w_gen : int;
  w_published : float;
}

type t = {
  size : int;  (* total participants incl. the submitting caller *)
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  new_work : Condition.t;
  work_done : Condition.t;
  mutable work : work option;
  mutable gen : int;  (* bumps on every publish, so sleepers wake once *)
  mutable closed : bool;
}

(* Set while a domain is draining a batch — including the submitting
   caller, which participates in its own batch. A [run] issued from
   inside a task (nested parallelism) executes inline instead of
   publishing: the pool has exactly one batch slot, and a worker
   blocking on a sub-batch it cannot publish would deadlock. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

let drain w =
  let rec loop () =
    let i = Atomic.fetch_and_add w.w_next 1 in
    if i < w.w_n then begin
      w.w_run i;
      loop ()
    end
  in
  loop ()

let worker_loop t =
  Domain.DLS.set in_worker_key true;
  (* Register this domain's trace collector up front so exporters list
     one track per pool domain even if the domain records no span. *)
  Trace.touch ();
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    let rec await () =
      if t.closed then None
      else
        match t.work with
        | Some w when w.w_gen > !last_gen -> Some w
        | _ ->
          Condition.wait t.new_work t.m;
          await ()
    in
    let next = await () in
    Mutex.unlock t.m;
    match next with
    | None -> ()
    | Some w ->
      last_gen := w.w_gen;
      Metrics.observe h_queue_wait (Unix.gettimeofday () -. w.w_published);
      drain w;
      loop ()
  in
  loop ()

let create ~domains =
  let requested =
    if domains = 0 then Domain.recommended_domain_count () else domains
  in
  let size = max 1 requested in
  let t =
    {
      size;
      workers = [];
      m = Mutex.create ();
      new_work = Condition.create ();
      work_done = Condition.create ();
      work = None;
      gen = 0;
      closed = false;
    }
  in
  Metrics.incr c_pools;
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.new_work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Deterministic indexed map: [f] runs once per index, results land in
   slot order, and the lowest-index exception (if any) is re-raised on
   the caller — matching what sequential left-to-right execution would
   have raised first. *)
let run t n ~f =
  if n = 0 then [||]
  else if n = 1 || t.size = 1 || in_worker () || t.closed then begin
    Metrics.incr c_inline;
    Metrics.add c_tasks n;
    Array.init n f
  end
  else begin
    Metrics.incr c_runs;
    Metrics.add c_tasks n;
    let results = Array.make n None in
    let first_err : (int * exn) option Atomic.t = Atomic.make None in
    let rec record_err i e =
      match Atomic.get first_err with
      | Some (j, _) when j <= i -> ()
      | cur ->
        if not (Atomic.compare_and_set first_err cur (Some (i, e))) then
          record_err i e
    in
    let body i =
      match f i with
      | v -> results.(i) <- Some v
      | exception e -> record_err i e
    in
    let task_done = Atomic.make n in
    let w_run i =
      body i;
      if Atomic.fetch_and_add task_done (-1) = 1 then begin
        Mutex.lock t.m;
        Condition.broadcast t.work_done;
        Mutex.unlock t.m
      end
    in
    let w =
      {
        w_run;
        w_n = n;
        w_next = Atomic.make 0;
        w_pending = task_done;
        w_gen = 0 (* patched under the lock below *);
        w_published = 0.0;
      }
    in
    Mutex.lock t.m;
    t.gen <- t.gen + 1;
    let w = { w with w_gen = t.gen; w_published = Unix.gettimeofday () } in
    t.work <- Some w;
    Condition.broadcast t.new_work;
    Mutex.unlock t.m;
    (* The caller drains too; flagging it as a worker makes any nested
       [run] from inside [f] execute inline. *)
    Domain.DLS.set in_worker_key true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key false) (fun () ->
        drain w);
    Mutex.lock t.m;
    while Atomic.get w.w_pending > 0 do
      Condition.wait t.work_done t.m
    done;
    t.work <- None;
    Mutex.unlock t.m;
    (* All tasks completed, so the workers are quiescent: graft any
       spans they recorded into the caller's open span — including on
       the error path, so a failing shard's trace survives. *)
    Trace.merge_worker_spans ();
    match Atomic.get first_err with
    | Some (_, e) -> raise e
    | None ->
      Array.map
        (function
          | Some v -> v
          | None -> invalid_arg "Pool.run: missing result")
        results
  end

(* Balanced contiguous [(lo, len)] chunks: at most [jobs] of them,
   never empty, sizes differing by at most one, lowest-index chunks
   take the remainder — the canonical sharding used by every engine so
   merge order is a plain concatenation. *)
let chunks ~jobs ~n =
  if n <= 0 then [||]
  else begin
    let k = max 1 (min jobs n) in
    let share = n / k and rem = n mod k in
    let lo = ref 0 in
    Array.init k (fun i ->
        let len = share + if i < rem then 1 else 0 in
        let c = (!lo, len) in
        lo := !lo + len;
        c)
  end
