(** The run context: one record carrying everything a sharded stage
    needs — execution engine, budget, metrics sink, progress callback,
    static-filter switch — threaded as a single [?ctx] argument instead
    of a scatter of per-call optionals.

    [default] (no pool, ambient budget, global metrics, no progress,
    static filter on) reproduces every pre-context default, so
    [?ctx:(Ctx.t = Ctx.default)] entry points are drop-in compatible
    with their former [?budget]/[?on_progress]/[?static_filter]
    signatures. *)

type sink =
  | Global  (** shard bodies record into the process-global registry *)
  | Silent  (** shard bodies run with metrics suppressed *)

(** Fault-simulation backend selection, threaded through the context so
    every stage that simulates faults honours the same knob.

    [Auto] resolves per netlist (compiled for combinational circuits,
    packed parallel-fault for sequential ones). [Serial] is the
    single-lane reference engine used by the differential test suites;
    it has no string spelling and is not reachable from the CLI. *)
type engine = Auto | Packed | Event | Compiled | Serial

type t = {
  pool : Pool.t option;  (** [None] = sequential execution *)
  budget : Mutsamp_robust.Budget.t option;
      (** [None] = the CLI-installed ambient budget at point of use *)
  sink : sink;
  progress : (stage:string -> done_:int -> total:int -> unit) option;
  static_filter : bool;
      (** consult the static untestability prefilter (ATPG stages) *)
  dominance : bool;
      (** order ATPG test search by fault dominance — dominated
          classes are targeted last so they cross-drop for free; the
          reporting denominator is unaffected (ATPG stages) *)
  store : Mutsamp_store.Store.t option;
      (** campaign store for fetch-or-compute reuse ([None] = always
          compute) *)
  engine : engine;  (** fault-simulation backend ([Auto] in {!default}) *)
}

val default : t

val sequential : t
(** Alias of {!default}, for call sites that want to say why. *)

val with_pool : Pool.t -> t
(** {!default} with the given pool installed. *)

val with_store : Mutsamp_store.Store.t -> t
(** {!default} with the given campaign store installed. *)

val make :
  ?pool:Pool.t ->
  ?budget:Mutsamp_robust.Budget.t ->
  ?store:Mutsamp_store.Store.t ->
  ?progress:(stage:string -> done_:int -> total:int -> unit) ->
  ?static_filter:bool ->
  ?dominance:bool ->
  ?engine:engine ->
  unit ->
  t
(** Assemble a context field by field (omitted fields as in
    {!default}). The service daemon builds one per request this way:
    the shared pool, the request's own budget and the server's store,
    without relying on the process-ambient budget. *)

val store : t -> Mutsamp_store.Store.t option

val engine_to_string : engine -> string

val engine_of_string : string -> engine option
(** Parse a user-facing engine spelling ([auto]/[packed]/[event]/
    [compiled]); [Serial] is internal-only and never parses. *)

val jobs : t -> int
(** Effective fan-out at this call site: 1 without a pool or when the
    calling domain is already inside a worker (nested parallelism runs
    inline), else the pool size. *)

val budget : t -> Mutsamp_robust.Budget.t
(** The context's budget, defaulting to [Budget.ambient ()]. *)

val progress : t -> stage:string -> done_:int -> total:int -> unit
(** Invoke the progress callback if any (main-domain call sites only —
    engines report shard progress from the coordinating domain). *)

val with_sink : t -> (unit -> 'a) -> 'a
(** Run a shard body under the context's metrics sink. *)

val map_cells : t -> 'a list -> f:('a -> 'b) -> 'b list
(** Campaign-cell parallelism: [f] runs once per list element, one pool
    task per cell, results in list order (so parallel output merges
    identically to [List.map f xs]). Unlike {!map_shards} the context
    budget is shared, not split — its quotas are atomic, and campaign
    cells want the global cap. Inside a cell the effective job count is
    1 (nested parallel stages run inline). Sequential contexts reduce
    to [List.map f xs]. *)

val map_shards :
  t -> n:int -> f:(budget:Mutsamp_robust.Budget.t -> lo:int -> len:int -> 'a) -> 'a array
(** Shard [n] items into balanced contiguous ranges across the pool:
    [f ~budget ~lo ~len] runs once per chunk with an even split of the
    context budget (leftovers refunded to it after the join, also on
    exceptions), and results come back in chunk order — concatenating
    them reproduces sequential output exactly. With an effective job
    count of 1 (or [n <= 1]) the body runs once on the caller with
    [lo = 0], [len = n] and the undivided budget: the sequential path,
    bit-identical by construction. *)
