(* Minimal argv scanning shared by the bench harness and other
   hand-rolled entry points, accepting the same spellings cmdliner
   does: [--jobs N], [--jobs=N], [-j N] and [-jN]. Kept here rather
   than in the bench so tests can pin the accepted grammar. *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let after_eq ~prefix s =
  if starts_with ~prefix:(prefix ^ "=") s then
    Some (String.sub s (String.length prefix + 1)
            (String.length s - String.length prefix - 1))
  else None

(* Last occurrence wins, like cmdliner; malformed values are ignored so
   a typo degrades to the default instead of crashing a bench run. *)
let value_opt ~long ?short argv =
  let n = Array.length argv in
  let found = ref None in
  for i = 0 to n - 1 do
    let arg = argv.(i) in
    let take v = found := Some v in
    if arg = long && i + 1 < n then take argv.(i + 1)
    else
      match after_eq ~prefix:long arg with
      | Some v -> take v
      | None -> (
        match short with
        | None -> ()
        | Some s ->
          if arg = s && i + 1 < n then take argv.(i + 1)
          else if
            starts_with ~prefix:s arg
            && String.length arg > String.length s
            && not (starts_with ~prefix:"--" arg)
          then take (String.sub arg (String.length s) (String.length arg - String.length s)))
  done;
  !found

let int_opt ~long ?short ~default argv =
  match value_opt ~long ?short argv with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)

let jobs ?(default = 1) argv = int_opt ~long:"--jobs" ~short:"-j" ~default argv

let flag names argv = Array.exists (fun a -> List.mem a names) argv
