(** A reusable pool of worker domains for deterministic indexed maps.

    [create ~domains:k] spawns [k - 1] worker domains; the caller of
    {!run} participates as the [k]-th, so a pool of size 1 spawns
    nothing and runs everything inline on the submitting domain —
    byte-for-byte the sequential path. Tasks are claimed with a shared
    atomic cursor (work stealing at index granularity), results land in
    index order, and the merge is a plain array — parallelism never
    reorders anything observable.

    Nested submissions (a [run] from inside a task) execute inline on
    the calling domain, so code under a pool can itself call sharded
    entry points without deadlock; the outer fan-out keeps the
    domains busy. *)

type t

val create : domains:int -> t
(** [domains = 0] means [Domain.recommended_domain_count ()]; values
    [< 1] are clamped to 1. *)

val size : t -> int
(** Total participants, including the submitting caller. *)

val in_worker : unit -> bool
(** True while the calling domain is draining a batch (including the
    submitter of the in-flight batch). Sharded entry points use this to
    fall back to their sequential path when already inside one. *)

val run : t -> int -> f:(int -> 'a) -> 'a array
(** [run t n ~f] evaluates [f i] once for each [0 <= i < n] across the
    pool and returns the results in index order. If any task raises,
    the remaining tasks still drain and the exception of the
    lowest-index failing task is re-raised on the caller — the same
    exception sequential left-to-right execution would have surfaced
    first. Only one batch runs at a time per pool; concurrent calls
    from several domains are not supported (nested calls inline). *)

val shutdown : t -> unit
(** Join all workers. Subsequent [run]s execute inline. Idempotent. *)

val chunks : jobs:int -> n:int -> (int * int) array
(** Balanced contiguous [(lo, len)] ranges covering [0 .. n-1]: at most
    [jobs] chunks, none empty, sizes differ by at most one with the
    remainder on the lowest-index chunks. Empty array when [n <= 0]. *)
