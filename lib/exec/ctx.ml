module Budget = Mutsamp_robust.Budget
module Metrics = Mutsamp_obs.Metrics
module Trace = Mutsamp_obs.Trace

(* Per-shard wall time, recorded on the executing domain. The spread
   between min and max is the shard-imbalance signal: a max far above
   the mean means one chunk dominated the join. *)
let h_shard_seconds = Metrics.histogram "exec.shard_seconds"

type sink = Global | Silent
type engine = Auto | Packed | Event | Compiled | Serial

type t = {
  pool : Pool.t option;
  budget : Budget.t option;
  sink : sink;
  progress : (stage:string -> done_:int -> total:int -> unit) option;
  static_filter : bool;
  dominance : bool;
  store : Mutsamp_store.Store.t option;
  engine : engine;
}

let default =
  {
    pool = None;
    budget = None;
    sink = Global;
    progress = None;
    static_filter = true;
    dominance = true;
    store = None;
    engine = Auto;
  }

let sequential = default
let with_pool pool = { default with pool = Some pool }
let with_store store = { default with store = Some store }

let make ?pool ?budget ?store ?progress ?(static_filter = true) ?(dominance = true)
    ?(engine = Auto) () =
  { pool; budget; sink = Global; progress; static_filter; dominance; store; engine }
let store t = t.store

let engine_to_string = function
  | Auto -> "auto"
  | Packed -> "packed"
  | Event -> "event"
  | Compiled -> "compiled"
  | Serial -> "serial"

(* [Serial] is deliberately not parseable: it is the single-lane
   reference implementation the differential tests compare against, an
   API-level knob rather than a user-facing engine. *)
let engine_of_string = function
  | "auto" -> Some Auto
  | "packed" -> Some Packed
  | "event" -> Some Event
  | "compiled" -> Some Compiled
  | _ -> None

let jobs t =
  match t.pool with
  | None -> 1
  | Some p -> if Pool.in_worker () then 1 else Pool.size p

let budget t =
  match t.budget with Some b -> b | None -> Budget.ambient ()

let progress t ~stage ~done_ ~total =
  match t.progress with
  | None -> ()
  | Some f -> f ~stage ~done_ ~total

let with_sink t f =
  match t.sink with Global -> f () | Silent -> Metrics.with_suppressed f

(* The one sharding shape every engine uses: balanced contiguous
   chunks, per-shard budget split (refunded after the join), results
   merged in chunk order. With an effective job count of 1 — no pool,
   pool of size 1, or already inside a worker — the body runs once with
   the whole range and the undivided budget: exactly the sequential
   path, so jobs=1 stays bit-identical by construction. *)
(* Campaign-cell parallelism: one pool task per list element, results
   in list order. Cells share the context budget (its quotas are
   atomic) rather than splitting it — a cell's cost is unknown up
   front, and campaigns want the global cap, not a per-cell one. *)
let map_cells t xs ~f =
  match t.pool with
  | Some pool when jobs t > 1 && List.length xs > 1 ->
    let arr = Array.of_list xs in
    Array.to_list
      (Pool.run pool (Array.length arr) ~f:(fun i ->
           Trace.with_span "cell"
             ~attrs:[ ("index", string_of_int i) ]
             (fun () -> with_sink t (fun () -> f arr.(i)))))
  | _ -> List.map f xs

let map_shards t ~n ~f =
  let b = budget t in
  let j = jobs t in
  if j <= 1 || n <= 1 then [| f ~budget:b ~lo:0 ~len:n |]
  else begin
    let pool = Option.get t.pool in
    let ch = Pool.chunks ~jobs:j ~n in
    let k = Array.length ch in
    if k <= 1 then [| f ~budget:b ~lo:0 ~len:n |]
    else begin
      let budgets = Budget.split b k in
      Fun.protect
        ~finally:(fun () -> Budget.refund b budgets)
        (fun () ->
          Pool.run pool k ~f:(fun i ->
              let lo, len = ch.(i) in
              let v, dt =
                Trace.with_span_timed "shard"
                  ~attrs:
                    [
                      ("index", string_of_int i);
                      ("lo", string_of_int lo);
                      ("len", string_of_int len);
                    ]
                  (fun () -> with_sink t (fun () -> f ~budget:budgets.(i) ~lo ~len))
              in
              Metrics.observe h_shard_seconds dt;
              v))
    end
  end
