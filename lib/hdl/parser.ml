open Ast

exception Parse_error of string

type state = { tokens : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.tokens.(st.pos)
let line st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "line %d: %s (found %s)" (line st) msg
          (Lexer.token_to_string (peek st))))

let expect st tok msg =
  if peek st = tok then advance st else fail st msg

let expect_kw st kw = expect st (Lexer.KW kw) (Printf.sprintf "expected %S" kw)

let ident st =
  match peek st with
  | Lexer.IDENT name -> advance st; name
  | _ -> fail st "expected identifier"

let num st =
  match peek st with
  | Lexer.NUM v -> advance st; v
  | _ -> fail st "expected number"

let literal st =
  match peek st with
  | Lexer.NUM v -> advance st; lit v
  | Lexer.SIZED (w, v) -> advance st; lit ~width:w v
  | _ -> fail st "expected literal"

let binop_of_kw = function
  | "and" -> Some And | "or" -> Some Or | "xor" -> Some Xor
  | "nand" -> Some Nand | "nor" -> Some Nor | "xnor" -> Some Xnor
  | _ -> None

let rec expr st = logical st

and logical st =
  let rec loop acc =
    match peek st with
    | Lexer.KW kw ->
      (match binop_of_kw kw with
       | Some op -> advance st; loop (Binop (op, acc, relational st))
       | None -> acc)
    | _ -> acc
  in
  loop (relational st)

and relational st =
  let left = additive st in
  let op =
    match peek st with
    | Lexer.EQ -> Some Eq
    | Lexer.NEQ -> Some Neq
    | Lexer.LT -> Some Lt
    | Lexer.LE -> Some Le
    | Lexer.GT -> Some Gt
    | Lexer.GE -> Some Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op -> advance st; Binop (op, left, additive st)

and additive st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS -> advance st; loop (Binop (Add, acc, concat_level st))
    | Lexer.MINUS -> advance st; loop (Binop (Sub, acc, concat_level st))
    | _ -> acc
  in
  loop (concat_level st)

and concat_level st =
  let rec loop acc =
    match peek st with
    | Lexer.AMP -> advance st; loop (Concat (acc, unary st))
    | _ -> acc
  in
  loop (unary st)

and unary st =
  match peek st with
  | Lexer.KW "not" -> advance st; Unop (Not, unary st)
  | _ -> postfix st

and postfix st =
  let rec loop acc =
    match peek st with
    | Lexer.LBRACKET ->
      advance st;
      let first = num st in
      let e =
        match peek st with
        | Lexer.COLON ->
          advance st;
          let lo = num st in
          Slice (acc, first, lo)
        | _ -> Bit (acc, first)
      in
      expect st Lexer.RBRACKET "expected ']'";
      loop e
    | _ -> acc
  in
  loop (atom st)

and atom st =
  match peek st with
  | Lexer.NUM v -> advance st; const v
  | Lexer.SIZED (w, v) -> advance st; const ~width:w v
  | Lexer.IDENT name -> advance st; Ref name
  | Lexer.LPAREN ->
    advance st;
    let e = expr st in
    expect st Lexer.RPAREN "expected ')'";
    e
  | Lexer.KW "resize" ->
    advance st;
    expect st Lexer.LPAREN "expected '(' after resize";
    let e = expr st in
    expect st Lexer.COMMA "expected ',' in resize";
    let w = num st in
    expect st Lexer.RPAREN "expected ')' after resize";
    Resize (e, w)
  | _ -> fail st "expected expression"

let parse_type st =
  match peek st with
  | Lexer.KW "bit" -> advance st; 1
  | Lexer.KW "unsigned" ->
    advance st;
    expect st Lexer.LPAREN "expected '(' after unsigned";
    let w = num st in
    expect st Lexer.RPAREN "expected ')' after width";
    if w < 1 then fail st (Printf.sprintf "width %d out of range" w);
    w
  | _ -> fail st "expected type (bit or unsigned(n))"

let rec stmt st =
  match peek st with
  | Lexer.KW "null" ->
    advance st;
    expect st Lexer.SEMI "expected ';' after null";
    Null
  | Lexer.KW "if" -> advance st; if_tail st
  | Lexer.KW "case" ->
    advance st;
    let scrut = expr st in
    expect_kw st "is";
    let rec arms acc =
      match peek st with
      | Lexer.KW "when" ->
        advance st;
        (match peek st with
         | Lexer.KW "others" ->
           advance st;
           expect st Lexer.ARROW "expected '=>'";
           let body = stmts st in
           (List.rev acc, Some body)
         | _ ->
           let rec choices cs =
             let c = literal st in
             match peek st with
             | Lexer.PIPE -> advance st; choices (c :: cs)
             | _ -> List.rev (c :: cs)
           in
           let cs = choices [] in
           expect st Lexer.ARROW "expected '=>'";
           let body = stmts st in
           arms ((cs, body) :: acc))
      | _ -> (List.rev acc, None)
    in
    let arms_list, others = arms [] in
    expect_kw st "end";
    expect_kw st "case";
    expect st Lexer.SEMI "expected ';' after end case";
    Case (scrut, arms_list, others)
  | Lexer.IDENT _ ->
    let name = ident st in
    expect st Lexer.ASSIGN "expected ':='";
    let e = expr st in
    expect st Lexer.SEMI "expected ';' after assignment";
    Assign (name, e)
  | _ -> fail st "expected statement"

(* Body of an [if]; the leading keyword has been consumed. [elsif] chains
   desugar into nested conditionals. *)
and if_tail st =
  let cond = expr st in
  expect_kw st "then";
  let then_branch = stmts st in
  match peek st with
  | Lexer.KW "elsif" ->
    advance st;
    let nested = if_tail st in
    If (cond, then_branch, [ nested ])
  | Lexer.KW "else" ->
    advance st;
    let else_branch = stmts st in
    expect_kw st "end";
    expect_kw st "if";
    expect st Lexer.SEMI "expected ';' after end if";
    If (cond, then_branch, else_branch)
  | _ ->
    expect_kw st "end";
    expect_kw st "if";
    expect st Lexer.SEMI "expected ';' after end if";
    If (cond, then_branch, [])

and stmts st =
  let starts_stmt = function
    | Lexer.KW ("null" | "if" | "case") | Lexer.IDENT _ -> true
    | Lexer.KW _ | Lexer.NUM _ | Lexer.SIZED _ | Lexer.ASSIGN | Lexer.EQ
    | Lexer.NEQ | Lexer.LT | Lexer.LE | Lexer.GT | Lexer.GE | Lexer.PLUS
    | Lexer.MINUS | Lexer.AMP | Lexer.LPAREN | Lexer.RPAREN | Lexer.LBRACKET
    | Lexer.RBRACKET | Lexer.COLON | Lexer.SEMI | Lexer.COMMA | Lexer.ARROW
    | Lexer.PIPE | Lexer.EOF -> false
  in
  let rec loop acc =
    if starts_stmt (peek st) then loop (stmt st :: acc) else List.rev acc
  in
  loop []

let decl st =
  let kind_kw =
    match peek st with
    | Lexer.KW (("input" | "output" | "reg" | "var" | "const") as k) -> advance st; k
    | _ -> fail st "expected declaration"
  in
  let name = ident st in
  expect st Lexer.COLON "expected ':' in declaration";
  let width = parse_type st in
  let kind =
    match kind_kw with
    | "input" -> Input
    | "output" -> Output
    | "var" -> Var
    | "reg" | "const" ->
      expect st Lexer.ASSIGN "expected ':=' with initial value";
      let v = literal st in
      if kind_kw = "reg" then Reg v else Const_decl v
    | _ -> assert false
  in
  expect st Lexer.SEMI "expected ';' after declaration";
  { name; width; kind }

let design st =
  expect_kw st "design";
  let name = ident st in
  expect_kw st "is";
  let rec decls acc =
    match peek st with
    | Lexer.KW ("input" | "output" | "reg" | "var" | "const") -> decls (decl st :: acc)
    | _ -> List.rev acc
  in
  let decls_list = decls [] in
  expect_kw st "begin";
  let body = stmts st in
  expect_kw st "end";
  expect_kw st "design";
  expect st Lexer.SEMI "expected ';' after end design";
  { name; decls = decls_list; body }

let design_of_string src =
  let st = { tokens = Lexer.tokenize src; pos = 0 } in
  let d = design st in
  if peek st <> Lexer.EOF then fail st "trailing input after design";
  d

let expr_of_string src =
  let st = { tokens = Lexer.tokenize src; pos = 0 } in
  let e = expr st in
  if peek st <> Lexer.EOF then fail st "trailing input after expression";
  e

(* --- typed-result entry point ------------------------------------------ *)

module Rerror = Mutsamp_robust.Error
module Chaos = Mutsamp_robust.Chaos

(* Recover the "line N:" prefix both the lexer and [fail] embed. *)
let located_error ?file msg =
  let line =
    if String.length msg > 5 && String.sub msg 0 5 = "line " then
      let rest = String.sub msg 5 (String.length msg - 5) in
      match String.index_opt rest ':' with
      | Some i -> int_of_string_opt (String.sub rest 0 i)
      | None -> None
    else None
  in
  Rerror.Parse_error { loc = { Rerror.file; line }; msg }

let design_result ?file src =
  try
    match Chaos.trip Chaos.Parse_input with
    | Error e -> Error e
    | Ok () -> Ok (design_of_string src)
  with
  | Parse_error msg | Lexer.Lex_error msg -> Error (located_error ?file msg)
  | Chaos.Injected _ -> Error (Rerror.Injected Rerror.Parse)
  | Stack_overflow ->
    Error
      (Rerror.Parse_error
         { loc = { Rerror.file; line = None }; msg = "design too deeply nested to parse" })
