module Bitvec = Mutsamp_util.Bitvec
module Prng = Mutsamp_util.Prng

let input_bits d =
  List.fold_left (fun acc (dc : Ast.decl) -> acc + dc.width) 0 (Ast.inputs d)

(* Uniform w-bit value; widths above 30 are drawn in two halves so the
   PRNG bound always fits a native int. *)
let rand_bits prng w =
  if w <= 30 then Prng.int prng (1 lsl w)
  else (Prng.int prng (1 lsl (w - 30)) lsl 30) lor Prng.int prng (1 lsl 30)

(* Ports up to 62 bits keep the historical single-draw stream (seeded
   experiments stay reproducible); wider ports fall back to per-bit
   draws. *)
let rand_bv prng w =
  if w <= 62 then Bitvec.make ~width:w (rand_bits prng w)
  else Bitvec.init w (fun _ -> Prng.bool prng)

let random prng d =
  List.map
    (fun (dc : Ast.decl) -> (dc.name, rand_bv prng dc.width))
    (Ast.inputs d)

let random_sequence prng d n = List.init n (fun _ -> random prng d)

let of_code d code =
  let bits = input_bits d in
  if bits > 62 then invalid_arg "Stimuli.of_code: too many input bits";
  if code < 0 || (bits < 62 && code >= 1 lsl bits) then
    invalid_arg "Stimuli.of_code: code out of range";
  let rec decode acc shift = function
    | [] -> List.rev acc
    | (dc : Ast.decl) :: rest ->
      let v = (code lsr shift) land ((1 lsl dc.width) - 1) in
      decode ((dc.name, Bitvec.make ~width:dc.width v) :: acc) (shift + dc.width) rest
  in
  decode [] 0 (Ast.inputs d)

let to_code d stimulus =
  let rec encode acc shift = function
    | [] -> acc
    | (dc : Ast.decl) :: rest ->
      let v =
        match List.assoc_opt dc.name stimulus with
        | Some bv -> Bitvec.to_int bv
        | None -> invalid_arg ("Stimuli.to_code: missing input " ^ dc.name)
      in
      encode (acc lor (v lsl shift)) (shift + dc.width) rest
  in
  encode 0 0 (Ast.inputs d)

let enumerate d =
  let bits = input_bits d in
  if bits > 20 then
    invalid_arg
      (Printf.sprintf "Stimuli.enumerate: %d input bits is too many to enumerate" bits);
  List.init (1 lsl bits) (of_code d)

let all_zero d =
  List.map (fun (dc : Ast.decl) -> (dc.name, Bitvec.zero dc.width)) (Ast.inputs d)
