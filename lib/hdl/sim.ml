open Ast
module Bitvec = Mutsamp_util.Bitvec

type stimulus = (string * Bitvec.t) list
type observation = (string * Bitvec.t) list

exception Sim_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Sim_error msg)) fmt

type slot = {
  slot_width : int;
  slot_kind : kind;
  slot_index : int;
}

type t = {
  sim_design : design;
  slots : (string, slot) Hashtbl.t;
  widths : int array;
  values : int array;  (* per-cycle working values *)
  regs_cur : int array;  (* register file, indexed by slot *)
  regs_next : int array;
  regs_assigned : bool array;
  reg_slots : int array;  (* slot indices that are registers *)
  reg_resets : int array;  (* indexed like [reg_slots] *)
  input_slots : (string * int * int) array;  (* name, slot, width *)
  output_slots : (string * int * int) array;
  const_inits : (int * int) array;  (* slot, value *)
  var_slots : int array;
  body : (t -> unit) array;
}

let mask w = (1 lsl w) - 1

let lit_value what (l : literal) =
  match l.width with
  | Some _ -> l.value
  | None -> fail "unsized literal in %s: design not elaborated" what

(* --- expression compilation ------------------------------------------- *)

let rec compile_expr slots design_name e : (t -> int) * int =
  match e with
  | Const l ->
    let v = lit_value design_name l in
    let w = Option.get l.width in
    ((fun _ -> v), w)
  | Ref name ->
    let slot =
      match Hashtbl.find_opt slots name with
      | Some s -> s
      | None -> fail "%s: unknown name %s" design_name name
    in
    let i = slot.slot_index in
    ((fun t -> t.values.(i)), slot.slot_width)
  | Unop (Not, a) ->
    let f, w = compile_expr slots design_name a in
    let m = mask w in
    ((fun t -> lnot (f t) land m), w)
  | Binop (op, a, b) ->
    let fa, wa = compile_expr slots design_name a in
    let fb, _wb = compile_expr slots design_name b in
    let m = mask wa in
    let g =
      match op with
      | Add -> fun t -> (fa t + fb t) land m
      | Sub -> fun t -> (fa t - fb t) land m
      | And -> fun t -> fa t land fb t
      | Or -> fun t -> fa t lor fb t
      | Xor -> fun t -> fa t lxor fb t
      | Nand -> fun t -> lnot (fa t land fb t) land m
      | Nor -> fun t -> lnot (fa t lor fb t) land m
      | Xnor -> fun t -> lnot (fa t lxor fb t) land m
      | Eq -> fun t -> if fa t = fb t then 1 else 0
      | Neq -> fun t -> if fa t <> fb t then 1 else 0
      | Lt -> fun t -> if fa t < fb t then 1 else 0
      | Le -> fun t -> if fa t <= fb t then 1 else 0
      | Gt -> fun t -> if fa t > fb t then 1 else 0
      | Ge -> fun t -> if fa t >= fb t then 1 else 0
    in
    let w = if is_relational op then 1 else wa in
    (g, w)
  | Bit (a, i) ->
    let f, _ = compile_expr slots design_name a in
    ((fun t -> (f t lsr i) land 1), 1)
  | Slice (a, hi, lo) ->
    let f, _ = compile_expr slots design_name a in
    let m = mask (hi - lo + 1) in
    ((fun t -> (f t lsr lo) land m), hi - lo + 1)
  | Concat (a, b) ->
    let fa, wa = compile_expr slots design_name a in
    let fb, wb = compile_expr slots design_name b in
    ((fun t -> (fa t lsl wb) lor fb t), wa + wb)
  | Resize (a, w) ->
    let f, _ = compile_expr slots design_name a in
    let m = mask w in
    ((fun t -> f t land m), w)

(* --- statement compilation -------------------------------------------- *)

let rec compile_stmt slots design_name s : t -> unit =
  match s with
  | Null -> fun _ -> ()
  | Assign (name, e) ->
    let slot =
      match Hashtbl.find_opt slots name with
      | Some sl -> sl
      | None -> fail "%s: unknown assignment target %s" design_name name
    in
    let f, _ = compile_expr slots design_name e in
    let i = slot.slot_index in
    (match slot.slot_kind with
     | Var | Output -> fun t -> t.values.(i) <- f t
     | Reg _ ->
       fun t ->
         t.regs_next.(i) <- f t;
         t.regs_assigned.(i) <- true
     | Input -> fail "%s: assignment to input %s" design_name name
     | Const_decl _ -> fail "%s: assignment to constant %s" design_name name)
  | If (c, then_branch, else_branch) ->
    let fc, _ = compile_expr slots design_name c in
    let ft = compile_stmts slots design_name then_branch in
    let fe = compile_stmts slots design_name else_branch in
    fun t -> if fc t <> 0 then ft t else fe t
  | Case (scrut, arms, others) ->
    let fs, _ = compile_expr slots design_name scrut in
    let dispatch = Hashtbl.create 16 in
    List.iter
      (fun (choices, body) ->
        let fb = compile_stmts slots design_name body in
        List.iter
          (fun l -> Hashtbl.replace dispatch (lit_value design_name l) fb)
          choices)
      arms;
    let fothers =
      match others with
      | Some body -> compile_stmts slots design_name body
      | None -> fun _ -> ()
    in
    fun t ->
      (match Hashtbl.find_opt dispatch (fs t) with
       | Some fb -> fb t
       | None -> fothers t)

and compile_stmts slots design_name ss =
  let fs = Array.of_list (List.map (compile_stmt slots design_name) ss) in
  fun t -> Array.iter (fun f -> f t) fs

(* --- instance construction -------------------------------------------- *)

let create (d : design) =
  if not (Check.is_elaborated d) then
    fail "%s: design not elaborated (run Check.elaborate first)" d.name;
  (* Signal values live in native ints here; wide circuits are served
     by synthesis plus the netlist simulators instead. *)
  List.iter
    (fun (dc : decl) ->
      if dc.width > 62 then
        fail "%s: %s is %d bits wide; behavioural simulation is limited to 62-bit signals"
          d.name dc.name dc.width)
    d.decls;
  let slots = Hashtbl.create 16 in
  let decls = Array.of_list d.decls in
  Array.iteri
    (fun i (dc : decl) ->
      Hashtbl.replace slots dc.name
        { slot_width = dc.width; slot_kind = dc.kind; slot_index = i })
    decls;
  let n = Array.length decls in
  let widths = Array.map (fun (dc : decl) -> dc.width) decls in
  let pick f =
    Array.of_list (List.concat (List.mapi (fun i dc -> f (i, dc)) (Array.to_list decls)))
  in
  let input_slots =
    pick (fun (i, (dc : decl)) ->
        match dc.kind with
        | Input -> [ (dc.name, i, dc.width) ]
        | Output | Reg _ | Var | Const_decl _ -> [])
  in
  let output_slots =
    pick (fun (i, (dc : decl)) ->
        match dc.kind with
        | Output -> [ (dc.name, i, dc.width) ]
        | Input | Reg _ | Var | Const_decl _ -> [])
  in
  let reg_pairs =
    pick (fun (i, (dc : decl)) ->
        match dc.kind with
        | Reg reset -> [ (i, lit_value d.name reset) ]
        | Input | Output | Var | Const_decl _ -> [])
  in
  let const_inits =
    pick (fun (i, (dc : decl)) ->
        match dc.kind with
        | Const_decl v -> [ (i, lit_value d.name v) ]
        | Input | Output | Reg _ | Var -> [])
  in
  let var_slots =
    pick (fun (i, (dc : decl)) ->
        match dc.kind with
        | Var -> [ i ]
        | Input | Output | Reg _ | Const_decl _ -> [])
  in
  let t =
    {
      sim_design = d;
      slots;
      widths;
      values = Array.make n 0;
      regs_cur = Array.make n 0;
      regs_next = Array.make n 0;
      regs_assigned = Array.make n false;
      reg_slots = Array.map fst reg_pairs;
      reg_resets = Array.map snd reg_pairs;
      input_slots;
      output_slots;
      const_inits;
      var_slots;
      body = Array.of_list (List.map (compile_stmt slots d.name) d.body);
    }
  in
  Array.iteri (fun k slot -> t.regs_cur.(slot) <- t.reg_resets.(k)) t.reg_slots;
  t

let design t = t.sim_design

let reset t =
  Array.iteri (fun k slot -> t.regs_cur.(slot) <- t.reg_resets.(k)) t.reg_slots

let step t stimulus =
  (* Load the working array: inputs, current registers, constants; zero
     variables and outputs. *)
  Array.iter
    (fun (name, slot, width) ->
      match List.assoc_opt name stimulus with
      | None -> fail "%s: missing input %s" t.sim_design.name name
      | Some v ->
        if Bitvec.width v <> width then
          fail "%s: input %s expects width %d, got %d" t.sim_design.name name width
            (Bitvec.width v);
        t.values.(slot) <- Bitvec.to_int v)
    t.input_slots;
  List.iter
    (fun (name, _) ->
      match Hashtbl.find_opt t.slots name with
      | Some { slot_kind = Input; _ } -> ()
      | Some _ -> fail "%s: stimulus names non-input %s" t.sim_design.name name
      | None -> fail "%s: stimulus names unknown %s" t.sim_design.name name)
    stimulus;
  Array.iter (fun slot -> t.values.(slot) <- t.regs_cur.(slot)) t.reg_slots;
  Array.iter (fun (slot, v) -> t.values.(slot) <- v) t.const_inits;
  Array.iter (fun slot -> t.values.(slot) <- 0) t.var_slots;
  Array.iter (fun (_, slot, _) -> t.values.(slot) <- 0) t.output_slots;
  Array.iter (fun slot -> t.regs_assigned.(slot) <- false) t.reg_slots;
  (* Execute the cycle. *)
  Array.iter (fun f -> f t) t.body;
  (* Commit deferred register writes. *)
  Array.iter
    (fun slot -> if t.regs_assigned.(slot) then t.regs_cur.(slot) <- t.regs_next.(slot))
    t.reg_slots;
  Array.to_list
    (Array.map
       (fun (name, slot, width) -> (name, Bitvec.make ~width t.values.(slot)))
       t.output_slots)

let observe_regs t =
  Array.to_list
    (Array.map
       (fun slot ->
         let width = t.widths.(slot) in
         let name =
           Hashtbl.fold
             (fun name s acc -> if s.slot_index = slot then name else acc)
             t.slots ""
         in
         (name, Bitvec.make ~width t.regs_cur.(slot)))
       t.reg_slots)

let set_regs t values =
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt t.slots name with
      | Some { slot_kind = Reg _; slot_index; slot_width } ->
        if Bitvec.width v <> slot_width then
          fail "%s: register %s expects width %d, got %d" t.sim_design.name name
            slot_width (Bitvec.width v);
        t.regs_cur.(slot_index) <- Bitvec.to_int v
      | Some _ -> fail "%s: %s is not a register" t.sim_design.name name
      | None -> fail "%s: unknown register %s" t.sim_design.name name)
    values

let run d stimuli =
  let t = create d in
  reset t;
  List.map (step t) stimuli

let outputs_equal (a : observation) (b : observation) =
  List.length a = List.length b
  && List.for_all2
       (fun (na, va) (nb, vb) -> String.equal na nb && Bitvec.equal va vb)
       a b
