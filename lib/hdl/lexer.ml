type token =
  | IDENT of string
  | NUM of int
  | SIZED of int * int
  | KW of string
  | ASSIGN
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | AMP
  | LPAREN | RPAREN
  | LBRACKET | RBRACKET
  | COLON | SEMI | COMMA
  | ARROW
  | PIPE
  | EOF

exception Lex_error of string

let keywords =
  [
    "design"; "is"; "input"; "output"; "reg"; "var"; "const"; "begin"; "end";
    "if"; "then"; "else"; "elsif"; "case"; "when"; "others"; "null";
    "bit"; "unsigned"; "resize";
    "and"; "or"; "xor"; "nand"; "nor"; "xnor"; "not";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let error line msg = raise (Lex_error (Printf.sprintf "line %d: %s" line msg))

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let rec scan i =
    if i >= n then emit EOF
    else
      match src.[i] with
      | '\n' -> incr line; scan (i + 1)
      | ' ' | '\t' | '\r' -> scan (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        scan (skip (i + 2))
      | '-' -> emit MINUS; scan (i + 1)
      | '+' -> emit PLUS; scan (i + 1)
      | '&' -> emit AMP; scan (i + 1)
      | '(' -> emit LPAREN; scan (i + 1)
      | ')' -> emit RPAREN; scan (i + 1)
      | '[' -> emit LBRACKET; scan (i + 1)
      | ']' -> emit RBRACKET; scan (i + 1)
      | ';' -> emit SEMI; scan (i + 1)
      | ',' -> emit COMMA; scan (i + 1)
      | '|' -> emit PIPE; scan (i + 1)
      | ':' when i + 1 < n && src.[i + 1] = '=' -> emit ASSIGN; scan (i + 2)
      | ':' -> emit COLON; scan (i + 1)
      | '=' when i + 1 < n && src.[i + 1] = '>' -> emit ARROW; scan (i + 2)
      | '=' -> emit EQ; scan (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '=' -> emit NEQ; scan (i + 2)
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE; scan (i + 2)
      | '<' -> emit LT; scan (i + 1)
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE; scan (i + 2)
      | '>' -> emit GT; scan (i + 1)
      | '\'' ->
        (* Bit character literal: '0' or '1'. *)
        if i + 2 < n && src.[i + 2] = '\'' && (src.[i + 1] = '0' || src.[i + 1] = '1')
        then begin
          emit (SIZED (1, if src.[i + 1] = '1' then 1 else 0));
          scan (i + 3)
        end
        else error !line "malformed bit literal (expected '0' or '1')"
      | c when is_digit c ->
        let rec digits j = if j < n && is_digit src.[j] then digits (j + 1) else j in
        let j = digits i in
        let num =
          match int_of_string_opt (String.sub src i (j - i)) with
          | Some v -> v
          | None -> error !line "numeric literal out of range"
        in
        if j + 1 < n && src.[j] = '\'' && src.[j + 1] = 'b' then begin
          (* Sized binary literal: <width>'b<bits>. *)
          let rec bits k acc count =
            if k < n && (src.[k] = '0' || src.[k] = '1') then
              bits (k + 1) ((acc lsl 1) lor (Char.code src.[k] - Char.code '0')) (count + 1)
            else (k, acc, count)
          in
          let k, value, count = bits (j + 2) 0 0 in
          if count <> num then
            error !line
              (Printf.sprintf "sized literal: %d bits given, width says %d" count num);
          (* Literal values are native ints, so sized literals carry at
             most 62 bits; wider signals are built structurally. *)
          if num < 1 || num > 62 then
            error !line (Printf.sprintf "sized literal: width %d out of range" num);
          emit (SIZED (num, value));
          scan k
        end
        else begin
          emit (NUM num);
          scan j
        end
      | c when is_ident_start c ->
        let rec ident j = if j < n && is_ident_char src.[j] then ident (j + 1) else j in
        let j = ident i in
        let word = String.sub src i (j - i) in
        let lower = String.lowercase_ascii word in
        if List.mem lower keywords then emit (KW lower) else emit (IDENT word);
        scan j
      | c -> error !line (Printf.sprintf "illegal character %C" c)
  in
  scan 0;
  Array.of_list (List.rev !tokens)

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUM v -> Printf.sprintf "number %d" v
  | SIZED (w, v) -> Printf.sprintf "literal %d'b(%d)" w v
  | KW s -> Printf.sprintf "keyword %S" s
  | ASSIGN -> "':='"
  | EQ -> "'='" | NEQ -> "'/='" | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='"
  | PLUS -> "'+'" | MINUS -> "'-'" | AMP -> "'&'"
  | LPAREN -> "'('" | RPAREN -> "')'"
  | LBRACKET -> "'['" | RBRACKET -> "']'"
  | COLON -> "':'" | SEMI -> "';'" | COMMA -> "','"
  | ARROW -> "'=>'"
  | PIPE -> "'|'"
  | EOF -> "end of input"
