(** Recursive-descent parser for the HDL concrete syntax.

    Grammar (loosest binding first):
    {v
design     := "design" ident "is" decls "begin" stmts "end" "design" ";"
decl       := ("input"|"output"|"var") ident ":" type ";"
            | ("reg"|"const") ident ":" type ":=" literal ";"
type       := "bit" | "unsigned" "(" num ")"
stmt       := ident ":=" expr ";"
            | "if" expr "then" stmts { "elsif" expr "then" stmts }
              [ "else" stmts ] "end" "if" ";"
            | "case" expr "is" arms [ "when" "others" "=>" stmts ]
              "end" "case" ";"
            | "null" ";"
arm        := "when" literal { "|" literal } "=>" stmts
expr       := logical
logical    := relational { ("and"|"or"|"xor"|"nand"|"nor"|"xnor") relational }
relational := additive [ ("="|"/="|"<"|"<="|">"|">=") additive ]
additive   := concat { ("+"|"-") concat }
concat     := unary { "&" unary }
unary      := "not" unary | postfix
postfix    := atom { "[" num [ ":" num ] "]" }
atom       := literal | ident | "(" expr ")" | "resize" "(" expr "," num ")"
literal    := num | sized-binary | bit-char
    v}

    The result still contains unsized literals; run {!Check.elaborate}
    before simulating, mutating or synthesising. *)

exception Parse_error of string
(** Message includes a 1-based line number. *)

val expr_of_string : string -> Ast.expr
(** Parse a standalone expression (used by tests and the CLI). *)

val design_result :
  ?file:string -> string -> (Ast.design, Mutsamp_robust.Error.t) result
(** Typed-result variant of {!design_of_string}: lexer and parser
    failures become [Error (Parse_error _)] carrying the (1-based)
    source line, never an exception. [file] only labels the error
    location. *)
