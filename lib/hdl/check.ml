open Ast

exception Check_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Check_error msg)) fmt

type env = { design_name : string; table : (string, decl) Hashtbl.t }

let build_env (d : design) =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (dc : decl) ->
      if Hashtbl.mem table dc.name then
        fail "%s: duplicate declaration of %s" d.name dc.name;
      if dc.width < 1 then
        fail "%s: %s has width %d, not positive" d.name dc.name dc.width;
      Hashtbl.add table dc.name dc)
    d.decls;
  { design_name = d.name; table }

let lookup env name =
  match Hashtbl.find_opt env.table name with
  | Some dc -> dc
  | None -> fail "%s: undeclared name %s" env.design_name name

let fits ~width value = value >= 0 && (width >= 63 || value < 1 lsl width)

let sized env ~width (l : literal) =
  (match l.width with
   | Some w when w <> width ->
     fail "%s: literal %d sized %d bits where %d expected" env.design_name l.value w width
   | Some _ | None -> ());
  if not (fits ~width l.value) then
    fail "%s: literal %d does not fit in %d bits" env.design_name l.value width;
  { value = l.value; width = Some width }

(* Bottom-up width, [None] when the expression is an unsized literal
   (or an arithmetic/logic combination of unsized literals). *)
let rec width_of env = function
  | Const l -> l.width
  | Ref name ->
    let dc = lookup env name in
    Some dc.width
  | Unop (Not, e) -> width_of env e
  | Binop (op, a, b) ->
    if is_relational op then Some 1
    else (match width_of env a with Some w -> Some w | None -> width_of env b)
  | Bit (_, _) -> Some 1
  | Slice (_, hi, lo) -> Some (hi - lo + 1)
  | Concat (a, b) ->
    (match width_of env a, width_of env b with
     | Some wa, Some wb -> Some (wa + wb)
     | None, _ | _, None -> None)
  | Resize (_, w) -> Some w

let readable env name =
  let dc = lookup env name in
  match dc.kind with
  | Input | Reg _ | Var | Const_decl _ -> dc
  | Output -> fail "%s: output %s is write-only" env.design_name name

(* Elaborate [e] so its width equals [expected] when given; returns the
   sized expression and its width. *)
let rec elab_expr env ~expected e =
  match e with
  | Const l ->
    let width =
      match l.width, expected with
      | Some w, _ -> w
      | None, Some w -> w
      | None, None ->
        fail "%s: cannot infer width of literal %d" env.design_name l.value
    in
    let l = sized env ~width { l with width = l.width } in
    check_expected env expected width;
    (Const l, width)
  | Ref name ->
    let dc = readable env name in
    check_expected env expected dc.width;
    (Ref name, dc.width)
  | Unop (Not, a) ->
    let a, w = elab_expr env ~expected a in
    (Unop (Not, a), w)
  | Binop (op, a, b) when is_relational op ->
    let w =
      match width_of env a with
      | Some w -> w
      | None ->
        (match width_of env b with
         | Some w -> w
         | None -> fail "%s: comparison between two unsized literals" env.design_name)
    in
    let a, _ = elab_expr env ~expected:(Some w) a in
    let b, _ = elab_expr env ~expected:(Some w) b in
    check_expected env expected 1;
    (Binop (op, a, b), 1)
  | Binop (op, a, b) ->
    let w =
      match expected with
      | Some w -> w
      | None ->
        (match width_of env a with
         | Some w -> w
         | None ->
           (match width_of env b with
            | Some w -> w
            | None ->
              fail "%s: cannot infer width of %s expression" env.design_name
                (binop_name op)))
    in
    let a, _ = elab_expr env ~expected:(Some w) a in
    let b, _ = elab_expr env ~expected:(Some w) b in
    (Binop (op, a, b), w)
  | Bit (a, i) ->
    let a, wa = elab_operand env a "bit select" in
    if i < 0 || i >= wa then
      fail "%s: bit index %d out of range for width %d" env.design_name i wa;
    check_expected env expected 1;
    (Bit (a, i), 1)
  | Slice (a, hi, lo) ->
    let a, wa = elab_operand env a "slice" in
    if lo < 0 || hi < lo || hi >= wa then
      fail "%s: slice [%d:%d] out of range for width %d" env.design_name hi lo wa;
    let w = hi - lo + 1 in
    check_expected env expected w;
    (Slice (a, hi, lo), w)
  | Concat (a, b) ->
    let a, wa = elab_operand env a "concat" in
    let b, wb = elab_operand env b "concat" in
    let w = wa + wb in
    check_expected env expected w;
    (Concat (a, b), w)
  | Resize (a, w) ->
    if w < 1 then fail "%s: resize to width %d out of range" env.design_name w;
    let a, _ = elab_operand env a "resize" in
    check_expected env expected w;
    (Resize (a, w), w)

(* Operand whose width must be self-evident (bit select, slice, concat,
   resize): an unsized literal is rejected. *)
and elab_operand env e what =
  match width_of env e with
  | Some w ->
    let e, w = elab_expr env ~expected:(Some w) e in
    (e, w)
  | None -> fail "%s: unsized literal operand of %s" env.design_name what

and check_expected env expected actual =
  match expected with
  | Some w when w <> actual ->
    fail "%s: expected width %d, got %d" env.design_name w actual
  | Some _ | None -> ()

let assignable env name =
  let dc = lookup env name in
  match dc.kind with
  | Output | Reg _ | Var -> dc
  | Input -> fail "%s: cannot assign to input %s" env.design_name name
  | Const_decl _ -> fail "%s: cannot assign to constant %s" env.design_name name

let rec elab_stmt env s =
  match s with
  | Null -> Null
  | Assign (name, e) ->
    let dc = assignable env name in
    let e, _ = elab_expr env ~expected:(Some dc.width) e in
    Assign (name, e)
  | If (c, t, e) ->
    let c, _ = elab_expr env ~expected:(Some 1) c in
    If (c, elab_stmts env t, elab_stmts env e)
  | Case (scrut, arms, others) ->
    let w =
      match width_of env scrut with
      | Some w -> w
      | None -> fail "%s: case scrutinee has no inferable width" env.design_name
    in
    let scrut, _ = elab_expr env ~expected:(Some w) scrut in
    let seen = Hashtbl.create 16 in
    let arm (choices, body) =
      let choice l =
        let l = sized env ~width:w l in
        if Hashtbl.mem seen l.value then
          fail "%s: duplicate case choice %d" env.design_name l.value;
        Hashtbl.add seen l.value ();
        l
      in
      (List.map choice choices, elab_stmts env body)
    in
    let arms = List.map arm arms in
    let others = Option.map (elab_stmts env) others in
    (match others with
     | Some _ -> ()
     | None ->
       let covered = Hashtbl.length seen in
       let needed = if w >= 62 then max_int else 1 lsl w in
       if covered < needed then
         fail "%s: case on %d-bit value covers %d of %d choices and has no others arm"
           env.design_name w covered needed);
    Case (scrut, arms, others)

and elab_stmts env ss = List.map (elab_stmt env) ss

let elab_decl env (dc : decl) =
  match dc.kind with
  | Input | Output | Var -> dc
  | Reg reset -> { dc with kind = Reg (sized env ~width:dc.width reset) }
  | Const_decl v -> { dc with kind = Const_decl (sized env ~width:dc.width v) }

let elaborate (d : design) =
  let env = build_env d in
  if inputs d = [] then fail "%s: design has no inputs" d.name;
  if outputs d = [] then fail "%s: design has no outputs" d.name;
  {
    d with
    decls = List.map (elab_decl env) d.decls;
    body = elab_stmts env d.body;
  }

let rec expr_sized = function
  | Const { width = None; _ } -> false
  | Const { width = Some _; _ } | Ref _ -> true
  | Unop (_, e) | Bit (e, _) | Slice (e, _, _) | Resize (e, _) -> expr_sized e
  | Binop (_, a, b) | Concat (a, b) -> expr_sized a && expr_sized b

let rec stmt_sized = function
  | Null -> true
  | Assign (_, e) -> expr_sized e
  | If (c, t, e) -> expr_sized c && List.for_all stmt_sized t && List.for_all stmt_sized e
  | Case (scrut, arms, others) ->
    expr_sized scrut
    && List.for_all
         (fun (cs, body) ->
           List.for_all (fun (l : literal) -> l.width <> None) cs
           && List.for_all stmt_sized body)
         arms
    && (match others with None -> true | Some body -> List.for_all stmt_sized body)

let is_elaborated (d : design) =
  List.for_all
    (fun (dc : decl) ->
      match dc.kind with
      | Input | Output | Var -> true
      | Reg l | Const_decl l -> l.width <> None)
    d.decls
  && List.for_all stmt_sized d.body

let is_combinational (d : design) = regs d = []

let expr_width (d : design) e =
  let env = build_env d in
  match width_of env e with
  | Some w -> w
  | None -> fail "%s: expression width not inferable" d.name
