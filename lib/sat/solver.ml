type result = Sat of bool array | Unsat

module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos

(* Observability series (no-ops unless metrics collection is on). *)
let c_solves = Metrics.counter "sat.solves"
let c_decisions = Metrics.counter "sat.decisions"
let c_propagations = Metrics.counter "sat.propagations"
let c_conflicts = Metrics.counter "sat.conflicts"
let c_learnt = Metrics.counter "sat.learnt_clauses"
let c_restarts = Metrics.counter "sat.restarts"
let c_sat = Metrics.counter "sat.result_sat"
let c_unsat = Metrics.counter "sat.result_unsat"
let h_conflicts = Metrics.histogram "sat.conflicts_per_solve"

(* Internal clause representation: a dynamic array of literal arrays.
   Clause 0..n_orig-1 are problem clauses, the rest are learnt. *)

type state = {
  nvars : int;
  mutable clauses : Cnf.clause array;
  mutable n_clauses : int;
  (* assignment: 0 unassigned, 1 true, -1 false, indexed by variable *)
  value : int array;
  level : int array;
  reason : int array;  (* clause index or -1, per variable *)
  trail : int array;  (* assigned literals in order *)
  mutable trail_size : int;
  trail_lim : int array;  (* trail size at each decision level *)
  mutable decision_level : int;
  (* watches.(lit_index l) = clause indices watching literal l *)
  watches : int list array;
  activity : float array;
  mutable var_inc : float;
  saved_phase : bool array;
  seen : bool array;  (* scratch for conflict analysis *)
}

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

let value_of_lit st l =
  let v = st.value.(abs l) in
  if l > 0 then v else -v

let grow_clauses st =
  if st.n_clauses = Array.length st.clauses then begin
    let bigger = Array.make (max 64 (2 * Array.length st.clauses)) [||] in
    Array.blit st.clauses 0 bigger 0 st.n_clauses;
    st.clauses <- bigger
  end

(* Install watches on the first two literals of a clause. *)
let watch_clause st ci =
  let c = st.clauses.(ci) in
  st.watches.(lit_index c.(0)) <- ci :: st.watches.(lit_index c.(0));
  if Array.length c > 1 then
    st.watches.(lit_index c.(1)) <- ci :: st.watches.(lit_index c.(1))

let enqueue st l reason =
  st.value.(abs l) <- (if l > 0 then 1 else -1);
  st.level.(abs l) <- st.decision_level;
  st.reason.(abs l) <- reason;
  st.trail.(st.trail_size) <- l;
  st.trail_size <- st.trail_size + 1

(* Propagate all pending assignments; returns the conflicting clause
   index or -1. *)
let propagate st queue_head =
  let conflict = ref (-1) in
  let head = ref queue_head in
  while !conflict = -1 && !head < st.trail_size do
    let l = st.trail.(!head) in
    incr head;
    Metrics.incr c_propagations;
    let falsified = -l in
    let wl = st.watches.(lit_index falsified) in
    st.watches.(lit_index falsified) <- [];
    let rec scan = function
      | [] -> ()
      | ci :: rest ->
        if !conflict <> -1 then
          (* Conflict found: re-register the remaining watchers. *)
          st.watches.(lit_index falsified) <-
            ci :: rest @ st.watches.(lit_index falsified)
        else begin
          let c = st.clauses.(ci) in
          (* Normalise: put the falsified literal at position 1. *)
          if Array.length c > 1 && c.(0) = falsified then begin
            c.(0) <- c.(1);
            c.(1) <- falsified
          end;
          if Array.length c > 1 && value_of_lit st c.(0) = 1 then begin
            (* Clause already satisfied; keep watching. *)
            st.watches.(lit_index falsified) <- ci :: st.watches.(lit_index falsified);
            scan rest
          end
          else begin
            (* Look for a new literal to watch. *)
            let n = Array.length c in
            let found = ref false in
            let k = ref 2 in
            while (not !found) && !k < n do
              if value_of_lit st c.(!k) <> -1 then begin
                let tmp = c.(1) in
                c.(1) <- c.(!k);
                c.(!k) <- tmp;
                st.watches.(lit_index c.(1)) <- ci :: st.watches.(lit_index c.(1));
                found := true
              end;
              incr k
            done;
            if !found then scan rest
            else begin
              (* Unit or conflicting. *)
              st.watches.(lit_index falsified) <- ci :: st.watches.(lit_index falsified);
              (match value_of_lit st c.(0) with
               | -1 -> conflict := ci
               | 0 -> enqueue st c.(0) ci
               | _ -> ());
              scan rest
            end
          end
        end
    in
    scan wl
  done;
  (!conflict, !head)

let bump st v =
  st.activity.(v) <- st.activity.(v) +. st.var_inc;
  if st.activity.(v) > 1e100 then begin
    for i = 1 to st.nvars do
      st.activity.(i) <- st.activity.(i) *. 1e-100
    done;
    st.var_inc <- st.var_inc *. 1e-100
  end

(* First-UIP conflict analysis. Returns the learnt clause (UIP literal
   first) and the backtrack level. *)
let analyze st conflict_ci =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  let ci = ref conflict_ci in
  let trail_pos = ref (st.trail_size - 1) in
  let continue = ref true in
  while !continue do
    let c = st.clauses.(!ci) in
    Array.iter
      (fun q ->
        let v = abs q in
        if q <> !p && not st.seen.(v) && st.level.(v) > 0 then begin
          st.seen.(v) <- true;
          bump st v;
          if st.level.(v) = st.decision_level then incr counter
          else learnt := q :: !learnt
        end)
      c;
    (* Find the next seen literal on the trail. *)
    while not st.seen.(abs st.trail.(!trail_pos)) do
      decr trail_pos
    done;
    let l = st.trail.(!trail_pos) in
    st.seen.(abs l) <- false;
    decr trail_pos;
    decr counter;
    if !counter = 0 then begin
      p := -l;
      continue := false
    end
    else begin
      p := l;
      ci := st.reason.(abs l)
    end
  done;
  let learnt_clause = Array.of_list (!p :: !learnt) in
  List.iter (fun q -> st.seen.(abs q) <- false) !learnt;
  (* Backtrack level: second-highest level in the clause. *)
  let back_level =
    Array.fold_left
      (fun acc q -> if q = !p then acc else max acc st.level.(abs q))
      0 learnt_clause
  in
  (learnt_clause, back_level)

(* Undo all assignments made at levels strictly above [lvl];
   trail_lim.(k) records the trail size just before level k's decision. *)
let backtrack st lvl =
  if st.decision_level > lvl then begin
    let bound = st.trail_lim.(lvl + 1) in
    for i = st.trail_size - 1 downto bound do
      let v = abs st.trail.(i) in
      st.saved_phase.(v) <- st.value.(v) = 1;
      st.value.(v) <- 0;
      st.reason.(v) <- -1
    done;
    st.trail_size <- bound;
    st.decision_level <- lvl
  end

let pick_branch st =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to st.nvars do
    if st.value.(v) = 0 && st.activity.(v) > !best_act then begin
      best := v;
      best_act := st.activity.(v)
    end
  done;
  if !best = 0 then None
  else Some (if st.saved_phase.(!best) then !best else - !best)

let add_learnt st c =
  grow_clauses st;
  let ci = st.n_clauses in
  st.clauses.(ci) <- c;
  st.n_clauses <- ci + 1;
  (* Watch the UIP literal and the highest-level other literal so the
     clause is immediately unit after backtracking. *)
  if Array.length c > 1 then begin
    let best = ref 1 in
    for k = 2 to Array.length c - 1 do
      if st.level.(abs c.(k)) > st.level.(abs c.(!best)) then best := k
    done;
    let tmp = c.(1) in
    c.(1) <- c.(!best);
    c.(!best) <- tmp
  end;
  watch_clause st ci;
  ci

let solve_core ~assumptions ~budget cnf =
  let nvars = Cnf.num_vars cnf in
  let original = Cnf.clauses cnf in
  let st =
    {
      nvars;
      clauses = Array.make (max 64 (Array.length original * 2)) [||];
      n_clauses = 0;
      value = Array.make (nvars + 1) 0;
      level = Array.make (nvars + 1) 0;
      reason = Array.make (nvars + 1) (-1);
      trail = Array.make (nvars + 1) 0;
      trail_size = 0;
      trail_lim = Array.make (nvars + 2) 0;
      decision_level = 0;
      watches = Array.make (2 * nvars + 2) [];
      activity = Array.make (nvars + 1) 0.;
      var_inc = 1.;
      saved_phase = Array.make (nvars + 1) false;
      seen = Array.make (nvars + 1) false;
    }
  in
  Metrics.incr c_solves;
  let total_conflicts = ref 0 in
  let exception Early of result in
  match
    (* Load problem clauses; units go straight onto the trail. *)
    Array.iter
      (fun c ->
        if Array.length c = 1 then begin
          match value_of_lit st c.(0) with
          | 1 -> ()
          | -1 -> raise (Early Unsat)
          | _ -> enqueue st c.(0) (-1)
        end
        else begin
          grow_clauses st;
          st.clauses.(st.n_clauses) <- Array.copy c;
          st.n_clauses <- st.n_clauses + 1;
          watch_clause st (st.n_clauses - 1);
          (* Seed activity so structured instances branch on busy
             variables first. *)
          Array.iter (fun l -> st.activity.(abs l) <- st.activity.(abs l) +. 1e-5) c
        end)
      original;
    List.iter
      (fun l ->
        match value_of_lit st l with
        | 1 -> ()
        | -1 -> raise (Early Unsat)
        | _ -> enqueue st l (-1))
      assumptions;
    let queue_head = ref 0 in
    let conflicts_since_restart = ref 0 in
    let restart_limit = ref 100 in
    let rec search () =
      let conflict, head = propagate st !queue_head in
      queue_head := head;
      if conflict >= 0 then begin
        incr conflicts_since_restart;
        incr total_conflicts;
        Metrics.incr c_conflicts;
        (* Cooperative budget check: one work unit per conflict. Under
           the unlimited budget this is a couple of compares. *)
        (match Budget.spend budget ~stage:Rerror.Sat Budget.Sat_conflicts 1 with
         | Ok () -> ()
         | Error e -> raise (Rerror.E e));
        st.var_inc <- st.var_inc *. 1.05;
        if st.decision_level = 0 then raise (Early Unsat);
        let learnt, back_level = analyze st conflict in
        backtrack st back_level;
        queue_head := st.trail_size;
        if Array.length learnt = 1 then begin
          (match value_of_lit st learnt.(0) with
           | -1 -> raise (Early Unsat)
           | 0 -> enqueue st learnt.(0) (-1)
           | _ -> ())
        end
        else begin
          let ci = add_learnt st learnt in
          Metrics.incr c_learnt;
          enqueue st learnt.(0) ci
        end;
        search ()
      end
      else if !conflicts_since_restart >= !restart_limit then begin
        Metrics.incr c_restarts;
        conflicts_since_restart := 0;
        restart_limit := !restart_limit * 3 / 2;
        backtrack st 0;
        queue_head := st.trail_size;
        search ()
      end
      else
        match pick_branch st with
        | None ->
          let model = Array.make (nvars + 1) false in
          for v = 1 to nvars do
            model.(v) <- st.value.(v) = 1
          done;
          raise (Early (Sat model))
        | Some l ->
          Metrics.incr c_decisions;
          st.decision_level <- st.decision_level + 1;
          st.trail_lim.(st.decision_level) <- st.trail_size;
          enqueue st l (-1);
          search ()
    in
    search ()
  with
  | r | exception Early r ->
    Metrics.observe h_conflicts (float_of_int !total_conflicts);
    (match r with Sat _ -> Metrics.incr c_sat | Unsat -> Metrics.incr c_unsat);
    r

let solve ?(assumptions = []) ?budget cnf =
  let budget = match budget with Some b -> b | None -> Budget.ambient () in
  Chaos.contain Rerror.Sat (fun () ->
      (match Chaos.trip Chaos.Sat_solve with
       | Ok () -> ()
       | Error e -> raise (Rerror.E e));
      solve_core ~assumptions ~budget cnf)

let is_satisfying cnf model =
  Array.for_all
    (fun c ->
      Array.exists
        (fun l -> if l > 0 then model.(l) else not model.(-l))
        c)
    (Cnf.clauses cnf)
