module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list

exception Equiv_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Equiv_error msg)) fmt

let interface nl =
  ( Array.to_list (Netlist.input_names nl),
    List.map fst (Array.to_list nl.Netlist.output_list) )

let check ?budget a b =
  if Netlist.num_dffs a > 0 || Netlist.num_dffs b > 0 then
    fail "sequential netlist: use the behavioural product-machine check";
  let ins_a, outs_a = interface a and ins_b, outs_b = interface b in
  if ins_a <> ins_b || outs_a <> outs_b then fail "interface mismatch";
  let cnf = Cnf.create () in
  (* Shared input variables. *)
  let shared = List.map (fun name -> (name, Cnf.new_var cnf)) ins_a in
  let enc_a = Tseitin.encode_shared ~into:cnf ~share_inputs:shared a in
  let enc_b = Tseitin.encode_shared ~into:cnf ~share_inputs:shared b in
  let diffs =
    List.map
      (fun name ->
        let na = Netlist.find_output a name and nb = Netlist.find_output b name in
        Tseitin.xor_out cnf enc_a.Tseitin.var_of_net.(na) enc_b.Tseitin.var_of_net.(nb))
      outs_a
  in
  Cnf.add_clause cnf [ Tseitin.or_list cnf diffs ];
  match Solver.solve ?budget cnf with
  | Error e -> Error e
  | Ok Solver.Unsat -> Ok Equivalent
  | Ok (Solver.Sat model) ->
    Ok (Counterexample (List.map (fun (name, v) -> (name, model.(v))) shared))

let counterexample_is_real a b assignment =
  let words nl =
    Array.map
      (fun name ->
        match List.assoc_opt name assignment with
        | Some true -> Bitsim.all_ones
        | Some false -> 0
        | None -> fail "counterexample missing input %s" name)
      (Netlist.input_names nl)
  in
  let oa = Bitsim.step (Bitsim.create a) (words a) in
  let ob = Bitsim.step (Bitsim.create b) (words b) in
  oa <> ob
