(** Miter-based combinational equivalence checking.

    Two netlists with identical interfaces are joined on their primary
    inputs; each output pair feeds an XOR and the disjunction of the
    XORs is asserted. UNSAT proves equivalence; a model is a
    counterexample input assignment. Sequential netlists are rejected —
    the behavioural level handles those (product-machine BFS). *)

type verdict =
  | Equivalent
  | Counterexample of (string * bool) list
      (** input name to value, for every primary input *)

exception Equiv_error of string

val check :
  ?budget:Mutsamp_robust.Budget.t ->
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_netlist.Netlist.t ->
  (verdict, Mutsamp_robust.Error.t) result
(** The miter solve spends [Sat_conflicts] and obeys the deadline; see
    {!Solver.solve}. Still raises {!Equiv_error} on interface mismatch
    or a sequential netlist (caller bug, not a runtime hazard).
    [budget] defaults to the ambient budget. *)

val counterexample_is_real :
  Mutsamp_netlist.Netlist.t ->
  Mutsamp_netlist.Netlist.t ->
  (string * bool) list ->
  bool
(** Replay a counterexample on both netlists and confirm the outputs
    differ (test oracle). *)
