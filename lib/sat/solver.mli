(** CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis, VSIDS-style activity-based decisions
    with phase saving, and geometric restarts. Intended for the miter
    and ATPG instances this repository produces (thousands of variables),
    not as a competition solver. *)

type result =
  | Sat of bool array
      (** model indexed by variable (entry 0 unused) *)
  | Unsat

val solve :
  ?assumptions:Cnf.lit list ->
  ?budget:Mutsamp_robust.Budget.t ->
  Cnf.t ->
  (result, Mutsamp_robust.Error.t) Stdlib.result
(** Decide the formula. [assumptions] are forced as decision-level-0
    units for this call. Deterministic: the same formula, assumptions
    and budget always take the same search path. One [Sat_conflicts]
    work unit is spent per conflict, and the deadline is polled on the
    same cadence; exhaustion returns [Error (Budget_exhausted _)] /
    [Error (Timeout Sat)] instead of spinning. [budget] defaults to the
    ambient budget (unlimited unless the CLI installed one). *)

val is_satisfying : Cnf.t -> bool array -> bool
(** [is_satisfying cnf model] checks the model against every clause
    (test oracle). *)
