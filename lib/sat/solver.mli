(** CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis, VSIDS-style activity-based decisions
    with phase saving, and geometric restarts. Intended for the miter
    and ATPG instances this repository produces (thousands of variables),
    not as a competition solver. *)

type result =
  | Sat of bool array
      (** model indexed by variable (entry 0 unused) *)
  | Unsat

val solve : ?assumptions:Cnf.lit list -> Cnf.t -> result
(** Decide the formula. [assumptions] are forced as decision-level-0
    units for this call. Deterministic: the same formula and assumptions
    always take the same search path. Runs under an unlimited budget;
    raises [Mutsamp_robust.Error.E] only if a chaos injection point is
    armed at [Sat_solve]. *)

val solve_result :
  ?assumptions:Cnf.lit list ->
  ?budget:Mutsamp_robust.Budget.t ->
  Cnf.t ->
  (result, Mutsamp_robust.Error.t) Stdlib.result
(** Budgeted entry point. One [Sat_conflicts] work unit is spent per
    conflict, and the deadline is polled on the same cadence; exhaustion
    returns [Error (Budget_exhausted _)] / [Error (Timeout Sat)] instead
    of spinning. [budget] defaults to the ambient budget (unlimited
    unless the CLI installed one), under which the search path and model
    are bit-identical to [solve]. *)

val is_satisfying : Cnf.t -> bool array -> bool
(** [is_satisfying cnf model] checks the model against every clause
    (test oracle). *)
