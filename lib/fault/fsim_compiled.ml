(* Compiled fault-simulation backend.

   At load time a netlist is specialised into straight-line OCaml
   closures over dense word arrays: one whole-netlist good program,
   plus one fanout-cone program per fault site. A cone program starts
   with boundary loads (cone-external fanins copied from the baseline
   into the overlay), after which every gate op reads and writes the
   overlay only — no forcing checks, no kind dispatch, no bounds
   checks in the inner loop. Sequential circuits compile to a
   whole-circuit program with fault sites patched via indexed op
   replacement ("patch thunks").

   Programs are cached per structural design hash in a process-global
   table; all compilation happens on the coordinating domain before
   [Ctx.map_shards] fans out, so the shared structures are immutable by
   the time worker domains read them. Cache misses record their cost
   in [exec.compile_ms]. *)

module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Bitsim = Mutsamp_netlist.Bitsim
module Levels = Mutsamp_netlist.Levels
module Metrics = Mutsamp_obs.Metrics
module Trace = Mutsamp_obs.Trace
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module K = Fsim_kernel

(* Every op takes (aux, v) and writes one net's words into [v]. Gate
   ops read [v] only; source ops read [aux] — the packed input words
   for the good/sequential programs, the good baseline for a cone
   program's boundary loads. Indices are validated at compile time, so
   bodies use unsafe accesses. *)
type op = int array -> int array -> unit

let compile_gate1 ~i ~kind ~f0 ~f1 : op =
  let open Gate in
  match kind with
  | Buf -> fun _ v -> Array.unsafe_set v i (Array.unsafe_get v f0)
  | Not -> fun _ v -> Array.unsafe_set v i (lnot (Array.unsafe_get v f0))
  | And ->
    fun _ v ->
      Array.unsafe_set v i (Array.unsafe_get v f0 land Array.unsafe_get v f1)
  | Or ->
    fun _ v ->
      Array.unsafe_set v i (Array.unsafe_get v f0 lor Array.unsafe_get v f1)
  | Nand ->
    fun _ v ->
      Array.unsafe_set v i
        (lnot (Array.unsafe_get v f0 land Array.unsafe_get v f1))
  | Nor ->
    fun _ v ->
      Array.unsafe_set v i
        (lnot (Array.unsafe_get v f0 lor Array.unsafe_get v f1))
  | Xor ->
    fun _ v ->
      Array.unsafe_set v i (Array.unsafe_get v f0 lxor Array.unsafe_get v f1)
  | Xnor ->
    fun _ v ->
      Array.unsafe_set v i
        (lnot (Array.unsafe_get v f0 lxor Array.unsafe_get v f1))
  | Pi _ | Const _ | Dff _ -> invalid_arg "Fsim_compiled.compile_gate1"

let compile_gate ~nw ~i ~kind ~f0 ~f1 : op =
  if nw = 1 then compile_gate1 ~i ~kind ~f0 ~f1
  else
    let base = i * nw and b0 = f0 * nw and b1 = f1 * nw in
    fun _ v ->
      for j = 0 to nw - 1 do
        Array.unsafe_set v (base + j)
          (Gate.eval2 kind (Array.unsafe_get v (b0 + j))
             (Array.unsafe_get v (b1 + j)))
      done

(* The faulted gate of a branch cone: one pin reads the stuck word, the
   other reads the baseline directly (a seed gate's fanins are upstream
   of its own fanout cone, hence always cone-external). *)
let compile_forced_gate ~nw ~i ~kind ~f0 ~f1 ~pin ~stuck : op =
  let base = i * nw and b0 = f0 * nw and b1 = f1 * nw in
  fun g v ->
    for j = 0 to nw - 1 do
      let x = if pin = 0 then stuck else Array.unsafe_get g (b0 + j) in
      let y = if pin = 1 then stuck else Array.unsafe_get g (b1 + j) in
      Array.unsafe_set v (base + j) (Gate.eval2 kind x y)
    done

(* Same, reading operands from [v] — the sequential patched variant,
   where the whole circuit evaluates in one array. *)
let compile_forced_gate_inline ~i ~kind ~f0 ~f1 ~pin ~stuck : op =
  fun _ v ->
    let x = if pin = 0 then stuck else Array.unsafe_get v f0 in
    let y = if pin = 1 then stuck else Array.unsafe_get v f1 in
    Array.unsafe_set v i (Gate.eval2 kind x y)

let copy_op ~nw net : op =
  if nw = 1 then fun g v -> Array.unsafe_set v net (Array.unsafe_get g net)
  else fun g v -> Array.blit g (net * nw) v (net * nw) nw

let pi_op ~nw k net : op =
  if nw = 1 then fun w v -> Array.unsafe_set v net (Array.unsafe_get w k)
  else fun w v -> Array.blit w (k * nw) v (net * nw) nw

let fanins2 (g : Gate.t) =
  let f0 = g.Gate.fanins.(0) in
  (f0, if Array.length g.Gate.fanins > 1 then g.Gate.fanins.(1) else f0)

type cone_prog = {
  excite : int array -> int array -> bool;
      (* [excite good fv] seeds the overlay; false = fault provably
         quiescent for this batch, so the cone is skipped wholesale *)
  ops : op array;  (* boundary loads then cone gates, level-ascending *)
  out_nets : int array;  (* distinct PO-driving nets inside the cone *)
  evals_excited : int;  (* gate evaluations when the cone runs *)
  evals_quiescent : int;  (* gate evaluations when it is skipped *)
}

type seq_prog = {
  base_ops : op array;  (* PI loads, constant stores, comb gates *)
  op_index : int array;  (* per net: position in [base_ops], -1 if none *)
}

type seq_site = {
  patched_ops : op array;
  forced_dff_net : int;  (* DFF output stem: force after state load, -1 *)
  dff_pin_net : int;  (* DFF net whose D pin latches [seq_stuck], -1 *)
  seq_stuck : int;
}

type entry = {
  nl : Netlist.t;
  lv : Levels.t;
  nw : int;
  good_ops : op array;
  const_fill : (int * int) array;  (* net, word: pre-set once per shard *)
  cones : (Fault.t, cone_prog) Hashtbl.t;
  seq : seq_prog option;
  seq_sites : (Fault.t, seq_site) Hashtbl.t;
}

let cache : (int, entry) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()

(* Cheap structural hash; a hit is verified against the stored netlist
   before reuse, so collisions cost a recompile, never a wrong result. *)
let design_hash (nl : Netlist.t) nw =
  let h = ref (Hashtbl.hash (Array.length nl.Netlist.gates, nw)) in
  let mix v = h := (!h * 31) lxor Hashtbl.hash v in
  Array.iter
    (fun (g : Gate.t) ->
      mix (Gate.kind_name g.Gate.kind);
      Array.iter mix g.Gate.fanins)
    nl.Netlist.gates;
  Array.iter mix nl.Netlist.input_nets;
  Array.iter
    (fun (name, net) ->
      mix name;
      mix net)
    nl.Netlist.output_list;
  !h

let compile_good (nl : Netlist.t) (lv : Levels.t) nw =
  let pis =
    Array.to_list (Array.mapi (fun k net -> pi_op ~nw k net) nl.Netlist.input_nets)
  in
  let gates =
    Array.to_list
      (Array.map
         (fun i ->
           let g = nl.Netlist.gates.(i) in
           let f0, f1 = fanins2 g in
           compile_gate ~nw ~i ~kind:g.Gate.kind ~f0 ~f1)
         lv.Levels.order)
  in
  Array.of_list (pis @ gates)

let const_fill (nl : Netlist.t) =
  let acc = ref [] in
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Const v -> acc := (i, if v then Bitsim.all_ones else 0) :: !acc
      | _ -> ())
    nl.Netlist.gates;
  Array.of_list (List.rev !acc)

(* Forward cone of a fault site over combinational fanouts: membership
   mask plus member gates in level order. *)
let cone_of (lv : Levels.t) seed =
  let n = Array.length (Levels.netlist lv).Netlist.gates in
  let in_cone = Array.make n false in
  let rec visit net =
    Array.iter
      (fun g ->
        if not in_cone.(g) then begin
          in_cone.(g) <- true;
          visit g
        end)
      lv.Levels.fanout_comb.(net)
  in
  in_cone.(seed) <- true;
  visit seed;
  let members = ref [] in
  for k = Array.length lv.Levels.order - 1 downto 0 do
    let i = lv.Levels.order.(k) in
    if in_cone.(i) then members := i :: !members
  done;
  (in_cone, !members)

let compile_cone (lv : Levels.t) nw (f : Fault.t) =
  let nl = Levels.netlist lv in
  let stuck = Fault.stuck_word f in
  let in_cone, members, excite, seed_net, seed_evals =
    match Fault.injection f with
    | Bitsim.Net s ->
      let in_cone, members = cone_of lv s in
      let base = s * nw in
      let excite good fv =
        Array.fill fv base nw stuck;
        let rec differs j =
          j < nw && (Array.unsafe_get good (base + j) <> stuck || differs (j + 1))
        in
        differs 0
      in
      (in_cone, members, excite, s, 0)
    | Bitsim.Pin { gate; pin } ->
      let in_cone, members = cone_of lv gate in
      let g = nl.Netlist.gates.(gate) in
      let f0, f1 = fanins2 g in
      let forced =
        compile_forced_gate ~nw ~i:gate ~kind:g.Gate.kind ~f0 ~f1 ~pin ~stuck
      in
      let base = gate * nw in
      let excite good fv =
        forced good fv;
        let rec differs j =
          j < nw
          && (Array.unsafe_get good (base + j) <> Array.unsafe_get fv (base + j)
             || differs (j + 1))
        in
        differs 0
      in
      (in_cone, members, excite, gate, 1)
  in
  (* Cone-external fanins are copied into the overlay up front, so gate
     ops never branch on operand provenance. *)
  let boundary = Hashtbl.create 16 in
  let gate_ops =
    List.filter_map
      (fun i ->
        if i = seed_net then None
        else begin
          let g = nl.Netlist.gates.(i) in
          let f0, f1 = fanins2 g in
          if not in_cone.(f0) then Hashtbl.replace boundary f0 ();
          if not in_cone.(f1) then Hashtbl.replace boundary f1 ();
          Some (compile_gate ~nw ~i ~kind:g.Gate.kind ~f0 ~f1)
        end)
      members
  in
  let loads =
    Hashtbl.fold (fun net () acc -> copy_op ~nw net :: acc) boundary []
  in
  let seen = Hashtbl.create 8 in
  let out_nets =
    Array.of_list
      (List.filter_map
         (fun (_, net) ->
           if in_cone.(net) && not (Hashtbl.mem seen net) then begin
             Hashtbl.replace seen net ();
             Some net
           end
           else None)
         (Array.to_list nl.Netlist.output_list))
  in
  let n_gate_ops = List.length gate_ops in
  {
    excite;
    ops = Array.of_list (loads @ gate_ops);
    out_nets;
    evals_excited = n_gate_ops + seed_evals;
    evals_quiescent = seed_evals;
  }

(* Whole-circuit sequential program: PI loads, constant stores and
   combinational gates as indexable ops; flip-flop value loads and the
   state advance read the state vector and live in the shard runner. *)
let compile_seq (nl : Netlist.t) (lv : Levels.t) =
  let n = Array.length nl.Netlist.gates in
  let op_index = Array.make n (-1) in
  let ops = ref [] in
  let count = ref 0 in
  let push net o =
    op_index.(net) <- !count;
    incr count;
    ops := o :: !ops
  in
  Array.iteri (fun k net -> push net (pi_op ~nw:1 k net)) nl.Netlist.input_nets;
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Const c ->
        let word = if c then Bitsim.all_ones else 0 in
        push i (fun _ v -> Array.unsafe_set v i word)
      | _ -> ())
    nl.Netlist.gates;
  Array.iter
    (fun i ->
      let g = nl.Netlist.gates.(i) in
      let f0, f1 = fanins2 g in
      push i (compile_gate1 ~i ~kind:g.Gate.kind ~f0 ~f1))
    lv.Levels.order;
  { base_ops = Array.of_list (List.rev !ops); op_index }

let compile_seq_site (nl : Netlist.t) (seq : seq_prog) (f : Fault.t) =
  let stuck = Fault.stuck_word f in
  let patched = ref seq.base_ops in
  let forced_dff_net = ref (-1) in
  let dff_pin_net = ref (-1) in
  let patch idx o =
    if !patched == seq.base_ops then patched := Array.copy seq.base_ops;
    !patched.(idx) <- o
  in
  (match Fault.injection f with
   | Bitsim.Net s ->
     if seq.op_index.(s) >= 0 then
       patch seq.op_index.(s) (fun _ v -> Array.unsafe_set v s stuck)
     else
       (* Flip-flop output stem: the value load happens outside the op
          array; the runner forces it between state load and the ops. *)
       forced_dff_net := s
   | Bitsim.Pin { gate; pin } ->
     (match nl.Netlist.gates.(gate).Gate.kind with
      | Gate.Dff _ -> dff_pin_net := gate
      | _ ->
        let g = nl.Netlist.gates.(gate) in
        let f0, f1 = fanins2 g in
        patch seq.op_index.(gate)
          (compile_forced_gate_inline ~i:gate ~kind:g.Gate.kind ~f0 ~f1 ~pin
             ~stuck)));
  {
    patched_ops = !patched;
    forced_dff_net = !forced_dff_net;
    dff_pin_net = !dff_pin_net;
    seq_stuck = stuck;
  }

let find_or_compile nl nw =
  let h = design_hash nl nw in
  match Hashtbl.find_opt cache h with
  | Some e when e.nl == nl || e.nl = nl -> e
  | Some _ | None ->
    let e, dt =
      Trace.with_span_timed "fsim_compile"
        ~attrs:[ ("design", nl.Netlist.name) ]
        (fun () ->
          let lv = Levels.compute nl in
          {
            nl;
            lv;
            nw;
            good_ops = compile_good nl lv nw;
            const_fill = const_fill nl;
            cones = Hashtbl.create 64;
            seq =
              (if Netlist.num_dffs nl > 0 then Some (compile_seq nl lv)
               else None);
            seq_sites = Hashtbl.create 64;
          })
    in
    Metrics.add K.x_compile_ms (int_of_float (dt *. 1000.));
    Hashtbl.replace cache h e;
    e

(* Both prepare functions run on the coordinating domain, under one
   lock, and return plain arrays aligned with the fault list — worker
   domains never touch the cache. Site programs accumulate in the
   entry across runs, so a warm design costs lookups only. *)
let prepare_comb nl ~nw ~faults =
  Mutex.protect cache_mutex (fun () ->
      let entry = find_or_compile nl nw in
      let progs, dt =
        Trace.with_span_timed "fsim_compile_sites"
          ~attrs:[ ("design", nl.Netlist.name) ]
          (fun () ->
            Array.of_list
              (List.map
                 (fun f ->
                   match Hashtbl.find_opt entry.cones f with
                   | Some p -> p
                   | None ->
                     let p = compile_cone entry.lv nw f in
                     Hashtbl.replace entry.cones f p;
                     p)
                 faults))
      in
      let ms = int_of_float (dt *. 1000.) in
      if ms > 0 then Metrics.add K.x_compile_ms ms;
      (entry, progs))

let prepare_seq nl ~faults =
  Mutex.protect cache_mutex (fun () ->
      let entry = find_or_compile nl 1 in
      let seq = Option.get entry.seq in
      let sites, dt =
        Trace.with_span_timed "fsim_compile_sites"
          ~attrs:[ ("design", nl.Netlist.name) ]
          (fun () ->
            Array.of_list
              (List.map
                 (fun f ->
                   match Hashtbl.find_opt entry.seq_sites f with
                   | Some s -> s
                   | None ->
                     let s = compile_seq_site nl seq f in
                     Hashtbl.replace entry.seq_sites f s;
                     s)
                 faults))
      in
      let ms = int_of_float (dt *. 1000.) in
      if ms > 0 then Metrics.add K.x_compile_ms ms;
      (entry, sites))

(* Combinational shard over precompiled cone programs; loop structure,
   budget charging and detection indexing mirror the packed engine. *)
let combinational_shard entry (progs : cone_prog array) ~budget
    ~(faults : Fault.t array) ~fault_lo ~patterns =
  let nl = entry.nl in
  let nw = entry.nw in
  let w = nw * Bitsim.word_bits in
  let n = Array.length nl.Netlist.gates in
  let detections =
    Array.map (fun f -> { K.fault = f; detected_at = None }) faults
  in
  let alive = Array.init (Array.length faults) (fun i -> i) in
  let alive_count = ref (Array.length faults) in
  let good = Array.make (n * nw) 0 in
  let fv = Array.make (n * nw) 0 in
  Array.iter
    (fun (i, word) -> Array.fill good (i * nw) nw word)
    entry.const_fill;
  let n_pat = Array.length patterns in
  let batches = (n_pat + w - 1) / w in
  let batch = ref 0 in
  let diff = Array.make nw 0 in
  let stop = ref (K.chaos_entry ()) in
  let total_comb = Levels.num_comb_gates entry.lv in
  while !batch < batches && !alive_count > 0 && !stop = None do
    let lo = !batch * w in
    let len = min w (n_pat - lo) in
    (match
       Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs
         (len * !alive_count)
     with
     | Ok () -> ()
     | Error e -> stop := Some e);
    if !stop = None then begin
      let words = K.pack_patterns nl nw patterns lo len in
      let gops = entry.good_ops in
      for o = 0 to Array.length gops - 1 do
        (Array.unsafe_get gops o) words good
      done;
      Metrics.incr K.x_batches;
      Metrics.incr K.x_good_steps;
      Metrics.observe K.h_lanes_per_step (float_of_int len);
      let k = ref 0 in
      while !k < !alive_count do
        let fi = alive.(!k) in
        let prog = progs.(fault_lo + fi) in
        Metrics.incr K.c_machine_steps;
        let first = ref (-1) in
        if prog.excite good fv then begin
          let ops = prog.ops in
          for o = 0 to Array.length ops - 1 do
            (Array.unsafe_get ops o) good fv
          done;
          Metrics.add K.x_events_skipped (total_comb - prog.evals_excited);
          Array.fill diff 0 nw 0;
          Array.iter
            (fun net ->
              for j = 0 to nw - 1 do
                diff.(j) <-
                  diff.(j)
                  lor (fv.((net * nw) + j) lxor good.((net * nw) + j))
              done)
            prog.out_nets;
          for j = 0 to nw - 1 do
            if !first < 0 then begin
              let d = diff.(j) land K.word_lane_mask len j in
              if d <> 0 then first := (j * Bitsim.word_bits) + K.lowest_bit d
            end
          done
        end
        else Metrics.add K.x_events_skipped (total_comb - prog.evals_quiescent);
        if !first >= 0 then begin
          detections.(fi) <-
            { detections.(fi) with detected_at = Some (lo + !first) };
          alive_count := !alive_count - 1;
          alive.(!k) <- alive.(!alive_count);
          alive.(!alive_count) <- fi
        end
        else incr k
      done
    end;
    incr batch
  done;
  K.note_cut ~detail:K.batch_cut_detail !stop;
  {
    K.total = Array.length faults;
    detected = Array.length faults - !alive_count;
    detections;
    patterns_applied = n_pat;
  }

(* Sequential shard over the patched whole-circuit programs; mirrors
   the serial reference's per-fault budget and early-stop behaviour. *)
let sequential_shard entry (sites : seq_site array) ~budget ~tick
    ~(faults : Fault.t array) ~fault_lo ~sequence =
  let nl = entry.nl in
  let n = Array.length nl.Netlist.gates in
  let detections =
    Array.map (fun f -> { K.fault = f; detected_at = None }) faults
  in
  let stop = ref (K.chaos_entry ()) in
  let seq = Option.get entry.seq in
  let n_cycles = Array.length sequence in
  let inputs = Array.map (fun p -> K.replicate_pattern nl 1 p) sequence in
  let dffs = nl.Netlist.dff_nets in
  let n_dff = Array.length dffs in
  let dff_d = Array.map (fun q -> nl.Netlist.gates.(q).Gate.fanins.(0)) dffs in
  let dff_init =
    Array.map
      (fun q ->
        match nl.Netlist.gates.(q).Gate.kind with
        | Gate.Dff init -> if init then Bitsim.all_ones else 0
        | _ -> assert false)
      dffs
  in
  let v = Array.make n 0 in
  let state = Array.make n_dff 0 in
  let out_list = nl.Netlist.output_list in
  let n_out = Array.length out_list in
  let run_cycle ops ~forced_dff_net ~dff_pin_net ~stuck c =
    for k = 0 to n_dff - 1 do
      v.(dffs.(k)) <- state.(k)
    done;
    if forced_dff_net >= 0 then v.(forced_dff_net) <- stuck;
    let w = inputs.(c) in
    for o = 0 to Array.length ops - 1 do
      (Array.unsafe_get ops o) w v
    done;
    for k = 0 to n_dff - 1 do
      state.(k) <- (if dffs.(k) = dff_pin_net then stuck else v.(dff_d.(k)))
    done
  in
  (* Good trajectory: per-cycle output words. *)
  let good_out = Array.make_matrix n_cycles n_out 0 in
  Array.blit dff_init 0 state 0 n_dff;
  for c = 0 to n_cycles - 1 do
    run_cycle seq.base_ops ~forced_dff_net:(-1) ~dff_pin_net:(-1) ~stuck:0 c;
    for o = 0 to n_out - 1 do
      good_out.(c).(o) <- v.(snd out_list.(o))
    done
  done;
  (* Every shard re-simulates the good circuit, so this scales with the
     shard count — execution bookkeeping, not logical workload. *)
  Metrics.add K.x_good_steps n_cycles;
  Array.iteri
    (fun fi f ->
      if !stop = None then begin
        match
          Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs n_cycles
        with
        | Ok () -> ()
        | Error e -> stop := Some e
      end;
      if !stop <> None then tick ()
      else begin
        let site = sites.(fault_lo + fi) in
        Array.blit dff_init 0 state 0 n_dff;
        let c = ref 0 in
        let detected = ref false in
        while (not !detected) && !c < n_cycles do
          run_cycle site.patched_ops ~forced_dff_net:site.forced_dff_net
            ~dff_pin_net:site.dff_pin_net ~stuck:site.seq_stuck !c;
          Metrics.incr K.c_machine_steps;
          let g = good_out.(!c) in
          let rec differs o =
            o < n_out && (v.(snd out_list.(o)) <> g.(o) || differs (o + 1))
          in
          if differs 0 then begin
            detected := true;
            detections.(fi) <- { fault = f; detected_at = Some !c }
          end
          else incr c
        done;
        tick ()
      end)
    faults;
  K.note_cut ~detail:K.serial_cut_detail !stop;
  {
    K.total = Array.length faults;
    detected = K.count_detected detections;
    detections;
    patterns_applied = n_cycles;
  }
