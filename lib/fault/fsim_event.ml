(* Event-driven fault-simulation backend.

   The netlist is levelized once per run (Netlist.Levels); each shard
   then keeps a full good-value baseline plus an epoch-stamped sparse
   faulty overlay. A fault pass seeds the overlay at the injection
   site and propagates level-ascending through preallocated per-level
   buckets, re-evaluating only gates with a changed fanin word — a
   quiescent cone is never visited, and the elided evaluations are
   recorded in [exec.events_skipped].

   Observable behaviour (batch order, budget charging, chaos probes,
   degrade notes, first-detection indexing) deliberately mirrors the
   packed reference loop so reports are bit-identical, including under
   budget cuts. *)

module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Bitsim = Mutsamp_netlist.Bitsim
module Levels = Mutsamp_netlist.Levels
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module K = Fsim_kernel

(* Per-shard mutable simulation state. [good] holds the full baseline
   net values for the current batch/cycle; [fval] is the faulty
   overlay, valid for net [i] only when [stamp.(i)] equals the current
   epoch. Queue buckets are preallocated per level and drained in
   ascending level order (events only travel to strictly higher
   levels, so a drained bucket never refills within a pass). *)
type state = {
  lv : Levels.t;
  nw : int;
  mutable good : int array;  (* net i word j at [i*nw + j] *)
  fval : int array;
  stamp : int array;
  inq : int array;
  buckets : int array array;
  bcount : int array;
  mutable epoch : int;
  mutable evaluated : int;  (* gate evaluations this pass *)
}

let make_state lv nw =
  let n = Array.length (Levels.netlist lv).Netlist.gates in
  let buckets =
    Array.init (lv.Levels.max_level + 1) (fun l ->
        Array.make (lv.Levels.level_off.(l + 1) - lv.Levels.level_off.(l)) 0)
  in
  let st =
    {
      lv;
      nw;
      good = Array.make (n * nw) 0;
      fval = Array.make (n * nw) 0;
      stamp = Array.make n (-1);
      inq = Array.make n (-1);
      buckets;
      bcount = Array.make (lv.Levels.max_level + 1) 0;
      epoch = 0;
      evaluated = 0;
    }
  in
  (* Constant nets never change; bake them into the baseline once. *)
  Array.iteri
    (fun i (g : Gate.t) ->
      match g.Gate.kind with
      | Gate.Const v ->
        Array.fill st.good (i * nw) nw (if v then Bitsim.all_ones else 0)
      | _ -> ())
    (Levels.netlist lv).Netlist.gates;
  st

(* Full good evaluation for the current batch inputs (combinational
   gates only; sources are loaded by the caller). *)
let eval_good st =
  let nl = Levels.netlist st.lv in
  let gates = nl.Netlist.gates in
  let nw = st.nw and good = st.good in
  Array.iter
    (fun i ->
      let g = gates.(i) in
      let kind = g.Gate.kind in
      let f0 = g.Gate.fanins.(0) in
      let two = Array.length g.Gate.fanins > 1 in
      let f1 = if two then g.Gate.fanins.(1) else 0 in
      for j = 0 to nw - 1 do
        let a = good.((f0 * nw) + j) in
        let b = if two then good.((f1 * nw) + j) else 0 in
        good.((i * nw) + j) <- Gate.eval2 kind a b
      done)
    st.lv.Levels.order

let enqueue st i =
  if st.inq.(i) <> st.epoch && st.lv.Levels.pos.(i) >= 0 then begin
    st.inq.(i) <- st.epoch;
    let l = st.lv.Levels.level.(i) in
    st.buckets.(l).(st.bcount.(l)) <- i;
    st.bcount.(l) <- st.bcount.(l) + 1
  end

let enqueue_fanouts st net =
  Array.iter (fun i -> enqueue st i) st.lv.Levels.fanout_comb.(net)

(* Read net [i] through the overlay. *)
let rd st i j =
  if st.stamp.(i) = st.epoch then st.fval.((i * st.nw) + j)
  else st.good.((i * st.nw) + j)

let differs_from_good st i =
  let nw = st.nw in
  let rec go j =
    j < nw && (st.fval.((i * nw) + j) <> st.good.((i * nw) + j) || go (j + 1))
  in
  go 0

(* Seed the overlay for one fault against the current baseline.
   [forced_net] (stem) and [pin_gate]/[pin_idx] (branch) keep their
   forcing during propagation, matching [Bitsim.step_injected]. *)
let seed_fault st f =
  st.epoch <- st.epoch + 1;
  st.evaluated <- 0;
  let nw = st.nw in
  let stuck = Fault.stuck_word f in
  match Fault.injection f with
  | Bitsim.Net s ->
    Array.fill st.fval (s * nw) nw stuck;
    if differs_from_good st s then begin
      st.stamp.(s) <- st.epoch;
      enqueue_fanouts st s
    end;
    (s, -1, -1)
  | Bitsim.Pin { gate; pin } ->
    (* The faulted gate must be re-evaluated with its pin forced even
       when no fanin changed, so it is enqueued unconditionally (DFF D
       pins have no combinational op; their forcing is applied by the
       sequential state advance). *)
    enqueue st gate;
    (-1, gate, pin)

(* Drain the buckets in ascending level order, applying stem/pin
   forcing for the faulted gate exactly as [Bitsim.step_injected]
   does. *)
let propagate st ~forced_net ~pin_gate ~pin_idx ~stuck =
  let nl = Levels.netlist st.lv in
  let gates = nl.Netlist.gates in
  let nw = st.nw in
  for l = 1 to st.lv.Levels.max_level do
    let bucket = st.buckets.(l) in
    for idx = 0 to st.bcount.(l) - 1 do
      let i = bucket.(idx) in
      (* A stem-forced net keeps its forced value whatever its fanins
         do; it was seeded and is never recomputed. *)
      if i <> forced_net then begin
        st.evaluated <- st.evaluated + 1;
        let g = gates.(i) in
        let kind = g.Gate.kind in
        let f0 = g.Gate.fanins.(0) in
        let two = Array.length g.Gate.fanins > 1 in
        let f1 = if two then g.Gate.fanins.(1) else 0 in
        let changed = ref false in
        for j = 0 to nw - 1 do
          let a = if i = pin_gate && pin_idx = 0 then stuck else rd st f0 j in
          let b =
            if not two then 0
            else if i = pin_gate && pin_idx = 1 then stuck
            else rd st f1 j
          in
          let r = Gate.eval2 kind a b in
          st.fval.((i * nw) + j) <- r;
          if r <> st.good.((i * nw) + j) then changed := true
        done;
        if !changed then begin
          st.stamp.(i) <- st.epoch;
          enqueue_fanouts st i
        end
      end
    done;
    st.bcount.(l) <- 0
  done

(* One fault pass against the current baseline: seed, propagate, and
   account the elided gate evaluations. *)
let fault_pass st f =
  let stuck = Fault.stuck_word f in
  let forced_net, pin_gate, pin_idx = seed_fault st f in
  propagate st ~forced_net ~pin_gate ~pin_idx ~stuck;
  Metrics.add K.x_events_skipped (Levels.num_comb_gates st.lv - st.evaluated)

(* First detecting lane over the outputs, or -1. Unstamped output nets
   equal the baseline by construction and contribute no diff. *)
let first_detection st ~len ~diff =
  let nl = Levels.netlist st.lv in
  let nw = st.nw in
  Array.fill diff 0 nw 0;
  Array.iter
    (fun (_, net) ->
      if st.stamp.(net) = st.epoch then
        for j = 0 to nw - 1 do
          diff.(j) <-
            diff.(j) lor (st.fval.((net * nw) + j) lxor st.good.((net * nw) + j))
        done)
    nl.Netlist.output_list;
  let first = ref (-1) in
  for j = 0 to nw - 1 do
    if !first < 0 then begin
      let d = diff.(j) land K.word_lane_mask len j in
      if d <> 0 then first := (j * Bitsim.word_bits) + K.lowest_bit d
    end
  done;
  !first

let load_inputs st words =
  let nl = Levels.netlist st.lv in
  let nw = st.nw in
  Array.iteri
    (fun k net -> Array.blit words (k * nw) st.good (net * nw) nw)
    nl.Netlist.input_nets

(* Combinational shard: same batch loop, budget charging and alive-set
   bookkeeping as the packed engine, with the per-fault inner step
   replaced by an event pass. *)
let combinational_shard lv ?lanes ~budget ~(faults : Fault.t array) ~patterns
    () =
  let nl = Levels.netlist lv in
  let detections =
    Array.map (fun f -> { K.fault = f; detected_at = None }) faults
  in
  let alive = Array.init (Array.length faults) (fun i -> i) in
  let alive_count = ref (Array.length faults) in
  let w =
    match lanes with
    | None -> Bitsim.word_bits
    | Some l ->
      if l < 1 then invalid_arg "Fsim.run: lanes < 1"
      else (l + Bitsim.word_bits - 1) / Bitsim.word_bits * Bitsim.word_bits
  in
  let nw = w / Bitsim.word_bits in
  let st = make_state lv nw in
  let n_pat = Array.length patterns in
  let batches = (n_pat + w - 1) / w in
  let batch = ref 0 in
  let diff = Array.make nw 0 in
  let stop = ref (K.chaos_entry ()) in
  while !batch < batches && !alive_count > 0 && !stop = None do
    let lo = !batch * w in
    let len = min w (n_pat - lo) in
    (match
       Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs
         (len * !alive_count)
     with
     | Ok () -> ()
     | Error e -> stop := Some e);
    if !stop = None then begin
      let words = K.pack_patterns nl nw patterns lo len in
      load_inputs st words;
      eval_good st;
      Metrics.incr K.x_batches;
      Metrics.incr K.x_good_steps;
      Metrics.observe K.h_lanes_per_step (float_of_int len);
      let k = ref 0 in
      while !k < !alive_count do
        let fi = alive.(!k) in
        fault_pass st faults.(fi);
        Metrics.incr K.c_machine_steps;
        let first = first_detection st ~len ~diff in
        if first >= 0 then begin
          detections.(fi) <-
            { detections.(fi) with detected_at = Some (lo + first) };
          alive_count := !alive_count - 1;
          alive.(!k) <- alive.(!alive_count);
          alive.(!alive_count) <- fi
        end
        else incr k
      done
    end;
    incr batch
  done;
  K.note_cut ~detail:K.batch_cut_detail !stop;
  {
    K.total = Array.length faults;
    detected = Array.length faults - !alive_count;
    detections;
    patterns_applied = n_pat;
  }

(* Sequential shard: single-lane event simulation against per-cycle
   good-value snapshots, mirroring the serial reference's budget and
   early-stop behaviour. Faulty flip-flop state is carried in [fstate]
   (indexed by net id); a cycle's events are seeded by the injection
   site plus every flip-flop whose faulty state diverges from the
   snapshot. *)
let sequential_shard lv ~budget ~tick ~(faults : Fault.t array) ~sequence =
  let nl = Levels.netlist lv in
  let n = Array.length nl.Netlist.gates in
  let detections =
    Array.map (fun f -> { K.fault = f; detected_at = None }) faults
  in
  let stop = ref (K.chaos_entry ()) in
  let st = make_state lv 1 in
  let n_cycles = Array.length sequence in
  (* Good baseline: full net values per cycle. *)
  let goodv = Array.make n_cycles [||] in
  let dff_init = Array.make n 0 in
  Array.iter
    (fun q ->
      match nl.Netlist.gates.(q).Gate.kind with
      | Gate.Dff init -> dff_init.(q) <- (if init then Bitsim.all_ones else 0)
      | _ -> assert false)
    nl.Netlist.dff_nets;
  let state = Array.copy dff_init in
  for c = 0 to n_cycles - 1 do
    load_inputs st (K.replicate_pattern nl 1 sequence.(c));
    Array.iter (fun q -> st.good.(q) <- state.(q)) nl.Netlist.dff_nets;
    eval_good st;
    goodv.(c) <- Array.copy st.good;
    Array.iter
      (fun q -> state.(q) <- st.good.(nl.Netlist.gates.(q).Gate.fanins.(0)))
      nl.Netlist.dff_nets
  done;
  (* Every shard re-simulates the good circuit, so this scales with the
     shard count — execution bookkeeping, not logical workload. *)
  Metrics.add K.x_good_steps n_cycles;
  let fstate = Array.make n 0 in
  Array.iteri
    (fun fi f ->
      if !stop = None then begin
        match
          Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs n_cycles
        with
        | Ok () -> ()
        | Error e -> stop := Some e
      end;
      if !stop <> None then tick ()
      else begin
        let stuck = Fault.stuck_word f in
        let forced_net, pin_gate, pin_idx =
          match Fault.injection f with
          | Bitsim.Net s -> (s, -1, -1)
          | Bitsim.Pin { gate; pin } -> (-1, gate, pin)
        in
        Array.iter (fun q -> fstate.(q) <- dff_init.(q)) nl.Netlist.dff_nets;
        let c = ref 0 in
        let detected = ref false in
        while (not !detected) && !c < n_cycles do
          st.epoch <- st.epoch + 1;
          st.evaluated <- 0;
          st.good <- goodv.(!c);
          (* Seed: diverged flip-flop outputs, then the injection. *)
          Array.iter
            (fun q ->
              if q <> forced_net && fstate.(q) <> st.good.(q) then begin
                st.fval.(q) <- fstate.(q);
                st.stamp.(q) <- st.epoch;
                enqueue_fanouts st q
              end)
            nl.Netlist.dff_nets;
          if forced_net >= 0 then begin
            st.fval.(forced_net) <- stuck;
            if stuck <> st.good.(forced_net) then begin
              st.stamp.(forced_net) <- st.epoch;
              enqueue_fanouts st forced_net
            end
          end
          else enqueue st pin_gate;
          propagate st ~forced_net ~pin_gate ~pin_idx ~stuck;
          Metrics.add K.x_events_skipped
            (Levels.num_comb_gates lv - st.evaluated);
          Metrics.incr K.c_machine_steps;
          (* Detection: any output net carrying a diverged value. *)
          Array.iter
            (fun (_, net) ->
              if st.stamp.(net) = st.epoch && st.fval.(net) <> st.good.(net)
              then detected := true)
            nl.Netlist.output_list;
          if !detected then
            detections.(fi) <- { fault = f; detected_at = Some !c }
          else begin
            (* Advance faulty flip-flop state through the overlay; a
               faulted D pin latches the stuck value. *)
            Array.iter
              (fun q ->
                let d = nl.Netlist.gates.(q).Gate.fanins.(0) in
                fstate.(q) <-
                  (if q = pin_gate && pin_idx = 0 then stuck else rd st d 0))
              nl.Netlist.dff_nets;
            incr c
          end
        done;
        tick ()
      end)
    faults;
  K.note_cut ~detail:K.serial_cut_detail !stop;
  {
    K.total = Array.length faults;
    detected = K.count_detected detections;
    detections;
    patterns_applied = n_cycles;
  }
