(** Fault-equivalence collapsing.

    Two faults are structurally equivalent when every test for one is a
    test for the other. The classical gate-local rules are applied:

    - AND: any input stuck-at-0 ≡ output stuck-at-0 (dually NAND → output
      stuck-at-1);
    - OR: any input stuck-at-1 ≡ output stuck-at-1 (dually NOR → output
      stuck-at-0);
    - NOT/BUF: each input fault ≡ the (inverted/same) output fault;
    - a fault on a single-fanout stem ≡ the same fault seen at the one
      pin it feeds, so the pin-side rules apply through it.

    Classes are built with union–find; the collapsed list keeps one
    representative per class. *)

type t = {
  representatives : Fault.t list;  (** one fault per equivalence class *)
  class_of : Fault.t -> Fault.t;  (** representative of any full-list fault *)
  full_size : int;
  collapsed_size : int;
}

val run : Mutsamp_netlist.Netlist.t -> t
(** Collapse the {!Fault.full_list} of the netlist. *)

val ratio : t -> float
(** [collapsed_size / full_size]. *)

val dominance_reduced : Mutsamp_netlist.Netlist.t -> t -> Fault.t list
(** Further reduce the equivalence representatives by gate-local fault
    dominance: any test for an AND input stuck-at-1 also detects the
    output stuck-at-1 (dually OR/NAND/NOR), so the dominated output
    fault needs no dedicated test. Detecting every fault of the
    returned list therefore detects every testable fault of the full
    universe — the list is meant for ATPG targeting, not for coverage
    *reporting* (dropping dominated faults changes the denominator). *)

type dominance = {
  search : Fault.t list;  (** primary targets, in representative order *)
  deferred : Fault.t list;
      (** dominated classes: every test set covering [search] covers
          these too, so target them only after the primaries (they are
          then almost always cross-dropped for free) *)
}

val dominance : Mutsamp_netlist.Netlist.t -> t -> dominance
(** Partition the representatives by gate-local dominance. The split is
    what ATPG search uses with dominance enabled: the concatenation
    [search @ deferred] is a permutation of [representatives], so the
    reporting denominator is untouched — only the targeting order (and
    the number of faults needing a dedicated SAT/PODEM call) changes.
    Bumps [analysis.dominance_collapsed] by the deferred count. *)
