module Netlist = Mutsamp_netlist.Netlist

let reverse_order nl ~faults ~patterns =
  let n = Array.length patterns in
  let kept = ref [] in
  let remaining = ref faults in
  let i = ref (n - 1) in
  while !i >= 0 && !remaining <> [] do
    let p = patterns.(!i) in
    let r = Fsim.run nl ~faults:!remaining ~sequence:[| p |] in
    if r.Fsim.detected > 0 then begin
      kept := p :: !kept;
      remaining :=
        Array.to_list r.Fsim.detections
        |> List.filter_map (fun (d : Fsim.detection) ->
               match d.Fsim.detected_at with
               | None -> Some d.Fsim.fault
               | Some _ -> None)
    end;
    decr i
  done;
  Array.of_list !kept

let greedy_cover nl ~faults ~patterns =
  (* Detection sets per pattern, over the faults the full set detects. *)
  let full = Fsim.run nl ~faults ~sequence:patterns in
  let detectable =
    Array.to_list full.Fsim.detections
    |> List.filter_map (fun (d : Fsim.detection) ->
           match d.Fsim.detected_at with
           | Some _ -> Some d.Fsim.fault
           | None -> None)
  in
  let detects_of p =
    let r = Fsim.run nl ~faults:detectable ~sequence:[| p |] in
    Array.to_list r.Fsim.detections
    |> List.filter_map (fun (d : Fsim.detection) ->
           match d.Fsim.detected_at with
           | Some _ -> Some d.Fsim.fault
           | None -> None)
  in
  let sets = Array.map detects_of patterns in
  let uncovered = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace uncovered f ()) detectable;
  let kept = ref [] in
  while Hashtbl.length uncovered > 0 do
    let best = ref (-1) and best_count = ref 0 in
    Array.iteri
      (fun k set ->
        let fresh = List.length (List.filter (Hashtbl.mem uncovered) set) in
        if fresh > !best_count then begin
          best := k;
          best_count := fresh
        end)
      sets;
    if !best < 0 then Hashtbl.reset uncovered  (* unreachable: safety *)
    else begin
      kept := patterns.(!best) :: !kept;
      List.iter (Hashtbl.remove uncovered) sets.(!best)
    end
  done;
  Array.of_list (List.rev !kept)
