(** Static test-set compaction for combinational pattern sets.

    Two classical procedures:
    - {!reverse_order}: fault-simulate the patterns in reverse order
      with fault dropping and keep only the patterns that detect
      something new — cheap and surprisingly effective because late
      deterministic patterns tend to cover many of the early random
      ones;
    - {!greedy_cover}: full greedy set cover over the
      pattern-by-fault detection matrix — slower, smaller result.

    Both preserve coverage exactly (same detected fault set), which the
    test suite checks. *)

val reverse_order :
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  patterns:Pattern.t array ->
  Pattern.t array

val greedy_cover :
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  patterns:Pattern.t array ->
  Pattern.t array
