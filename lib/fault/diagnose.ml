module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Packvec = Mutsamp_util.Packvec

type observation = { pattern : Pattern.t; response : Packvec.t }

type verdict = { fault : Fault.t; matches : int; explains : bool }

(* Single-lane simulation: one word per net, the pattern replicated. *)
let words_of_pattern nl p =
  Array.init (Array.length nl.Netlist.input_nets) (fun k ->
      if Packvec.get p k then Bitsim.all_ones else 0)

(* Lane 0 of every output word, packed output-index-first. *)
let response_of_outputs outs =
  Packvec.init (Array.length outs) (fun k -> outs.(k) land 1 = 1)

let simulate_response nl fault p =
  let sim = Bitsim.create ~lanes:1 nl in
  let words = words_of_pattern nl p in
  let outs =
    match fault with
    | None -> Bitsim.step sim words
    | Some f ->
      Bitsim.step_injected sim words ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
  in
  response_of_outputs outs

let rank nl ~candidates ~observations =
  if observations = [] then invalid_arg "Diagnose.rank: no observations";
  if Netlist.num_dffs nl > 0 then invalid_arg "Diagnose.rank: sequential netlist";
  let sim = Bitsim.create ~lanes:1 nl in
  let n_obs = List.length observations in
  let verdicts =
    List.map
      (fun f ->
        let matches =
          List.fold_left
            (fun acc { pattern; response } ->
              let outs =
                Bitsim.step_injected sim (words_of_pattern nl pattern)
                  ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
              in
              if Packvec.equal (response_of_outputs outs) response then acc + 1 else acc)
            0 observations
        in
        { fault = f; matches; explains = matches = n_obs })
      candidates
  in
  List.stable_sort (fun a b -> compare b.matches a.matches) verdicts

let perfect_matches nl ~candidates ~observations =
  rank nl ~candidates ~observations
  |> List.filter (fun v -> v.explains)
  |> List.map (fun v -> v.fault)

type dictionary = {
  dict_patterns : Pattern.t array;
  entries : (Fault.t * Packvec.t array) array;  (* fault, response per pattern *)
}

let build nl ~candidates ~patterns =
  if Netlist.num_dffs nl > 0 then invalid_arg "Diagnose.build: sequential netlist";
  let sim = Bitsim.create ~lanes:1 nl in
  let entries =
    Array.of_list
      (List.map
         (fun f ->
           let responses =
             Array.map
               (fun p ->
                 let outs =
                   Bitsim.step_injected sim (words_of_pattern nl p)
                     ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
                 in
                 response_of_outputs outs)
               patterns
           in
           (f, responses))
         candidates)
  in
  { dict_patterns = Array.map Pattern.copy patterns; entries }

let dictionary_patterns d = Array.map Pattern.copy d.dict_patterns

let lookup d ~responses =
  if Array.length responses <> Array.length d.dict_patterns then
    invalid_arg "Diagnose.lookup: response count does not match dictionary";
  Array.to_list d.entries
  |> List.filter_map (fun (f, stored) ->
         if Array.for_all2 Packvec.equal stored responses then Some f else None)
