module Netlist = Mutsamp_netlist.Netlist
module Gate = Mutsamp_netlist.Gate
module Metrics = Mutsamp_obs.Metrics

let c_dominance = Metrics.counter "analysis.dominance_collapsed"

type t = {
  representatives : Fault.t list;
  class_of : Fault.t -> Fault.t;
  full_size : int;
  collapsed_size : int;
}

(* Plain union–find over fault indices. *)
let find parent i =
  let rec root i = if parent.(i) = i then i else root parent.(i) in
  let r = root i in
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let run (nl : Netlist.t) =
  let faults = Array.of_list (Fault.full_list nl) in
  let index = Hashtbl.create (Array.length faults) in
  Array.iteri (fun i f -> Hashtbl.replace index f i) faults;
  let parent = Array.init (Array.length faults) (fun i -> i) in
  let fanout_counts = Array.map List.length (Netlist.fanouts nl) in
  (* The fault observed at pin [pin] of [gate], whose driver is [net]:
     the branch fault when the stem fans out, else the stem fault
     itself. Returns None when the fault is not in the universe
     (constant stems). *)
  let input_fault gate pin net polarity =
    let site =
      if fanout_counts.(net) > 1 then Fault.Branch { gate; pin } else Fault.Stem net
    in
    Hashtbl.find_opt index { Fault.site; polarity }
  in
  let stem net polarity = Hashtbl.find_opt index { Fault.site = Fault.Stem net; polarity } in
  let link a b = match a, b with Some x, Some y -> union parent x y | _ -> () in
  Array.iteri
    (fun g (gate : Gate.t) ->
      let pin k = gate.fanins.(k) in
      match gate.kind with
      | Gate.And ->
        link (input_fault g 0 (pin 0) Fault.Stuck_at_0) (stem g Fault.Stuck_at_0);
        link (input_fault g 1 (pin 1) Fault.Stuck_at_0) (stem g Fault.Stuck_at_0)
      | Gate.Nand ->
        link (input_fault g 0 (pin 0) Fault.Stuck_at_0) (stem g Fault.Stuck_at_1);
        link (input_fault g 1 (pin 1) Fault.Stuck_at_0) (stem g Fault.Stuck_at_1)
      | Gate.Or ->
        link (input_fault g 0 (pin 0) Fault.Stuck_at_1) (stem g Fault.Stuck_at_1);
        link (input_fault g 1 (pin 1) Fault.Stuck_at_1) (stem g Fault.Stuck_at_1)
      | Gate.Nor ->
        link (input_fault g 0 (pin 0) Fault.Stuck_at_1) (stem g Fault.Stuck_at_0);
        link (input_fault g 1 (pin 1) Fault.Stuck_at_1) (stem g Fault.Stuck_at_0)
      | Gate.Buf ->
        link (input_fault g 0 (pin 0) Fault.Stuck_at_0) (stem g Fault.Stuck_at_0);
        link (input_fault g 0 (pin 0) Fault.Stuck_at_1) (stem g Fault.Stuck_at_1)
      | Gate.Not ->
        link (input_fault g 0 (pin 0) Fault.Stuck_at_0) (stem g Fault.Stuck_at_1);
        link (input_fault g 0 (pin 0) Fault.Stuck_at_1) (stem g Fault.Stuck_at_0)
      | Gate.Xor | Gate.Xnor | Gate.Pi _ | Gate.Const _ | Gate.Dff _ -> ())
    nl.gates;
  let reps = Hashtbl.create 64 in
  Array.iteri
    (fun i _ ->
      let r = find parent i in
      if not (Hashtbl.mem reps r) then Hashtbl.add reps r ())
    faults;
  let representatives =
    List.sort Stdlib.compare (Hashtbl.fold (fun r () acc -> r :: acc) reps [])
    |> List.map (fun r -> faults.(r))
  in
  let class_of f =
    match Hashtbl.find_opt index f with
    | Some i -> faults.(find parent i)
    | None -> invalid_arg ("Collapse.class_of: unknown fault " ^ Fault.to_string f)
  in
  {
    representatives;
    class_of;
    full_size = Array.length faults;
    collapsed_size = List.length representatives;
  }

let ratio t = float_of_int t.collapsed_size /. float_of_int t.full_size

(* Gate-local dominance: the output fault whose effect coincides with an
   input fault's is dominated by it. For AND, a test for input stuck-at-1
   (input at 0, other input at 1, output observed) sees exactly the
   output-stuck-at-1 effect, so output/1 needs no dedicated test; dually
   for OR (output/0), NAND (output/0) and NOR (output/1). Dominance is
   transitive and the netlist acyclic, so dropping every dominated class
   is sound. *)
let dominated_reps (nl : Netlist.t) t =
  let dominated = Hashtbl.create 64 in
  Array.iteri
    (fun g (gate : Gate.t) ->
      (* Equivalent faults share their test sets, so when one member of
         a class is dominated the whole class is; mark its
         representative. The dominating input fault must itself be in
         the universe: a constant fanin carries no fault, so an output
         fault whose only would-be dominators sit on tie-offs keeps its
         own test target. *)
      let has_input_fault () =
        Array.exists
          (fun f ->
            match nl.gates.(f).Gate.kind with Gate.Const _ -> false | _ -> true)
          gate.fanins
      in
      let drop polarity =
        if has_input_fault () then
          match t.class_of { Fault.site = Fault.Stem g; polarity } with
          | rep -> Hashtbl.replace dominated rep ()
          | exception Invalid_argument _ -> ()
      in
      match gate.kind with
      | Gate.And -> drop Fault.Stuck_at_1
      | Gate.Or -> drop Fault.Stuck_at_0
      | Gate.Nand -> drop Fault.Stuck_at_0
      | Gate.Nor -> drop Fault.Stuck_at_1
      | Gate.Buf | Gate.Not | Gate.Xor | Gate.Xnor | Gate.Pi _ | Gate.Const _
      | Gate.Dff _ -> ())
    nl.gates;
  dominated

let dominance_reduced (nl : Netlist.t) t =
  let dominated = dominated_reps nl t in
  List.filter (fun f -> not (Hashtbl.mem dominated f)) t.representatives

type dominance = { search : Fault.t list; deferred : Fault.t list }

let dominance (nl : Netlist.t) t =
  let dominated = dominated_reps nl t in
  let search, deferred =
    List.partition (fun f -> not (Hashtbl.mem dominated f)) t.representatives
  in
  Metrics.add c_dominance (List.length deferred);
  { search; deferred }
