module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Packvec = Mutsamp_util.Packvec
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Ctx = Mutsamp_exec.Ctx

(* Observability series (no-ops unless metrics collection is on).

   Convention: [fsim.*] series describe the logical workload — counted
   by the coordinator, or per fault where the count is independent of
   how the fault array was sharded — so their totals are identical
   whatever the job count. [exec.*] series describe physical execution
   (batches, good-circuit re-simulation, lane occupancy), which
   legitimately varies with sharding and is therefore excluded from the
   cross-jobs determinism guarantee. *)
let c_runs = Metrics.counter "fsim.runs"
let c_patterns = Metrics.counter "fsim.patterns_simulated"
let c_detected = Metrics.counter "fsim.faults_detected"
let c_machine_steps = Metrics.counter "fsim.machine_steps"
let c_serial_cycles = Metrics.counter "fsim.serial_cycles"
let c_shards = Metrics.counter "exec.fsim_shards"
let x_batches = Metrics.counter "exec.fsim_batches"
let x_good_steps = Metrics.counter "exec.fsim_good_steps"
let x_fault_groups = Metrics.counter "exec.fsim_fault_groups"
let x_machine_steps = Metrics.counter "exec.fsim_machine_steps"
let h_lanes_per_step = Metrics.histogram "exec.fsim_lanes_per_step"

type detection = { fault : Fault.t; detected_at : int option }

type report = {
  total : int;
  detected : int;
  detections : detection array;
  patterns_applied : int;
}

let coverage_percent r =
  if r.total = 0 then 0. else 100. *. float_of_int r.detected /. float_of_int r.total

let coverage_at r n =
  if r.total = 0 then 0.
  else begin
    let hit = ref 0 in
    Array.iter
      (fun d -> match d.detected_at with Some k when k < n -> incr hit | _ -> ())
      r.detections;
    100. *. float_of_int !hit /. float_of_int r.total
  end

let coverage_curve r =
  (* Counting sort over first-detection indices gives the whole curve in
     one pass. *)
  let hits = Array.make (r.patterns_applied + 1) 0 in
  Array.iter
    (fun d ->
      match d.detected_at with
      | Some k when k < r.patterns_applied -> hits.(k + 1) <- hits.(k + 1) + 1
      | Some _ | None -> ())
    r.detections;
  let acc = ref 0 in
  List.init (r.patterns_applied + 1) (fun n ->
      acc := !acc + hits.(n);
      let cov =
        if r.total = 0 then 0. else 100. *. float_of_int !acc /. float_of_int r.total
      in
      (n, cov))

let length_to_reach r target =
  let rec scan = function
    | [] -> None
    | (n, cov) :: rest -> if cov >= target -. 1e-9 then Some n else scan rest
  in
  scan (coverage_curve r)

let check_width nl op (p : Pattern.t) =
  if Packvec.width p <> Array.length nl.Netlist.input_nets then
    invalid_arg
      (Printf.sprintf "Fsim.%s: pattern width %d does not match %d inputs" op
         (Packvec.width p) (Array.length nl.Netlist.input_nets))

(* Spread [len] patterns over the per-input lane words: lane [l] of
   input [k] receives bit [k] of pattern [lo + l]. *)
let pack_patterns nl nw (patterns : Pattern.t array) lo len =
  let n_in = Array.length nl.Netlist.input_nets in
  let words = Array.make (n_in * nw) 0 in
  for l = 0 to len - 1 do
    let p = patterns.(lo + l) in
    check_width nl "run_combinational" p;
    let j = l / Bitsim.word_bits and b = l mod Bitsim.word_bits in
    for k = 0 to n_in - 1 do
      if Packvec.get p k then
        words.((k * nw) + j) <- words.((k * nw) + j) lor (1 lsl b)
    done
  done;
  words

(* All lanes carry the same pattern. *)
let replicate_pattern nl nw (p : Pattern.t) =
  check_width nl "replicate" p;
  let n_in = Array.length nl.Netlist.input_nets in
  Array.init (n_in * nw) (fun idx ->
      if Packvec.get p (idx / nw) then Bitsim.all_ones else 0)

(* Mask of valid lanes in word [j] when only [len] lanes are in use. *)
let word_lane_mask len j =
  let lo = j * Bitsim.word_bits in
  if len >= lo + Bitsim.word_bits then -1
  else if len <= lo then 0
  else (1 lsl (len - lo)) - 1

let lowest_bit w =
  let rec go k = if (w lsr k) land 1 = 1 then k else go (k + 1) in
  go 0

(* Entry-point chaos consultation shared by the engines; consulted by
   every shard, so injections fire inside workers too. [Timeout]
   behaves like an exhausted budget (the run degrades to a partial
   report); [Exception] raises to prove caller containment; [Truncate]
   is meaningless for simulation and ignored. *)
let chaos_entry () =
  match Chaos.fire Chaos.Fsim_run with
  | Some Chaos.Timeout -> Some (Rerror.Timeout Rerror.Fsim)
  | Some Chaos.Exception ->
    raise (Chaos.Injected "chaos: injected exception at fsim")
  | Some (Chaos.Truncate _) | None -> None

(* Per-fault first-detection indices are independent of which other
   faults share a run (dropping only skips that fault's own later
   passes; parallel-fault lanes carry independent state), so every
   engine shards its fault array into contiguous chunks and the merge
   is a plain concatenation in chunk order — bit-identical to the
   sequential report. One shard returns its report unchanged. *)
let merge_reports ~patterns_applied shards =
  if Array.length shards = 1 then shards.(0)
  else begin
    Metrics.add c_shards (Array.length shards);
    {
      total = Array.fold_left (fun a r -> a + r.total) 0 shards;
      detected = Array.fold_left (fun a r -> a + r.detected) 0 shards;
      detections =
        Array.concat (Array.to_list (Array.map (fun r -> r.detections) shards));
      patterns_applied;
    }
  end

let combinational_shard ?lanes ~budget nl ~(faults : Fault.t array) ~patterns =
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let alive = Array.init (Array.length faults) (fun i -> i) in
  let alive_count = ref (Array.length faults) in
  let sim = Bitsim.create ?lanes nl in
  let w = Bitsim.lanes sim in
  let nw = Bitsim.words_per_net sim in
  let n_out = Array.length nl.Netlist.output_list in
  let n_pat = Array.length patterns in
  let batches = (n_pat + w - 1) / w in
  let batch = ref 0 in
  let diff = Array.make nw 0 in
  let stop = ref (chaos_entry ()) in
  while !batch < batches && !alive_count > 0 && !stop = None do
    let lo = !batch * w in
    let len = min w (n_pat - lo) in
    (* One work unit per pattern·fault pair this batch will simulate. *)
    (match Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs (len * !alive_count) with
     | Ok () -> ()
     | Error e -> stop := Some e);
    if !stop = None then begin
    let words = pack_patterns nl nw patterns lo len in
    let good = Bitsim.step sim words in
    Metrics.incr x_batches;
    Metrics.incr x_good_steps;
    Metrics.observe h_lanes_per_step (float_of_int len);
    let k = ref 0 in
    while !k < !alive_count do
      let fi = alive.(!k) in
      let f = faults.(fi) in
      let faulty =
        Bitsim.step_injected sim words ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
      in
      Metrics.incr c_machine_steps;
      Array.fill diff 0 nw 0;
      for o = 0 to n_out - 1 do
        for j = 0 to nw - 1 do
          diff.(j) <- diff.(j) lor (faulty.((o * nw) + j) lxor good.((o * nw) + j))
        done
      done;
      let first = ref (-1) in
      for j = 0 to nw - 1 do
        if !first < 0 then begin
          let d = diff.(j) land word_lane_mask len j in
          if d <> 0 then first := (j * Bitsim.word_bits) + lowest_bit d
        end
      done;
      if !first >= 0 then begin
        detections.(fi) <- { detections.(fi) with detected_at = Some (lo + !first) };
        (* Drop: swap with the last alive fault. *)
        alive_count := !alive_count - 1;
        alive.(!k) <- alive.(!alive_count);
        alive.(!alive_count) <- fi
      end
      else incr k
    done
    end;
    incr batch
  done;
  (match !stop with
   | None -> ()
   | Some e ->
     Degrade.note ~stage:Rerror.Fsim
       ~detail:"fault simulation cut short; remaining faults reported undetected" e);
  {
    total = Array.length faults;
    detected = Array.length faults - !alive_count;
    detections;
    patterns_applied = n_pat;
  }

let run_combinational ?lanes ?(ctx = Ctx.default) nl ~faults ~patterns =
  if Netlist.num_dffs nl > 0 then
    invalid_arg "Fsim.run_combinational: netlist has flip-flops";
  let faults = Array.of_list faults in
  Metrics.incr c_runs;
  let shards =
    Ctx.map_shards ctx ~n:(Array.length faults) ~f:(fun ~budget ~lo ~len ->
        combinational_shard ?lanes ~budget nl
          ~faults:(Array.sub faults lo len)
          ~patterns)
  in
  let report = merge_reports ~patterns_applied:(Array.length patterns) shards in
  Metrics.add c_patterns report.patterns_applied;
  Metrics.add c_detected report.detected;
  report

(* Serial single-lane engine, kept as the reference implementation the
   differential property tests compare the wide engines against. *)
let sequential_shard ~budget ~tick nl ~(faults : Fault.t array) ~sequence =
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let stop = ref (chaos_entry ()) in
  let sim_good = Bitsim.create ~lanes:1 nl in
  Bitsim.reset sim_good;
  let good_outputs =
    Array.map (fun p -> Bitsim.step sim_good (replicate_pattern nl 1 p)) sequence
  in
  (* Every shard re-simulates the good circuit, so this scales with the
     shard count — execution bookkeeping, not logical workload. *)
  Metrics.add x_good_steps (Array.length sequence);
  let sim_faulty = Bitsim.create ~lanes:1 nl in
  Array.iteri
    (fun fi f ->
      if !stop = None then begin
      (match
         Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs
           (Array.length sequence)
       with
       | Ok () -> ()
       | Error e -> stop := Some e)
      end;
      if !stop <> None then tick ()
      else begin
      Bitsim.reset sim_faulty;
      let inj = Fault.injection f and stuck = Fault.stuck_word f in
      (* A stem fault on a flip-flop output also corrupts the reset
         state, which [step_injected] applies from the first cycle. *)
      let rec cycle c =
        if c < Array.length sequence then begin
          let faulty =
            Bitsim.step_injected sim_faulty (replicate_pattern nl 1 sequence.(c)) ~inj ~stuck
          in
          Metrics.incr c_serial_cycles;
          Metrics.incr c_machine_steps;
          if faulty <> good_outputs.(c) then
            detections.(fi) <- { fault = f; detected_at = Some c }
          else cycle (c + 1)
        end
      in
      cycle 0;
      tick ()
      end)
    faults;
  (match !stop with
   | None -> ()
   | Some e ->
     Degrade.note ~stage:Rerror.Fsim
       ~detail:"serial fault simulation cut short; remaining faults reported undetected"
       e);
  let detected =
    Array.fold_left
      (fun acc d -> match d.detected_at with Some _ -> acc + 1 | None -> acc)
      0 detections
  in
  {
    total = Array.length faults;
    detected;
    detections;
    patterns_applied = Array.length sequence;
  }

let run_sequential ?(ctx = Ctx.default) nl ~faults ~sequence =
  let faults = Array.of_list faults in
  let total = Array.length faults in
  Metrics.incr c_runs;
  (* Shards report progress through one shared counter, so the callback
     sees a monotone done-count whatever the interleaving. *)
  let done_count = Atomic.make 0 in
  let tick () =
    let d = 1 + Atomic.fetch_and_add done_count 1 in
    Ctx.progress ctx ~stage:"faultsim" ~done_:d ~total
  in
  let shards =
    Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
        sequential_shard ~budget ~tick nl ~faults:(Array.sub faults lo len) ~sequence)
  in
  let report = merge_reports ~patterns_applied:(Array.length sequence) shards in
  Metrics.add c_patterns report.patterns_applied;
  Metrics.add c_detected report.detected;
  report

let parallel_fault_shard ?lanes ~budget nl ~(faults : Fault.t array) ~sequence =
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let stop = ref (chaos_entry ()) in
  let sim = Bitsim.create ?lanes nl in
  let w = Bitsim.lanes sim in
  let nw = Bitsim.words_per_net sim in
  let n_out = Array.length nl.Netlist.output_list in
  let group_size = w - 1 in
  if group_size < 1 then invalid_arg "Fsim.run_parallel_fault: needs at least 2 lanes";
  let n_groups = (Array.length faults + group_size - 1) / group_size in
  let diff = Array.make nw 0 in
  for g = 0 to n_groups - 1 do
    if !stop = None then begin
    Metrics.incr x_fault_groups;
    let lo = g * group_size in
    let len = min group_size (Array.length faults - lo) in
    (match
       Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs
         (len * Array.length sequence)
     with
     | Ok () -> ()
     | Error e -> stop := Some e);
    if !stop = None then begin
    let injections =
      List.init len (fun j ->
          let f = faults.(lo + j) in
          let lane = j + 1 in
          let mask = Array.make nw 0 in
          mask.(lane / Bitsim.word_bits) <- 1 lsl (lane mod Bitsim.word_bits);
          { Bitsim.inj = Fault.injection f; lanes = mask; stuck = Fault.stuck_word f })
    in
    Bitsim.reset sim;
    let cycle = ref 0 in
    let n_cycles = Array.length sequence in
    while !cycle < n_cycles do
      let outs =
        Bitsim.step_multi sim (replicate_pattern nl nw sequence.(!cycle)) ~injections
      in
      Metrics.incr x_machine_steps;
      Metrics.observe h_lanes_per_step (float_of_int (len + 1));
      (* Lanes whose outputs differ from lane 0's value. *)
      Array.fill diff 0 nw 0;
      for o = 0 to n_out - 1 do
        let good = -(outs.(o * nw) land 1) in
        for j = 0 to nw - 1 do
          diff.(j) <- diff.(j) lor (outs.((o * nw) + j) lxor good)
        done
      done;
      for j = 0 to len - 1 do
        let lane = j + 1 in
        if (diff.(lane / Bitsim.word_bits) lsr (lane mod Bitsim.word_bits)) land 1 = 1
        then begin
          let fi = lo + j in
          match detections.(fi).detected_at with
          | None -> detections.(fi) <- { detections.(fi) with detected_at = Some !cycle }
          | Some _ -> ()
        end
      done;
      incr cycle
    done
    end
    end
  done;
  (match !stop with
   | None -> ()
   | Some e ->
     Degrade.note ~stage:Rerror.Fsim
       ~detail:"parallel-fault simulation cut short; remaining faults reported undetected"
       e);
  let detected =
    Array.fold_left
      (fun acc d -> match d.detected_at with Some _ -> acc + 1 | None -> acc)
      0 detections
  in
  {
    total = Array.length faults;
    detected;
    detections;
    patterns_applied = Array.length sequence;
  }

let run_parallel_fault ?lanes ?(ctx = Ctx.default) nl ~faults ~sequence =
  let faults = Array.of_list faults in
  Metrics.incr c_runs;
  let shards =
    Ctx.map_shards ctx ~n:(Array.length faults) ~f:(fun ~budget ~lo ~len ->
        parallel_fault_shard ?lanes ~budget nl
          ~faults:(Array.sub faults lo len)
          ~sequence)
  in
  let report = merge_reports ~patterns_applied:(Array.length sequence) shards in
  Metrics.add c_patterns report.patterns_applied;
  Metrics.add c_detected report.detected;
  report

let run_auto ?lanes ?ctx nl ~faults ~sequence =
  if Netlist.num_dffs nl = 0 then
    run_combinational ?lanes ?ctx nl ~faults ~patterns:sequence
  else run_parallel_fault ?lanes ?ctx nl ~faults ~sequence

let input_pattern = Pattern.of_bits

let pattern_of_code nl code =
  Pattern.of_code ~inputs:(Array.length nl.Netlist.input_nets) code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes
