module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Levels = Mutsamp_netlist.Levels
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Ctx = Mutsamp_exec.Ctx
module K = Fsim_kernel

type engine = Ctx.engine = Auto | Packed | Event | Compiled | Serial

type detection = K.detection = { fault : Fault.t; detected_at : int option }

type report = K.report = {
  total : int;
  detected : int;
  detections : detection array;
  patterns_applied : int;
}

let coverage_percent r =
  if r.total = 0 then 0. else 100. *. float_of_int r.detected /. float_of_int r.total

let coverage_at r n =
  if r.total = 0 then 0.
  else begin
    let hit = ref 0 in
    Array.iter
      (fun d -> match d.detected_at with Some k when k < n -> incr hit | _ -> ())
      r.detections;
    100. *. float_of_int !hit /. float_of_int r.total
  end

let coverage_curve r =
  (* Counting sort over first-detection indices gives the whole curve in
     one pass. *)
  let hits = Array.make (r.patterns_applied + 1) 0 in
  Array.iter
    (fun d ->
      match d.detected_at with
      | Some k when k < r.patterns_applied -> hits.(k + 1) <- hits.(k + 1) + 1
      | Some _ | None -> ())
    r.detections;
  let acc = ref 0 in
  List.init (r.patterns_applied + 1) (fun n ->
      acc := !acc + hits.(n);
      let cov =
        if r.total = 0 then 0. else 100. *. float_of_int !acc /. float_of_int r.total
      in
      (n, cov))

let length_to_reach r target =
  let rec scan = function
    | [] -> None
    | (n, cov) :: rest -> if cov >= target -. 1e-9 then Some n else scan rest
  in
  scan (coverage_curve r)

(* Per-fault first-detection indices are independent of which other
   faults share a run (dropping only skips that fault's own later
   passes; parallel-fault lanes carry independent state), so every
   engine shards its fault array into contiguous chunks and the merge
   is a plain concatenation in chunk order — bit-identical to the
   sequential report. One shard returns its report unchanged. *)
let merge_reports ~patterns_applied shards =
  if Array.length shards = 1 then shards.(0)
  else begin
    Metrics.add K.c_shards (Array.length shards);
    {
      total = Array.fold_left (fun a r -> a + r.K.total) 0 shards;
      detected = Array.fold_left (fun a r -> a + r.K.detected) 0 shards;
      detections =
        Array.concat (Array.to_list (Array.map (fun r -> r.K.detections) shards));
      patterns_applied;
    }
  end

(* Packed (PPSFP) combinational shard: full-circuit wide resimulation
   of every alive fault per pattern batch. *)
let packed_combinational_shard ?lanes ~budget nl ~(faults : Fault.t array)
    ~patterns =
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let alive = Array.init (Array.length faults) (fun i -> i) in
  let alive_count = ref (Array.length faults) in
  let sim = Bitsim.create ?lanes nl in
  let w = Bitsim.lanes sim in
  let nw = Bitsim.words_per_net sim in
  let n_out = Array.length nl.Netlist.output_list in
  let n_pat = Array.length patterns in
  let batches = (n_pat + w - 1) / w in
  let batch = ref 0 in
  let diff = Array.make nw 0 in
  let stop = ref (K.chaos_entry ()) in
  while !batch < batches && !alive_count > 0 && !stop = None do
    let lo = !batch * w in
    let len = min w (n_pat - lo) in
    (* One work unit per pattern·fault pair this batch will simulate. *)
    (match Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs (len * !alive_count) with
     | Ok () -> ()
     | Error e -> stop := Some e);
    if !stop = None then begin
    let words = K.pack_patterns nl nw patterns lo len in
    let good = Bitsim.step sim words in
    Metrics.incr K.x_batches;
    Metrics.incr K.x_good_steps;
    Metrics.observe K.h_lanes_per_step (float_of_int len);
    let k = ref 0 in
    while !k < !alive_count do
      let fi = alive.(!k) in
      let f = faults.(fi) in
      let faulty =
        Bitsim.step_injected sim words ~inj:(Fault.injection f) ~stuck:(Fault.stuck_word f)
      in
      Metrics.incr K.c_machine_steps;
      Array.fill diff 0 nw 0;
      for o = 0 to n_out - 1 do
        for j = 0 to nw - 1 do
          diff.(j) <- diff.(j) lor (faulty.((o * nw) + j) lxor good.((o * nw) + j))
        done
      done;
      let first = ref (-1) in
      for j = 0 to nw - 1 do
        if !first < 0 then begin
          let d = diff.(j) land K.word_lane_mask len j in
          if d <> 0 then first := (j * Bitsim.word_bits) + K.lowest_bit d
        end
      done;
      if !first >= 0 then begin
        detections.(fi) <- { detections.(fi) with detected_at = Some (lo + !first) };
        (* Drop: swap with the last alive fault. *)
        alive_count := !alive_count - 1;
        alive.(!k) <- alive.(!alive_count);
        alive.(!alive_count) <- fi
      end
      else incr k
    done
    end;
    incr batch
  done;
  K.note_cut ~detail:K.batch_cut_detail !stop;
  {
    total = Array.length faults;
    detected = Array.length faults - !alive_count;
    detections;
    patterns_applied = n_pat;
  }

(* Serial single-lane engine, kept as the reference implementation the
   differential property tests compare the wide engines against. *)
let serial_shard ~budget ~tick nl ~(faults : Fault.t array) ~sequence =
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let stop = ref (K.chaos_entry ()) in
  let sim_good = Bitsim.create ~lanes:1 nl in
  Bitsim.reset sim_good;
  let good_outputs =
    Array.map (fun p -> Bitsim.step sim_good (K.replicate_pattern nl 1 p)) sequence
  in
  (* Every shard re-simulates the good circuit, so this scales with the
     shard count — execution bookkeeping, not logical workload. *)
  Metrics.add K.x_good_steps (Array.length sequence);
  let sim_faulty = Bitsim.create ~lanes:1 nl in
  Array.iteri
    (fun fi f ->
      if !stop = None then begin
      (match
         Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs
           (Array.length sequence)
       with
       | Ok () -> ()
       | Error e -> stop := Some e)
      end;
      if !stop <> None then tick ()
      else begin
      Bitsim.reset sim_faulty;
      let inj = Fault.injection f and stuck = Fault.stuck_word f in
      (* A stem fault on a flip-flop output also corrupts the reset
         state, which [step_injected] applies from the first cycle. *)
      let rec cycle c =
        if c < Array.length sequence then begin
          let faulty =
            Bitsim.step_injected sim_faulty (K.replicate_pattern nl 1 sequence.(c)) ~inj ~stuck
          in
          Metrics.incr K.c_serial_cycles;
          Metrics.incr K.c_machine_steps;
          if faulty <> good_outputs.(c) then
            detections.(fi) <- { fault = f; detected_at = Some c }
          else cycle (c + 1)
        end
      in
      cycle 0;
      tick ()
      end)
    faults;
  K.note_cut ~detail:K.serial_cut_detail !stop;
  {
    total = Array.length faults;
    detected = K.count_detected detections;
    detections;
    patterns_applied = Array.length sequence;
  }

(* Packed sequential engine: lane 0 carries the good machine, every
   other lane one fault, all advanced together by [Bitsim.step_multi]. *)
let parallel_fault_shard ?lanes ~budget ~tick nl ~(faults : Fault.t array)
    ~sequence =
  let detections = Array.map (fun f -> { fault = f; detected_at = None }) faults in
  let stop = ref (K.chaos_entry ()) in
  let sim = Bitsim.create ?lanes nl in
  let w = Bitsim.lanes sim in
  let nw = Bitsim.words_per_net sim in
  let n_out = Array.length nl.Netlist.output_list in
  let group_size = w - 1 in
  if group_size < 1 then invalid_arg "Fsim.run: packed sequential needs at least 2 lanes";
  let n_groups = (Array.length faults + group_size - 1) / group_size in
  let diff = Array.make nw 0 in
  for g = 0 to n_groups - 1 do
    if !stop = None then begin
    Metrics.incr K.x_fault_groups;
    let lo = g * group_size in
    let len = min group_size (Array.length faults - lo) in
    (match
       Budget.spend budget ~stage:Rerror.Fsim Budget.Fsim_pairs
         (len * Array.length sequence)
     with
     | Ok () -> ()
     | Error e -> stop := Some e);
    if !stop = None then begin
    let injections =
      List.init len (fun j ->
          let f = faults.(lo + j) in
          let lane = j + 1 in
          let mask = Array.make nw 0 in
          mask.(lane / Bitsim.word_bits) <- 1 lsl (lane mod Bitsim.word_bits);
          { Bitsim.inj = Fault.injection f; lanes = mask; stuck = Fault.stuck_word f })
    in
    Bitsim.reset sim;
    let cycle = ref 0 in
    let n_cycles = Array.length sequence in
    while !cycle < n_cycles do
      let outs =
        Bitsim.step_multi sim (K.replicate_pattern nl nw sequence.(!cycle)) ~injections
      in
      Metrics.incr K.x_machine_steps;
      Metrics.observe K.h_lanes_per_step (float_of_int (len + 1));
      (* Lanes whose outputs differ from lane 0's value. *)
      Array.fill diff 0 nw 0;
      for o = 0 to n_out - 1 do
        let good = -(outs.(o * nw) land 1) in
        for j = 0 to nw - 1 do
          diff.(j) <- diff.(j) lor (outs.((o * nw) + j) lxor good)
        done
      done;
      for j = 0 to len - 1 do
        let lane = j + 1 in
        if (diff.(lane / Bitsim.word_bits) lsr (lane mod Bitsim.word_bits)) land 1 = 1
        then begin
          let fi = lo + j in
          match detections.(fi).detected_at with
          | None -> detections.(fi) <- { detections.(fi) with detected_at = Some !cycle }
          | Some _ -> ()
        end
      done;
      incr cycle
    done;
    tick len
    end
    end
  done;
  K.note_cut ~detail:K.parallel_cut_detail !stop;
  {
    total = Array.length faults;
    detected = K.count_detected detections;
    detections;
    patterns_applied = Array.length sequence;
  }

let resolved_engine engine nl =
  match engine with
  | Auto -> if Netlist.num_dffs nl = 0 then Compiled else Packed
  | (Packed | Event | Compiled | Serial) as e -> e

let note_engine = function
  | Packed -> Metrics.incr K.c_engine_packed
  | Event -> Metrics.incr K.c_engine_event
  | Compiled -> Metrics.incr K.c_engine_compiled
  | Serial -> Metrics.incr K.c_engine_serial
  | Auto -> assert false

(* The one entry point. [sequence] is a pattern sequence for sequential
   circuits and an (order-preserved) set of independent patterns for
   combinational ones; [detected_at] indexes into it either way. *)
let run ?lanes ?engine ?(ctx = Ctx.default) nl ~faults ~sequence =
  let engine = match engine with Some e -> e | None -> ctx.Ctx.engine in
  let engine = resolved_engine engine nl in
  let comb = Netlist.num_dffs nl = 0 in
  let faults = Array.of_list faults in
  let total = Array.length faults in
  Metrics.incr K.c_runs;
  note_engine engine;
  (* Sequential engines report per-fault progress through one shared
     counter, so the callback sees a monotone done-count whatever the
     shard interleaving; the combinational batch engines are too
     fine-grained for that to be worth the traffic. *)
  let done_count = Atomic.make 0 in
  let tick_n n =
    let d = n + Atomic.fetch_and_add done_count n in
    Ctx.progress ctx ~stage:"faultsim" ~done_:d ~total
  in
  let tick () = tick_n 1 in
  let shards =
    match (engine, comb) with
    | Packed, true ->
      Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
          packed_combinational_shard ?lanes ~budget nl
            ~faults:(Array.sub faults lo len)
            ~patterns:sequence)
    | Packed, false ->
      Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
          parallel_fault_shard ?lanes ~budget ~tick:tick_n nl
            ~faults:(Array.sub faults lo len)
            ~sequence)
    | Event, true ->
      let lv = Levels.compute nl in
      Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
          Fsim_event.combinational_shard lv ?lanes ~budget
            ~faults:(Array.sub faults lo len)
            ~patterns:sequence ())
    | Event, false ->
      let lv = Levels.compute nl in
      Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
          Fsim_event.sequential_shard lv ~budget ~tick
            ~faults:(Array.sub faults lo len)
            ~sequence)
    | Compiled, true ->
      let nw =
        match lanes with
        | None -> 1
        | Some l ->
          if l < 1 then invalid_arg "Fsim.run: lanes < 1"
          else (l + Bitsim.word_bits - 1) / Bitsim.word_bits
      in
      let entry, progs =
        Fsim_compiled.prepare_comb nl ~nw ~faults:(Array.to_list faults)
      in
      Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
          Fsim_compiled.combinational_shard entry progs ~budget
            ~faults:(Array.sub faults lo len)
            ~fault_lo:lo ~patterns:sequence)
    | Compiled, false ->
      let entry, sites =
        Fsim_compiled.prepare_seq nl ~faults:(Array.to_list faults)
      in
      Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
          Fsim_compiled.sequential_shard entry sites ~budget ~tick
            ~faults:(Array.sub faults lo len)
            ~fault_lo:lo ~sequence)
    | Serial, (true | false) ->
      Ctx.map_shards ctx ~n:total ~f:(fun ~budget ~lo ~len ->
          serial_shard ~budget ~tick nl ~faults:(Array.sub faults lo len) ~sequence)
    | Auto, _ -> assert false
  in
  let report = merge_reports ~patterns_applied:(Array.length sequence) shards in
  Metrics.add K.c_patterns report.patterns_applied;
  Metrics.add K.c_detected report.detected;
  report

let input_pattern = Pattern.of_bits

let pattern_of_code nl code =
  Pattern.of_code ~inputs:(Array.length nl.Netlist.input_nets) code

let patterns_of_codes nl codes = Array.map (pattern_of_code nl) codes
