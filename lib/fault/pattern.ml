module Packvec = Mutsamp_util.Packvec
module Prng = Mutsamp_util.Prng
module Netlist = Mutsamp_netlist.Netlist

type t = Packvec.t

let num_inputs nl = Array.length nl.Netlist.input_nets

let zero ~inputs = Packvec.create inputs
let init ~inputs f = Packvec.init inputs f
let of_code ~inputs code = Packvec.of_code ~width:inputs code
let to_code = Packvec.to_code
let width = Packvec.width
let get = Packvec.get
let set = Packvec.set
let copy = Packvec.copy
let equal = Packvec.equal
let random prng ~inputs = Packvec.random prng inputs
let to_string = Packvec.to_string
let pp = Packvec.pp

let of_bits nl bits =
  let names = Netlist.input_names nl in
  init ~inputs:(Array.length names) (fun k ->
      match List.assoc_opt names.(k) bits with
      | Some b -> b
      | None -> false)
