(** Cause-effect fault diagnosis.

    Given the responses a defective combinational device produced on a
    set of test patterns, rank the single stuck-at candidates by how
    well their simulated behaviour explains the observations. A
    candidate {e explains} the data when its predicted response equals
    the observation on every applied pattern; candidates that merely
    match on most patterns get partial scores (useful when the defect
    is not a perfect single stuck-at). *)

type observation = {
  pattern : Pattern.t;  (** input pattern, as in {!Fsim} *)
  response : Mutsamp_util.Packvec.t;
      (** observed output bits, output [k] in bit [k] of the vector *)
}

type verdict = {
  fault : Fault.t;
  matches : int;  (** patterns where prediction = observation *)
  explains : bool;  (** matches every observation *)
}

val simulate_response :
  Mutsamp_netlist.Netlist.t -> Fault.t option -> Pattern.t -> Mutsamp_util.Packvec.t
(** Response of the (faulty) circuit on one pattern; [None] simulates
    the good machine. *)

val rank :
  Mutsamp_netlist.Netlist.t ->
  candidates:Fault.t list ->
  observations:observation list ->
  verdict list
(** Sorted best-first (most matches, ties in fault order). Raises
    [Invalid_argument] on an empty observation list or a sequential
    netlist. *)

val perfect_matches :
  Mutsamp_netlist.Netlist.t ->
  candidates:Fault.t list ->
  observations:observation list ->
  Fault.t list
(** Just the candidates that explain everything. *)

(** {1 Fault dictionaries}

    Production testers diagnose against a precomputed dictionary
    instead of re-simulating: one pass stores every candidate's
    response to every dictionary pattern, then each lookup is a table
    scan. *)

type dictionary

val build :
  Mutsamp_netlist.Netlist.t ->
  candidates:Fault.t list ->
  patterns:Pattern.t array ->
  dictionary

val dictionary_patterns : dictionary -> Pattern.t array

val lookup : dictionary -> responses:Mutsamp_util.Packvec.t array -> Fault.t list
(** Candidates whose stored responses equal [responses] (one observed
    response per dictionary pattern, same order). Raises
    [Invalid_argument] on a length mismatch. Equivalent to
    {!perfect_matches} over the dictionary's patterns — a property the
    test suite checks. *)
