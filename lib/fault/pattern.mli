(** Test patterns over a netlist's primary inputs.

    A pattern is a {!Mutsamp_util.Packvec} whose width is the number of
    primary inputs, bit [k] feeding input [k] in [input_nets] order.
    This replaces the historical flat integer codes and removes their
    62-input ceiling; {!of_code}/{!to_code} remain as conveniences for
    narrow circuits and external formats. *)

type t = Mutsamp_util.Packvec.t

val num_inputs : Mutsamp_netlist.Netlist.t -> int
(** Number of primary inputs — the width patterns for that netlist
    must have. *)

val zero : inputs:int -> t
val init : inputs:int -> (int -> bool) -> t

val of_code : inputs:int -> int -> t
(** Spread an integer code (bit [k] -> input [k]). Codes carry at most
    62 payload bits; wider patterns need {!init}/{!set}. *)

val to_code : t -> int
(** Raises [Invalid_argument] when the pattern is wider than 62 bits. *)

val width : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val copy : t -> t
val equal : t -> t -> bool

val random : Mutsamp_util.Prng.t -> inputs:int -> t

val of_bits : Mutsamp_netlist.Netlist.t -> (string * bool) list -> t
(** Build a pattern from named input bits (missing names default to
    0). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
