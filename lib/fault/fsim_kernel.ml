(* Shared spine of the fault-simulation backends: report types, metric
   series, pattern packing and the chaos/degrade conventions. Every
   engine (packed, event-driven, compiled, serial reference) builds on
   these so their observable behaviour — budget charging, degrade
   notes, detection indexing — stays aligned by construction. *)

module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Packvec = Mutsamp_util.Packvec
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade

(* Observability series (no-ops unless metrics collection is on).

   Convention: [fsim.*] series describe the logical workload — counted
   by the coordinator, or per fault where the count is independent of
   how the fault array was sharded — so their totals are identical
   whatever the job count. [exec.*] series describe physical execution
   (batches, good-circuit re-simulation, lane occupancy, events
   elided), which legitimately varies with sharding and is therefore
   excluded from the cross-jobs determinism guarantee. *)
let c_runs = Metrics.counter "fsim.runs"
let c_patterns = Metrics.counter "fsim.patterns_simulated"
let c_detected = Metrics.counter "fsim.faults_detected"
let c_machine_steps = Metrics.counter "fsim.machine_steps"
let c_serial_cycles = Metrics.counter "fsim.serial_cycles"
let c_shards = Metrics.counter "exec.fsim_shards"
let x_batches = Metrics.counter "exec.fsim_batches"
let x_good_steps = Metrics.counter "exec.fsim_good_steps"
let x_fault_groups = Metrics.counter "exec.fsim_fault_groups"
let x_machine_steps = Metrics.counter "exec.fsim_machine_steps"
let x_events_skipped = Metrics.counter "exec.events_skipped"
let x_compile_ms = Metrics.counter "exec.compile_ms"
let h_lanes_per_step = Metrics.histogram "exec.fsim_lanes_per_step"

(* Resolved-engine observability: one counter per backend name, bumped
   once per run (the registry holds no string gauges). *)
let c_engine_packed = Metrics.counter "fsim.engine.packed"
let c_engine_event = Metrics.counter "fsim.engine.event"
let c_engine_compiled = Metrics.counter "fsim.engine.compiled"
let c_engine_serial = Metrics.counter "fsim.engine.serial"

type detection = { fault : Fault.t; detected_at : int option }

type report = {
  total : int;
  detected : int;
  detections : detection array;
  patterns_applied : int;
}

let count_detected detections =
  Array.fold_left
    (fun acc d -> match d.detected_at with Some _ -> acc + 1 | None -> acc)
    0 detections

let check_width nl op (p : Pattern.t) =
  if Packvec.width p <> Array.length nl.Netlist.input_nets then
    invalid_arg
      (Printf.sprintf "Fsim.%s: pattern width %d does not match %d inputs" op
         (Packvec.width p) (Array.length nl.Netlist.input_nets))

(* Spread [len] patterns over the per-input lane words: lane [l] of
   input [k] receives bit [k] of pattern [lo + l]. *)
let pack_patterns nl nw (patterns : Pattern.t array) lo len =
  let n_in = Array.length nl.Netlist.input_nets in
  let words = Array.make (n_in * nw) 0 in
  for l = 0 to len - 1 do
    let p = patterns.(lo + l) in
    check_width nl "run" p;
    let j = l / Bitsim.word_bits and b = l mod Bitsim.word_bits in
    for k = 0 to n_in - 1 do
      if Packvec.get p k then
        words.((k * nw) + j) <- words.((k * nw) + j) lor (1 lsl b)
    done
  done;
  words

(* All lanes carry the same pattern. *)
let replicate_pattern nl nw (p : Pattern.t) =
  check_width nl "replicate" p;
  Array.init (Array.length nl.Netlist.input_nets * nw) (fun idx ->
      if Packvec.get p (idx / nw) then Bitsim.all_ones else 0)

(* Mask of valid lanes in word [j] when only [len] lanes are in use. *)
let word_lane_mask len j =
  let lo = j * Bitsim.word_bits in
  if len >= lo + Bitsim.word_bits then -1
  else if len <= lo then 0
  else (1 lsl (len - lo)) - 1

let lowest_bit w =
  let rec go k = if (w lsr k) land 1 = 1 then k else go (k + 1) in
  go 0

(* Entry-point chaos consultation shared by the engines; consulted by
   every shard, so injections fire inside workers too. [Timeout]
   behaves like an exhausted budget (the run degrades to a partial
   report); [Exception] raises to prove caller containment; [Truncate]
   is meaningless for simulation and ignored. *)
let chaos_entry () =
  match Chaos.fire Chaos.Fsim_run with
  | Some Chaos.Timeout -> Some (Rerror.Timeout Rerror.Fsim)
  | Some Chaos.Exception ->
    raise (Chaos.Injected "chaos: injected exception at fsim")
  | Some (Chaos.Truncate _) | None -> None

let note_cut ~detail = function
  | None -> ()
  | Some e -> Degrade.note ~stage:Rerror.Fsim ~detail e

let batch_cut_detail =
  "fault simulation cut short; remaining faults reported undetected"

let serial_cut_detail =
  "serial fault simulation cut short; remaining faults reported undetected"

let parallel_cut_detail =
  "parallel-fault simulation cut short; remaining faults reported undetected"
