(** Stuck-at fault simulation with fault dropping, behind one
    engine-selectable entry point.

    Patterns are {!Pattern.t} values over the netlist's primary inputs
    in [input_nets] order (bit [k] of the pattern feeds input [k]) —
    arbitrary input counts, no integer-code ceiling. The synthesis
    {!Mutsamp_synth.Mapping} layer produces them from word-level
    stimuli via netlist input names.

    Four backends, all bit-identical in their reports:
    - {!Packed}: the parallel-pattern (PPSFP) reference for
      combinational circuits — [lanes] patterns per pass, good circuit
      simulated once per pass, full-circuit resimulation per fault —
      and classical parallel-fault simulation for sequential ones
      (lane 0 carries the good machine, each other lane one fault);
    - {!Event}: event-driven — the netlist is levelized
      ({!Mutsamp_netlist.Levels}), a full good baseline is kept per
      batch/cycle, and each fault pass re-evaluates only gates whose
      fanin words changed, so quiescent cones are skipped wholesale
      (elisions recorded in [exec.events_skipped]);
    - {!Compiled}: each design is specialised at load time into
      straight-line OCaml closures over dense word arrays — a
      whole-netlist good program plus a statically-routed fanout-cone
      program per fault site, cached per design hash for the process
      lifetime (misses recorded in [exec.compile_ms]);
    - {!Serial}: the single-lane reference the differential property
      tests compare every other engine against. Internal: it has no
      CLI spelling.

    {!Auto} resolves to [Compiled] for combinational netlists and
    [Packed] for sequential ones.

    All backends record, per fault, the index of the first detecting
    pattern (combinational) or cycle (sequential), which is what the
    coverage curves of the NLFCE metric need; the index is independent
    of the lane count and of the backend.

    Execution: {!run} takes [?ctx] (default
    {!Mutsamp_exec.Ctx.default}: sequential, ambient budget, [Auto]
    engine). With a pool in the context the fault list is sharded into
    contiguous chunks — one per effective job — simulated on worker
    domains and merged back in fault-list order; per-fault
    first-detection indices do not depend on which other faults share a
    run, so the merged report is bit-identical to the sequential one.
    The context budget is split evenly across shards (leftovers
    refunded), and each shard spends one [Fsim_pairs] work unit per
    pattern·fault pair it simulates. Exhaustion never fails the run —
    simulation stops early, the remaining faults stay undetected in the
    report, and the degradation is recorded via
    {!Mutsamp_robust.Degrade} (once per affected shard). A chaos arming
    at [Fsim_run] is consulted by every shard, inside the worker, and
    behaves like immediate exhaustion ([Timeout]) or raises
    {!Mutsamp_robust.Chaos.Injected} ([Exception]). *)

type engine = Mutsamp_exec.Ctx.engine =
  | Auto
  | Packed
  | Event
  | Compiled
  | Serial

type detection = Fsim_kernel.detection = {
  fault : Fault.t;
  detected_at : int option;
}

type report = Fsim_kernel.report = {
  total : int;
  detected : int;
  detections : detection array;  (** in fault-list order *)
  patterns_applied : int;
}

val coverage_percent : report -> float
(** [100 * detected / total]; 0 when the fault list is empty. *)

val coverage_at : report -> int -> float
(** Coverage achieved by the first [n] patterns/cycles alone. *)

val coverage_curve : report -> (int * float) list
(** [(n, coverage_at n)] for every prefix length [0..patterns_applied].
    Monotone non-decreasing. *)

val length_to_reach : report -> float -> int option
(** Shortest prefix achieving at least the given coverage, if any. *)

val resolved_engine : engine -> Mutsamp_netlist.Netlist.t -> engine
(** The backend {!run} will actually use: [Auto] resolves per netlist
    ([Compiled] without flip-flops, [Packed] with), every other engine
    resolves to itself. *)

val run :
  ?lanes:int ->
  ?engine:engine ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  sequence:Pattern.t array ->
  report
(** Simulate the fault list against the pattern sequence. For
    combinational netlists [sequence] is a set of independent patterns
    (order preserved in [detected_at] indexing); for sequential ones it
    is applied cycle by cycle from the reset state.

    [engine] defaults to the context's engine field ([Auto] in
    {!Mutsamp_exec.Ctx.default}). [lanes] is the pattern-batch width
    for the combinational backends and the lane count (good machine +
    [lanes - 1] faults) for the packed sequential backend, rounded up
    to whole words; the sequential event/compiled/serial backends are
    single-lane and ignore it.

    The context's progress callback is invoked (stage ["faultsim"]) by
    the sequential backends after each fault's replay — or per fault
    group for the packed one (long [b03]/[c499] runs are otherwise
    silent for minutes); shards feed a shared done-counter, so the
    count is monotone under parallelism.

    Raises [Invalid_argument] if a pattern's width does not match the
    input count, or if [lanes < 1] ([< 2] for packed sequential). *)

val input_pattern : Mutsamp_netlist.Netlist.t -> (string * bool) list -> Pattern.t
(** Build a pattern from named input bits (missing names default to
    0). *)

val pattern_of_code : Mutsamp_netlist.Netlist.t -> int -> Pattern.t
  [@@deprecated "build patterns with Pattern.of_code ~inputs directly"]

val patterns_of_codes : Mutsamp_netlist.Netlist.t -> int array -> Pattern.t array
  [@@deprecated "build patterns with Pattern.of_code ~inputs directly"]
(** Integer-code conveniences from the pre-Packvec era; the netlist
    argument only supplies the input count. Use
    [Pattern.of_code ~inputs] instead. *)
