(** Stuck-at fault simulation with fault dropping.

    Patterns are {!Pattern.t} values over the netlist's primary inputs
    in [input_nets] order (bit [k] of the pattern feeds input [k]) —
    arbitrary input counts, no integer-code ceiling. The synthesis
    {!Mutsamp_synth.Mapping} layer produces them from word-level
    stimuli via netlist input names.

    Three engines:
    - {!run_combinational}: parallel-pattern single-fault propagation,
      [lanes] patterns per pass (default one machine word), good
      circuit simulated once per pass;
    - {!run_parallel_fault}: lane 0 carries the good machine, every
      other lane one faulty machine, so [lanes - 1] faults advance per
      pass — the workhorse for sequential circuits;
    - {!run_sequential}: the serial single-lane reference the
      differential property tests compare the wide engines against.

    All record, per fault, the index of the first detecting pattern
    (combinational) or cycle (sequential), which is what the coverage
    curves of the NLFCE metric need; the index is independent of the
    lane count.

    Execution: every engine takes [?ctx] (default
    {!Mutsamp_exec.Ctx.default}: sequential, ambient budget). With a
    pool in the context the fault list is sharded into contiguous
    chunks — one per effective job — simulated on worker domains and
    merged back in fault-list order; per-fault first-detection indices
    do not depend on which other faults share a run, so the merged
    report is bit-identical to the sequential one. The context budget
    is split evenly across shards (leftovers refunded), and each shard
    spends one [Fsim_pairs] work unit per pattern·fault pair it
    simulates. Exhaustion never fails the run — simulation stops early,
    the remaining faults stay undetected in the report, and the
    degradation is recorded via {!Mutsamp_robust.Degrade} (once per
    affected shard). A chaos arming at [Fsim_run] is consulted by every
    shard, inside the worker, and behaves like immediate exhaustion
    ([Timeout]) or raises {!Mutsamp_robust.Chaos.Injected}
    ([Exception]). *)

type detection = { fault : Fault.t; detected_at : int option }

type report = {
  total : int;
  detected : int;
  detections : detection array;  (** in fault-list order *)
  patterns_applied : int;
}

val coverage_percent : report -> float
(** [100 * detected / total]; 0 when the fault list is empty. *)

val coverage_at : report -> int -> float
(** Coverage achieved by the first [n] patterns/cycles alone. *)

val coverage_curve : report -> (int * float) list
(** [(n, coverage_at n)] for every prefix length [0..patterns_applied].
    Monotone non-decreasing. *)

val length_to_reach : report -> float -> int option
(** Shortest prefix achieving at least the given coverage, if any. *)

val run_combinational :
  ?lanes:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  patterns:Pattern.t array ->
  report
(** [lanes] patterns are simulated per pass (rounded up to whole
    words). Raises [Invalid_argument] if the netlist has flip-flops or
    a pattern's width does not match the input count. *)

val run_sequential :
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  sequence:Pattern.t array ->
  report
(** Works for combinational netlists too (each "cycle" is then an
    independent pattern), but is serial and slower — it exists as the
    plain reference implementation. The context's progress callback is
    invoked (stage ["faultsim"]) after each fault's serial replay (long
    [b03]/[c499] runs are otherwise silent for minutes); shards feed a
    shared done-counter, so the count is monotone under parallelism. *)

val run_parallel_fault :
  ?lanes:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  sequence:Pattern.t array ->
  report
(** Classical parallel-fault simulation: lane 0 carries the good
    machine and each other lane one fault, so [lanes - 1] faulty
    machines advance per pass. Works for sequential circuits (per-lane
    state) and combinational ones alike, and produces exactly the
    {!run_sequential} result — the property suite checks it. *)

val run_auto :
  ?lanes:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_netlist.Netlist.t ->
  faults:Fault.t list ->
  sequence:Pattern.t array ->
  report
(** {!run_combinational} when the netlist has no flip-flops, otherwise
    {!run_parallel_fault}. *)

val input_pattern : Mutsamp_netlist.Netlist.t -> (string * bool) list -> Pattern.t
(** Build a pattern from named input bits (missing names default to
    0). *)

val pattern_of_code : Mutsamp_netlist.Netlist.t -> int -> Pattern.t
  [@@deprecated "build patterns with Pattern.of_code ~inputs directly"]

val patterns_of_codes : Mutsamp_netlist.Netlist.t -> int array -> Pattern.t array
  [@@deprecated "build patterns with Pattern.of_code ~inputs directly"]
(** Integer-code conveniences from the pre-Packvec era; the netlist
    argument only supplies the input count. Use
    [Pattern.of_code ~inputs] instead. *)
