module Json = Mutsamp_obs.Json
module Metrics = Mutsamp_obs.Metrics
module Error = Mutsamp_robust.Error
module Atomicio = Mutsamp_robust.Atomicio
module Degrade = Mutsamp_robust.Degrade
module Chaos = Mutsamp_robust.Chaos

let format_version = 1
let version_line = Printf.sprintf "mutsamp-store %d\n" format_version

type t = { dir : string }

let dir t = t.dir

(* --- counters ---------------------------------------------------------- *)

(* Process-global atomics so the ["store"] report section is available
   even when metric collection is off; the Metrics mirrors feed the
   [store.*] series of the counter snapshot. *)
let a_hits = Atomic.make 0
let a_misses = Atomic.make 0
let a_puts = Atomic.make 0
let a_put_errors = Atomic.make 0
let a_corrupt = Atomic.make 0
let a_invalidated = Atomic.make 0
let a_gc_removed = Atomic.make 0
let a_raced = Atomic.make 0

let m_hits = Metrics.counter "store.hits"
let m_misses = Metrics.counter "store.misses"
let m_puts = Metrics.counter "store.puts"
let m_put_errors = Metrics.counter "store.put_errors"
let m_corrupt = Metrics.counter "store.corrupt"
let m_invalidated = Metrics.counter "store.invalidated"
let m_gc_removed = Metrics.counter "store.gc_removed"
let m_raced = Metrics.counter "store.raced"

let bump a m n =
  ignore (Atomic.fetch_and_add a n);
  Metrics.add m n

(* A file vanished between readdir and the stat/unlink that followed —
   a concurrent writer or gc got there first. Maintenance must shrug
   (skip the path, count the race), never crash: stores are shared
   between live daemons and cron'd [store gc] invocations. *)
let raced () = bump a_raced m_raced 1

let reset_counters () =
  List.iter
    (fun a -> Atomic.set a 0)
    [
      a_hits;
      a_misses;
      a_puts;
      a_put_errors;
      a_corrupt;
      a_invalidated;
      a_gc_removed;
      a_raced;
    ]

let counters () =
  [
    ("hits", Atomic.get a_hits);
    ("misses", Atomic.get a_misses);
    ("puts", Atomic.get a_puts);
    ("put_errors", Atomic.get a_put_errors);
    ("corrupt", Atomic.get a_corrupt);
    ("invalidated", Atomic.get a_invalidated);
    ("gc_removed", Atomic.get a_gc_removed);
    ("raced", Atomic.get a_raced);
  ]

(* --- keys -------------------------------------------------------------- *)

type key = { ns : string; parts : (string * string) list }

let ns_safe s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '-')
       s

let key ~ns parts =
  if not (ns_safe ns) then invalid_arg ("Store.key: bad namespace " ^ ns);
  if List.exists (fun (f, _) -> f = "") parts then
    invalid_arg "Store.key: empty part field";
  { ns; parts = List.sort (fun (a, _) (b, _) -> compare a b) parts }

let digest s = Digest.to_hex (Digest.string s)

(* The address of a key: hash of the canonical rendering. Fields and
   values are length-prefixed so no two distinct part lists render to
   the same bytes. *)
let key_hash k =
  let b = Buffer.create 128 in
  Buffer.add_string b k.ns;
  List.iter
    (fun (f, v) ->
      Buffer.add_string b (Printf.sprintf "|%d:%s=%d:%s" (String.length f) f (String.length v) v))
    k.parts;
  digest (Buffer.contents b)

let key_json k = Json.Obj (List.map (fun (f, v) -> (f, Json.String v)) k.parts)

let key_matches k = function
  | Json.Obj fields ->
    List.length fields = List.length k.parts
    && List.for_all2
         (fun (f, v) (f', jv) -> f = f' && jv = Json.String v)
         k.parts fields
  | _ -> false

let entry_path t k = Filename.concat (Filename.concat t.dir k.ns) (key_hash k ^ ".json")

(* --- opening ----------------------------------------------------------- *)

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let open_dir path =
  let version_file = Filename.concat path "VERSION" in
  match
    mkdir_p path;
    if Sys.file_exists version_file then begin
      let existing = read_file version_file in
      if existing <> version_line then
        Error
          (Error.Io_error
             (Printf.sprintf "%s: not a format-%d mutsamp store (%s)" path
                format_version
                (String.trim existing)))
      else Ok { dir = path }
    end
    else
      match Atomicio.write_file version_file version_line with
      | Ok () -> Ok { dir = path }
      | Error e -> Error e
  with
  | r -> r
  | exception Sys_error msg -> Error (Error.Io_error msg)
  | exception Unix.Unix_error (err, _, arg) ->
    Error (Error.Io_error (Printf.sprintf "%s: %s" arg (Unix.error_message err)))

(* --- find / put -------------------------------------------------------- *)

let find t k =
  let path = entry_path t k in
  if not (Sys.file_exists path) then begin
    bump a_misses m_misses 1;
    None
  end
  else
    let doc =
      match read_file path with
      | contents ->
        (* Chaos point: simulate on-disk corruption observed at read
           time. The store is an accelerator, so even an [Exception]
           arming is contained here — every action degrades the read
           to an unparsable entry (counted corrupt, treated as a miss)
           rather than escaping into the caller. *)
        let contents =
          match Chaos.fire Chaos.Store_read with
          | None -> contents
          | Some (Chaos.Truncate n) ->
            String.sub contents 0 (min (max n 0) (String.length contents))
          | Some (Chaos.Timeout | Chaos.Exception) -> ""
        in
        Json.parse contents
      | exception Sys_error msg -> Error msg
    in
    match doc with
    | Ok doc
      when Json.member "schema" doc = Some (Json.Int format_version)
           && Json.member "ns" doc = Some (Json.String k.ns)
           && (match Json.member "key" doc with
              | Some kj -> key_matches k kj
              | None -> false) -> (
      match Json.member "payload" doc with
      | Some payload ->
        bump a_hits m_hits 1;
        Some payload
      | None ->
        bump a_corrupt m_corrupt 1;
        bump a_misses m_misses 1;
        None)
    | Ok _ | Error _ ->
      (* Unparsable or mismatching entry: treat as a miss; the next put
         overwrites it in place. *)
      bump a_corrupt m_corrupt 1;
      bump a_misses m_misses 1;
      None

let put t k payload =
  let doc =
    Json.Obj
      [
        ("schema", Json.Int format_version);
        ("ns", Json.String k.ns);
        ("key", key_json k);
        ("payload", payload);
      ]
  in
  let result =
    try
      mkdir_p (Filename.concat t.dir k.ns);
      Atomicio.write_file (entry_path t k) (Json.to_string doc)
    with
    (* The store is an accelerator: any write failure — including an
       injected chaos exception — is contained here and only counted. *)
    | _ -> Error (Error.Io_error "store write failed")
  in
  match result with
  | Ok () -> bump a_puts m_puts 1
  | Error _ -> bump a_put_errors m_put_errors 1

let fetch_or_compute store ~ns ~parts ~encode ~decode f =
  match store with
  | None -> f ()
  | Some t -> (
    let k = key ~ns parts in
    match Option.bind (find t k) decode with
    | Some v -> v
    | None ->
      let degradations_before = List.length (Degrade.events ()) in
      let v = f () in
      (* A run cut short by budget/deadline/chaos is conservative but
         not canonical — return it, never cache it. *)
      if List.length (Degrade.events ()) = degradations_before then
        put t k (encode v);
      v)

(* --- maintenance ------------------------------------------------------- *)

let is_tmp name =
  (* Atomicio temp files: "<base>.tmp.<suffix>". *)
  let rec find_sub i =
    if i + 5 > String.length name then false
    else if String.sub name i 5 = ".tmp." then true
    else find_sub (i + 1)
  in
  find_sub 0

(* [Sys.is_directory] raises on a path deleted after readdir — these
   branch bodies run outside the [exception] clause of their match, so
   the race must be caught right here. *)
let is_directory_opt path =
  try Sys.is_directory path
  with Sys_error _ ->
    raced ();
    false

let namespaces_of t =
  match Sys.readdir t.dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e ->
           e <> "VERSION" && is_directory_opt (Filename.concat t.dir e))
    |> List.sort compare
  | exception Sys_error _ -> []

let entry_files t ns =
  let d = Filename.concat t.dir ns in
  match Sys.readdir d with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> Filename.check_suffix e ".json" && not (is_tmp e))
    |> List.sort compare
    |> List.map (Filename.concat d)
  | exception Sys_error _ -> []

let tmp_files t =
  let in_dir d =
    match Sys.readdir d with
    | entries ->
      Array.to_list entries
      |> List.filter_map (fun e ->
             let p = Filename.concat d e in
             if is_tmp e && not (is_directory_opt p) then Some p else None)
    | exception Sys_error _ -> []
  in
  in_dir t.dir @ List.concat_map (fun ns -> in_dir (Filename.concat t.dir ns)) (namespaces_of t)

type stats = {
  entries : int;
  bytes : int;
  namespaces : (string * int) list;
  stale_tmp : int;
}

let file_size path = match Unix.stat path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    raced ();
    0
  | exception Unix.Unix_error _ -> 0

let stats t =
  let per_ns =
    List.map (fun ns -> (ns, entry_files t ns)) (namespaces_of t)
  in
  {
    entries = List.fold_left (fun acc (_, fs) -> acc + List.length fs) 0 per_ns;
    bytes =
      List.fold_left
        (fun acc (_, fs) -> List.fold_left (fun a f -> a + file_size f) acc fs)
        0 per_ns;
    namespaces = List.map (fun (ns, fs) -> (ns, List.length fs)) per_ns;
    stale_tmp = List.length (tmp_files t);
  }

let stats_to_json ~dir s =
  Json.Obj
    [
      ("dir", Json.String dir);
      ("entries", Json.Int s.entries);
      ("bytes", Json.Int s.bytes);
      ("stale_tmp", Json.Int s.stale_tmp);
      ( "namespaces",
        Json.Obj (List.map (fun (ns, n) -> (ns, Json.Int n)) s.namespaces) );
    ]

let remove path =
  match Unix.unlink path with
  | () -> true
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    (* A concurrent gc (or invalidate) unlinked it first: not ours to
       count as removed, not an error either. *)
    raced ();
    false
  | exception Unix.Unix_error _ -> false

let gc t ?namespace ?max_age_s () =
  let removed_tmp = List.length (List.filter remove (tmp_files t)) in
  let now = Unix.gettimeofday () in
  let old_enough path =
    match max_age_s with
    | None -> namespace <> None
    | Some age -> (
      match Unix.stat path with
      | { Unix.st_mtime; _ } -> now -. st_mtime > age
      | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
        raced ();
        false
      | exception Unix.Unix_error _ -> false)
  in
  let targets =
    match namespace with Some ns -> [ ns ] | None -> namespaces_of t
  in
  let removed_entries =
    List.fold_left
      (fun acc ns ->
        acc
        + List.length
            (List.filter remove (List.filter old_enough (entry_files t ns))))
      0 targets
  in
  let n = removed_tmp + removed_entries in
  bump a_gc_removed m_gc_removed n;
  n

let invalidate t ?namespace ?field ?cone () =
  let matches path =
    match (field, cone) with
    | None, None -> true
    | _ -> (
      match Json.parse (read_file path) with
      | Ok doc ->
        let field_ok =
          match field with
          | None -> true
          | Some (f, v) -> (
            match Json.member "key" doc with
            | Some kj -> Json.member f kj = Some (Json.String v)
            | None -> false)
        in
        let cone_ok =
          match cone with
          | None -> true
          | Some net -> (
            (* Cone-keyed entries record the nets their payload depends
               on under "nets" (docs/STORE.md); entries without the
               field never match. *)
            match Option.bind (Json.member "payload" doc) (Json.member "nets") with
            | Some (Json.List tokens) ->
              List.exists (fun tok -> tok = Json.String net) tokens
            | _ -> false)
        in
        field_ok && cone_ok
      | Error _ -> true  (* unreadable entry: drop it *)
      | exception Sys_error _ ->
        raced ();
        false)
  in
  let targets =
    match namespace with Some ns -> [ ns ] | None -> namespaces_of t
  in
  let n =
    List.fold_left
      (fun acc ns ->
        acc + List.length (List.filter remove (List.filter matches (entry_files t ns))))
      0 targets
  in
  bump a_invalidated m_invalidated n;
  n

(* --- report section ---------------------------------------------------- *)

let report_section t =
  let counts = List.map (fun (name, v) -> (name, Json.Int v)) (counters ()) in
  match t with
  | None -> Json.Obj (("enabled", Json.Bool false) :: counts)
  | Some t ->
    Json.Obj (("enabled", Json.Bool true) :: ("dir", Json.String t.dir) :: counts)
