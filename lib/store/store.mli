(** Content-addressed on-disk campaign store.

    A store is a directory of immutable JSON entries, each addressed by
    the hash of a structured key: a namespace (["fsim"], ["vectors"],
    ["t1row"], …) plus a list of [(field, value)] parts whose values
    are content hashes of the inputs that determine the payload —
    design text, netlist, pattern sequence, configuration, seed. Two
    runs that agree on every input hash the same key and share the
    entry; any change to an input changes its hash, so invalidation is
    structural: stale entries are simply never addressed again.

    Layout (see docs/STORE.md):
    {v
    DIR/VERSION                "mutsamp-store <format>\n"
    DIR/<ns>/<keyhash>.json    {"schema":…,"ns":…,"key":{…},"payload":…}
    v}

    Every write goes through {!Mutsamp_robust.Atomicio} (temp + rename
    in the destination directory), so a crash or an injected
    truncation mid-write can never leave a torn entry where a good one
    stood — readers see the old payload or the new one, nothing in
    between. Write failures are contained: the computed value is still
    returned to the caller and the failure is only counted
    ([store.put_errors]); a store is an accelerator, never a
    correctness dependency.

    Reads are paranoid: an entry that fails to parse, carries the
    wrong schema, or whose embedded key differs from the requested one
    (hash collision, manual tampering) is treated as a miss and
    counted under [store.corrupt].

    Hit/miss/put/invalidation counts are kept in process-global
    atomics (mirrored into the [store.*] metrics series when
    collection is on) and exposed as the ["store"] run-report section.
    The lookup set of a campaign does not depend on [--jobs], so the
    [store.*] series obey the deterministic-namespace contract of
    docs/OBSERVABILITY.md. *)

module Json = Mutsamp_obs.Json

val format_version : int
(** Bumped when the on-disk layout changes; a store written by a
    different format refuses to open. *)

type t

val open_dir : string -> (t, Mutsamp_robust.Error.t) result
(** Open (creating if needed) the store rooted at the directory. Fails
    with [Io_error] when the directory cannot be created, the VERSION
    file cannot be written, or an existing VERSION names a different
    format. *)

val dir : t -> string

(** {2 Keys} *)

type key

val key : ns:string -> (string * string) list -> key
(** [key ~ns parts] builds a structured key. [ns] and part fields must
    be nonempty and [ns] must be filesystem-safe
    ([a-z0-9_-]); raises [Invalid_argument] otherwise. Part order is
    canonicalised (sorted by field), so callers need not agree on
    argument order. *)

val digest : string -> string
(** Hex content hash of a string — the building block for key part
    values covering large inputs (design text, pattern dumps). *)

(** {2 Entries} *)

val find : t -> key -> Json.t option
(** The payload stored under [key], or [None]. Counts [store.hits] /
    [store.misses]; corrupt or mismatching entries count
    [store.corrupt] and read as misses. Carries the
    {!Mutsamp_robust.Chaos.Store_read} injection point: an armed
    action corrupts the bytes just read (truncation or total loss)
    instead of escaping, proving the degrade-to-recompute path. *)

val put : t -> key -> Json.t -> unit
(** Atomically (over)write the entry. Never raises: failures —
    including injected {!Mutsamp_robust.Chaos.Report_write} faults —
    are swallowed and counted under [store.put_errors]. *)

val fetch_or_compute :
  t option ->
  ns:string ->
  parts:(string * string) list ->
  encode:('a -> Json.t) ->
  decode:(Json.t -> 'a option) ->
  (unit -> 'a) -> 'a
(** The store-aware memoisation shape every campaign stage uses.
    [None] (no store) runs the computation directly. With a store, a
    decodable entry is returned without running the computation; on a
    miss the computation runs and its result is stored — {e unless} a
    graceful degradation ({!Mutsamp_robust.Degrade}) was recorded
    while it ran, in which case the partial result is returned but not
    cached (a budget-cut or chaos-hit run must not poison the store
    for exact re-runs). A [decode] returning [None] (codec mismatch)
    is a miss. *)

(** {2 Maintenance} *)

type stats = {
  entries : int;
  bytes : int;  (** payload files only *)
  namespaces : (string * int) list;  (** entry count per namespace, sorted *)
  stale_tmp : int;  (** leftover [*.tmp.*] files from interrupted writes *)
}

val stats : t -> stats

val stats_to_json : dir:string -> stats -> Json.t
(** Machine-readable rendering with the same information as the CLI
    text view: [{"dir", "entries", "bytes", "stale_tmp",
    "namespaces": {<ns>: count, …}}] — the payload of
    [mutsamp store stats --format json] and of the daemon's [stats]
    reply. *)

val gc : t -> ?namespace:string -> ?max_age_s:float -> unit -> int
(** Remove stale temp files plus any entry matching the filters: with
    [namespace], only that namespace's entries; with [max_age_s], only
    entries whose mtime is older. With neither filter only stale temp
    files are removed. Returns the number of files deleted and counts
    them under [store.gc_removed]. Tolerates concurrent writers and
    collectors: a file deleted by someone else between [readdir] and
    the stat/unlink is skipped and counted under [store.raced], never
    an error. *)

val invalidate :
  t -> ?namespace:string -> ?field:string * string -> ?cone:string -> unit -> int
(** Delete entries — all of them by default, restricted to a namespace
    and/or to entries whose embedded key has the given [(field, value)]
    part (e.g. [("circuit", "c432")]), and/or (with [cone]) to entries
    whose payload records the named net in its ["nets"] dependency
    list — the manual surgery knob for cone-keyed fault-sim entries
    (see docs/STORE.md). Filters conjoin. Returns the number deleted
    and counts them under [store.invalidated]. *)

(** {2 Observability} *)

val reset_counters : unit -> unit
(** Zero the process-global [store.*] counts (start of a CLI run). *)

val counters : unit -> (string * int) list
(** Current counts, in a fixed order: hits, misses, puts, put_errors,
    corrupt, invalidated, gc_removed, raced. *)

val report_section : t option -> Json.t
(** The ["store"] run-report section: [{"enabled": bool, "dir"?: str,
    <counters>…}]. *)
