(** Benchmark registry: every circuit the experiments run on. *)

type kind = Sequential | Combinational

type entry = {
  name : string;
  description : string;
  kind : kind;
  in_paper : bool;  (** appears in the paper's tables *)
  design : unit -> Mutsamp_hdl.Ast.design;  (** elaborated on demand *)
}

val all : entry list
(** b01, b02, b03, b06, c17, c432, c499, wide128, … — deterministic order. *)

val paper_benchmarks : entry list
(** The four circuits of the paper's tables: b01, b03, c432, c499. *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)

val names : unit -> string list
