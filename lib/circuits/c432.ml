let source =
  {|-- c432: 27-channel interrupt controller (behavioural re-implementation).
-- Bus a beats bus b beats bus c; within a bus, line 8 beats line 0.
-- chan encodes the winning line as 1..9 (0 = no request).
design c432 is
  input a : unsigned(9);
  input b : unsigned(9);
  input c : unsigned(9);
  input e : unsigned(9);
  output pa : bit;
  output pb : bit;
  output pc : bit;
  output chan : unsigned(4);
  var ae : unsigned(9);
  var be : unsigned(9);
  var ce : unsigned(9);
  var win : unsigned(9);
  const NONE : unsigned(9) := 0;
begin
  ae := a and e;
  be := b and e;
  ce := c and e;
  pa := '0';
  pb := '0';
  pc := '0';
  win := NONE;
  if ae /= NONE then
    pa := '1';
    win := ae;
  elsif be /= NONE then
    pb := '1';
    win := be;
  elsif ce /= NONE then
    pc := '1';
    win := ce;
  end if;
  chan := 0;
  if win[8] = '1' then
    chan := 9;
  elsif win[7] = '1' then
    chan := 8;
  elsif win[6] = '1' then
    chan := 7;
  elsif win[5] = '1' then
    chan := 6;
  elsif win[4] = '1' then
    chan := 5;
  elsif win[3] = '1' then
    chan := 4;
  elsif win[2] = '1' then
    chan := 3;
  elsif win[1] = '1' then
    chan := 2;
  elsif win[0] = '1' then
    chan := 1;
  end if;
end design;
|}

let design () = Mutsamp_hdl.Check.elaborate
    (Mutsamp_robust.Error.ok_exn (Mutsamp_hdl.Parser.design_result source))
