(** Synthetic wide-input circuits for >62-input simulation coverage.

    [wide{n}] has [n] primary inputs and two outputs: [parity] (XOR
    chain over all inputs) and [anyhigh] (OR reduction).  Every gate
    fault on the parity chain is randomly testable, so fault coverage
    is nonzero under any sampled pattern set.  Not part of the paper's
    benchmark tables. *)

val source : int -> string
(** HDL source text for an [n]-input instance.  Raises
    [Invalid_argument] for [n < 3]. *)

val design : int -> unit -> Mutsamp_hdl.Ast.design
(** Elaborated design, built on demand. *)

val design_128 : unit -> Mutsamp_hdl.Ast.design
(** The registered 128-input instance. *)
