module B = Mutsamp_netlist.Netlist.Builder

let netlist () =
  let b = B.create "c17" in
  let g1 = B.input b "G1" in
  let g2 = B.input b "G2" in
  let g3 = B.input b "G3" in
  let g6 = B.input b "G6" in
  let g7 = B.input b "G7" in
  let g10 = B.nand_ b g1 g3 in
  let g11 = B.nand_ b g3 g6 in
  let g16 = B.nand_ b g2 g11 in
  let g19 = B.nand_ b g11 g7 in
  let g22 = B.nand_ b g10 g16 in
  let g23 = B.nand_ b g16 g19 in
  B.output b "G22" g22;
  B.output b "G23" g23;
  B.finalize b

let source =
  {|-- ISCAS'85 c17 expressed behaviourally (same NAND structure).
design c17 is
  input g1 : bit;
  input g2 : bit;
  input g3 : bit;
  input g6 : bit;
  input g7 : bit;
  output g22 : bit;
  output g23 : bit;
  var n10 : bit;
  var n11 : bit;
  var n16 : bit;
  var n19 : bit;
begin
  n10 := g1 nand g3;
  n11 := g3 nand g6;
  n16 := g2 nand n11;
  n19 := n11 nand g7;
  g22 := n10 nand n16;
  g23 := n16 nand n19;
end design;
|}

let design () = Mutsamp_hdl.Check.elaborate
    (Mutsamp_robust.Error.ok_exn (Mutsamp_hdl.Parser.design_result source))
