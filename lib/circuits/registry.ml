type kind = Sequential | Combinational

type entry = {
  name : string;
  description : string;
  kind : kind;
  in_paper : bool;
  design : unit -> Mutsamp_hdl.Ast.design;
}

let of_source src () =
  Mutsamp_hdl.Check.elaborate
    (Mutsamp_robust.Error.ok_exn (Mutsamp_hdl.Parser.design_result src))

let all =
  [
    {
      name = "b01";
      description = "serial flows comparator FSM (ITC'99-style)";
      kind = Sequential;
      in_paper = true;
      design = of_source Sources.b01;
    };
    {
      name = "b02";
      description = "serial BCD recogniser FSM (ITC'99-style)";
      kind = Sequential;
      in_paper = false;
      design = of_source Sources.b02;
    };
    {
      name = "b03";
      description = "round-robin resource arbiter (ITC'99-style)";
      kind = Sequential;
      in_paper = true;
      design = of_source Sources.b03;
    };
    {
      name = "b04";
      description = "min/max spread tracker (ITC'99-style)";
      kind = Sequential;
      in_paper = false;
      design = of_source Sources.b04;
    };
    {
      name = "b08";
      description = "serial pattern matcher (ITC'99-style)";
      kind = Sequential;
      in_paper = false;
      design = of_source Sources.b08;
    };
    {
      name = "b09";
      description = "serial-to-parallel converter (ITC'99-style)";
      kind = Sequential;
      in_paper = false;
      design = of_source Sources.b09;
    };
    {
      name = "b06";
      description = "interrupt handler FSM (ITC'99-style)";
      kind = Sequential;
      in_paper = false;
      design = of_source Sources.b06;
    };
    {
      name = "c17";
      description = "ISCAS'85 c17 (exact structure)";
      kind = Combinational;
      in_paper = false;
      design = C17.design;
    };
    {
      name = "c432";
      description = "27-channel interrupt controller (ISCAS'85 c432 function)";
      kind = Combinational;
      in_paper = true;
      design = C432.design;
    };
    {
      name = "c499";
      description = "32-bit single-error corrector (ISCAS'85 c499 function)";
      kind = Combinational;
      in_paper = true;
      design = C499.design;
    };
    {
      name = "wide128";
      description = "128-input parity/OR reduction (wide-vector stress, synthetic)";
      kind = Combinational;
      in_paper = false;
      design = Wide.design_128;
    };
  ]

let paper_benchmarks = List.filter (fun e -> e.in_paper) all

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii e.name = lower) all

let names () = List.map (fun e -> e.name) all
