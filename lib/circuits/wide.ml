(* Synthetic wide-input combinational circuit: an n-input parity chain
   plus an n-input OR reduction.  Exists to exercise the >62-input
   simulation paths (multi-word packed vectors); not from the paper. *)

let source n =
  if n < 3 then invalid_arg "Wide.source: need at least 3 inputs";
  let b = Buffer.create 8192 in
  Printf.bprintf b "design wide%d is\n" n;
  for i = 0 to n - 1 do
    Printf.bprintf b "  input i%d : bit;\n" i
  done;
  Buffer.add_string b "  output parity : bit;\n";
  Buffer.add_string b "  output anyhigh : bit;\n";
  for i = 1 to n - 2 do
    Printf.bprintf b "  var p%d : bit;\n" i;
    Printf.bprintf b "  var r%d : bit;\n" i
  done;
  Buffer.add_string b "begin\n";
  Printf.bprintf b "  p1 := i0 xor i1;\n";
  Printf.bprintf b "  r1 := i0 or i1;\n";
  for i = 2 to n - 2 do
    Printf.bprintf b "  p%d := p%d xor i%d;\n" i (i - 1) i;
    Printf.bprintf b "  r%d := r%d or i%d;\n" i (i - 1) i
  done;
  Printf.bprintf b "  parity := p%d xor i%d;\n" (n - 2) (n - 1);
  Printf.bprintf b "  anyhigh := r%d or i%d;\n" (n - 2) (n - 1);
  Buffer.add_string b "end design;\n";
  Buffer.contents b

let design n () =
  Mutsamp_hdl.Check.elaborate
    (Mutsamp_robust.Error.ok_exn (Mutsamp_hdl.Parser.design_result (source n)))

let design_128 = design 128
