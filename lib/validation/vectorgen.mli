(** Mutation-adequate validation-data generation.

    Implements the paper's data-generation step: candidate stimuli are
    proposed and kept only when they kill at least one still-alive
    mutant, so the resulting test set is mutation-adequate by
    construction. Two phases:

    - {e random phase}: candidate sequences are drawn uniformly
      (length 1 for combinational designs) until [max_stall]
      consecutive candidates kill nothing;
    - {e directed phase} (optional): each surviving mutant is attacked
      with the exact equivalence checker
      ({!Mutsamp_mutation.Equivalence.check}); a distinguishing
      sequence is added to the test set, a proof of equivalence marks
      the mutant equivalent, and a budget blow-up leaves it unknown.

    Everything is deterministic from [seed]. *)

type config = {
  seed : int;
  max_stall : int;  (** random candidates without a kill before stopping *)
  sequence_length : int;  (** cycles per candidate (sequential designs) *)
  max_vectors : int;  (** cap on the total test-set length in cycles *)
  directed : bool;  (** run the directed phase *)
  sat_attack : bool;
      (** directed phase only: when the behavioural checker answers
          Unknown on a combinational pair (too many input bits for the
          exhaustive sweep), synthesize both designs and run the
          SAT-based miter ({!Mutsamp_sat.Equiv.check}); a model becomes
          a one-cycle distinguishing stimulus *)
  minimize : bool;
      (** post-pass: kept sequences are truncated after their last
          useful cycle during generation, and a greedy set cover then
          drops sequences whose kills are covered by others — the
          test-compaction step a validation flow would apply before
          re-using data as a structural test set *)
}

val default_config : config
(** seed 1, stall 200, sequences of 8 cycles, 4096-cycle cap, directed
    phase, SAT attack and minimisation on. *)

type outcome = {
  test_set : Mutsamp_hdl.Sim.stimulus list list;  (** kept sequences, in order *)
  killed : int list;  (** mutant indices killed by [test_set] *)
  equivalent : int list;  (** proven equivalent (directed phase) *)
  unknown : int list;  (** neither killed nor proven equivalent *)
  candidates_tried : int;
  total_vectors : int;  (** sum of sequence lengths *)
  degraded : string list;
      (** degradations taken under budget pressure (empty = exact run):
          human-readable descriptions, also recorded via
          {!Mutsamp_robust.Degrade} *)
}

val generate :
  ?config:config ->
  ?budget:Mutsamp_robust.Budget.t ->
  Mutsamp_hdl.Ast.design ->
  Mutsamp_mutation.Mutant.t list ->
  outcome
(** Generate validation data killing the given mutants. Indices in the
    outcome refer to positions in the supplied mutant list.

    Under [budget] (default: ambient) the run degrades instead of
    failing: the random phase stops at the deadline, a cut-short SAT
    attack or injected directed-phase failure leaves its mutant
    [unknown] (never spuriously equivalent), and each downgrade is
    listed in [degraded]. With the default unlimited budget the outcome
    is bit-identical to the pre-budget implementation. *)

val flatten_test_set :
  outcome -> Mutsamp_hdl.Sim.stimulus list
(** All vectors of all sequences, in application order. *)
