module Ast = Mutsamp_hdl.Ast
module Sim = Mutsamp_hdl.Sim
module Check = Mutsamp_hdl.Check
module Stimuli = Mutsamp_hdl.Stimuli
module Prng = Mutsamp_util.Prng
module Mutant = Mutsamp_mutation.Mutant
module Kill = Mutsamp_mutation.Kill
module Equivalence = Mutsamp_mutation.Equivalence
module Flow = Mutsamp_synth.Flow
module Lower = Mutsamp_synth.Lower
module Equiv = Mutsamp_sat.Equiv
module Bitvec = Mutsamp_util.Bitvec
module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Chaos = Mutsamp_robust.Chaos
module Degrade = Mutsamp_robust.Degrade
module Ctx = Mutsamp_exec.Ctx

(* Observability series (no-ops unless metrics collection is on). *)
let c_candidates = Metrics.counter "vectorgen.candidates"
let c_accepted = Metrics.counter "vectorgen.accepted"
let c_vectors = Metrics.counter "vectorgen.vectors"
let c_sat_calls = Metrics.counter "vectorgen.sat_calls"
let c_sat_equivalent = Metrics.counter "vectorgen.sat_equivalent"
let c_sat_distinguished = Metrics.counter "vectorgen.sat_distinguished"

type config = {
  seed : int;
  max_stall : int;
  sequence_length : int;
  max_vectors : int;
  directed : bool;
  sat_attack : bool;
  minimize : bool;
}

let default_config =
  {
    seed = 1;
    max_stall = 200;
    sequence_length = 8;
    max_vectors = 4096;
    directed = true;
    sat_attack = true;
    minimize = true;
  }

type outcome = {
  test_set : Sim.stimulus list list;
  killed : int list;
  equivalent : int list;
  unknown : int list;
  candidates_tried : int;
  total_vectors : int;
  degraded : string list;
}

(* Map a bit-level SAT counterexample back to one word-level stimulus
   cycle: bit [i] of input [name] is the miter PI [Lower.bit_name]. *)
let stimulus_of_assignment design bits =
  List.map
    (fun (d : Ast.decl) ->
      let v = ref (Bitvec.make ~width:d.width 0) in
      for i = 0 to d.width - 1 do
        match List.assoc_opt (Lower.bit_name d.name d.width i) bits with
        | Some true -> v := Bitvec.set_bit !v i true
        | Some false | None -> ()
      done;
      (d.name, !v))
    (Ast.inputs design)

(* SAT-miter attack on a survivor the behavioural checker could not
   decide — wide combinational designs exceed its exhaustive budget,
   but the miter handles them. The second component reports a budget
   cut, which the caller records as a degradation (the verdict is then
   a conservative [Unknown], not a proof). *)
let sat_check ~budget design mutant_design =
  Metrics.incr c_sat_calls;
  match
    (try
       `R (Equiv.check ~budget (Flow.synthesize design) (Flow.synthesize mutant_design))
     with Equiv.Equiv_error _ | Lower.Synth_error _ -> `Undecidable)
  with
  | `Undecidable -> (Equivalence.Unknown, None)
  | `R (Ok Equiv.Equivalent) ->
    Metrics.incr c_sat_equivalent;
    (Equivalence.Equivalent, None)
  | `R (Ok (Equiv.Counterexample bits)) ->
    Metrics.incr c_sat_distinguished;
    (Equivalence.Distinguished [ stimulus_of_assignment design bits ], None)
  | `R (Error e) -> (Equivalence.Unknown, Some e)

let generate ?(config = default_config) ?budget design mutants =
  Trace.with_span "vectorgen" @@ fun () ->
  let budget = match budget with Some b -> b | None -> Budget.ambient () in
  let kill_ctx = { Ctx.default with budget = Some budget } in
  let degraded = ref [] in
  let note_deg detail e =
    if not (List.mem detail !degraded) then degraded := !degraded @ [ detail ];
    Degrade.note ~stage:Rerror.Vectorgen ~detail e
  in
  let deadline_stop = ref None in
  let expired () =
    match Budget.check_deadline budget ~stage:Rerror.Vectorgen with
    | Ok () -> false
    | Error e ->
      deadline_stop := Some e;
      true
  in
  let runner = Kill.make design mutants in
  let prng = Prng.create config.seed in
  let seq_len = if Check.is_combinational design then 1 else config.sequence_length in
  let alive = ref (List.init (Kill.size runner) (fun i -> i)) in
  let test_set = ref [] in
  let killed = ref [] in
  let total_vectors = ref 0 in
  let candidates = ref 0 in
  let stall = ref 0 in
  (* Random phase. *)
  while
    (not (expired ()))
    && !alive <> [] && !stall < config.max_stall
    && !total_vectors + seq_len <= config.max_vectors
  do
    let candidate = Stimuli.random_sequence prng design seq_len in
    incr candidates;
    Metrics.incr c_candidates;
    match Kill.kills_at runner ~alive:!alive ~ctx:kill_ctx candidate with
    | [] -> incr stall
    | detections ->
      stall := 0;
      (* Keep only the useful prefix: cycles past the last detection
         contribute length but no kills. *)
      let last_cycle = List.fold_left (fun acc (_, c) -> max acc c) 0 detections in
      let kept = List.filteri (fun i _ -> i <= last_cycle) candidate in
      Metrics.incr c_accepted;
      Metrics.add c_vectors (List.length kept);
      test_set := kept :: !test_set;
      total_vectors := !total_vectors + List.length kept;
      let victims = List.map fst detections in
      killed := victims @ !killed;
      alive := List.filter (fun i -> not (List.mem i victims)) !alive
  done;
  (match !deadline_stop with
   | Some e -> note_deg "random phase stopped at deadline" e
   | None -> ());
  (* Directed phase: exact attack on each survivor. *)
  let equivalent = ref [] in
  let unknown = ref [] in
  if config.directed then begin
    Trace.with_span "equiv" @@ fun () ->
    let mutant_arr = Array.of_list mutants in
    let combinational_pair (m : Mutant.t) =
      Check.is_combinational design && Check.is_combinational m.Mutant.design
    in
    let rec attack = function
      | [] -> ()
      | i :: rest ->
        if List.mem i !killed then attack rest
        else if expired () then begin
          (* Deadline: every remaining survivor stays unknown. *)
          (match !deadline_stop with
           | Some e -> note_deg "directed phase cut short; survivors left unknown" e
           | None -> ());
          List.iter
            (fun j -> if not (List.mem j !killed) then unknown := j :: !unknown)
            (i :: rest)
        end
        else begin
          (* Per-survivor containment: an injected failure or exhausted
             SAT budget downgrades this mutant to unknown and the attack
             moves on. *)
          let tripped =
            try Chaos.trip Chaos.Vectorgen_directed
            with Chaos.Injected _ -> Error (Rerror.Injected Rerror.Vectorgen)
          in
          match tripped with
          | Error e ->
            note_deg "directed attack skipped; mutant left unknown" e;
            unknown := i :: !unknown;
            attack rest
          | Ok () ->
          let m = mutant_arr.(i) in
          let verdict =
            match Equivalence.check design m.Mutant.design with
            | Equivalence.Unknown when config.sat_attack && combinational_pair m ->
              let v, cut = sat_check ~budget design m.Mutant.design in
              (match cut with
               | Some e -> note_deg "sat attack cut short; mutant left unknown" e
               | None -> ());
              v
            | v -> v
          in
          match verdict with
          | Equivalence.Equivalent ->
            equivalent := i :: !equivalent;
            attack rest
          | Equivalence.Unknown ->
            unknown := i :: !unknown;
            attack rest
          | Equivalence.Distinguished seq ->
            if !total_vectors + List.length seq <= config.max_vectors then begin
              Metrics.incr c_accepted;
              Metrics.add c_vectors (List.length seq);
              test_set := seq :: !test_set;
              total_vectors := !total_vectors + List.length seq;
              (* The distinguishing sequence kills [i] by construction
                 and may kill other survivors too. *)
              let victims = Kill.kills runner ~alive:(i :: rest) ~ctx:kill_ctx seq in
              killed := victims @ !killed;
              attack (List.filter (fun j -> not (List.mem j victims)) rest)
            end
            else begin
              unknown := i :: !unknown;
              attack rest
            end
        end
    in
    attack !alive;
    alive := List.filter (fun i -> not (List.mem i !killed)) !alive
  end
  else unknown := !alive;
  let final_test_set = ref (List.rev !test_set) in
  (* Greedy set-cover minimisation: keep a subset of sequences that
     still kills every killed mutant, preferring sequences that cover
     many not-yet-covered mutants per cycle. *)
  if config.minimize && !final_test_set <> [] then begin
    let sequences = Array.of_list !final_test_set in
    let killed_list = List.sort_uniq Stdlib.compare !killed in
    let kill_sets =
      (* Re-simulation of sequences already paid for — run it unbudgeted
         so an exhausted quota cannot corrupt the set cover. *)
      Array.map
        (fun seq ->
          Kill.kills runner ~alive:killed_list
            ~ctx:{ Ctx.default with budget = Some Budget.unlimited }
            seq)
        sequences
    in
    let uncovered = Hashtbl.create 64 in
    List.iter (fun i -> Hashtbl.replace uncovered i ()) killed_list;
    let chosen = ref [] in
    while Hashtbl.length uncovered > 0 do
      let score k =
        let fresh =
          List.length (List.filter (Hashtbl.mem uncovered) kill_sets.(k))
        in
        (fresh, - List.length sequences.(k))
      in
      let best = ref 0 in
      for k = 1 to Array.length sequences - 1 do
        if score k > score !best then best := k
      done;
      let fresh, _ = score !best in
      if fresh = 0 then
        (* Should not happen: every killed mutant is killed by some
           sequence. Guard against infinite loops all the same. *)
        Hashtbl.reset uncovered
      else begin
        chosen := !best :: !chosen;
        List.iter (Hashtbl.remove uncovered) kill_sets.(!best)
      end
    done;
    let keep = List.sort Stdlib.compare !chosen in
    final_test_set := List.map (fun k -> sequences.(k)) keep;
    total_vectors :=
      List.fold_left (fun acc seq -> acc + List.length seq) 0 !final_test_set
  end;
  let not_killed = List.filter (fun i -> not (List.mem i !killed)) (List.init (Kill.size runner) Fun.id) in
  let unknown_final =
    List.filter (fun i -> not (List.mem i !equivalent)) not_killed
  in
  Trace.add_attr "mutants" (string_of_int (Kill.size runner));
  Trace.add_attr "killed" (string_of_int (List.length (List.sort_uniq Stdlib.compare !killed)));
  Trace.add_attr "vectors" (string_of_int !total_vectors);
  {
    test_set = !final_test_set;
    killed = List.sort_uniq Stdlib.compare !killed;
    equivalent = List.sort_uniq Stdlib.compare !equivalent;
    unknown = List.sort_uniq Stdlib.compare unknown_final;
    candidates_tried = !candidates;
    total_vectors = !total_vectors;
    degraded = !degraded;
  }

let flatten_test_set outcome = List.concat outcome.test_set
