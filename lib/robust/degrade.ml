module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json

type event = { stage : Error.stage; error : Error.t; detail : string }

let c_retries = Metrics.counter "robust.retries"

let recorded : event list ref = ref []
let retry_count = ref 0

let reset () =
  recorded := [];
  retry_count := 0

let note ~stage ?(detail = "") error =
  recorded := { stage; error; detail } :: !recorded;
  Metrics.add_named (Printf.sprintf "robust.degraded.%s" (Error.stage_name stage)) 1

let retry ~stage:_ =
  incr retry_count;
  Metrics.incr c_retries

let events () = List.rev !recorded

let degraded_stages () =
  List.fold_left
    (fun acc e ->
      let name = Error.stage_name e.stage in
      if List.mem name acc then acc else acc @ [ name ])
    [] (events ())

let retries () = !retry_count
let any () = !recorded <> []

let to_json () =
  Json.Obj
    [
      ("degraded_stages", Json.List (List.map (fun s -> Json.String s) (degraded_stages ())));
      ("retries", Json.Int (retries ()));
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("stage", Json.String (Error.stage_name e.stage));
                   ("error", Json.String (Error.to_string e.error));
                   ("detail", Json.String e.detail);
                 ])
             (events ())) );
    ]
