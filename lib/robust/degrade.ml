module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json

type event = { stage : Error.stage; error : Error.t; detail : string }

let c_retries = Metrics.counter "robust.retries"

(* Stages running on worker domains note downgrades too. *)
let mutex = Mutex.create ()
let recorded : event list ref = ref []
let retry_count = ref 0

let reset () =
  Mutex.lock mutex;
  recorded := [];
  retry_count := 0;
  Mutex.unlock mutex

let note ~stage ?(detail = "") error =
  Mutex.lock mutex;
  recorded := { stage; error; detail } :: !recorded;
  Mutex.unlock mutex;
  Metrics.add_named (Printf.sprintf "robust.degraded.%s" (Error.stage_name stage)) 1

let retry ~stage:_ =
  Mutex.lock mutex;
  incr retry_count;
  Mutex.unlock mutex;
  Metrics.incr c_retries

let events () =
  Mutex.lock mutex;
  let es = List.rev !recorded in
  Mutex.unlock mutex;
  es

let degraded_stages () =
  List.fold_left
    (fun acc e ->
      let name = Error.stage_name e.stage in
      if List.mem name acc then acc else acc @ [ name ])
    [] (events ())

let retries () = !retry_count
let any () = !recorded <> []

let to_json () =
  Json.Obj
    [
      ("degraded_stages", Json.List (List.map (fun s -> Json.String s) (degraded_stages ())));
      ("retries", Json.Int (retries ()));
      ( "events",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("stage", Json.String (Error.stage_name e.stage));
                   ("error", Json.String (Error.to_string e.error));
                   ("detail", Json.String e.detail);
                 ])
             (events ())) );
    ]
