(** Deterministic fault injection at stage boundaries.

    Tests (and the [--chaos] CLI flag) arm a failure at a named
    injection point; the instrumented stage consults the harness on
    entry and receives a forced timeout, a raised exception, or a
    truncated write. Firing is deterministic: a seeded
    {!Mutsamp_util.Prng} drives probabilistic armings, and [?after]
    skips a fixed number of hits, so a failing schedule is replayable
    from its seed.

    The harness is process-global and disarmed by default; with no
    armings, [fire]/[trip] are a hash lookup on an empty table. *)

type point =
  | Sat_solve  (** entry of every CDCL solve *)
  | Podem_search  (** entry of every PODEM call *)
  | Seqatpg_frame  (** each time-frame expansion *)
  | Fsim_run  (** entry of every fault-simulation run *)
  | Vectorgen_directed  (** each directed-phase mutant attack *)
  | Kill_run  (** entry of every mutant-execution batch *)
  | Report_write  (** artifact writes ({!Atomicio.write_file}) *)
  | Parse_input  (** netlist / HDL parsing *)
  | Store_read  (** campaign-store entry reads ({!Mutsamp_store.Store.find}) *)

type action =
  | Timeout  (** stage receives [Error (Timeout _)] *)
  | Exception  (** stage body raises {!Injected} *)
  | Truncate of int  (** writes stop after that many bytes, then fail *)

exception Injected of string
(** The forced exception; containment code maps it to
    [Error.Injected]. *)

val point_name : point -> string
val stage_of_point : point -> Error.stage

val init : ?seed:int -> unit -> unit
(** Reset the injection PRNG (default seed 2005). Does not disarm. *)

val arm : ?after:int -> ?probability:float -> point -> action -> unit
(** Arm [point]. The first [after] hits pass through (default 0); once
    live, each hit fires with [probability] (default 1.0) and the point
    stays armed. Re-arming a point replaces its previous arming. *)

val disarm_all : unit -> unit
val any_armed : unit -> bool

val fire : point -> action option
(** Consult the harness at an injection point. [None] = proceed. *)

val trip : point -> (unit, Error.t) result
(** [fire] folded into the typed-error convention: [Timeout] becomes
    [Error (Timeout stage)], [Truncate] becomes [Error (Io_error _)],
    and [Exception] raises {!Injected} (the point of that action is to
    prove containment downstream). *)

val contain : Error.stage -> (unit -> 'a) -> ('a, Error.t) result
(** Run a stage body, converting {!Injected} and {!Error.E} escapes to
    typed errors. *)

val parse_spec : string -> (unit, string) result
(** Parse-and-arm a CLI spec: [POINT:ACTION[@AFTER]] where POINT is one
    of [sat], [podem], [seqatpg], [fsim], [vectorgen], [kill],
    [report], [parse], [store]; ACTION is [timeout], [exn], or [truncate=N];
    AFTER is the number of hits to let pass first. Example:
    [sat:timeout], [report:truncate=16], [podem:exn@3]. *)
