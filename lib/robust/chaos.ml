module Prng = Mutsamp_util.Prng
module Metrics = Mutsamp_obs.Metrics

(* Observability series (no-ops unless metrics collection is on). *)
let c_fired = Metrics.counter "robust.chaos_fired"

type point =
  | Sat_solve
  | Podem_search
  | Seqatpg_frame
  | Fsim_run
  | Vectorgen_directed
  | Kill_run
  | Report_write
  | Parse_input
  | Store_read

type action = Timeout | Exception | Truncate of int

exception Injected of string

let point_name = function
  | Sat_solve -> "sat"
  | Podem_search -> "podem"
  | Seqatpg_frame -> "seqatpg"
  | Fsim_run -> "fsim"
  | Vectorgen_directed -> "vectorgen"
  | Kill_run -> "kill"
  | Report_write -> "report"
  | Parse_input -> "parse"
  | Store_read -> "store"

let stage_of_point = function
  | Sat_solve -> Error.Sat
  | Podem_search -> Error.Podem
  | Seqatpg_frame -> Error.Seqatpg
  | Fsim_run -> Error.Fsim
  | Vectorgen_directed -> Error.Vectorgen
  | Kill_run -> Error.Kill
  | Report_write -> Error.Report
  | Parse_input -> Error.Parse
  | Store_read -> Error.Report

type arming = { mutable countdown : int; probability : float; action : action }

let table : (point, arming) Hashtbl.t = Hashtbl.create 8
let prng = ref (Prng.create 2005)

(* Worker domains hit injection points too; the mutex covers the
   countdown decrements and the shared PRNG draw. Arming happens on the
   main domain before workers exist, so the empty-table fast path —
   which every uninjected run takes — stays lock-free. *)
let mutex = Mutex.create ()

let init ?(seed = 2005) () = prng := Prng.create seed
let disarm_all () = Hashtbl.reset table
let any_armed () = Hashtbl.length table > 0

let arm ?(after = 0) ?(probability = 1.0) point action =
  Hashtbl.replace table point { countdown = after; probability; action }

let fire point =
  if Hashtbl.length table = 0 then None
  else begin
    Mutex.lock mutex;
    let result =
      match Hashtbl.find_opt table point with
      | None -> None
      | Some a ->
        if a.countdown > 0 then begin
          a.countdown <- a.countdown - 1;
          None
        end
        else if a.probability >= 1.0 || Prng.float !prng < a.probability then begin
          Metrics.incr c_fired;
          Some a.action
        end
        else None
    in
    Mutex.unlock mutex;
    result
  end

let trip point =
  match fire point with
  | None -> Ok ()
  | Some Timeout -> Error (Error.Timeout (stage_of_point point))
  | Some (Truncate _) ->
    Error (Error.Io_error (Printf.sprintf "chaos: truncated %s" (point_name point)))
  | Some Exception ->
    raise (Injected (Printf.sprintf "chaos: injected exception at %s" (point_name point)))

let contain stage f =
  try Ok (f ()) with
  | Injected _ -> Error (Error.Injected stage)
  | Error.E e -> Error e

let parse_spec spec =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let point_of = function
    | "sat" -> Some Sat_solve
    | "podem" -> Some Podem_search
    | "seqatpg" -> Some Seqatpg_frame
    | "fsim" -> Some Fsim_run
    | "vectorgen" -> Some Vectorgen_directed
    | "kill" -> Some Kill_run
    | "report" -> Some Report_write
    | "parse" -> Some Parse_input
    | "store" -> Some Store_read
    | _ -> None
  in
  let spec, after =
    match String.index_opt spec '@' with
    | None -> (spec, 0)
    | Some i ->
      let n = String.sub spec (i + 1) (String.length spec - i - 1) in
      (String.sub spec 0 i, match int_of_string_opt n with Some v when v >= 0 -> v | _ -> -1)
  in
  if after < 0 then fail "bad @AFTER count in %S" spec
  else
    match String.index_opt spec ':' with
    | None -> fail "chaos spec must be POINT:ACTION[@AFTER], got %S" spec
    | Some i ->
      let pname = String.sub spec 0 i in
      let aname = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match point_of pname with
       | None -> fail "unknown chaos point %S" pname
       | Some point ->
         let action =
           match aname with
           | "timeout" -> Some Timeout
           | "exn" | "exception" -> Some Exception
           | _ ->
             if String.length aname > 9 && String.sub aname 0 9 = "truncate=" then
               match int_of_string_opt (String.sub aname 9 (String.length aname - 9)) with
               | Some n when n >= 0 -> Some (Truncate n)
               | _ -> None
             else None
         in
         (match action with
          | None -> fail "unknown chaos action %S" aname
          | Some action ->
            arm ~after point action;
            Ok ()))
