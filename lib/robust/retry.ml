module Prng = Mutsamp_util.Prng

type policy = {
  max_attempts : int;
  base_scale : int;
  scale_multiplier : float;
  base_delay_ms : float;
  delay_multiplier : float;
  max_delay_ms : float;
  jitter : float;
}

let policy ?(max_attempts = 3) ?(base_scale = 1) ?(scale_multiplier = 2.0)
    ?(base_delay_ms = 0.) ?(delay_multiplier = 2.0) ?(max_delay_ms = 2000.)
    ?(jitter = 0.5) () =
  {
    max_attempts;
    base_scale;
    scale_multiplier;
    base_delay_ms;
    delay_multiplier;
    max_delay_ms;
    jitter;
  }

type failure = Exhausted of string | Budget_cut of Error.t

type 'a outcome = { result : ('a, failure) result; attempts : int }

let scale_at policy ~attempt =
  max 1
    (int_of_float
       (Float.round
          (float_of_int policy.base_scale
          *. (policy.scale_multiplier ** float_of_int (attempt - 1)))))

let delay_ms_at ?prng policy ~attempt =
  if attempt <= 1 || policy.base_delay_ms <= 0. then 0.
  else begin
    (* Attempt 2 is the first delayed one: it waits the base delay,
       then each further attempt multiplies, capped at the maximum. *)
    let raw =
      policy.base_delay_ms
      *. (policy.delay_multiplier ** float_of_int (attempt - 2))
    in
    let capped = Float.min raw policy.max_delay_ms in
    match prng with
    | None -> capped
    | Some p ->
      if policy.jitter <= 0. then capped
      else capped -. (Prng.float p *. policy.jitter *. capped)
  end

let default_policy = policy ()

let run ?(policy = default_policy) ?(sleep = Unix.sleepf) ?(jitter_seed = 2005)
    ?budget ~stage f =
  let budget = match budget with Some b -> b | None -> Budget.ambient () in
  let prng = lazy (Prng.create jitter_seed) in
  let rec go attempt last_reason =
    if attempt > policy.max_attempts then
      { result = Error (Exhausted last_reason); attempts = policy.max_attempts }
    else
      match Budget.check_deadline budget ~stage with
      | Error e -> { result = Error (Budget_cut e); attempts = attempt - 1 }
      | Ok () ->
        if attempt > 1 then begin
          let d = delay_ms_at ~prng:(Lazy.force prng) policy ~attempt in
          if d > 0. then sleep (d /. 1000.)
        end;
        Degrade.retry ~stage;
        let scale = scale_at policy ~attempt in
        (match f ~attempt ~scale with
         | Ok v -> { result = Ok v; attempts = attempt }
         | Error reason -> go (attempt + 1) reason)
  in
  go 1 "no attempts made"
