let tmp_seq = Atomic.make 0

let temp_name path =
  (* Unique across processes (pid) and across concurrent writers inside
     one process (sequence number — worker domains may write distinct
     store entries under the same pid). The rename target directory is
     the destination's, so the rename stays on one filesystem. *)
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

let write_file path contents =
  let truncate_at =
    match Chaos.fire Chaos.Report_write with
    | Some (Chaos.Truncate n) -> Some n
    | Some Chaos.Timeout -> None  (* meaningless for a write; ignore *)
    | Some Chaos.Exception ->
      raise (Chaos.Injected "chaos: injected exception at report")
    | None -> None
  in
  let tmp = temp_name path in
  let cleanup () = try Sys.remove tmp with Sys_error _ -> () in
  try
    let oc = open_out_bin tmp in
    (match truncate_at with
     | Some n ->
       output_string oc (String.sub contents 0 (min n (String.length contents)));
       close_out oc;
       cleanup ();
       raise (Error.E (Error.Io_error (Printf.sprintf "truncated write to %s" path)))
     | None ->
       output_string oc contents;
       close_out oc);
    Sys.rename tmp path;
    Ok ()
  with
  | Error.E e -> Error e
  | Sys_error msg ->
    cleanup ();
    Error (Error.Io_error msg)
  | Unix.Unix_error (err, _, _) ->
    cleanup ();
    Error (Error.Io_error (Unix.error_message err))
