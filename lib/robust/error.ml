type stage =
  | Sat
  | Podem
  | Seqatpg
  | Topoff
  | Kill
  | Vectorgen
  | Fsim
  | Equivalence
  | Parse
  | Report
  | Pipeline
  | Serve

let stage_name = function
  | Sat -> "sat"
  | Podem -> "podem"
  | Seqatpg -> "seqatpg"
  | Topoff -> "topoff"
  | Kill -> "kill"
  | Vectorgen -> "vectorgen"
  | Fsim -> "fsim"
  | Equivalence -> "equivalence"
  | Parse -> "parse"
  | Report -> "report"
  | Pipeline -> "pipeline"
  | Serve -> "serve"

type loc = { file : string option; line : int option }

type t =
  | Timeout of stage
  | Budget_exhausted of { stage : stage; resource : string }
  | Parse_error of { loc : loc; msg : string }
  | Aborted of stage
  | Injected of stage
  | Io_error of string
  | Overloaded of string
  | Protocol of string

exception E of t

let to_string = function
  | Timeout stage -> Printf.sprintf "%s: wall-clock deadline exceeded" (stage_name stage)
  | Budget_exhausted { stage; resource } ->
    Printf.sprintf "%s: %s budget exhausted" (stage_name stage) resource
  | Parse_error { loc; msg } ->
    let file = match loc.file with Some f -> f ^ ": " | None -> "" in
    let line = match loc.line with Some l -> Printf.sprintf "line %d: " l | None -> "" in
    (* Messages produced by the parsers already start with "line N:"
       when they are line-located; avoid stuttering in that case. *)
    let already_located =
      String.length msg >= 5 && String.sub msg 0 5 = "line "
    in
    if already_located then Printf.sprintf "%sparse error: %s" file msg
    else Printf.sprintf "%s%sparse error: %s" file line msg
  | Aborted stage -> Printf.sprintf "%s: aborted at stage-local limit" (stage_name stage)
  | Injected stage -> Printf.sprintf "%s: chaos-injected failure" (stage_name stage)
  | Io_error msg -> Printf.sprintf "i/o error: %s" msg
  | Overloaded msg -> Printf.sprintf "service overloaded: %s" msg
  | Protocol msg -> Printf.sprintf "protocol error: %s" msg

let ok_exn = function Ok v -> v | Error e -> raise (E e)

let exit_code = function
  | Parse_error _ -> 65
  | Overloaded _ -> 69
  | Io_error _ -> 74
  | Timeout _ -> 75
  | Budget_exhausted _ -> 76
  | Aborted _ -> 77
  | Injected _ -> 78
  | Protocol _ -> 79

let class_name = function
  | Timeout _ -> "timeout"
  | Budget_exhausted _ -> "budget"
  | Parse_error _ -> "parse"
  | Aborted _ -> "aborted"
  | Injected _ -> "injected"
  | Io_error _ -> "io"
  | Overloaded _ -> "overloaded"
  | Protocol _ -> "protocol"
