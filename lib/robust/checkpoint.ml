module Json = Mutsamp_obs.Json

let schema_version = 1

type t = { path : string; mutable table : (string * Json.t) list }

let load path =
  let table =
    if Sys.file_exists path then
      match Json.parse_file path with
      | Ok doc
        when Json.member "schema" doc = Some (Json.Int schema_version) -> (
        match Json.member "entries" doc with
        | Some (Json.Obj fields) -> fields
        | _ -> [])
      | _ -> []
    else []
  in
  { path; table }

let find t key = List.assoc_opt key t.table

let to_json t =
  Json.Obj [ ("schema", Json.Int schema_version); ("entries", Json.Obj t.table) ]

let record t key payload =
  t.table <- (List.remove_assoc key t.table) @ [ (key, payload) ];
  match Atomicio.write_file t.path (Json.to_string (to_json t)) with
  | Ok () -> ()
  | Error _ -> ()  (* keep going; the row stays computed in memory *)

let entries t = List.length t.table
let path t = t.path
