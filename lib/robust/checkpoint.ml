module Json = Mutsamp_obs.Json

let schema_version = 1

type t = { path : string; mutable table : (string * Json.t) list }

let load path =
  let table =
    if Sys.file_exists path then
      match Json.parse_file path with
      | Ok doc
        when Json.member "schema" doc = Some (Json.Int schema_version) -> (
        match Json.member "entries" doc with
        | Some (Json.Obj fields) -> fields
        | _ -> [])
      | _ -> []
    else []
  in
  { path; table }

(* Campaign cells may resume/persist from worker domains when sharded;
   one global lock serialises table mutation and the file write. *)
let mutex = Mutex.create ()

let find t key =
  Mutex.lock mutex;
  let v = List.assoc_opt key t.table in
  Mutex.unlock mutex;
  v

let to_json t =
  Json.Obj [ ("schema", Json.Int schema_version); ("entries", Json.Obj t.table) ]

let record t key payload =
  Mutex.lock mutex;
  t.table <- (List.remove_assoc key t.table) @ [ (key, payload) ];
  let doc = Json.to_string (to_json t) in
  Mutex.unlock mutex;
  match Atomicio.write_file t.path doc with
  | Ok () -> ()
  | Error _ -> ()  (* keep going; the row stays computed in memory *)

let entries t = List.length t.table
let path t = t.path
