(** Process-global record of graceful degradations.

    When a stage hits its budget and the pipeline falls back (random
    top-off instead of SAT, partial kill matrix, …), it [note]s the
    downgrade here; the CLI embeds the accumulated record in the
    schema-1 run report under ["robust"], so a report always says
    whether its numbers are exact or degraded. *)

type event = {
  stage : Error.stage;
  error : Error.t;  (** what triggered the downgrade *)
  detail : string;  (** what the fallback was, human-readable *)
}

val reset : unit -> unit
(** Clear the record (start of a CLI run / each test). *)

val note : stage:Error.stage -> ?detail:string -> Error.t -> unit
(** Record that [stage] degraded because of the given error. Also bumps
    the [robust.degraded.<stage>] metrics counter. *)

val retry : stage:Error.stage -> unit
(** Record one bounded retry attempt ([robust.retries]). *)

val events : unit -> event list
(** Degradations noted since [reset], in order. *)

val degraded_stages : unit -> string list
(** Stage names with at least one degradation, deduplicated, in first-
    degradation order. *)

val retries : unit -> int
val any : unit -> bool

val to_json : unit -> Mutsamp_obs.Json.t
(** [{ "degraded_stages": [...], "retries": N, "events": [...] }] —
    the ["robust"] report section (budget config is appended by the
    CLI). *)
