(** Checkpoint/resume for long kill campaigns.

    The Table-1/Table-2 experiments fault-simulate every operator of
    every circuit; with [--checkpoint FILE] each finished operator row
    is persisted (atomically) as soon as it is computed, and a rerun
    skips rows already on disk. Keys name the experiment, seed, circuit
    and operator (e.g. ["t1/2005/c432/AOR"]), so a checkpoint file can
    only resume the run it came from.

    A missing, unreadable or schema-mismatched file behaves as an empty
    checkpoint — resuming never fails harder than recomputing. *)

type t

val load : string -> t
(** Load [path], or an empty checkpoint bound to [path] if the file is
    missing or corrupt. *)

val find : t -> string -> Mutsamp_obs.Json.t option
(** Payload recorded under a key, if any. *)

val record : t -> string -> Mutsamp_obs.Json.t -> unit
(** Store [key -> payload] and rewrite the file atomically. Best-effort:
    an I/O failure leaves the in-memory entry in place (the run
    continues; only resumability for that row is lost). *)

val entries : t -> int
val path : t -> string
