(** Cooperative budgets: a wall-clock deadline plus work-unit quotas.

    A budget is handed (or ambient-installed) to the long-running
    stages, which [spend] work units at natural checkpoints — one SAT
    conflict, one PODEM backtrack, one fault-sim batch of
    pattern·fault pairs. When a quota runs out or the deadline passes,
    the stage receives a typed error and degrades instead of spinning.

    The default everywhere is {!unlimited}, under which every check
    succeeds without mutating anything, so un-budgeted runs take
    exactly the same path (and produce bit-identical results) as
    before budgets existed. *)

type t

type resource = Sat_conflicts | Podem_backtracks | Fsim_pairs

val unlimited : t
(** Never exhausts. Shared constant; [spend] on it is a few compares. *)

val create :
  ?deadline_ms:int ->
  ?sat_conflicts:int ->
  ?podem_backtracks:int ->
  ?fsim_pairs:int ->
  unit ->
  t
(** Omitted quotas are unlimited. [deadline_ms] is relative to the call
    (wall clock). A budget is mutable: quotas deplete as stages spend
    against it, so one budget bounds a whole multi-stage run. *)

val is_unlimited : t -> bool

val spend : t -> stage:Error.stage -> resource -> int -> (unit, Error.t) result
(** Consume [n] units; [Error (Budget_exhausted _)] once the quota is
    gone (the failing call does not go negative — a zero quota fails
    on the first spend). Also polls the deadline every few calls, so
    hot loops need no separate {!check_deadline}. *)

val check_deadline : t -> stage:Error.stage -> (unit, Error.t) result
(** [Error (Timeout stage)] once the wall-clock deadline has passed. *)

val expire : t -> unit
(** Force the deadline into the past, so every subsequent
    {!check_deadline}/{!spend} poll fails with [Timeout]. Thread-safe
    (the deadline is an atomic) — the service daemon uses it to cancel
    an in-flight request from its drain watchdog. Children made by
    {!split} share the parent's deadline cell, so expiring the parent
    cancels all shards. No-op on {!unlimited}. *)

val deadline_remaining_ms : t -> int option
(** Milliseconds until the deadline ([Some 0] once passed), [None]
    when the budget has no deadline. *)

val remaining : t -> resource -> int
(** [max_int] when unlimited. *)

(** {2 Sharded execution}

    Quotas are atomics, so one budget can be spent against from several
    domains at once; [split]/[refund] instead move quota between a
    parent and per-shard children so each shard is bounded on its own
    (no shard can starve the others past its even share). *)

val split : t -> int -> t array
(** [split t n] drains the parent's finite quotas and deals them evenly
    over [n] fresh children (remainder to the lowest-index ones); the
    children share the parent's absolute deadline. [n <= 1] returns
    [[| t |]] unchanged. Unlimited quotas stay unlimited. *)

val refund : t -> t array -> unit
(** Drain what the children did not spend back into the parent (no-op
    for a child physically equal to the parent, and for unlimited
    quotas). Call after joining the shards so a later stage sees the
    leftover budget. *)

val to_json : t -> Mutsamp_obs.Json.t
(** Configuration rendering for run reports ([null] fields when
    unlimited). *)

(** {2 Ambient budget}

    The CLI installs one budget for the whole process; stage entry
    points default their [?budget] argument to it. Defaults to
    {!unlimited}. *)

val set_ambient : t -> unit
val ambient : unit -> t
