(** Cooperative budgets: a wall-clock deadline plus work-unit quotas.

    A budget is handed (or ambient-installed) to the long-running
    stages, which [spend] work units at natural checkpoints — one SAT
    conflict, one PODEM backtrack, one fault-sim batch of
    pattern·fault pairs. When a quota runs out or the deadline passes,
    the stage receives a typed error and degrades instead of spinning.

    The default everywhere is {!unlimited}, under which every check
    succeeds without mutating anything, so un-budgeted runs take
    exactly the same path (and produce bit-identical results) as
    before budgets existed. *)

type t

type resource = Sat_conflicts | Podem_backtracks | Fsim_pairs

val unlimited : t
(** Never exhausts. Shared constant; [spend] on it is a few compares. *)

val create :
  ?deadline_ms:int ->
  ?sat_conflicts:int ->
  ?podem_backtracks:int ->
  ?fsim_pairs:int ->
  unit ->
  t
(** Omitted quotas are unlimited. [deadline_ms] is relative to the call
    (wall clock). A budget is mutable: quotas deplete as stages spend
    against it, so one budget bounds a whole multi-stage run. *)

val is_unlimited : t -> bool

val spend : t -> stage:Error.stage -> resource -> int -> (unit, Error.t) result
(** Consume [n] units; [Error (Budget_exhausted _)] once the quota is
    gone (the failing call does not go negative — a zero quota fails
    on the first spend). Also polls the deadline every few calls, so
    hot loops need no separate {!check_deadline}. *)

val check_deadline : t -> stage:Error.stage -> (unit, Error.t) result
(** [Error (Timeout stage)] once the wall-clock deadline has passed. *)

val remaining : t -> resource -> int
(** [max_int] when unlimited. *)

val to_json : t -> Mutsamp_obs.Json.t
(** Configuration rendering for run reports ([null] fields when
    unlimited). *)

(** {2 Ambient budget}

    The CLI installs one budget for the whole process; stage entry
    points default their [?budget] argument to it. Defaults to
    {!unlimited}. *)

val set_ambient : t -> unit
val ambient : unit -> t
