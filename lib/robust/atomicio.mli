(** Crash-safe artifact writes.

    Reports and campaign-store entries are written to a temporary file
    (containing [".tmp."] in its name) in the destination directory and
    renamed into place, so a crash (or an injected truncation)
    mid-write never leaves a half-written artifact where a previous
    good one stood. The {!Chaos.Report_write} point is
    honoured here: a [Truncate n] arming writes only [n] bytes to the
    temp file, deletes it and fails — the destination is untouched. *)

val write_file : string -> string -> (unit, Error.t) result
(** [write_file path contents] atomically replaces [path]. *)
