module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json

(* Observability series (no-ops unless metrics collection is on).
   These live under exec.* because they count execution machinery —
   check frequency and split counts depend on how a run was sharded,
   unlike the logical fsim.*/atpg.* workload series. *)
let c_checks = Metrics.counter "exec.budget_checks"
let c_exhausted = Metrics.counter "exec.budget_exhausted"
let c_timeouts = Metrics.counter "exec.timeouts"
let c_splits = Metrics.counter "exec.budget_splits"

type resource = Sat_conflicts | Podem_backtracks | Fsim_pairs

let resource_name = function
  | Sat_conflicts -> "sat_conflicts"
  | Podem_backtracks -> "podem_backtracks"
  | Fsim_pairs -> "fsim_pairs"

(* Quotas are atomics so a budget may be spent against from several
   domains at once (the exec engine hands one budget to all shards of a
   jobs=1 run, and [split]/[refund] move quota between parent and
   per-shard children). max_int is the "unlimited" sentinel and is
   never decremented, so [unlimited] stays a safe shared constant. *)
type t = {
  deadline : float Atomic.t;
      (* absolute Unix time; [infinity] = no deadline. An atomic so the
         service daemon can [expire] an in-flight request's budget from
         its watchdog thread while workers keep polling it. *)
  deadline_ms : int option;  (* as configured, for reports *)
  sat_conflicts : int Atomic.t;  (* remaining; max_int = unlimited *)
  podem_backtracks : int Atomic.t;
  fsim_pairs : int Atomic.t;
  clock_skip : int Atomic.t;  (* spends until the next deadline poll *)
}

(* Deadline polls happen at most every [clock_interval] spends; at the
   granularity budgets are spent (conflicts, backtracks, fault-sim
   batches) this keeps gettimeofday off the hot path. *)
let clock_interval = 64

let unlimited =
  {
    deadline = Atomic.make infinity;
    deadline_ms = None;
    sat_conflicts = Atomic.make max_int;
    podem_backtracks = Atomic.make max_int;
    fsim_pairs = Atomic.make max_int;
    clock_skip = Atomic.make 0;
  }

let create ?deadline_ms ?sat_conflicts ?podem_backtracks ?fsim_pairs () =
  {
    deadline =
      Atomic.make
        (match deadline_ms with
         | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.)
         | None -> infinity);
    deadline_ms;
    sat_conflicts =
      Atomic.make (match sat_conflicts with Some n -> max 0 n | None -> max_int);
    podem_backtracks =
      Atomic.make (match podem_backtracks with Some n -> max 0 n | None -> max_int);
    fsim_pairs =
      Atomic.make (match fsim_pairs with Some n -> max 0 n | None -> max_int);
    clock_skip = Atomic.make 0;
  }

let quota t = function
  | Sat_conflicts -> t.sat_conflicts
  | Podem_backtracks -> t.podem_backtracks
  | Fsim_pairs -> t.fsim_pairs

let is_unlimited t =
  Atomic.get t.deadline = infinity
  && Atomic.get t.sat_conflicts = max_int
  && Atomic.get t.podem_backtracks = max_int
  && Atomic.get t.fsim_pairs = max_int

let check_deadline t ~stage =
  let d = Atomic.get t.deadline in
  if d = infinity then Ok ()
  else begin
    Metrics.incr c_checks;
    if Unix.gettimeofday () > d then begin
      Metrics.incr c_timeouts;
      Error (Error.Timeout stage)
    end
    else Ok ()
  end

let expire t =
  (* Physical-equality guard: the shared [unlimited] constant must
     never be poisoned by a caller expiring a defaulted budget. *)
  if t != unlimited then Atomic.set t.deadline neg_infinity

let deadline_remaining_ms t =
  let d = Atomic.get t.deadline in
  if d = infinity then None
  else Some (max 0 (int_of_float ((d -. Unix.gettimeofday ()) *. 1000.)))

let remaining t resource = Atomic.get (quota t resource)

(* Lock-free take: succeeds without mutating when the quota is
   unlimited, fails (without going negative) when fewer than [n] units
   remain. *)
let rec take cell n =
  let cur = Atomic.get cell in
  if cur = max_int then true
  else if cur < n then false
  else if Atomic.compare_and_set cell cur (cur - n) then true
  else take cell n

let spend t ~stage resource n =
  Metrics.incr c_checks;
  if not (take (quota t resource) n) then begin
    Metrics.incr c_exhausted;
    Error (Error.Budget_exhausted { stage; resource = resource_name resource })
  end
  else if Atomic.get t.deadline = infinity then Ok ()
  else if Atomic.fetch_and_add t.clock_skip (-1) > 0 then Ok ()
  else begin
    Atomic.set t.clock_skip clock_interval;
    check_deadline t ~stage
  end

(* Split the remaining quotas of [t] evenly over [n] children sharing
   the parent's absolute deadline. Finite quotas are drained out of the
   parent (concurrent spends against [t] during its own split would be
   a caller bug, but never double-count: the exchange is atomic), so
   parent + children always hold exactly the original total. [refund]
   moves whatever the children did not use back into the parent. *)
let split t n =
  if n <= 1 then [| t |]
  else begin
    Metrics.incr c_splits;
    let child_quotas cell =
      let cur = Atomic.get cell in
      if cur = max_int then Array.init n (fun _ -> Atomic.make max_int)
      else begin
        let drained = Atomic.exchange cell 0 in
        let share = drained / n and rem = drained mod n in
        Array.init n (fun i -> Atomic.make (share + if i < rem then 1 else 0))
      end
    in
    let sat = child_quotas t.sat_conflicts in
    let podem = child_quotas t.podem_backtracks in
    let fsim = child_quotas t.fsim_pairs in
    Array.init n (fun i ->
        {
          deadline = t.deadline;
          deadline_ms = t.deadline_ms;
          sat_conflicts = sat.(i);
          podem_backtracks = podem.(i);
          fsim_pairs = fsim.(i);
          clock_skip = Atomic.make 0;
        })
  end

let refund t children =
  Array.iter
    (fun child ->
      if child != t then
        List.iter
          (fun res ->
            let parent = quota t res and cell = quota child res in
            if Atomic.get cell <> max_int then begin
              let v = Atomic.exchange cell 0 in
              if v > 0 && v <> max_int && Atomic.get parent <> max_int then
                ignore (Atomic.fetch_and_add parent v)
            end)
          [ Sat_conflicts; Podem_backtracks; Fsim_pairs ])
    children

let to_json t =
  let quota = function n when n = max_int -> Json.Null | n -> Json.Int n in
  Json.Obj
    [
      ("deadline_ms", match t.deadline_ms with Some ms -> Json.Int ms | None -> Json.Null);
      ("sat_conflicts_remaining", quota (Atomic.get t.sat_conflicts));
      ("podem_backtracks_remaining", quota (Atomic.get t.podem_backtracks));
      ("fsim_pairs_remaining", quota (Atomic.get t.fsim_pairs));
    ]

let ambient_budget = ref unlimited
let set_ambient t = ambient_budget := t
let ambient () = !ambient_budget
