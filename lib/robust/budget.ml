module Metrics = Mutsamp_obs.Metrics
module Json = Mutsamp_obs.Json

(* Observability series (no-ops unless metrics collection is on). *)
let c_checks = Metrics.counter "robust.budget_checks"
let c_exhausted = Metrics.counter "robust.budget_exhausted"
let c_timeouts = Metrics.counter "robust.timeouts"

type resource = Sat_conflicts | Podem_backtracks | Fsim_pairs

let resource_name = function
  | Sat_conflicts -> "sat_conflicts"
  | Podem_backtracks -> "podem_backtracks"
  | Fsim_pairs -> "fsim_pairs"

type t = {
  deadline : float option;  (* absolute Unix time *)
  deadline_ms : int option;  (* as configured, for reports *)
  mutable sat_conflicts : int;  (* remaining; max_int = unlimited *)
  mutable podem_backtracks : int;
  mutable fsim_pairs : int;
  mutable clock_skip : int;  (* spends until the next deadline poll *)
}

(* Deadline polls happen at most every [clock_interval] spends; at the
   granularity budgets are spent (conflicts, backtracks, fault-sim
   batches) this keeps gettimeofday off the hot path. *)
let clock_interval = 64

let unlimited =
  {
    deadline = None;
    deadline_ms = None;
    sat_conflicts = max_int;
    podem_backtracks = max_int;
    fsim_pairs = max_int;
    clock_skip = 0;
  }

let create ?deadline_ms ?sat_conflicts ?podem_backtracks ?fsim_pairs () =
  {
    deadline =
      (match deadline_ms with
       | Some ms -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))
       | None -> None);
    deadline_ms;
    sat_conflicts = (match sat_conflicts with Some n -> max 0 n | None -> max_int);
    podem_backtracks = (match podem_backtracks with Some n -> max 0 n | None -> max_int);
    fsim_pairs = (match fsim_pairs with Some n -> max 0 n | None -> max_int);
    clock_skip = 0;
  }

let is_unlimited t =
  t.deadline = None
  && t.sat_conflicts = max_int
  && t.podem_backtracks = max_int
  && t.fsim_pairs = max_int

let check_deadline t ~stage =
  match t.deadline with
  | None -> Ok ()
  | Some d ->
    Metrics.incr c_checks;
    if Unix.gettimeofday () > d then begin
      Metrics.incr c_timeouts;
      Error (Error.Timeout stage)
    end
    else Ok ()

let remaining t = function
  | Sat_conflicts -> t.sat_conflicts
  | Podem_backtracks -> t.podem_backtracks
  | Fsim_pairs -> t.fsim_pairs

let spend t ~stage resource n =
  Metrics.incr c_checks;
  let left = remaining t resource in
  if left <> max_int && left < n then begin
    Metrics.incr c_exhausted;
    Error (Error.Budget_exhausted { stage; resource = resource_name resource })
  end
  else begin
    if left <> max_int then begin
      match resource with
      | Sat_conflicts -> t.sat_conflicts <- left - n
      | Podem_backtracks -> t.podem_backtracks <- left - n
      | Fsim_pairs -> t.fsim_pairs <- left - n
    end;
    match t.deadline with
    | None -> Ok ()
    | Some _ ->
      if t.clock_skip > 0 then begin
        t.clock_skip <- t.clock_skip - 1;
        Ok ()
      end
      else begin
        t.clock_skip <- clock_interval;
        check_deadline t ~stage
      end
  end

let to_json t =
  let quota = function n when n = max_int -> Json.Null | n -> Json.Int n in
  Json.Obj
    [
      ("deadline_ms", match t.deadline_ms with Some ms -> Json.Int ms | None -> Json.Null);
      ("sat_conflicts_remaining", quota t.sat_conflicts);
      ("podem_backtracks_remaining", quota t.podem_backtracks);
      ("fsim_pairs_remaining", quota t.fsim_pairs);
    ]

let ambient_budget = ref unlimited
let set_ambient t = ambient_budget := t
let ambient () = !ambient_budget
