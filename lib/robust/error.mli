(** Typed error taxonomy for the long-running pipeline stages.

    Every stage that can run out of budget, hit a deadline or choke on
    malformed input reports it as a value of {!t} instead of an
    untyped exception, so callers can degrade gracefully (drop to a
    cheaper strategy, keep partial results) and the CLI can map each
    error class to a one-line message and a distinct exit code. *)

type stage =
  | Sat  (** CDCL solving ({!Mutsamp_sat.Solver}) *)
  | Podem
  | Seqatpg
  | Topoff
  | Kill  (** mutant execution *)
  | Vectorgen
  | Fsim
  | Equivalence
  | Parse
  | Report  (** artifact writing *)
  | Pipeline  (** whole-run orchestration *)
  | Serve  (** campaign service daemon ({!Mutsamp_serve}) *)

val stage_name : stage -> string
(** Lowercase stable identifier, used in metrics series names and run
    reports ([robust.degraded.<stage>]). *)

type loc = { file : string option; line : int option }
(** Best-effort input location for parse errors. *)

type t =
  | Timeout of stage  (** wall-clock deadline passed *)
  | Budget_exhausted of { stage : stage; resource : string }
      (** a work-unit quota (SAT conflicts, PODEM backtracks,
          fault-sim pattern·fault pairs) ran out *)
  | Parse_error of { loc : loc; msg : string }
  | Aborted of stage  (** stage-local limit hit (e.g. backtrack limit) *)
  | Injected of stage  (** failure forced by the {!Chaos} harness *)
  | Io_error of string
  | Overloaded of string
      (** the service daemon's bounded queue is full (or draining); the
          request was shed, never executed — safe to retry with backoff *)
  | Protocol of string
      (** malformed service request or reply (bad JSON, unknown op,
          wrong field type) — retrying the same bytes cannot succeed *)

exception E of t
(** Bridge for legacy raise-style call sites: result-returning APIs
    never raise it, thin compatibility wrappers do. The CLI maps it to
    [to_string]/[exit_code]. *)

val ok_exn : ('a, t) result -> 'a
(** [ok_exn (Ok v)] is [v]; [ok_exn (Error e)] raises [E e]. The
    one-line bridge from the result-typed entry points back to
    raise-style call sites (tests, quick scripts). *)

val to_string : t -> string
(** One-line human-readable rendering. *)

val exit_code : t -> int
(** Distinct nonzero process exit code per error class: parse 65
    (EX_DATAERR), overloaded 69 (EX_UNAVAILABLE), I/O 74 (EX_IOERR),
    timeout 75, budget 76, aborted 77, injected 78, protocol 79. *)

val class_name : t -> string
(** Stable lowercase class identifier ([timeout], [budget], [parse],
    [aborted], [injected], [io], [overloaded], [protocol]) — the
    ["class"] field of the service daemon's typed error replies. *)
