(** The one bounded-retry / exponential-backoff combinator.

    Every retry loop in the tree goes through {!run} — Topoff's
    degraded random top-off rounds (which back off in {e work} per
    attempt, not in time) and the service client's reconnects (which
    back off in {e time}) are both instances of the same policy: a
    bounded attempt count, a geometric progression, jitter, and
    budget-aware cancellation. Each attempt entered is recorded as one
    {!Degrade.retry} under the caller's stage, so [robust.retries] in
    run reports counts retries uniformly no matter who looped. *)

type policy = {
  max_attempts : int;  (** attempts entered at most; 0 = give up at once *)
  base_scale : int;  (** work scale handed to attempt 1 *)
  scale_multiplier : float;  (** geometric work growth per attempt *)
  base_delay_ms : float;  (** sleep before attempt 2; [0.] = never sleep *)
  delay_multiplier : float;  (** geometric delay growth per attempt *)
  max_delay_ms : float;  (** delay cap *)
  jitter : float;
      (** fraction of the capped delay subtracted uniformly at random
          (0 = deterministic delays, 0.5 = sleep 50–100% of nominal) *)
}

val policy :
  ?max_attempts:int ->
  ?base_scale:int ->
  ?scale_multiplier:float ->
  ?base_delay_ms:float ->
  ?delay_multiplier:float ->
  ?max_delay_ms:float ->
  ?jitter:float ->
  unit ->
  policy
(** Defaults: 3 attempts, scale 1 doubling, no delay (doubling from the
    base when one is set, capped at 2000 ms), jitter 0.5. *)

type failure =
  | Exhausted of string  (** all attempts failed; the last reason *)
  | Budget_cut of Error.t
      (** the budget's deadline cut the loop short {e between} attempts
          (the interrupted attempt is not counted) *)

type 'a outcome = { result : ('a, failure) result; attempts : int }
(** [attempts] = attempts actually entered (0 when cut before the
    first), which is what Topoff reports as [degraded_retries]. *)

val scale_at : policy -> attempt:int -> int
(** Work scale for a 1-based attempt: [base_scale * scale_multiplier^(attempt-1)],
    rounded, at least 1. *)

val delay_ms_at : ?prng:Mutsamp_util.Prng.t -> policy -> attempt:int -> float
(** Jittered sleep before a 1-based attempt ([0.] for attempt 1 or a
    zero base delay). Without [?prng], the nominal capped delay. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?jitter_seed:int ->
  ?budget:Budget.t ->
  stage:Error.stage ->
  (attempt:int -> scale:int -> ('a, string) result) ->
  'a outcome
(** Run [f] up to [max_attempts] times. Before each attempt the budget
    deadline is polled (default: the ambient budget) — a passed
    deadline stops the loop with [Budget_cut]; then (from attempt 2)
    the jittered delay is slept ([?sleep] defaults to [Unix.sleepf];
    tests pass a recorder), one {!Degrade.retry} is recorded, and [f]
    runs with its 1-based [attempt] and geometric [scale]. The first
    [Ok] wins; [Error reason] moves to the next attempt. Jitter draws
    come from a dedicated PRNG seeded by [jitter_seed] (default 2005),
    so delay schedules are replayable and independent of other PRNG
    users. *)
