module Prng = Mutsamp_util.Prng
module Operator = Mutsamp_mutation.Operator
module Mutant = Mutsamp_mutation.Mutant
module Vectorgen = Mutsamp_validation.Vectorgen
module Score = Mutsamp_validation.Score
module Strategy = Mutsamp_sampling.Strategy
module Nlfce = Mutsamp_sampling.Nlfce
module Prpg = Mutsamp_atpg.Prpg
module Scan = Mutsamp_atpg.Scan
module Topoff = Mutsamp_atpg.Topoff
module Fault = Mutsamp_fault.Fault
module Collapse = Mutsamp_fault.Collapse
module Netlist = Mutsamp_netlist.Netlist
module Json = Mutsamp_obs.Json
module Store = Mutsamp_store.Store
module Ctx = Mutsamp_exec.Ctx

type operator_row = {
  op : Operator.t;
  mutant_count : int;
  metric : Nlfce.t;
}

type table1_row = { circuit : string; per_operator : operator_row list }

(* --- store (de)serialisation of operator rows -------------------------- *)

let json_of_operator_row row =
  let m = row.metric in
  Json.Obj
    [
      ("op", Json.String (Operator.name row.op));
      ("mutant_count", Json.Int row.mutant_count);
      ("mutation_length", Json.Int m.Nlfce.mutation_length);
      ("mfc", Json.Float m.Nlfce.mfc);
      ("rfc_at_equal_length", Json.Float m.Nlfce.rfc_at_equal_length);
      ("random_length_for_mfc", Json.Int m.Nlfce.random_length_for_mfc);
      ("random_saturated", Json.Bool m.Nlfce.random_saturated);
      ("delta_fc_percent", Json.Float m.Nlfce.delta_fc_percent);
      ("delta_l_percent", Json.Float m.Nlfce.delta_l_percent);
      ("nlfce", Json.Float m.Nlfce.nlfce);
    ]

(* [op] comes from the request, not the payload: the key already names
   the operator, so a payload recorded under the wrong key cannot smuggle
   in a row for a different operator. *)
let operator_row_of_json ~op json =
  let int k = match Json.member k json with Some (Json.Int v) -> Some v | _ -> None in
  let num k =
    match Json.member k json with
    | Some (Json.Float v) -> Some v
    | Some (Json.Int v) -> Some (float_of_int v)
    | _ -> None
  in
  let bool k = match Json.member k json with Some (Json.Bool v) -> Some v | _ -> None in
  match
    ( int "mutant_count", int "mutation_length", num "mfc",
      num "rfc_at_equal_length", int "random_length_for_mfc",
      bool "random_saturated", num "delta_fc_percent", num "delta_l_percent",
      num "nlfce" )
  with
  | ( Some mutant_count, Some mutation_length, Some mfc,
      Some rfc_at_equal_length, Some random_length_for_mfc,
      Some random_saturated, Some delta_fc_percent, Some delta_l_percent,
      Some nlfce ) ->
    Some
      {
        op;
        mutant_count;
        metric =
          {
            Nlfce.mutation_length;
            mfc;
            rfc_at_equal_length;
            random_length_for_mfc;
            random_saturated;
            delta_fc_percent;
            delta_l_percent;
            nlfce;
          };
      }
  | _ -> None

(* Mix a sub-experiment label into the master seed so each use draws an
   independent deterministic stream. *)
let derived_seed base label =
  let h = Hashtbl.hash (base, label) in
  (h land 0x3FFFFFFF) + 1

(* Validation-data generation is the dominant cost of every campaign
   cell; its outcome is pure in (design, mutant subset, vector config)
   — the config carries the derived seed — so it stores under exactly
   those hashes. Degraded generations are returned but never stored. *)
let generate_vectors ~ctx ~vector_config pipeline mutant_subset =
  match Ctx.store ctx with
  | None -> Vectorgen.generate ~config:vector_config pipeline.Pipeline.design mutant_subset
  | Some _ as store ->
    Store.fetch_or_compute store ~ns:"vectors"
      ~parts:
        [
          ("design", (Pipeline.hashes pipeline).Cache.design_h);
          ("mutants", Cache.mutants_hash mutant_subset);
          ("config", Cache.vector_config_hash vector_config);
        ]
      ~encode:Cache.outcome_to_json ~decode:Cache.outcome_of_json
      (fun () ->
        Vectorgen.generate ~config:vector_config pipeline.Pipeline.design mutant_subset)

(* Scoring replays the test set over the whole mutant population —
   pure in (design, equivalents, test set). *)
let score_test_set ~ctx pipeline ~equivalents test_set =
  match Ctx.store ctx with
  | None ->
    Score.of_test_set pipeline.Pipeline.design pipeline.Pipeline.mutants
      ~equivalent:equivalents test_set
  | Some _ as store ->
    Store.fetch_or_compute store ~ns:"score"
      ~parts:
        [
          ("design", (Pipeline.hashes pipeline).Cache.design_h);
          ("equivalent", Cache.int_list_hash equivalents);
          ("test_set", Cache.test_set_hash test_set);
        ]
      ~encode:Cache.score_to_json ~decode:Cache.score_of_json
      (fun () ->
        Score.of_test_set pipeline.Pipeline.design pipeline.Pipeline.mutants
          ~equivalent:equivalents test_set)

(* Generate validation data for a mutant subset and fault-simulate both
   it and a pseudo-random baseline of proportional length. *)
let measure_against_random ~ctx (config : Config.t) pipeline ~label mutant_subset =
  let vector_config =
    { config.Config.vector with Vectorgen.seed = derived_seed config.Config.seed label }
  in
  let outcome = generate_vectors ~ctx ~vector_config pipeline mutant_subset in
  let mutation_codes = Pipeline.patterns_of_sequences pipeline outcome.Vectorgen.test_set in
  let random_length =
    max
      (config.Config.random_multiplier * Array.length mutation_codes)
      config.Config.min_random_length
  in
  let bits = Array.length pipeline.Pipeline.netlist.Netlist.input_nets in
  let random_codes =
    Prpg.uniform_sequence
      (Prng.create (derived_seed config.Config.seed (label ^ ":random")))
      ~bits ~length:random_length
  in
  let mutation_report = Pipeline.fault_simulate ~ctx pipeline mutation_codes in
  let random_report = Pipeline.fault_simulate ~ctx pipeline random_codes in
  (outcome, Nlfce.of_reports ~mutation:mutation_report ~random:random_report ())

let paper_operators = [ Operator.LOR; Operator.VR; Operator.CVR; Operator.CR ]

let operator_efficiency ?(config = Config.default) ?(operators = paper_operators)
    ?(ctx = Ctx.default) pipeline ~name =
  (* One campaign cell per operator; results merge in operator order,
     and each cell draws its own derived seed, so the parallel table is
     identical to the sequential one. Whole finished rows store under
     ["t1row"] — a resumed or repeated campaign replays them without
     generating a vector or simulating a fault (the row subsumes the
     finer ["vectors"]/["fsim"] entries, which still serve partial
     reuse when only the row key changes). *)
  let rows =
    Ctx.map_cells ctx operators ~f:(fun op ->
        let subset =
          List.filter
            (fun (m : Mutant.t) -> Operator.equal m.Mutant.op op)
            pipeline.Pipeline.mutants
        in
        if subset = [] then None
        else
          let compute () =
            let label = Printf.sprintf "%s/t1/%s" name (Operator.name op) in
            let _, metric = measure_against_random ~ctx config pipeline ~label subset in
            { op; mutant_count = List.length subset; metric }
          in
          match Ctx.store ctx with
          | None -> Some (compute ())
          | Some _ as store ->
            Some
              (Store.fetch_or_compute store ~ns:"t1row"
                 ~parts:
                   [
                     ("design", (Pipeline.hashes pipeline).Cache.design_h);
                     ("circuit", name);
                     ("op", Operator.name op);
                     ("seed", string_of_int config.Config.seed);
                     ("config", Cache.config_hash config);
                   ]
                 ~encode:json_of_operator_row
                 ~decode:(operator_row_of_json ~op) compute))
  in
  { circuit = name; per_operator = List.filter_map Fun.id rows }

(* Average several table-1 rows (independent seeds) field-wise: the
   per-operator NLFCE of a single run is noisy on small circuits, and
   the sampling weights deserve a stable estimate. *)
let average_table1 rows =
  match rows with
  | [] -> invalid_arg "Experiments.average_table1: no rows"
  | first :: _ ->
    let ops = List.map (fun r -> r.op) first.per_operator in
    let per_operator =
      List.map
        (fun op ->
          let metrics =
            List.filter_map
              (fun row ->
                List.find_opt (fun r -> Operator.equal r.op op) row.per_operator)
              rows
          in
          let mean f = Mutsamp_util.Stats.mean (List.map f metrics) in
          let template = List.hd metrics in
          {
            op;
            mutant_count = template.mutant_count;
            metric =
              {
                template.metric with
                Nlfce.mutation_length =
                  int_of_float (mean (fun r -> float_of_int r.metric.Nlfce.mutation_length));
                mfc = mean (fun r -> r.metric.Nlfce.mfc);
                rfc_at_equal_length = mean (fun r -> r.metric.Nlfce.rfc_at_equal_length);
                delta_fc_percent = mean (fun r -> r.metric.Nlfce.delta_fc_percent);
                delta_l_percent = mean (fun r -> r.metric.Nlfce.delta_l_percent);
                nlfce = mean (fun r -> r.metric.Nlfce.nlfce);
              };
          })
        ops
    in
    { circuit = first.circuit; per_operator }

let operator_efficiency_avg ?(config = Config.default) ?operators ?(repetitions = 3)
    ?(ctx = Ctx.default) pipeline ~name =
  let rows =
    Ctx.map_cells ctx
      (List.init repetitions Fun.id)
      ~f:(fun r ->
        let cfg =
          { config with Config.seed = derived_seed config.Config.seed (Printf.sprintf "%s/t1rep%d" name r) }
        in
        (* Each repetition carries its own derived seed, so its rows land
           under distinct store keys. *)
        operator_efficiency ~config:cfg ?operators ~ctx pipeline ~name)
  in
  average_table1 rows

(* Efficiency-proportional weights with a bounded skew: the best class
   gets 8x the weight of a zero-efficiency class. An unbounded ratio
   would starve whole operator classes and wreck the mutation score the
   strategy must preserve (the paper keeps both). *)
let weights_of_table1 row =
  let positive r = Float.max r.metric.Nlfce.nlfce 0. in
  let best = List.fold_left (fun acc r -> Float.max acc (positive r)) 0. row.per_operator in
  List.map
    (fun r ->
      let w = if best <= 0. then 1. else 1. +. (7. *. positive r /. best) in
      (r.op, w))
    row.per_operator

type strategy_result = {
  strategy : string;
  sampled_count : int;
  ms : Score.t;
  metric : Nlfce.t;
  validation_vectors : int;
}

type table2_row = {
  circuit : string;
  random : strategy_result;
  oriented : strategy_result;
}

(* Sample with one strategy and generate its validation data. *)
let run_strategy_data ~ctx (config : Config.t) pipeline ~name ~strategy ~strategy_name =
  let prng = Prng.create (derived_seed config.Config.seed (name ^ "/sample/" ^ strategy_name)) in
  let sample =
    Strategy.sample prng strategy pipeline.Pipeline.mutants
      ~rate:config.Config.sample_rate
  in
  let vector_config =
    {
      config.Config.vector with
      Vectorgen.seed =
        derived_seed config.Config.seed (Printf.sprintf "%s/t2/%s" name strategy_name);
    }
  in
  let outcome = generate_vectors ~ctx ~vector_config pipeline sample in
  (sample, outcome)

let sampling_comparison ?(config = Config.default) ?(ctx = Ctx.default) pipeline
    ~name ~weights ~equivalents =
  let random_sample, random_outcome =
    run_strategy_data ~ctx config pipeline ~name ~strategy:Strategy.Random_uniform
      ~strategy_name:"random"
  in
  let oriented_sample, oriented_outcome =
    run_strategy_data ~ctx config pipeline ~name
      ~strategy:(Strategy.Operator_weighted weights) ~strategy_name:"oriented"
  in
  let random_codes = Pipeline.patterns_of_sequences pipeline random_outcome.Vectorgen.test_set in
  let oriented_codes =
    Pipeline.patterns_of_sequences pipeline oriented_outcome.Vectorgen.test_set
  in
  (* One shared pseudo-random baseline judges both strategies, sized by
     the longer of the two validation sets. *)
  let baseline_length =
    max
      (config.Config.random_multiplier
      * max (Array.length random_codes) (Array.length oriented_codes))
      config.Config.min_random_length
  in
  let bits = Array.length pipeline.Pipeline.netlist.Netlist.input_nets in
  let baseline =
    Prpg.uniform_sequence
      (Prng.create (derived_seed config.Config.seed (name ^ "/t2/baseline")))
      ~bits ~length:baseline_length
  in
  let baseline_report = Pipeline.fault_simulate ~ctx pipeline baseline in
  let result sample outcome codes strategy_name =
    let metric =
      Nlfce.of_reports
        ~mutation:(Pipeline.fault_simulate ~ctx pipeline codes)
        ~random:baseline_report ()
    in
    let ms = score_test_set ~ctx pipeline ~equivalents outcome.Vectorgen.test_set in
    {
      strategy = strategy_name;
      sampled_count = List.length sample;
      ms;
      metric;
      validation_vectors = outcome.Vectorgen.total_vectors;
    }
  in
  {
    circuit = name;
    random = result random_sample random_outcome random_codes "random";
    oriented = result oriented_sample oriented_outcome oriented_codes "oriented";
  }

type table2_average = {
  circuit : string;
  repetitions : int;
  oriented_ms_mean : float;
  random_ms_mean : float;
  oriented_nlfce_mean : float;
  random_nlfce_mean : float;
  oriented_nlfce_median : float;
  random_nlfce_median : float;
  oriented_ms_wins : int;  (** repetitions where oriented MS >= random MS *)
  oriented_nlfce_wins : int;
  sampled_count : int;
}

let sampling_comparison_avg ?(config = Config.default) ?(repetitions = 5)
    ?(ctx = Ctx.default) pipeline ~name ~weights ~equivalents =
  let runs =
    Ctx.map_cells ctx
      (List.init repetitions Fun.id)
      ~f:(fun r ->
        let cfg = { config with Config.seed = derived_seed config.Config.seed (Printf.sprintf "%s/rep%d" name r) } in
        sampling_comparison ~config:cfg ~ctx pipeline ~name ~weights ~equivalents)
  in
  let mean f = Mutsamp_util.Stats.mean (List.map f runs) in
  let median f = Mutsamp_util.Stats.median (List.map f runs) in
  let wins f = List.length (List.filter f runs) in
  {
    circuit = name;
    repetitions;
    oriented_ms_mean = mean (fun r -> r.oriented.ms.Score.score_percent);
    random_ms_mean = mean (fun r -> r.random.ms.Score.score_percent);
    oriented_nlfce_mean = mean (fun r -> r.oriented.metric.Nlfce.nlfce);
    random_nlfce_mean = mean (fun r -> r.random.metric.Nlfce.nlfce);
    oriented_nlfce_median = median (fun r -> r.oriented.metric.Nlfce.nlfce);
    random_nlfce_median = median (fun r -> r.random.metric.Nlfce.nlfce);
    oriented_ms_wins =
      wins (fun r ->
          r.oriented.ms.Score.score_percent >= r.random.ms.Score.score_percent);
    oriented_nlfce_wins =
      wins (fun r -> r.oriented.metric.Nlfce.nlfce >= r.random.metric.Nlfce.nlfce);
    sampled_count =
      (match runs with r :: _ -> r.oriented.sampled_count | [] -> 0);
  }

type atpg_row = {
  seed_kind : string;
  report : Topoff.report;
}

let atpg_effort ?(config = Config.default) ?(generator = Topoff.Use_podem)
    ?(ctx = Ctx.default) pipeline ~name ~mutation_sequences =
  let scanned =
    if pipeline.Pipeline.sequential then Scan.full_scan pipeline.Pipeline.netlist
    else pipeline.Pipeline.netlist
  in
  let faults = (Collapse.run scanned).Collapse.representatives in
  let mutation_seed = Pipeline.scan_patterns_of_sequences pipeline mutation_sequences in
  let bits = Array.length scanned.Netlist.input_nets in
  let random_seed_patterns =
    Prpg.uniform_sequence
      (Prng.create (derived_seed config.Config.seed (name ^ "/e3/random")))
      ~bits
      ~length:(Array.length mutation_seed)
  in
  (* The three seeding disciplines are independent campaigns — one cell
     each, merged in the fixed none/random/mutation order. *)
  let scanned_h = lazy (Cache.netlist_hash scanned) in
  Ctx.map_cells ctx
    [ ("none", [||]); ("random", random_seed_patterns); ("mutation", mutation_seed) ]
    ~f:(fun (kind, seed_patterns) ->
      let seed = derived_seed config.Config.seed (name ^ "/e3/" ^ kind) in
      let compute () = Topoff.run ~generator ~ctx ~seed scanned ~faults ~seed_patterns in
      let report =
        match Ctx.store ctx with
        | None -> compute ()
        | Some _ as store ->
          (* [atpg_calls] depends on the static prefilter, so the flag
             is part of the key — a filtered and an unfiltered run must
             not share a row even though their classifications agree. *)
          Store.fetch_or_compute store ~ns:"atpg"
            ~parts:
              [
                ("netlist", Lazy.force scanned_h);
                ("faults", Cache.faults_hash faults);
                ("seed_patterns", Cache.sequence_hash seed_patterns);
                ("seed", string_of_int seed);
                ("generator", Cache.generator_name generator);
                ("filter", string_of_bool ctx.Ctx.static_filter);
                ("dominance", string_of_bool ctx.Ctx.dominance);
              ]
            ~encode:Cache.topoff_report_to_json
            ~decode:Cache.topoff_report_of_json compute
      in
      { seed_kind = kind; report })

let ms_vs_rate ?(config = Config.default) ?(ctx = Ctx.default) pipeline ~name
    ~weights ~equivalents ~rates =
  Ctx.map_cells ctx rates ~f:(fun rate ->
      let cfg = { config with Config.sample_rate = rate } in
      let row =
        sampling_comparison ~config:cfg ~ctx pipeline
          ~name:(Printf.sprintf "%s@%.2f" name rate) ~weights ~equivalents
      in
      (rate, row.random.ms.Score.score_percent, row.oriented.ms.Score.score_percent))
