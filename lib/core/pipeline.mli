(** The prepared form of one benchmark: behavioural design, synthesised
    netlist, port mapping, collapsed fault list and mutant population —
    everything the experiments consume. Also the conversions between
    word-level validation data and the structural tools' pattern
    codes. *)

type t = {
  design : Mutsamp_hdl.Ast.design;
  netlist : Mutsamp_netlist.Netlist.t;
  mapping : Mutsamp_synth.Mapping.t;
  faults : Mutsamp_fault.Fault.t list;  (** collapsed representatives *)
  mutants : Mutsamp_mutation.Mutant.t list;
  sequential : bool;
  hashes : Cache.hashes Lazy.t;
      (** content hashes keying the campaign store; forced only by
          store-aware runs *)
}

val prepare : Mutsamp_hdl.Ast.design -> t
(** Synthesise, collapse faults, enumerate mutants. *)

val hashes : t -> Cache.hashes
(** Force and return the content-hash bundle. *)

val pattern_of_stimulus : t -> Mutsamp_hdl.Sim.stimulus -> Mutsamp_fault.Pattern.t
(** Pattern over the netlist's bit-level inputs. *)

val patterns_of_sequences :
  t -> Mutsamp_hdl.Sim.stimulus list list -> Mutsamp_fault.Pattern.t array
(** Concatenate validation sequences into one structural test sequence
    (applied from reset; sequence boundaries are not reset — the
    standard single-sequence test-application model, noted in
    DESIGN.md). *)

val fault_simulate :
  ?ctx:Mutsamp_exec.Ctx.t ->
  t ->
  Mutsamp_fault.Pattern.t array ->
  Mutsamp_fault.Fsim.report
(** Parallel-pattern engine for combinational circuits, serial engine
    from reset for sequential ones, over the collapsed fault list.
    [ctx] (default {!Mutsamp_exec.Ctx.default}, sequential) supplies the
    domain pool, budget and progress sink — see {!Mutsamp_exec.Ctx}.

    With a store in the context, a warm run replays the recorded
    detection indices bit-identically without evaluating a single
    pattern·fault pair. Combinational circuits go through
    {!fault_simulate_patterns} (cone-keyed incremental entries under
    namespace ["fsimcone"]); sequential ones keep one whole-design
    entry under ["fsim"] keyed by (netlist, fault list, sequence).
    Runs degraded by budget exhaustion or injection are never
    recorded. *)

val fault_simulate_patterns :
  ?ctx:Mutsamp_exec.Ctx.t ->
  Mutsamp_netlist.Netlist.t ->
  faults:Mutsamp_fault.Fault.t list ->
  patterns:Mutsamp_fault.Pattern.t array ->
  Mutsamp_fault.Fsim.report
(** Combinational fault simulation with cone-keyed store reuse. With a
    store in the context, the fault list is partitioned into influence
    groups (faults reaching the same primary outputs — see
    {!Mutsamp_analysis.Regions.cone_groups}) with one ["fsimcone"]
    entry per group, keyed by the Merkle cone hashes of the reachable
    outputs plus the faults' site hashes and the pattern sequence —
    never the whole-netlist hash. After a localised design edit only
    the groups whose cones cover the edit recompute (in a single
    simulation run over their union); untouched groups replay from the
    store, so a warm run after a one-gate edit does strictly less
    [fsim.*] work yet is bit-identical to a cold run. Cone keys are
    engine-independent — the context's {!Mutsamp_exec.Ctx.engine}
    choice changes how a miss is simulated, never what it is keyed by.
    Without a store this is exactly {!Mutsamp_fault.Fsim.run}. *)

val scan_patterns_of_sequences :
  t -> Mutsamp_hdl.Sim.stimulus list list -> Mutsamp_fault.Pattern.t array
(** Replay the sequences on the netlist and emit one full-scan pattern
    per cycle (primary inputs plus the state the cycle starts from) —
    the seed format for {!Mutsamp_atpg.Topoff} on scanned sequential
    circuits. For combinational circuits this equals
    {!patterns_of_sequences}. *)

val classify_equivalents :
  ?screen:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  seed:int ->
  t ->
  int list
(** Indices (into [mutants]) of the mutants that are provably
    equivalent to the design. A random screen of [screen] vectors
    (default 512) removes obviously killable mutants; survivors are
    settled exactly — SAT miter over the synthesised netlists for
    combinational designs, product-machine BFS for sequential ones.
    Mutants whose exact check blows its budget are treated as
    non-equivalent (conservative; they deflate MS rather than inflate
    it). The context progress callback fires after each exact check
    under stage ["equiv"] ([total] is the survivor count) — the checks
    dominate the runtime on larger designs.

    [ctx] (default {!Mutsamp_exec.Ctx.default}, sequential) carries the
    domain pool and budget. With a pool, both the screen and the exact
    phase shard over worker domains; verdicts merge in population order
    so the result is bit-identical to the sequential path. The context
    budget (default: ambient) bounds the whole classification: the
    screen spends [Fsim_pairs], each miter solve spends
    [Sat_conflicts], and the deadline is checked before every exact
    check. Exhaustion stops the exact phase — remaining survivors are
    reported non-equivalent and the degradation is recorded via
    {!Mutsamp_robust.Degrade}. *)
