module Json = Mutsamp_obs.Json
module Store = Mutsamp_store.Store
module Pretty = Mutsamp_hdl.Pretty
module Sim = Mutsamp_hdl.Sim
module Bitvec = Mutsamp_util.Bitvec
module Packvec = Mutsamp_util.Packvec
module Benchfmt = Mutsamp_netlist.Benchfmt
module Fault = Mutsamp_fault.Fault
module Fsim = Mutsamp_fault.Fsim
module Mutant = Mutsamp_mutation.Mutant
module Operator = Mutsamp_mutation.Operator
module Vectorgen = Mutsamp_validation.Vectorgen
module Score = Mutsamp_validation.Score
module Topoff = Mutsamp_atpg.Topoff

(* --- content hashes ---------------------------------------------------- *)

type hashes = { design_h : string; netlist_h : string; faults_h : string }

let design_hash d = Store.digest (Pretty.design d)
let netlist_hash nl = Store.digest (Benchfmt.to_string nl)

let faults_hash faults =
  Store.digest (String.concat ";" (List.map Fault.to_string faults))

let sequence_hash patterns =
  let b = Buffer.create 256 in
  Array.iter
    (fun p ->
      Buffer.add_string b (string_of_int (Packvec.width p));
      Array.iter
        (fun w ->
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int w))
        (Packvec.words p);
      Buffer.add_char b ';')
    patterns;
  Store.digest (Buffer.contents b)

let mutants_hash mutants =
  let b = Buffer.create 4096 in
  List.iter
    (fun (m : Mutant.t) ->
      Buffer.add_string b
        (Printf.sprintf "%d/%s\n" m.Mutant.id (Operator.name m.Mutant.op));
      Buffer.add_string b (Pretty.design m.Mutant.design))
    mutants;
  Store.digest (Buffer.contents b)

let config_hash cfg = Store.digest (Json.to_string (Config.to_json cfg))

let vector_config_hash (vc : Vectorgen.config) =
  Store.digest
    (Printf.sprintf "%d/%d/%d/%d/%b/%b/%b" vc.Vectorgen.seed vc.max_stall
       vc.sequence_length vc.max_vectors vc.directed vc.sat_attack vc.minimize)

let int_list_hash xs = Store.digest (String.concat "," (List.map string_of_int xs))

let generator_name = function Topoff.Use_podem -> "podem" | Topoff.Use_sat -> "sat"

(* --- codec helpers ----------------------------------------------------- *)

let int_list_to_json xs = Json.List (List.map (fun i -> Json.Int i) xs)

let all_some xs = if List.exists Option.is_none xs then None else Some (List.map Option.get xs)

let int_list_of_json = function
  | Json.List xs ->
    all_some (List.map (function Json.Int i -> Some i | _ -> None) xs)
  | _ -> None

let field_int j k = match Json.member k j with Some (Json.Int v) -> Some v | _ -> None
let field_bool j k = match Json.member k j with Some (Json.Bool v) -> Some v | _ -> None

let field_num j k =
  match Json.member k j with
  | Some (Json.Float v) -> Some v
  | Some (Json.Int v) -> Some (float_of_int v)
  | _ -> None

let field_ints j k = Option.bind (Json.member k j) int_list_of_json

(* --- word-level values ------------------------------------------------- *)

(* Bitvec round-trips through its binary-literal rendering ("5'b01101",
   MSB first) — already canonical and human-greppable in store files. *)
let bitvec_of_string s =
  match String.index_opt s '\'' with
  | Some i when i + 1 < String.length s && s.[i + 1] = 'b' -> (
    let bits = String.sub s (i + 2) (String.length s - i - 2) in
    match int_of_string_opt (String.sub s 0 i) with
    | Some w
      when w >= 1
           && String.length bits = w
           && String.for_all (fun c -> c = '0' || c = '1') bits ->
      Some (Bitvec.init w (fun k -> bits.[w - 1 - k] = '1'))
    | _ -> None)
  | _ -> None

let stimulus_to_json (st : Sim.stimulus) =
  Json.Obj (List.map (fun (n, bv) -> (n, Json.String (Bitvec.to_string bv))) st)

let stimulus_of_json = function
  | Json.Obj fields ->
    all_some
      (List.map
         (function
           | n, Json.String s -> Option.map (fun bv -> (n, bv)) (bitvec_of_string s)
           | _ -> None)
         fields)
  | _ -> None

let test_set_to_json ts =
  Json.List
    (List.map (fun seq -> Json.List (List.map stimulus_to_json seq)) ts)

let test_set_of_json = function
  | Json.List seqs ->
    all_some
      (List.map
         (function
           | Json.List stims -> all_some (List.map stimulus_of_json stims)
           | _ -> None)
         seqs)
  | _ -> None

let test_set_hash ts = Store.digest (Json.to_string (test_set_to_json ts))

(* --- patterns ---------------------------------------------------------- *)

let pattern_to_json p =
  Json.Obj
    [
      ("w", Json.Int (Packvec.width p));
      ( "v",
        Json.List (Array.to_list (Array.map (fun w -> Json.Int w) (Packvec.words p)))
      );
    ]

let pattern_of_json j =
  match (field_int j "w", Json.member "v" j) with
  | Some w, Some (Json.List ws) when w >= 1 -> (
    match all_some (List.map (function Json.Int x -> Some x | _ -> None) ws) with
    | Some words when List.length words = Packvec.words_for w ->
      let words = Array.of_list words in
      (* Re-impose the unused-high-bits-zero invariant rather than
         trusting the file. *)
      words.(Array.length words - 1) <-
        words.(Array.length words - 1) land Packvec.last_mask w;
      Some { Packvec.width = w; words }
    | _ -> None)
  | _ -> None

let patterns_of_json = function
  | Json.List ps -> Option.map Array.of_list (all_some (List.map pattern_of_json ps))
  | _ -> None

(* --- fault-simulation reports ------------------------------------------ *)

let fsim_report_to_json (r : Fsim.report) =
  Json.Obj
    [
      ("total", Json.Int r.Fsim.total);
      ("detected", Json.Int r.Fsim.detected);
      ("patterns_applied", Json.Int r.Fsim.patterns_applied);
      ( "detected_at",
        Json.List
          (Array.to_list
             (Array.map
                (fun (d : Fsim.detection) ->
                  match d.Fsim.detected_at with
                  | Some i -> Json.Int i
                  | None -> Json.Null)
                r.Fsim.detections)) );
    ]

let fsim_report_of_json ~faults j =
  match
    ( field_int j "total", field_int j "detected", field_int j "patterns_applied",
      Json.member "detected_at" j )
  with
  | Some total, Some detected, Some patterns_applied, Some (Json.List ats)
    when total = List.length faults && total = List.length ats -> (
    let ats =
      all_some
        (List.map
           (function
             | Json.Int i when i >= 0 -> Some (Some i)
             | Json.Null -> Some None
             | _ -> None)
           ats)
    in
    match ats with
    | Some ats
      when detected = List.length (List.filter Option.is_some ats)
           && detected >= 0 && patterns_applied >= 0 ->
      let detections =
        Array.of_list
          (List.map2 (fun fault detected_at -> { Fsim.fault; detected_at }) faults ats)
      in
      Some { Fsim.total; detected; detections; patterns_applied }
    | _ -> None)
  | _ -> None

(* --- cone-group fault-sim payloads ------------------------------------- *)

(* One entry per influence group (Regions.cone_group): the detection
   indices of the group's faults, in group order, plus the named nets
   of the group's cone for `store invalidate --cone`. The nets are
   payload, not key — internal net labels shift under design edits,
   and the cone hashes in the key already pin the structure. *)
let cone_payload_to_json ~nets ~detected_at =
  Json.Obj
    [
      ("nets", Json.List (List.map (fun n -> Json.String n) nets));
      ( "detected_at",
        Json.List
          (List.map
             (function Some i -> Json.Int i | None -> Json.Null)
             detected_at) );
    ]

let cone_payload_of_json ~count j =
  match Json.member "detected_at" j with
  | Some (Json.List ats) when List.length ats = count ->
    all_some
      (List.map
         (function
           | Json.Int i when i >= 0 -> Some (Some i)
           | Json.Null -> Some None
           | _ -> None)
         ats)
  | _ -> None

let site_hashes_digest sites = Store.digest (String.concat ";" sites)

(* --- validation outcomes ----------------------------------------------- *)

let outcome_to_json (o : Vectorgen.outcome) =
  Json.Obj
    [
      ("test_set", test_set_to_json o.Vectorgen.test_set);
      ("killed", int_list_to_json o.Vectorgen.killed);
      ("equivalent", int_list_to_json o.Vectorgen.equivalent);
      ("unknown", int_list_to_json o.Vectorgen.unknown);
      ("candidates_tried", Json.Int o.Vectorgen.candidates_tried);
      ("total_vectors", Json.Int o.Vectorgen.total_vectors);
      ( "degraded",
        Json.List (List.map (fun s -> Json.String s) o.Vectorgen.degraded) );
    ]

let outcome_of_json j =
  match
    ( Option.bind (Json.member "test_set" j) test_set_of_json,
      field_ints j "killed", field_ints j "equivalent", field_ints j "unknown",
      field_int j "candidates_tried", field_int j "total_vectors",
      Json.member "degraded" j )
  with
  | ( Some test_set, Some killed, Some equivalent, Some unknown,
      Some candidates_tried, Some total_vectors, Some (Json.List []) ) ->
    Some
      {
        Vectorgen.test_set;
        killed;
        equivalent;
        unknown;
        candidates_tried;
        total_vectors;
        degraded = [];
      }
  | _ -> None

(* --- mutation scores --------------------------------------------------- *)

let score_to_json (s : Score.t) =
  Json.Obj
    [
      ("total", Json.Int s.Score.total);
      ("killed", Json.Int s.Score.killed);
      ("equivalent", Json.Int s.Score.equivalent);
      ("score_percent", Json.Float s.Score.score_percent);
    ]

let score_of_json j =
  match
    ( field_int j "total", field_int j "killed", field_int j "equivalent",
      field_num j "score_percent" )
  with
  | Some total, Some killed, Some equivalent, Some score_percent
    when total >= 0 && killed >= 0 && equivalent >= 0
         && killed + equivalent <= total ->
    Some { Score.total; killed; equivalent; score_percent }
  | _ -> None

(* --- ATPG top-off reports ---------------------------------------------- *)

let topoff_report_to_json (r : Topoff.report) =
  Json.Obj
    [
      ("total_faults", Json.Int r.Topoff.total_faults);
      ("seed_detected", Json.Int r.Topoff.seed_detected);
      ("random_detected", Json.Int r.Topoff.random_detected);
      ("atpg_detected", Json.Int r.Topoff.atpg_detected);
      ("untestable", Json.Int r.Topoff.untestable);
      ("aborted", Json.Int r.Topoff.aborted);
      ("final_coverage_percent", Json.Float r.Topoff.final_coverage_percent);
      ("seed_patterns", Json.Int r.Topoff.seed_patterns);
      ("random_patterns", Json.Int r.Topoff.random_patterns);
      ("atpg_calls", Json.Int r.Topoff.atpg_calls);
      ("atpg_patterns", Json.Int r.Topoff.atpg_patterns);
      ("degraded", Json.Bool r.Topoff.degraded);
      ("degraded_retries", Json.Int r.Topoff.degraded_retries);
      ("degraded_detected", Json.Int r.Topoff.degraded_detected);
      ( "test_set",
        Json.List (Array.to_list (Array.map pattern_to_json r.Topoff.test_set)) );
    ]

let topoff_report_of_json j =
  match
    ( ( field_int j "total_faults", field_int j "seed_detected",
        field_int j "random_detected", field_int j "atpg_detected",
        field_int j "untestable", field_int j "aborted",
        field_num j "final_coverage_percent" ),
      ( field_int j "seed_patterns", field_int j "random_patterns",
        field_int j "atpg_calls", field_int j "atpg_patterns",
        field_bool j "degraded", field_int j "degraded_retries",
        field_int j "degraded_detected",
        Option.bind (Json.member "test_set" j) patterns_of_json ) )
  with
  | ( ( Some total_faults, Some seed_detected, Some random_detected,
        Some atpg_detected, Some untestable, Some aborted,
        Some final_coverage_percent ),
      ( Some seed_patterns, Some random_patterns, Some atpg_calls,
        Some atpg_patterns, Some degraded, Some degraded_retries,
        Some degraded_detected, Some test_set ) )
    when not degraded ->
    Some
      {
        Topoff.total_faults;
        seed_detected;
        random_detected;
        atpg_detected;
        untestable;
        aborted;
        final_coverage_percent;
        seed_patterns;
        random_patterns;
        atpg_calls;
        atpg_patterns;
        degraded;
        degraded_retries;
        degraded_detected;
        test_set;
      }
  | _ -> None
