(** Content hashes and payload codecs for the campaign store.

    The {!Mutsamp_store.Store} holds raw JSON; this module supplies the
    two halves the campaign layers need on top: canonical content
    hashes of pipeline inputs (the key parts — two runs agree on a key
    exactly when they agree on every hashed input) and lossless
    encode/decode pairs for the cached result types. Every hash goes
    through a canonical textual rendering ({!Mutsamp_hdl.Pretty} for
    designs, {!Mutsamp_netlist.Benchfmt} for netlists, the stable
    {!Mutsamp_obs.Json} printer for structured values), so values that
    compare equal hash equal.

    Decoders are total: any malformed, truncated or type-mismatched
    payload yields [None] — which {!Mutsamp_store.Store.fetch_or_compute}
    treats as a miss — never an exception. *)

module Json = Mutsamp_obs.Json

(** {2 Content hashes} *)

type hashes = {
  design_h : string;  (** behavioural source, via {!Mutsamp_hdl.Pretty} *)
  netlist_h : string;  (** synthesised netlist, via {!Mutsamp_netlist.Benchfmt} *)
  faults_h : string;  (** collapsed fault list, in order *)
}
(** The per-pipeline hash bundle; {!Pipeline.prepare} computes it
    lazily so store-less runs never pay for it. *)

val design_hash : Mutsamp_hdl.Ast.design -> string
val netlist_hash : Mutsamp_netlist.Netlist.t -> string
val faults_hash : Mutsamp_fault.Fault.t list -> string

val sequence_hash : Mutsamp_fault.Pattern.t array -> string
(** Pattern sequence, order- and width-sensitive. *)

val mutants_hash : Mutsamp_mutation.Mutant.t list -> string
(** Order-sensitive (cached outcomes index into the list). Covers each
    mutant's id, operator and mutated source. *)

val config_hash : Config.t -> string
val vector_config_hash : Mutsamp_validation.Vectorgen.config -> string
val int_list_hash : int list -> string
val test_set_hash : Mutsamp_hdl.Sim.stimulus list list -> string

val generator_name : Mutsamp_atpg.Topoff.generator -> string

(** {2 Codecs} *)

val int_list_to_json : int list -> Json.t
val int_list_of_json : Json.t -> int list option

val fsim_report_to_json : Mutsamp_fault.Fsim.report -> Json.t

val fsim_report_of_json :
  faults:Mutsamp_fault.Fault.t list ->
  Json.t ->
  Mutsamp_fault.Fsim.report option
(** The payload stores only per-fault first-detection indices; the
    fault values come from the caller's list (which the key's fault
    hash pins), re-paired positionally. [None] when the recorded total
    disagrees with the list length. *)

val cone_payload_to_json : nets:string list -> detected_at:int option list -> Json.t
(** One influence-group fault-sim entry: detection indices in group
    order, plus the cone's net names under ["nets"] (the handle
    [mutsamp store invalidate --cone NET] matches; payload, not key —
    internal net labels shift under edits, the key's cone hashes pin
    the structure). *)

val cone_payload_of_json : count:int -> Json.t -> int option list option
(** [None] unless exactly [count] well-formed indices are recorded. *)

val site_hashes_digest : string list -> string
(** Key part covering a group's fault site hashes, in group order. *)

val outcome_to_json : Mutsamp_validation.Vectorgen.outcome -> Json.t

val outcome_of_json : Json.t -> Mutsamp_validation.Vectorgen.outcome option
(** [None] for payloads recorded from a degraded generation run
    ([degraded <> []]) — those must never satisfy an exact re-run. *)

val score_to_json : Mutsamp_validation.Score.t -> Json.t
val score_of_json : Json.t -> Mutsamp_validation.Score.t option

val topoff_report_to_json : Mutsamp_atpg.Topoff.report -> Json.t
val topoff_report_of_json : Json.t -> Mutsamp_atpg.Topoff.report option
(** [None] for degraded runs, like {!outcome_of_json}. *)
