type t = {
  seed : int;
  sample_rate : float;
  random_multiplier : int;
  min_random_length : int;
  vector : Mutsamp_validation.Vectorgen.config;
  equivalence_screen : int;
}

let default =
  {
    seed = 2005;
    sample_rate = 0.10;
    random_multiplier = 20;
    min_random_length = 256;
    vector = Mutsamp_validation.Vectorgen.default_config;
    equivalence_screen = 512;
  }

let quick =
  {
    default with
    random_multiplier = 8;
    min_random_length = 128;
    vector =
      {
        Mutsamp_validation.Vectorgen.default_config with
        Mutsamp_validation.Vectorgen.max_stall = 60;
        max_vectors = 1024;
      };
    equivalence_screen = 192;
  }

let to_json t =
  let module J = Mutsamp_obs.Json in
  let v = t.vector in
  J.Obj
    [
      ("seed", J.Int t.seed);
      ("sample_rate", J.Float t.sample_rate);
      ("random_multiplier", J.Int t.random_multiplier);
      ("min_random_length", J.Int t.min_random_length);
      ( "vector",
        J.Obj
          [
            ("seed", J.Int v.Mutsamp_validation.Vectorgen.seed);
            ("max_stall", J.Int v.max_stall);
            ("sequence_length", J.Int v.sequence_length);
            ("max_vectors", J.Int v.max_vectors);
            ("directed", J.Bool v.directed);
            ("sat_attack", J.Bool v.sat_attack);
            ("minimize", J.Bool v.minimize);
          ] );
      ("equivalence_screen", J.Int t.equivalence_screen);
    ]
