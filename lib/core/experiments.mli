(** Experiment drivers regenerating the paper's results.

    - {!operator_efficiency} — Table 1: per-operator ΔFC%, ΔL%, NLFCE;
    - {!weights_of_table1} — turns a Table 1 row into the sampling
      weights of the test-oriented strategy;
    - {!sampling_comparison} — Table 2: MS (over the full mutant
      population) and NLFCE for random vs test-oriented 10 % sampling;
    - {!atpg_effort} — experiment E3: ATPG effort with no seed, a
      random seed, or the mutation-validation seed;
    - {!ms_vs_rate} — ablation A1: MS as a function of the sample rate
      for both strategies.

    All procedures are deterministic from [Config.t.seed] — with or
    without a pool in [?ctx]: campaign cells (operator columns,
    repetitions, seeding disciplines, sample rates) each draw an
    independent derived seed and merge in declaration order, so a
    parallel campaign reproduces the sequential tables bit for bit. *)

type operator_row = {
  op : Mutsamp_mutation.Operator.t;
  mutant_count : int;
  metric : Mutsamp_sampling.Nlfce.t;
}

type table1_row = { circuit : string; per_operator : operator_row list }

val operator_efficiency :
  ?config:Config.t ->
  ?operators:Mutsamp_mutation.Operator.t list ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Pipeline.t ->
  name:string ->
  table1_row
(** Default operator set: the paper's LOR, VR, CVR, CR. Operators with
    no mutants on the circuit are skipped (like CR in the paper when a
    description declares no constant).

    With a store in [ctx], each finished operator row is persisted
    under namespace ["t1row"] (keyed by design/config content hashes,
    circuit, operator and seed) as soon as it is computed, and rows
    already on disk for this exact key are replayed instead of
    recomputed — a crashed campaign resumes where it stopped, and an
    unchanged re-run generates no vectors and simulates no faults.
    Finer-grained ["vectors"]/["fsim"] entries serve partial reuse when
    only part of the key changes. *)

val average_table1 : table1_row list -> table1_row
(** Field-wise mean of several runs of the same circuit (same operator
    sets). Raises [Invalid_argument] on the empty list. *)

val operator_efficiency_avg :
  ?config:Config.t ->
  ?operators:Mutsamp_mutation.Operator.t list ->
  ?repetitions:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Pipeline.t ->
  name:string ->
  table1_row
(** {!operator_efficiency} repeated with independent derived seeds
    (default 3) and averaged. Each repetition stores rows under its own
    derived seed, so resuming replays only the unfinished
    repetitions. *)

val weights_of_table1 : table1_row -> (Mutsamp_mutation.Operator.t * float) list
(** Efficiency-proportional weights with bounded skew: a class at the
    best measured NLFCE weighs 8x a zero-efficiency class, and every
    measured class keeps a strictly positive weight. Derive the row
    with [~operators:Operator.all] so unmeasured classes are not
    starved during sampling. *)

type strategy_result = {
  strategy : string;
  sampled_count : int;
  ms : Mutsamp_validation.Score.t;
  metric : Mutsamp_sampling.Nlfce.t;
  validation_vectors : int;
}

type table2_row = {
  circuit : string;
  random : strategy_result;
  oriented : strategy_result;
}

val sampling_comparison :
  ?config:Config.t ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Pipeline.t ->
  name:string ->
  weights:(Mutsamp_mutation.Operator.t * float) list ->
  equivalents:int list ->
  table2_row
(** Both strategies sample the same number of mutants
    ([config.sample_rate], 10 % by default); MS is computed on the
    whole population with the supplied equivalent-mutant indices
    (see {!Pipeline.classify_equivalents}). *)

type table2_average = {
  circuit : string;
  repetitions : int;
  oriented_ms_mean : float;
  random_ms_mean : float;
  oriented_nlfce_mean : float;
  random_nlfce_mean : float;
  oriented_nlfce_median : float;
      (** NLFCE is a product of two gains, so a single outlier run can
          dominate the mean; the median is the robust summary *)
  random_nlfce_median : float;
  oriented_ms_wins : int;  (** repetitions where oriented MS ≥ random MS *)
  oriented_nlfce_wins : int;
  sampled_count : int;
}

val sampling_comparison_avg :
  ?config:Config.t ->
  ?repetitions:int ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Pipeline.t ->
  name:string ->
  weights:(Mutsamp_mutation.Operator.t * float) list ->
  equivalents:int list ->
  table2_average
(** {!sampling_comparison} repeated with independent derived seeds
    (default 5) and averaged — the single-run comparison is noisy on
    small circuits, and the paper's claim concerns the strategies'
    expected behaviour. *)

type atpg_row = {
  seed_kind : string;  (** "none", "random" or "mutation" *)
  report : Mutsamp_atpg.Topoff.report;
}

val atpg_effort :
  ?config:Config.t ->
  ?generator:Mutsamp_atpg.Topoff.generator ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Pipeline.t ->
  name:string ->
  mutation_sequences:Mutsamp_hdl.Sim.stimulus list list ->
  atpg_row list
(** Sequential circuits are full-scanned; the mutation seed is replayed
    into scan patterns with {!Pipeline.scan_patterns_of_sequences}. The
    random seed has the same length as the mutation seed. [generator]
    defaults to PODEM; use [Use_sat] for XOR-dominated circuits
    (e.g. c499) where PODEM's search degenerates. *)

val ms_vs_rate :
  ?config:Config.t ->
  ?ctx:Mutsamp_exec.Ctx.t ->
  Pipeline.t ->
  name:string ->
  weights:(Mutsamp_mutation.Operator.t * float) list ->
  equivalents:int list ->
  rates:float list ->
  (float * float * float) list
(** [(rate, ms_random, ms_oriented)] per requested rate. *)
