module Ast = Mutsamp_hdl.Ast
module Sim = Mutsamp_hdl.Sim
module Check = Mutsamp_hdl.Check
module Stimuli = Mutsamp_hdl.Stimuli
module Bitvec = Mutsamp_util.Bitvec
module Prng = Mutsamp_util.Prng
module Netlist = Mutsamp_netlist.Netlist
module Bitsim = Mutsamp_netlist.Bitsim
module Lower = Mutsamp_synth.Lower
module Mapping = Mutsamp_synth.Mapping
module Flow = Mutsamp_synth.Flow
module Fault = Mutsamp_fault.Fault
module Collapse = Mutsamp_fault.Collapse
module Fsim = Mutsamp_fault.Fsim
module Mutant = Mutsamp_mutation.Mutant
module Generate = Mutsamp_mutation.Generate
module Kill = Mutsamp_mutation.Kill
module Equivalence = Mutsamp_mutation.Equivalence
module Equiv = Mutsamp_sat.Equiv
module Regions = Mutsamp_analysis.Regions
module Trace = Mutsamp_obs.Trace
module Metrics = Mutsamp_obs.Metrics
module Rerror = Mutsamp_robust.Error
module Budget = Mutsamp_robust.Budget
module Degrade = Mutsamp_robust.Degrade
module Ctx = Mutsamp_exec.Ctx

(* Observability series (no-ops unless metrics collection is on). *)
let c_equiv_screened = Metrics.counter "equiv.screened_out"
let c_equiv_exact = Metrics.counter "equiv.exact_checks"
let c_equiv_proven = Metrics.counter "equiv.proven_equivalent"

type t = {
  design : Ast.design;
  netlist : Netlist.t;
  mapping : Mapping.t;
  faults : Fault.t list;
  mutants : Mutant.t list;
  sequential : bool;
  hashes : Cache.hashes Lazy.t;
}

let hashes t = Lazy.force t.hashes

let prepare design =
  Trace.with_span "prepare" ~attrs:[ ("design", design.Ast.name) ] @@ fun () ->
  let netlist, mapping =
    Trace.with_span "synth" (fun () -> Flow.synthesize_mapped design)
  in
  let collapse = Trace.with_span "collapse" (fun () -> Collapse.run netlist) in
  let mutants = Trace.with_span "mutants" (fun () -> Generate.all design) in
  (* Structural run-report series: netlist shape and fault-collapse
     effectiveness, keyed by circuit so multi-circuit commands stay
     readable. No-ops unless metrics collection is on. *)
  if Metrics.enabled () then begin
    let s = Mutsamp_netlist.Stats.compute netlist in
    let named suffix v =
      Metrics.add_named ("analysis." ^ design.Ast.name ^ "." ^ suffix) v
    in
    named "nets" s.Mutsamp_netlist.Stats.nets;
    named "logic_gates" s.Mutsamp_netlist.Stats.logic_gates;
    named "flip_flops" s.Mutsamp_netlist.Stats.flip_flops;
    named "levels" s.Mutsamp_netlist.Stats.levels;
    named "max_fanout" s.Mutsamp_netlist.Stats.max_fanout;
    named "regions" s.Mutsamp_netlist.Stats.regions;
    named "max_region" s.Mutsamp_netlist.Stats.max_region;
    named "reconvergences" s.Mutsamp_netlist.Stats.reconvergences;
    named "faults_full" collapse.Collapse.full_size;
    named "faults_collapsed" collapse.Collapse.collapsed_size;
    named "collapse_ratio_bp"
      (int_of_float (Float.round (10000. *. Collapse.ratio collapse)))
  end;
  Trace.add_attr "gates" (string_of_int (Array.length netlist.Netlist.gates));
  Trace.add_attr "faults"
    (string_of_int (List.length collapse.Collapse.representatives));
  Trace.add_attr "mutants" (string_of_int (List.length mutants));
  let faults = collapse.Collapse.representatives in
  {
    design;
    netlist;
    mapping;
    faults;
    mutants;
    sequential = not (Check.is_combinational design);
    hashes =
      lazy
        {
          Cache.design_h = Cache.design_hash design;
          netlist_h = Cache.netlist_hash netlist;
          faults_h = Cache.faults_hash faults;
        };
  }

let pattern_of_stimulus t stimulus =
  let bits =
    List.concat_map
      (fun (dc : Ast.decl) ->
        match List.assoc_opt dc.name stimulus with
        | None -> invalid_arg ("Pipeline.pattern_of_stimulus: missing input " ^ dc.name)
        | Some bv ->
          List.init dc.width (fun i ->
              (Lower.bit_name dc.name dc.width i, Bitvec.bit bv i)))
      (Ast.inputs t.design)
  in
  Fsim.input_pattern t.netlist bits

let patterns_of_sequences t sequences =
  Array.of_list (List.map (pattern_of_stimulus t) (List.concat sequences))

(* Cone-keyed combinational fault simulation. With a store attached,
   the fault list is partitioned into influence groups — faults whose
   effects reach the same primary outputs — and one entry is kept per
   group, keyed by the Merkle cone hashes of those outputs' input
   cones (plus the faults' structural site hashes and the pattern
   sequence), never by the whole-netlist hash. A per-fault detection
   index does not depend on which other faults share a simulation run
   (see {!Mutsamp_fault.Fsim}), so group payloads computed together or
   apart are identical — and after a localised design edit only the
   groups whose cones cover the edit miss; everything else replays.
   Missing groups are simulated in a single [Fsim.run] call
   over their union, and nothing is cached if the run degraded. *)
let fault_simulate_patterns ?(ctx = Ctx.default) nl ~faults ~patterns =
  match Ctx.store ctx with
  | None -> Fsim.run ~ctx nl ~faults ~sequence:patterns
  | Some store ->
    let regions = Regions.compute nl in
    let groups = Regions.cone_groups nl regions faults in
    let seq_h = Cache.sequence_hash patterns in
    let fault_arr = Array.of_list faults in
    let results = Array.make (Array.length fault_arr) None in
    let key_of (g : Regions.cone_group) =
      Mutsamp_store.Store.key ~ns:"fsimcone"
        [
          ("cone", g.Regions.ghash);
          ( "faults",
            Cache.site_hashes_digest (List.map (fun (_, _, sh) -> sh) g.Regions.faults) );
          ("sequence", seq_h);
        ]
    in
    let missing =
      List.filter
        (fun (g : Regions.cone_group) ->
          let hit =
            g.Regions.cacheable
            && (match Mutsamp_store.Store.find store (key_of g) with
                | None -> false
                | Some payload -> (
                  match
                    Cache.cone_payload_of_json
                      ~count:(List.length g.Regions.faults)
                      payload
                  with
                  | None -> false
                  | Some ats ->
                    List.iter2
                      (fun (i, _, _) at -> results.(i) <- at)
                      g.Regions.faults ats;
                    true))
          in
          not hit)
        groups
    in
    if missing <> [] then begin
      let idxs =
        List.sort compare
          (List.concat_map
             (fun (g : Regions.cone_group) ->
               List.map (fun (i, _, _) -> i) g.Regions.faults)
             missing)
      in
      let sub = List.map (fun i -> fault_arr.(i)) idxs in
      let degradations_before = List.length (Degrade.events ()) in
      let r = Fsim.run ~ctx nl ~faults:sub ~sequence:patterns in
      List.iteri
        (fun k i -> results.(i) <- r.Fsim.detections.(k).Fsim.detected_at)
        idxs;
      if List.length (Degrade.events ()) = degradations_before then
        List.iter
          (fun (g : Regions.cone_group) ->
            if g.Regions.cacheable then
              Mutsamp_store.Store.put store (key_of g)
                (Cache.cone_payload_to_json
                   ~nets:(Regions.net_tokens nl g.Regions.nets)
                   ~detected_at:
                     (List.map (fun (i, _, _) -> results.(i)) g.Regions.faults)))
          missing
    end;
    let detections =
      Array.mapi
        (fun i fault -> { Fsim.fault; detected_at = results.(i) })
        fault_arr
    in
    let detected =
      Array.fold_left
        (fun acc (d : Fsim.detection) ->
          if d.Fsim.detected_at <> None then acc + 1 else acc)
        0 detections
    in
    {
      Fsim.total = Array.length fault_arr;
      detected;
      detections;
      patterns_applied = Array.length patterns;
    }

let fault_simulate ?(ctx = Ctx.default) t sequence =
  Trace.with_span "fsim" @@ fun () ->
  let r =
    if Netlist.num_dffs t.netlist = 0 then
      (* Combinational designs take the cone-keyed incremental path
         (a plain run when no store is attached). *)
      fault_simulate_patterns ~ctx t.netlist ~faults:t.faults ~patterns:sequence
    else begin
      let compute () = Fsim.run ~ctx t.netlist ~faults:t.faults ~sequence in
      match Ctx.store ctx with
      | None -> compute ()
      | Some _ as store ->
        (* Sequential designs keep whole-design keying: cross-cycle
           state feedback makes per-cone payloads unsound to split.
           Degraded runs are returned but never cached — see
           {!Mutsamp_store.Store.fetch_or_compute}. *)
        let h = Lazy.force t.hashes in
        Mutsamp_store.Store.fetch_or_compute store ~ns:"fsim"
          ~parts:
            [
              ("netlist", h.Cache.netlist_h);
              ("faults", h.Cache.faults_h);
              ("sequence", Cache.sequence_hash sequence);
            ]
          ~encode:Cache.fsim_report_to_json
          ~decode:(Cache.fsim_report_of_json ~faults:t.faults)
          compute
    end
  in
  Trace.add_attr "patterns" (string_of_int r.Fsim.patterns_applied);
  Trace.add_attr "detected"
    (Printf.sprintf "%d/%d" r.Fsim.detected r.Fsim.total);
  r

let scan_patterns_of_sequences t sequences =
  if not t.sequential then patterns_of_sequences t sequences
  else begin
    let sim = Bitsim.create ~lanes:1 t.netlist in
    Bitsim.reset sim;
    let n_in = Array.length t.netlist.Netlist.input_nets in
    let n_dffs = Array.length t.netlist.Netlist.dff_nets in
    let patterns = ref [] in
    List.iter
      (fun stim ->
        let state = Bitsim.dff_states sim in
        let pi = pattern_of_stimulus t stim in
        (* Scan pattern layout matches Scan.full_scan: original inputs
           first, then the flip-flops in dff_nets order. *)
        let p =
          Mutsamp_fault.Pattern.init ~inputs:(n_in + n_dffs) (fun k ->
              if k < n_in then Mutsamp_fault.Pattern.get pi k
              else state.(k - n_in) land 1 = 1)
        in
        patterns := p :: !patterns;
        ignore (Bitsim.step sim (Mapping.pack_stimulus t.mapping stim)))
      (List.concat sequences);
    Array.of_list (List.rev !patterns)
  end

let rec classify_equivalents ?(screen = 512) ?(ctx = Ctx.default) ~seed t =
  Trace.with_span "equiv" @@ fun () ->
  let compute () = classify_equivalents_compute ~screen ~ctx ~seed t in
  match Ctx.store ctx with
  | None -> compute ()
  | Some _ as store ->
    (* The design hash pins the mutant population (mutants are
       enumerated from the source), so the index list stays valid. *)
    Mutsamp_store.Store.fetch_or_compute store ~ns:"equiv"
      ~parts:
        [
          ("design", (Lazy.force t.hashes).Cache.design_h);
          ("seed", string_of_int seed);
          ("screen", string_of_int screen);
        ]
      ~encode:Cache.int_list_to_json ~decode:Cache.int_list_of_json compute

and classify_equivalents_compute ~screen ~ctx ~seed t =
  let mutants = Array.of_list t.mutants in
  let runner = Kill.make t.design t.mutants in
  let prng = Prng.create seed in
  (* Phase 1: random screening kills the easy mutants cheaply. *)
  let seq_len = if t.sequential then 16 else 1 in
  let n_seqs = max 1 (screen / seq_len) in
  let sequences =
    List.init n_seqs (fun _ -> Stimuli.random_sequence prng t.design seq_len)
  in
  let flags = Kill.killed_set runner ~ctx sequences in
  let survivors =
    List.filter (fun i -> not flags.(i)) (List.init (Array.length mutants) Fun.id)
  in
  Metrics.add c_equiv_screened (Array.length mutants - List.length survivors);
  Trace.add_attr "survivors" (string_of_int (List.length survivors));
  (* Phase 2: exact checks on the survivors, sharded over the context
     pool (each check is independent; the verdict array merges in
     survivor order, so parallel results match sequential ones). Budget
     exhaustion degrades to "non-equivalent" for the unresolved mutants
     — a conservative answer that deflates MS rather than inflating it —
     and the cut is recorded once. *)
  let survivor_arr = Array.of_list survivors in
  let total = Array.length survivor_arr in
  let done_count = Atomic.make 0 in
  let tick () =
    Ctx.progress ctx ~stage:"equiv"
      ~done_:(1 + Atomic.fetch_and_add done_count 1)
      ~total
  in
  let noted = Atomic.make false in
  let note_stop e =
    if not (Atomic.exchange noted true) then
      Degrade.note ~stage:Rerror.Equivalence
        ~detail:"equivalence classification cut short; unresolved mutants treated non-equivalent"
        e
  in
  let shard ~budget ~lo ~len =
    let stopped = ref None in
    let stop e =
      if !stopped = None then stopped := Some e;
      note_stop e
    in
    let exact i =
      Metrics.incr c_equiv_exact;
      let m = mutants.(i) in
      if t.sequential then
        match Equivalence.check t.design m.Mutant.design with
        | Equivalence.Equivalent -> true
        | Equivalence.Distinguished _ | Equivalence.Unknown -> false
      else begin
        (* SAT miter over the synthesised netlists. *)
        let mutant_nl = Flow.synthesize m.Mutant.design in
        match Equiv.check ~budget t.netlist mutant_nl with
        | Ok Equiv.Equivalent -> true
        | Ok (Equiv.Counterexample _) -> false
        | Error e -> stop e; false
        | exception Equiv.Equiv_error _ -> false
      end
    in
    let out = Array.make len false in
    for k = 0 to len - 1 do
      out.(k) <-
        (if !stopped <> None then false
         else
           match Budget.check_deadline budget ~stage:Rerror.Equivalence with
           | Error e -> stop e; false
           | Ok () -> exact survivor_arr.(lo + k));
      tick ()
    done;
    out
  in
  let verdicts = Array.concat (Array.to_list (Ctx.map_shards ctx ~n:total ~f:shard)) in
  let equivalents = List.filteri (fun k _ -> verdicts.(k)) survivors in
  Metrics.add c_equiv_proven (List.length equivalents);
  equivalents
