(** Experiment configuration.

    One record drives every experiment so a whole paper reproduction is
    determined by a single seed. *)

type t = {
  seed : int;
  sample_rate : float;  (** mutant sampling rate (the paper fixes 10 %) *)
  random_multiplier : int;
      (** random-baseline length = max(multiplier · L_m, min_random) *)
  min_random_length : int;
  vector : Mutsamp_validation.Vectorgen.config;
      (** validation-data generation parameters (its seed is overridden
          per use, derived from [seed]) *)
  equivalence_screen : int;
      (** random vectors/cycles used to screen out killable mutants
          before the exact equivalence checks *)
}

val default : t
(** seed 2005, rate 0.10, multiplier 20, min 256, screen 512. *)

val quick : t
(** Smaller budgets for demos and CI smoke runs. *)

val to_json : t -> Mutsamp_obs.Json.t
(** Every field, including the [vector] sub-record — embedded in run
    reports so a result file pins down the exact configuration that
    produced it. *)
